#![warn(missing_docs)]

//! # rcbr-suite — a from-scratch reproduction of RCBR
//!
//! *RCBR: A Simple and Efficient Service for Multiple Time-Scale Traffic*
//! (Grossglauser, Keshav, Tse — ACM SIGCOMM 1995 / IEEE ToN Dec. 1997),
//! reproduced as a Rust workspace.
//!
//! This façade re-exports every member crate so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `rcbr-sim` | event kernel, RNG streams, fluid queues, statistics |
//! | [`traffic`] | `rcbr-traffic` | traces, Markov/MTS sources, synthetic MPEG |
//! | [`ldt`] | `rcbr-ldt` | equivalent bandwidth, Chernoff bounds, Legendre transforms |
//! | [`net`] | `rcbr-net` | ATM ports/switches, RM-cell signaling, multi-hop paths |
//! | [`schedule`] | `rcbr-schedule` | offline trellis optimum, online AR(1) heuristic |
//! | [`admission`] | `rcbr-admission` | MBAC controllers, call-level simulation |
//! | [`core`] | `rcbr` | source endpoints, the Fig. 3 scenarios, capacity search |
//! | [`runtime`] | `rcbr-runtime` | sharded signaling-plane engine, load generator |
//!
//! See `DESIGN.md` for the system inventory and the experiment index, and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Quickstart
//!
//! ```
//! use rcbr_suite::prelude::*;
//!
//! // A Star-Wars-like synthetic trace (30 s worth of frames).
//! let mut rng = SimRng::from_seed(7);
//! let trace = SyntheticMpegSource::star_wars_like().generate(720, &mut rng);
//!
//! // The paper's Fig. 2 setting: 20 rate levels, a 300 kb buffer.
//! let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 20);
//! let config = TrellisConfig::new(grid, CostModel::from_ratio(1e6), 300_000.0);
//! let schedule = OfflineOptimizer::new(config).optimize(&trace).unwrap();
//!
//! assert!(schedule.is_feasible(&trace, 300_000.0));
//! assert!(schedule.bandwidth_efficiency(&trace) > 0.5);
//! ```

pub use rcbr as core;
pub use rcbr_admission as admission;
pub use rcbr_ldt as ldt;
pub use rcbr_net as net;
pub use rcbr_runtime as runtime;
pub use rcbr_schedule as schedule;
pub use rcbr_sim as sim;
pub use rcbr_traffic as traffic;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use rcbr::{
        min_rate_for_buffer, scenario_a_loss, search_capacity, sigma_rho_curve, RcbrConnection,
        RcbrSource, ScenarioBConfig, ScenarioCConfig, SearchConfig, ServiceConfig, SharedBufferSim,
        StepwiseCbrMuxSim,
    };
    pub use rcbr_admission::{
        CallSim, CallSimConfig, Memoryless, PeakRate, PerfectKnowledge, WithMemory,
    };
    pub use rcbr_ldt::{
        chernoff_failure_probability, equivalent_bandwidth, max_admissible_calls,
        min_capacity_per_source, mts_equivalent_bandwidth, rate_function, QosTarget,
    };
    pub use rcbr_net::{FaultConfig, FaultPlane, Path, RmCell, Switch};
    pub use rcbr_runtime::{run as run_signaling, run_sequential, RunReport, RuntimeConfig};
    pub use rcbr_schedule::{
        Ar1Config, Ar1Policy, CostModel, GopAwareConfig, GopAwarePolicy, OfflineOptimizer,
        OnlinePolicy, RateGrid, Schedule, TrellisConfig, VcDriver,
    };
    pub use rcbr_sim::{units, FluidQueue, SimRng};
    pub use rcbr_traffic::{
        FrameTrace, MarkovChain, MarkovModulatedSource, MtsModel, OnOffSource, Subchain,
        SyntheticMpegConfig, SyntheticMpegSource, TokenBucket, TraceStats,
    };
}
