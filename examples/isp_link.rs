//! An ISP video link, end to end: the full system with nothing abstracted.
//!
//! Live-video subscribers arrive at a shared link; each runs the online
//! AR(1) renegotiation policy against the port at frame granularity, and
//! a measurement-based controller decides who gets in. Compare three
//! admission strategies on the same arrival process.
//!
//! Run with: `cargo run --release --example isp_link [capacity_mbps]`
//! (default 15 Mb/s — roughly 40x the per-source mean, a small link where
//! admission control genuinely matters).

use rcbr_suite::core::system::{SystemConfig, SystemSim};
use rcbr_suite::prelude::*;

fn main() {
    let capacity_mbps: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("capacity in Mb/s"))
        .unwrap_or(15.0);
    let capacity = capacity_mbps * 1e6;

    let mut rng = SimRng::from_seed(404);
    let movie = SyntheticMpegSource::star_wars_like().generate(4800, &mut rng);
    let tau = movie.frame_interval();
    let config = SystemConfig {
        capacity,
        buffer: 300_000.0,
        arrival_rate: 0.25,
        hold_time: 90.0,
        policy: Ar1Config::fig2(64_000.0, movie.mean_rate(), tau),
        seed: 7,
    };
    let duration = 600.0;

    println!(
        "ISP link: {} | subscribers ~{:.0}x mean rate each | {:.0} s of operation",
        units::fmt_rate(capacity),
        capacity / movie.mean_rate(),
        duration
    );
    println!(
        "{:<14} {:>8} {:>9} {:>9} {:>9} {:>10} {:>10}",
        "admission", "offered", "admitted", "requests", "denials", "loss", "util"
    );

    let sim = SystemSim::new(&movie, config);
    let mut peak = PeakRate::new(movie.peak_rate());
    let mut memoryless = Memoryless::new(1e-3);
    let mut memory = WithMemory::new(1e-3, 600.0);
    let controllers: Vec<&mut dyn rcbr_suite::admission::AdmissionController> =
        vec![&mut peak, &mut memoryless, &mut memory];
    for ctl in controllers {
        let name = ctl.name();
        let r = sim.run(ctl, duration);
        println!(
            "{:<14} {:>8} {:>9} {:>9} {:>9} {:>10.2e} {:>9.1}%",
            name,
            r.offered,
            r.admitted,
            r.requests,
            r.denials,
            r.loss_fraction,
            100.0 * r.utilization
        );
    }

    println!(
        "\nReading: peak-rate admits few subscribers and wastes the link; memoryless\n\
         packs it but lets renegotiations fail; memory-based admission holds the\n\
         middle ground — the Section VI story, now with every protocol layer live."
    );
}
