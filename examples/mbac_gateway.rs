//! A video-gateway admission-control bakeoff (Section VI).
//!
//! Calls — randomly shifted copies of one RCBR schedule — arrive at a
//! shared link as a Poisson process. Four controllers compete: peak-rate
//! allocation, the perfect-knowledge Chernoff controller, the memoryless
//! certainty-equivalent MBAC, and the memory-based MBAC. The output shows
//! the paper's qualitative result: the memoryless scheme blows through the
//! QoS target on small links, while memory restores robustness at nearly
//! the same utilization.
//!
//! Run with: `cargo run --release --example mbac_gateway`

use rcbr_suite::prelude::*;

fn main() {
    // Base call: a 2-minute RCBR schedule from a synthetic video trace.
    let mut rng = SimRng::from_seed(3);
    let trace = SyntheticMpegSource::star_wars_like().generate(2880, &mut rng);
    let buffer = 300_000.0;
    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 12);
    let schedule = OfflineOptimizer::new(
        TrellisConfig::new(grid, CostModel::from_ratio(2e5), buffer)
            .with_drain_at_end()
            .with_q_resolution(buffer / 1000.0),
    )
    .optimize(&trace)
    .expect("grid covers trace peak");
    let dist = schedule.empirical_distribution();
    println!(
        "call: duration {:.0} s, mean {}, peak {}",
        schedule.duration(),
        units::fmt_rate(dist.mean()),
        units::fmt_rate(dist.peak())
    );

    let target = 1e-3;
    // A small link (20x the call mean): the regime where measurement error
    // hurts the most (Fig. 7's leftmost curves).
    let capacity = 20.0 * dist.mean();
    // Offered load ~1.5x capacity so the controller is always the binding
    // constraint.
    let arrival_rate = 1.5 * capacity / dist.mean() / schedule.duration();
    let config = CallSimConfig::new(capacity, arrival_rate, target, 42).with_max_windows(40);
    let sim = CallSim::new(&schedule, config);

    println!(
        "\nlink {} | target failure {:.0e} | offered load 1.5x",
        units::fmt_rate(capacity),
        target
    );
    println!(
        "{:<18} {:>14} {:>12} {:>10} {:>9}",
        "controller", "failure prob", "utilization", "blocking", "windows"
    );

    let mut peak = PeakRate::new(dist.peak());
    let mut perfect = PerfectKnowledge::new(dist.clone(), target);
    let mut memoryless = Memoryless::new(target);
    let mut memory = WithMemory::new(target, 10.0 * schedule.duration());
    let controllers: Vec<&mut dyn rcbr_suite::admission::AdmissionController> =
        vec![&mut peak, &mut perfect, &mut memoryless, &mut memory];

    for controller in controllers {
        let name = controller.name();
        let report = sim.run(controller);
        println!(
            "{:<18} {:>14.3e} {:>11.1}% {:>9.1}% {:>9}",
            name,
            report.failure_probability,
            100.0 * report.utilization,
            100.0 * report.blocking_probability,
            report.windows
        );
    }

    println!(
        "\nReading: 'memoryless' exceeds the {target:.0e} target by orders of magnitude on a\n\
         link this small; 'with-memory' holds the target at comparable utilization,\n\
         and 'peak-rate' is safe but wastes the statistical multiplexing gain."
    );
}
