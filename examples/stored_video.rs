//! Stored-video workflow: price-driven schedule shaping (Fig. 2's knob).
//!
//! A video server computes renegotiation schedules ahead of time. The
//! network operator's prices (α per renegotiation, β per reserved
//! bit) shape the schedule: raising α/β buys fewer renegotiations at the
//! cost of bandwidth efficiency. This example sweeps the ratio, prints
//! the tradeoff, shows the Section VI traffic descriptor of the chosen
//! schedule, and persists trace + schedule as JSON.
//!
//! Run with: `cargo run --release --example stored_video [out_dir]`

use rcbr_suite::prelude::*;
use std::path::PathBuf;

fn main() {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .map(Into::into)
        .unwrap_or_else(std::env::temp_dir);

    let mut rng = SimRng::from_seed(11);
    let trace = SyntheticMpegSource::star_wars_like().generate(14_400, &mut rng);
    let buffer = 300_000.0;
    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 20);

    println!("price sweep (buffer = 300 kb, M = 20 levels):");
    println!(
        "{:>12}  {:>12}  {:>10}  {:>8}",
        "alpha/beta", "interval (s)", "efficiency", "renegs"
    );
    let mut chosen = None;
    for ratio in [1e4, 1e5, 1e6, 1e7, 1e8] {
        let cfg = TrellisConfig::new(grid.clone(), CostModel::from_ratio(ratio), buffer)
            .with_drain_at_end()
            .with_q_resolution(buffer / 1000.0);
        let schedule = OfflineOptimizer::new(cfg)
            .optimize(&trace)
            .expect("grid covers peak");
        println!(
            "{:>12.0}  {:>12.1}  {:>9.1}%  {:>8}",
            ratio,
            schedule.mean_renegotiation_interval(),
            100.0 * schedule.bandwidth_efficiency(&trace),
            schedule.num_renegotiations()
        );
        // Pick the schedule closest to the paper's ~12 s intervals.
        if chosen.is_none() && schedule.mean_renegotiation_interval() >= 10.0 {
            chosen = Some(schedule);
        }
    }
    let schedule = chosen.expect("some ratio yields >= 10 s intervals");

    println!(
        "\nchosen schedule ({} segments):",
        schedule.segments().len()
    );
    println!("  traffic descriptor (Section VI): fraction of time per level");
    for (rate, prob) in schedule.empirical_distribution().iter() {
        if prob > 0.0 {
            println!("    {:>12} : {:>6.2}%", units::fmt_rate(rate), 100.0 * prob);
        }
    }

    // Persist both artifacts.
    let trace_path = out_dir.join("star_wars_like.trace.json");
    rcbr_suite::traffic::io::save_json(&trace, &trace_path).expect("write trace");
    let sched_path = out_dir.join("star_wars_like.schedule.json");
    std::fs::write(
        &sched_path,
        serde_json::to_string(&schedule).expect("serialize"),
    )
    .expect("write schedule");
    println!(
        "\nwrote {} and {}",
        trace_path.display(),
        sched_path.display()
    );

    // A downstream player can verify feasibility before streaming.
    let metrics = schedule.replay(&trace, buffer);
    println!(
        "replay check: loss = {:.1e}, peak backlog = {}",
        metrics.loss_fraction,
        units::fmt_bits(metrics.peak_backlog)
    );
    assert_eq!(metrics.loss_fraction, 0.0);
}
