//! Quickstart: smooth a bursty video source with RCBR.
//!
//! Generates a Star-Wars-like synthetic MPEG trace, computes the optimal
//! offline renegotiation schedule (Section IV-A) and the online AR(1)
//! heuristic schedule (Section IV-B) for the paper's 300 kb buffer, and
//! compares them with static CBR.
//!
//! Run with: `cargo run --release --example quickstart`

use rcbr_suite::prelude::*;

fn main() {
    // ~10 minutes of 24 fps video, calibrated to the paper's trace
    // statistics (mean 374 kb/s, sustained multi-second peaks).
    let mut rng = SimRng::from_seed(2026);
    let source = SyntheticMpegSource::star_wars_like();
    let trace = source.generate(14_400, &mut rng);
    let stats = TraceStats::compute(&trace);

    println!("trace: {} frames, {:.0} s", trace.len(), trace.duration());
    println!(
        "  mean rate        : {}",
        units::fmt_rate(trace.mean_rate())
    );
    println!(
        "  peak rate        : {}",
        units::fmt_rate(trace.peak_rate())
    );
    println!(
        "  sustained peak   : {:.1} s above 2.5x the mean",
        stats.longest_sustained_peak(2.5)
    );

    let buffer = 300_000.0; // the paper's codec-scale buffer (300 kb)

    // Static CBR baseline: the minimum fixed rate for loss <= 1e-6.
    let cbr_rate = min_rate_for_buffer(&trace, buffer, 1e-6);
    println!("\nstatic CBR at the same buffer:");
    println!(
        "  required rate    : {} ({:.2}x mean)",
        units::fmt_rate(cbr_rate),
        cbr_rate / trace.mean_rate()
    );

    // Offline optimum (Section IV-A): 20 uniform levels, cost ratio chosen
    // for ~10 s renegotiation intervals.
    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 20);
    let config =
        TrellisConfig::new(grid, CostModel::from_ratio(1e6), buffer).with_q_resolution(300.0);
    let schedule = OfflineOptimizer::new(config)
        .optimize(&trace)
        .expect("the 2.4 Mb/s grid covers the trace peak");
    assert!(schedule.is_feasible(&trace, buffer));
    println!("\noffline optimal RCBR schedule:");
    println!(
        "  bandwidth efficiency      : {:.1}%",
        100.0 * schedule.bandwidth_efficiency(&trace)
    );
    println!(
        "  renegotiations            : {}",
        schedule.num_renegotiations()
    );
    println!(
        "  mean renegotiation interval: {:.1} s",
        schedule.mean_renegotiation_interval()
    );
    println!(
        "  mean reserved rate        : {}",
        units::fmt_rate(schedule.mean_service_rate())
    );

    // Online heuristic (Section IV-B) with the paper's Fig. 2 parameters.
    let tau = trace.frame_interval();
    let ar1 = Ar1Config::fig2(64_000.0, trace.mean_rate(), tau);
    let mut policy = Ar1Policy::new(ar1, tau);
    let run = rcbr_suite::schedule::online::run_online(&trace, &mut policy, buffer);
    println!("\nonline AR(1) heuristic (delta = 64 kb/s):");
    println!(
        "  bandwidth efficiency      : {:.1}%",
        100.0 * run.schedule.bandwidth_efficiency(&trace)
    );
    println!("  renegotiations            : {}", run.requests);
    println!(
        "  mean renegotiation interval: {:.2} s",
        run.schedule.mean_renegotiation_interval()
    );
    println!("  loss fraction             : {:.2e}", run.loss_fraction);

    println!(
        "\nRCBR reserves {:.1}x less bandwidth than static CBR for the same buffer.",
        cbr_rate / schedule.mean_service_rate()
    );
}
