//! Trace analysis: from a measured trace to the Section V-A model and back.
//!
//! Fits a multiple-time-scale Markov model to a video trace (scene
//! clustering + per-scene fast dynamics), prints the fitted structure,
//! and cross-checks the theory: the fitted model's eq. (9) equivalent
//! bandwidth should track the trace's *measured* (σ, ρ) requirement at
//! the same buffer.
//!
//! Run with: `cargo run --release --example trace_analysis [trace.txt]`
//! (with no argument a synthetic Star-Wars-like trace is analyzed; a
//! one-frame-size-per-line text trace at 24 frames/s can be supplied).

use rcbr_suite::core::sigma_rho::min_rate_for_buffer;
use rcbr_suite::prelude::*;
use rcbr_suite::traffic::fit::{fit_mts, MtsFitConfig};

fn main() {
    let trace = match std::env::args().nth(1) {
        Some(path) => rcbr_suite::traffic::io::load_text(path.as_ref(), 1.0 / 24.0)
            .expect("load one-size-per-line trace"),
        None => {
            let mut rng = SimRng::from_seed(12);
            SyntheticMpegSource::star_wars_like().generate(43_200, &mut rng)
        }
    };
    let stats = TraceStats::compute(&trace);
    println!("trace: {} frames ({:.0} s)", trace.len(), trace.duration());
    println!("  mean rate     : {}", units::fmt_rate(trace.mean_rate()));
    println!("  peak rate     : {}", units::fmt_rate(trace.peak_rate()));
    println!(
        "  rate CV       : frame {:.2} / 1 s {:.2} / 10 s {:.2}",
        stats.frame_cv, stats.second_cv, stats.ten_second_cv
    );
    println!(
        "  sustained peak: {:.1} s above 2.5x mean",
        stats.longest_sustained_peak(2.5)
    );

    // Fit the multiple-time-scale model (scene slots of one second).
    let fit = fit_mts(
        &trace,
        MtsFitConfig {
            num_subchains: 3,
            slot_frames: 24,
        },
    );
    println!("\nfitted MTS model (3 subchains, 1 s scene slots):");
    for (k, _) in fit.model.subchains().iter().enumerate() {
        println!(
            "  subchain {k}: mean {:>12}, time share {:>5.1}%, mean scene {:>6.1} s",
            units::fmt_rate(fit.model.subchain_mean_rate(k)),
            100.0 * fit.occupancy[k],
            fit.model.mean_sojourn(k)
        );
    }
    println!(
        "  model mean rate {} (trace: {})",
        units::fmt_rate(fit.model.mean_rate()),
        units::fmt_rate(trace.mean_rate())
    );

    // Theory vs. measurement: eq. (9) EB vs. the trace's sigma-rho value.
    let buffer = 300_000.0;
    let qos = QosTarget::new(buffer, 1e-6);
    let (eb, dominating) = mts_equivalent_bandwidth(&fit.model, qos);
    let measured = min_rate_for_buffer(&trace, buffer, 1e-6);
    println!("\nstatic-CBR requirement at B = 300 kb, eps = 1e-6:");
    println!(
        "  eq. (9) from the fitted model : {} (dominated by subchain {dominating})",
        units::fmt_rate(eb)
    );
    println!(
        "  measured (sigma, rho) value   : {}",
        units::fmt_rate(measured)
    );
    println!("  ratio model/measured          : {:.2}", eb / measured);
    println!(
        "\nBoth are far above the mean ({:.1}x and {:.1}x): the slow time scale defeats\n\
         buffering, which is the paper's case for renegotiation.",
        eb / trace.mean_rate(),
        measured / trace.mean_rate()
    );
}
