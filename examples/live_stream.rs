//! Live (interactive) streaming over a lossy multi-hop ATM path.
//!
//! An online RCBR source (AR(1) policy, Section IV-B) drives a camera-like
//! feed through three switches using delta-encoded RM-cell signaling
//! (Section III-B). Signaling loss is injected to demonstrate parameter
//! drift, and periodic absolute-rate resync repairs it — the mechanism of
//! the paper's footnote 2.
//!
//! Run with: `cargo run --release --example live_stream [drop_percent]`
//! (default 10, i.e. 10% of signaling cells lost — deliberately brutal).

use rcbr_suite::prelude::*;

fn main() {
    let drop_percent: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("drop_percent must be a number"))
        .unwrap_or(10.0);
    assert!(
        (0.0..=100.0).contains(&drop_percent),
        "drop_percent in [0, 100]"
    );

    // 5 minutes of live video.
    let mut rng = SimRng::from_seed(99);
    let trace = SyntheticMpegSource::star_wars_like().generate(7200, &mut rng);
    let tau = trace.frame_interval();
    let buffer = 300_000.0;

    // A 3-hop path; each hop has a 155 Mb/s port shared with background
    // reservations so renegotiations can genuinely fail.
    let mut switches: Vec<Switch> = (0..3).map(|_| Switch::new(&[155_000_000.0])).collect();
    for (i, sw) in switches.iter_mut().enumerate() {
        // Background load leaves ~2.5 Mb/s of headroom on the middle hop.
        let bg = if i == 1 { 152_500_000.0 } else { 100_000_000.0 };
        sw.setup(1000 + i as u32, 0, bg).expect("background setup");
    }
    let path = Path::new(vec![0, 1, 2], 0.001);
    let mut conn = RcbrConnection::establish(&mut switches, path, 1, trace.mean_rate())
        .expect("establish connection")
        .with_config(ServiceConfig::new(8)); // resync every 8 renegotiations
    let plane = FaultPlane::new(FaultConfig::drop_only(drop_percent / 100.0, 5));

    let policy = Ar1Policy::new(Ar1Config::fig2(100_000.0, trace.mean_rate(), tau), tau);
    let mut source = RcbrSource::online(Box::new(policy), tau, buffer);

    let mut max_drift = 0.0f64;
    for t in 0..trace.len() {
        source.step(trace.bits(t), |_, want| {
            conn.renegotiate(&mut switches, &plane, want)
                .unwrap_or(false)
        });
        max_drift = max_drift.max(conn.drift(&switches));
    }

    println!("live stream over 3 hops with {drop_percent}% signaling loss:");
    println!("  renegotiation requests : {}", source.total_requests());
    println!("  denied by the network  : {}", source.failed_requests());
    println!("  signaling cells dropped: {}", conn.lost_cells());
    println!("  resyncs sent           : {}", conn.resyncs());
    println!("  worst observed drift   : {}", units::fmt_rate(max_drift));
    println!("  end-system loss        : {:.2e}", source.loss_fraction());
    println!(
        "  final believed rate    : {}",
        units::fmt_rate(conn.believed_rate())
    );

    // Final resync: the switches' view converges to the source's.
    conn.resync(&mut switches).expect("final resync");
    println!(
        "  drift after final resync: {}",
        units::fmt_rate(conn.drift(&switches))
    );
    assert_eq!(conn.drift(&switches), 0.0);
    conn.teardown(&mut switches).expect("teardown");
}
