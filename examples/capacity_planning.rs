//! Capacity planning with the Section V-A large-deviations toolkit.
//!
//! For the multiple-time-scale source of Fig. 4, this computes:
//!
//! * the equivalent bandwidth of each fast-time-scale subchain in
//!   isolation, and eq. (9)'s whole-stream value (their maximum) — the
//!   static-CBR cost of multiple time scales;
//! * the Chernoff admissible-call counts (eq. (12)) for a range of link
//!   capacities, under both the slow-scale mean-rate marginal (the shared-
//!   buffer bound of eq. (10)) and the equivalent-bandwidth marginal that
//!   governs RCBR (eq. (11));
//! * peak-rate allocation, for contrast.
//!
//! Run with: `cargo run --release --example capacity_planning`

use rcbr_suite::prelude::*;
use rcbr_suite::sim::stats::DiscreteDistribution;

fn main() {
    let slot = 1.0 / 24.0;
    let model = MtsModel::fig4_example(1e-4, slot);
    let qos = QosTarget::new(300_000.0, 1e-6);

    println!(
        "Fig. 4 multiple-time-scale source (scene change every ~{:.0} s):",
        model.mean_sojourn(0)
    );
    println!(
        "  whole-stream mean rate : {}",
        units::fmt_rate(model.mean_rate())
    );
    println!(
        "  whole-stream peak rate : {}",
        units::fmt_rate(model.peak_rate())
    );

    println!("\nper-subchain equivalent bandwidth (B = 300 kb, eps = 1e-6):");
    let probs = model.subchain_probs();
    for (k, sub) in model.subchains().iter().enumerate() {
        let eb = equivalent_bandwidth(&sub.as_source(slot), qos);
        println!(
            "  subchain {k}: mean {:>12}, EB {:>12}, time share {:>5.1}%",
            units::fmt_rate(model.subchain_mean_rate(k)),
            units::fmt_rate(eb),
            100.0 * probs[k]
        );
    }
    let (eb_stream, dominating) = mts_equivalent_bandwidth(&model, qos);
    println!(
        "  eq. (9): whole-stream EB = max over subchains = {} (subchain {dominating})",
        units::fmt_rate(eb_stream)
    );
    println!(
        "  -> static CBR must reserve {:.2}x the mean rate; buffering alone cannot help",
        eb_stream / model.mean_rate()
    );

    // Marginals for the multiplexing estimates.
    let slow_marginal = model.slow_scale_distribution(); // eq. (10)
    let eb_marginal = DiscreteDistribution::from_weights(
        &model
            .subchains()
            .iter()
            .enumerate()
            .map(|(k, sub)| (equivalent_bandwidth(&sub.as_source(slot), qos), probs[k]))
            .collect::<Vec<_>>(),
    ); // eq. (11)

    let target = 1e-6;
    println!("\nadmissible calls at failure target 1e-6:");
    println!(
        "{:>10}  {:>12}  {:>12}  {:>10}",
        "capacity", "shared (10)", "RCBR (11)", "peak-rate"
    );
    for mult in [50.0, 100.0, 200.0, 500.0] {
        let capacity = mult * model.mean_rate();
        let shared = max_admissible_calls(&slow_marginal, capacity, target);
        let rcbr = max_admissible_calls(&eb_marginal, capacity, target);
        let peak = (capacity / model.peak_rate()).floor() as usize;
        println!(
            "{:>10}  {:>12}  {:>12}  {:>10}",
            units::fmt_rate(capacity),
            shared,
            rcbr,
            peak
        );
    }
    println!(
        "\nRCBR captures the slow-time-scale averaging gain; the small gap to the shared-\n\
         buffer column is the fast-time-scale smoothing RCBR gives up (Section V-A)."
    );
}
