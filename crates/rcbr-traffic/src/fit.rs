//! Fitting a multiple-time-scale model to a measured trace.
//!
//! Section V-A analyzes video with the subchain model of Fig. 4 but the
//! paper fits no model — it cites the modeling literature ([40], [31]).
//! This module closes the loop: given any [`FrameTrace`], estimate an
//! [`MtsModel`] whose slow scale is a scene-level activity chain and whose
//! fast scale is a per-scene two-state fluctuation:
//!
//! 1. aggregate the trace to scene-scale slots (a GoP or a second);
//! 2. cluster slot rates into `K` activity classes (1-D k-means seeded at
//!    quantiles);
//! 3. slow scale: per-class departure frequencies give the rare-transition
//!    probabilities `ε_k` and the switch matrix;
//! 4. fast scale: each class becomes a symmetric two-state subchain at
//!    `mean ± std` of its rates, flip probability matched to the
//!    within-class lag-1 autocorrelation.
//!
//! The result plugs straight into the analysis machinery: the fitted
//! model's eq. (9) equivalent bandwidth predicts the trace's static-CBR
//! cost, and its slow-scale marginal feeds the Chernoff estimates.

use serde::{Deserialize, Serialize};

use crate::markov::MarkovChain;
use crate::mts::{MtsModel, Subchain};
use crate::trace::FrameTrace;

/// Configuration of the fit.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MtsFitConfig {
    /// Number of activity classes (subchains), ≥ 2.
    pub num_subchains: usize,
    /// Frames per scene-scale slot (e.g. one GoP, or one second's worth).
    pub slot_frames: usize,
}

impl Default for MtsFitConfig {
    fn default() -> Self {
        Self {
            num_subchains: 3,
            slot_frames: 24,
        }
    }
}

/// A fitted model plus its diagnostics.
#[derive(Debug, Clone)]
pub struct MtsFit {
    /// The fitted multiple-time-scale model.
    pub model: MtsModel,
    /// Class centroids, bits/second, ascending.
    pub centroids: Vec<f64>,
    /// Class index of each aggregated slot.
    pub class_of_slot: Vec<usize>,
    /// Empirical fraction of slots in each class.
    pub occupancy: Vec<f64>,
}

/// Fit an MTS model to `trace`.
///
/// # Panics
/// Panics if the config is degenerate or the trace has fewer than
/// `2 * num_subchains` aggregated slots.
pub fn fit_mts(trace: &FrameTrace, config: MtsFitConfig) -> MtsFit {
    let k = config.num_subchains;
    assert!(k >= 2, "an MTS model needs at least two subchains");
    assert!(
        config.slot_frames >= 1,
        "slot aggregation must be at least one frame"
    );
    let agg = trace.aggregate(config.slot_frames);
    let n = agg.len();
    assert!(
        n >= 2 * k,
        "trace too short to fit {k} subchains ({n} scene slots)"
    );
    let rates: Vec<f64> = (0..n).map(|t| agg.rate(t)).collect();

    let centroids = kmeans_1d(&rates, k);
    let class_of_slot: Vec<usize> = rates.iter().map(|&r| nearest(&centroids, r)).collect();

    // Slow scale: departure counts per class.
    let mut departures = vec![vec![0usize; k]; k];
    let mut stays = vec![0usize; k];
    for w in class_of_slot.windows(2) {
        let (a, b) = (w[0], w[1]);
        if a == b {
            stays[a] += 1;
        } else {
            departures[a][b] += 1;
        }
    }
    let mut occupancy = vec![0.0; k];
    for &c in &class_of_slot {
        occupancy[c] += 1.0;
    }
    for o in occupancy.iter_mut() {
        *o /= n as f64;
    }

    let mut eps = Vec::with_capacity(k);
    let mut switch = vec![vec![0.0; k]; k];
    for a in 0..k {
        let out: usize = departures[a].iter().sum();
        let total = out + stays[a];
        // Clamp ε into (0, 0.5]: an unvisited or never-departing class
        // still needs valid dynamics.
        let e = if total > 0 {
            (out as f64 / total as f64).clamp(1.0 / (n as f64 + 1.0), 0.5)
        } else {
            1.0 / (n as f64 + 1.0)
        };
        eps.push(e);
        if out > 0 {
            for (s, &d) in switch[a].iter_mut().zip(&departures[a]) {
                *s = d as f64 / out as f64;
            }
        } else {
            // Never observed departing: uniform over the other classes.
            for (b, s) in switch[a].iter_mut().enumerate() {
                if b != a {
                    *s = 1.0 / (k - 1) as f64;
                }
            }
        }
    }

    // Fast scale: symmetric two-state subchains at mean ± std per class,
    // flip probability from the within-class lag-1 autocorrelation.
    let slot = agg.frame_interval();
    let mut subchains = Vec::with_capacity(k);
    for (c, &centroid) in centroids.iter().enumerate() {
        let class_rates: Vec<f64> = rates
            .iter()
            .zip(&class_of_slot)
            .filter(|&(_, &cc)| cc == c)
            .map(|(&r, _)| r)
            .collect();
        if class_rates.is_empty() {
            // Unvisited class: a constant emitter at its centroid.
            subchains.push(Subchain::constant(centroid * slot));
            continue;
        }
        let mean = class_rates.iter().sum::<f64>() / class_rates.len() as f64;
        let var = class_rates
            .iter()
            .map(|r| (r - mean) * (r - mean))
            .sum::<f64>()
            / class_rates.len() as f64;
        let std = var.sqrt();
        if std < 1e-9 * mean.max(1.0) {
            subchains.push(Subchain::constant(mean * slot));
            continue;
        }
        // Lag-1 autocorrelation over within-class consecutive pairs.
        let mut cov = 0.0;
        let mut pairs = 0.0;
        for (w, cls) in rates.windows(2).zip(class_of_slot.windows(2)) {
            if cls[0] == c && cls[1] == c {
                cov += (w[0] - mean) * (w[1] - mean);
                pairs += 1.0;
            }
        }
        let rho = if pairs > 0.0 {
            (cov / pairs / var).clamp(-0.9, 0.9)
        } else {
            0.0
        };
        // Symmetric two-state chain: lag-1 autocorrelation = 1 − 2p.
        let p = ((1.0 - rho) / 2.0).clamp(0.05, 0.95);
        let lo = (mean - std).max(0.0);
        let hi = 2.0 * mean - lo; // symmetric stationary (1/2, 1/2) preserves the class mean
        subchains.push(Subchain::new(
            MarkovChain::two_state(p, p),
            vec![lo * slot, hi * slot],
        ));
    }

    let model = MtsModel::new(subchains, switch, eps, slot);
    MtsFit {
        model,
        centroids,
        class_of_slot,
        occupancy,
    }
}

/// One-dimensional k-means, seeded at evenly spaced quantiles; returns
/// ascending centroids.
fn kmeans_1d(xs: &[f64], k: usize) -> Vec<f64> {
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| sorted[((i as f64 + 0.5) / k as f64 * (sorted.len() - 1) as f64) as usize])
        .collect();
    for _ in 0..100 {
        let mut sums = vec![0.0; k];
        let mut counts = vec![0usize; k];
        for &x in xs {
            let c = nearest(&centroids, x);
            sums[c] += x;
            counts[c] += 1;
        }
        let mut moved = 0.0;
        for c in 0..k {
            if counts[c] > 0 {
                let next = sums[c] / counts[c] as f64;
                moved += (next - centroids[c]).abs();
                centroids[c] = next;
            }
        }
        centroids.sort_by(|a, b| a.total_cmp(b));
        if moved < 1e-9 {
            break;
        }
    }
    centroids
}

fn nearest(centroids: &[f64], x: f64) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, &c) in centroids.iter().enumerate() {
        let d = (x - c).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpeg::SyntheticMpegSource;
    use rcbr_sim::SimRng;

    fn video(seed: u64, frames: usize) -> FrameTrace {
        let mut rng = SimRng::from_seed(seed);
        SyntheticMpegSource::star_wars_like().generate(frames, &mut rng)
    }

    #[test]
    fn kmeans_finds_separated_levels() {
        let xs: Vec<f64> = (0..300)
            .map(|i| match i % 3 {
                0 => 100.0 + (i % 7) as f64,
                1 => 500.0 + (i % 5) as f64,
                _ => 1500.0 + (i % 11) as f64,
            })
            .collect();
        let c = kmeans_1d(&xs, 3);
        assert!((c[0] - 103.0).abs() < 10.0, "{c:?}");
        assert!((c[1] - 502.0).abs() < 10.0, "{c:?}");
        assert!((c[2] - 1505.0).abs() < 10.0, "{c:?}");
    }

    #[test]
    fn fit_preserves_mean_rate() {
        let trace = video(1, 48_000);
        let fit = fit_mts(&trace, MtsFitConfig::default());
        let model_mean = fit.model.mean_rate();
        let rel = (model_mean - trace.mean_rate()).abs() / trace.mean_rate();
        assert!(
            rel < 0.15,
            "model mean {model_mean} vs trace {} ({rel:.2})",
            trace.mean_rate()
        );
    }

    #[test]
    fn fit_occupancy_matches_subchain_probs() {
        let trace = video(2, 48_000);
        let fit = fit_mts(&trace, MtsFitConfig::default());
        let probs = fit.model.subchain_probs();
        for (k, (&emp, &p)) in fit.occupancy.iter().zip(&probs).enumerate() {
            assert!(
                (emp - p).abs() < 0.15,
                "class {k}: empirical {emp} vs model {p}"
            );
        }
    }

    #[test]
    fn fit_recovers_a_known_model() {
        // Generate from a known MTS model; the fitted subchain means must
        // land near the true class means.
        let truth = MtsModel::fig4_example(5e-3, 1.0 / 24.0);
        let mut rng = SimRng::from_seed(3);
        let trace = truth.flatten().generate(200_000, &mut rng);
        let fit = fit_mts(
            &trace,
            MtsFitConfig {
                num_subchains: 3,
                slot_frames: 12,
            },
        );
        for k in 0..3 {
            let want = truth.subchain_mean_rate(k);
            let got = fit.model.subchain_mean_rate(k);
            assert!(
                (got - want).abs() / want < 0.3,
                "subchain {k}: fitted {got} vs true {want}"
            );
        }
    }

    #[test]
    fn fitted_model_regenerates_multiscale_traffic() {
        let trace = video(4, 48_000);
        let fit = fit_mts(&trace, MtsFitConfig::default());
        let mut rng = SimRng::from_seed(5);
        let synth = fit.model.flatten().generate(48_000 / 24, &mut rng);
        // Scene-scale slots: the regenerated stream must show sustained
        // high-rate episodes if the source did.
        let stats = crate::stats::TraceStats::compute(&synth);
        assert!(stats.mean_rate > 0.0);
        assert!(
            synth.peak_rate() > 1.5 * synth.mean_rate(),
            "regenerated traffic lost its burstiness"
        );
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn short_trace_rejected() {
        let trace = FrameTrace::new(1.0, vec![1.0; 10]);
        fit_mts(
            &trace,
            MtsFitConfig {
                num_subchains: 3,
                slot_frames: 4,
            },
        );
    }
}
