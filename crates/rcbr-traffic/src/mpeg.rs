//! Synthetic MPEG video traces with multiple-time-scale burstiness.
//!
//! The paper's experiments all use the MPEG-1 encoding of *Star Wars*
//! (Garrett & Willinger's trace): ~171,000 frames at 24 frames/s (≈ 2 h),
//! long-term mean rate 374 kb/s, and "episodes where a sustained peak of
//! five times the long-term average rate lasts over 10 s". That trace is
//! not redistributable, so this module generates traces with the same
//! multi-time-scale structure:
//!
//! * **Fast time scale** — the MPEG GoP pattern (default `IBBPBBPBBPBB`):
//!   I frames are several times larger than P frames, which are larger than
//!   B frames, giving the strong 12-frame periodicity of real MPEG-1.
//! * **Slow time scale** — a scene process: each scene draws an *activity
//!   level* that scales every frame in the scene, with durations drawn from
//!   a bounded Pareto (scene lengths are heavy-tailed). A small fraction of
//!   scenes are *action* scenes with activity ≈ 3–4.5x normal, producing
//!   the sustained near-peak episodes the paper describes.
//! * **Frame noise** — per-frame lognormal jitter models residual coding
//!   variability within a scene.
//!
//! After generation the trace is rescaled so its long-term mean rate equals
//! the configured target *exactly*, which pins the x-axes of every figure to
//! the paper's units (multiples of the 374 kb/s mean).

use rcbr_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::trace::FrameTrace;

/// MPEG frame kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameKind {
    /// Intra-coded: largest.
    I,
    /// Predicted: medium.
    P,
    /// Bidirectional: smallest.
    B,
}

/// Configuration for the synthetic generator.
///
/// The defaults ([`SyntheticMpegConfig::star_wars_like`]) are calibrated to
/// the statistics the paper reports for its trace; see the module docs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticMpegConfig {
    /// Frames per second (paper's trace: 24).
    pub frame_rate: f64,
    /// Target long-term mean rate, bits/second (paper's trace: 374 kb/s).
    pub mean_rate: f64,
    /// GoP pattern, repeated cyclically.
    pub gop: Vec<FrameKind>,
    /// Size of an I frame relative to a B frame.
    pub i_to_b: f64,
    /// Size of a P frame relative to a B frame.
    pub p_to_b: f64,
    /// Mean activity of a normal scene (relative units; the final rescale
    /// makes absolute calibration unnecessary).
    pub normal_activity_mean: f64,
    /// Coefficient of variation of normal-scene activity.
    pub normal_activity_cv: f64,
    /// Probability that a scene is a high-action scene.
    pub action_probability: f64,
    /// Activity range of action scenes (uniform), relative to
    /// `normal_activity_mean = 1`.
    pub action_activity: (f64, f64),
    /// Scene duration bounds in seconds (bounded Pareto).
    pub scene_duration: (f64, f64),
    /// Pareto shape for scene durations (smaller = heavier tail).
    pub scene_alpha: f64,
    /// Per-frame lognormal noise CV.
    pub frame_noise_cv: f64,
}

impl SyntheticMpegConfig {
    /// Defaults calibrated to the paper's *Star Wars* statistics.
    pub fn star_wars_like() -> Self {
        Self {
            frame_rate: 24.0,
            mean_rate: 374_000.0,
            gop: vec![
                FrameKind::I,
                FrameKind::B,
                FrameKind::B,
                FrameKind::P,
                FrameKind::B,
                FrameKind::B,
                FrameKind::P,
                FrameKind::B,
                FrameKind::B,
                FrameKind::P,
                FrameKind::B,
                FrameKind::B,
            ],
            i_to_b: 5.0,
            p_to_b: 2.5,
            normal_activity_mean: 0.75,
            normal_activity_cv: 0.45,
            action_probability: 0.05,
            action_activity: (3.0, 4.5),
            scene_duration: (1.0, 90.0),
            scene_alpha: 1.3,
            frame_noise_cv: 0.15,
        }
    }

    /// Relative size of a frame of the given kind (B frame = 1).
    fn kind_size(&self, kind: FrameKind) -> f64 {
        match kind {
            FrameKind::I => self.i_to_b,
            FrameKind::P => self.p_to_b,
            FrameKind::B => 1.0,
        }
    }

    fn validate(&self) {
        assert!(self.frame_rate > 0.0, "frame rate must be positive");
        assert!(self.mean_rate > 0.0, "mean rate must be positive");
        assert!(!self.gop.is_empty(), "GoP pattern must be nonempty");
        assert!(
            self.i_to_b >= 1.0 && self.p_to_b >= 1.0,
            "I/P must not be smaller than B"
        );
        assert!(
            self.normal_activity_mean > 0.0,
            "normal activity mean must be positive"
        );
        assert!(
            self.normal_activity_cv >= 0.0,
            "activity CV must be nonnegative"
        );
        assert!(
            (0.0..=1.0).contains(&self.action_probability),
            "action probability must be in [0, 1]"
        );
        assert!(
            self.action_activity.0 > 0.0 && self.action_activity.1 >= self.action_activity.0,
            "action activity range invalid"
        );
        assert!(
            self.scene_duration.0 > 0.0 && self.scene_duration.1 > self.scene_duration.0,
            "scene duration range invalid"
        );
        assert!(
            self.scene_alpha > 0.0,
            "scene Pareto shape must be positive"
        );
        assert!(
            self.frame_noise_cv >= 0.0,
            "frame noise CV must be nonnegative"
        );
    }
}

/// The synthetic MPEG source. Wraps a config and generates reproducible
/// traces from a seeded RNG.
///
/// ```
/// use rcbr_sim::SimRng;
/// use rcbr_traffic::SyntheticMpegSource;
///
/// let mut rng = SimRng::from_seed(7);
/// let trace = SyntheticMpegSource::star_wars_like().generate(240, &mut rng);
/// assert_eq!(trace.len(), 240);
/// // Calibrated to the paper's 374 kb/s mean rate, exactly.
/// assert!((trace.mean_rate() - 374_000.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticMpegSource {
    config: SyntheticMpegConfig,
}

impl SyntheticMpegSource {
    /// Create a source from a config.
    ///
    /// # Panics
    /// Panics if the config is internally inconsistent (see field docs).
    pub fn new(config: SyntheticMpegConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// A source calibrated to the paper's trace statistics.
    pub fn star_wars_like() -> Self {
        Self::new(SyntheticMpegConfig::star_wars_like())
    }

    /// The configuration.
    pub fn config(&self) -> &SyntheticMpegConfig {
        &self.config
    }

    /// Generate a trace of `n_frames` frames, rescaled to hit the
    /// configured mean rate exactly.
    ///
    /// # Panics
    /// Panics if `n_frames == 0`.
    pub fn generate(&self, n_frames: usize, rng: &mut SimRng) -> FrameTrace {
        assert!(n_frames > 0, "must generate at least one frame");
        let c = &self.config;
        let frame_interval = 1.0 / c.frame_rate;

        let mut bits = Vec::with_capacity(n_frames);
        let mut frame = 0usize;
        while frame < n_frames {
            // Draw one scene: duration (frames) and activity level.
            let dur_s = rng.bounded_pareto(c.scene_alpha, c.scene_duration.0, c.scene_duration.1);
            let dur_frames = ((dur_s * c.frame_rate).round() as usize).max(1);
            let activity = if rng.chance(c.action_probability) {
                rng.uniform_in(c.action_activity.0, c.action_activity.1)
            } else {
                rng.lognormal_mean_cv(c.normal_activity_mean, c.normal_activity_cv)
            };
            for _ in 0..dur_frames {
                if frame >= n_frames {
                    break;
                }
                // GoP phase continues across scene boundaries, as a real
                // encoder's does.
                let kind = c.gop[frame % c.gop.len()];
                let base = c.kind_size(kind);
                let noise = if c.frame_noise_cv > 0.0 {
                    rng.lognormal_mean_cv(1.0, c.frame_noise_cv)
                } else {
                    1.0
                };
                bits.push(base * activity * noise);
                frame += 1;
            }
        }

        // Rescale so the long-term mean rate is exactly `mean_rate`.
        let total: f64 = bits.iter().sum();
        let duration = n_frames as f64 * frame_interval;
        let scale = c.mean_rate * duration / total;
        for b in bits.iter_mut() {
            *b *= scale;
        }
        FrameTrace::new(frame_interval, bits)
    }

    /// Generate the paper-scale workload: a full-movie-length trace
    /// (~171,000 frames ≈ 2 hours at 24 frames/s).
    pub fn generate_full_movie(&self, rng: &mut SimRng) -> FrameTrace {
        self.generate(171_000, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    fn gen(seed: u64, n: usize) -> FrameTrace {
        let src = SyntheticMpegSource::star_wars_like();
        let mut rng = SimRng::from_seed(seed);
        src.generate(n, &mut rng)
    }

    #[test]
    fn mean_rate_is_exact() {
        let tr = gen(1, 50_000);
        assert!((tr.mean_rate() - 374_000.0).abs() < 1e-6 * 374_000.0);
        assert!((tr.frame_interval() - 1.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = gen(7, 5_000);
        let b = gen(7, 5_000);
        assert_eq!(a.frames(), b.frames());
        let c = gen(8, 5_000);
        assert_ne!(a.frames(), c.frames());
    }

    #[test]
    fn peak_to_mean_is_video_like() {
        let tr = gen(2, 100_000);
        let ratio = tr.peak_rate() / tr.mean_rate();
        // Real MPEG-1 traces have instantaneous (per-frame) peak/mean of
        // roughly 8-15; require something clearly in that burstiness class.
        assert!(ratio > 5.0 && ratio < 40.0, "peak/mean ratio {ratio}");
    }

    #[test]
    fn has_sustained_slow_time_scale_peaks() {
        // The paper: "sustained peak ... lasts over 10 s". Aggregate to
        // 1-second slots and look for runs >= 5 s above 2.5x the mean.
        let tr = gen(3, 171_000);
        let stats = TraceStats::compute(&tr);
        let run = stats.longest_sustained_peak(2.5);
        assert!(
            run >= 5.0,
            "longest sustained 2.5x-mean episode only {run:.1}s; trace lacks slow time scale"
        );
    }

    #[test]
    fn gop_structure_is_visible() {
        // The average I-frame must be much bigger than the average B-frame.
        let tr = gen(4, 24_000);
        let gop = 12;
        let mut i_sum = 0.0;
        let mut i_n = 0.0;
        let mut b_sum = 0.0;
        let mut b_n = 0.0;
        for (t, &b) in tr.frames().iter().enumerate() {
            match t % gop {
                0 => {
                    i_sum += b;
                    i_n += 1.0;
                }
                1 | 2 => {
                    b_sum += b;
                    b_n += 1.0;
                }
                _ => {}
            }
        }
        let ratio = (i_sum / i_n) / (b_sum / b_n);
        assert!(ratio > 3.0, "I/B ratio {ratio} too small for MPEG");
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_frames_rejected() {
        let src = SyntheticMpegSource::star_wars_like();
        let mut rng = SimRng::from_seed(0);
        src.generate(0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "GoP")]
    fn empty_gop_rejected() {
        let mut c = SyntheticMpegConfig::star_wars_like();
        c.gop.clear();
        SyntheticMpegSource::new(c);
    }
}
