//! On/off fluid sources.
//!
//! The classic two-state building block: the source emits at `peak_rate`
//! while *on* and is silent while *off*, with geometric sojourns. The
//! memoryless MBAC of Gibbens et al. (referenced in Section VI) was studied
//! for exactly these sources, and they make clean test inputs for the
//! equivalent-bandwidth machinery because their effective bandwidth has a
//! closed form.

use serde::{Deserialize, Serialize};

use crate::markov::{MarkovChain, MarkovModulatedSource};

/// A discrete-time on/off source.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnOffSource {
    /// Probability of turning on in a slot (off -> on).
    pub p_on: f64,
    /// Probability of turning off in a slot (on -> off).
    pub p_off: f64,
    /// Emission rate while on, bits/second.
    pub peak_rate: f64,
    /// Slot duration, seconds.
    pub slot: f64,
}

impl OnOffSource {
    /// Build a source.
    ///
    /// # Panics
    /// Panics unless probabilities are in `(0, 1]`, `peak_rate > 0`, and
    /// `slot > 0`.
    pub fn new(p_on: f64, p_off: f64, peak_rate: f64, slot: f64) -> Self {
        assert!(p_on > 0.0 && p_on <= 1.0, "p_on must be in (0,1]");
        assert!(p_off > 0.0 && p_off <= 1.0, "p_off must be in (0,1]");
        assert!(peak_rate > 0.0, "peak rate must be positive");
        assert!(slot > 0.0, "slot must be positive");
        Self {
            p_on,
            p_off,
            peak_rate,
            slot,
        }
    }

    /// Construct from mean burst/silence durations in seconds.
    pub fn from_durations(mean_on: f64, mean_off: f64, peak_rate: f64, slot: f64) -> Self {
        assert!(
            mean_on >= slot && mean_off >= slot,
            "durations must be at least one slot"
        );
        Self::new(slot / mean_off, slot / mean_on, peak_rate, slot)
    }

    /// Stationary probability of being on: `p_on / (p_on + p_off)`.
    pub fn on_probability(&self) -> f64 {
        self.p_on / (self.p_on + self.p_off)
    }

    /// Mean rate, bits/second.
    pub fn mean_rate(&self) -> f64 {
        self.on_probability() * self.peak_rate
    }

    /// As a two-state Markov-modulated source (state 0 = off, 1 = on).
    pub fn as_source(&self) -> MarkovModulatedSource {
        MarkovModulatedSource::new(
            MarkovChain::two_state(self.p_on, self.p_off),
            vec![0.0, self.peak_rate * self.slot],
            self.slot,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcbr_sim::SimRng;

    #[test]
    fn stationary_on_probability() {
        let s = OnOffSource::new(0.1, 0.3, 1000.0, 1.0);
        assert!((s.on_probability() - 0.25).abs() < 1e-12);
        assert!((s.mean_rate() - 250.0).abs() < 1e-12);
    }

    #[test]
    fn from_durations_roundtrips() {
        let s = OnOffSource::from_durations(2.0, 8.0, 1000.0, 0.5);
        // p_off = slot/mean_on = 0.25; p_on = slot/mean_off = 0.0625.
        assert!((s.p_off - 0.25).abs() < 1e-12);
        assert!((s.p_on - 0.0625).abs() < 1e-12);
        assert!((s.on_probability() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn as_source_matches_analytics() {
        let s = OnOffSource::new(0.2, 0.2, 2000.0, 0.5);
        let src = s.as_source();
        assert!((src.mean_rate() - s.mean_rate()).abs() < 1e-9);
        assert!((src.peak_rate() - s.peak_rate).abs() < 1e-9);
        let mut rng = SimRng::from_seed(5);
        let tr = src.generate(100_000, &mut rng);
        assert!((tr.mean_rate() - s.mean_rate()).abs() / s.mean_rate() < 0.03);
    }

    #[test]
    #[should_panic(expected = "p_on")]
    fn zero_p_on_rejected() {
        OnOffSource::new(0.0, 0.5, 1.0, 1.0);
    }
}
