//! Finite-state Markov chains and Markov-modulated traffic sources.
//!
//! Section V-A models a source as a discrete-time process `X_t = f(S_t)`
//! where `S_t` is an irreducible finite-state Markov chain and `f` maps each
//! state to the amount of data generated per slot. [`MarkovChain`] holds the
//! transition structure (with stationary-distribution computation used by
//! both the theory and the admission control), and
//! [`MarkovModulatedSource`] turns it into a slot-by-slot bit generator.

use rcbr_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::trace::FrameTrace;

/// Row-stochastic transition matrix of a finite Markov chain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovChain {
    p: Vec<Vec<f64>>,
}

impl MarkovChain {
    /// Build from a row-stochastic matrix.
    ///
    /// # Panics
    /// Panics if the matrix is empty or not square, if any entry is negative
    /// or non-finite, or if a row does not sum to 1 within `1e-9`.
    pub fn new(p: Vec<Vec<f64>>) -> Self {
        assert!(!p.is_empty(), "chain must have at least one state");
        let n = p.len();
        for (i, row) in p.iter().enumerate() {
            assert_eq!(row.len(), n, "transition matrix must be square");
            assert!(
                row.iter().all(|&x| x.is_finite() && x >= 0.0),
                "transition probabilities must be finite and nonnegative"
            );
            let sum: f64 = row.iter().sum();
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "row {i} sums to {sum}, expected 1"
            );
        }
        Self { p }
    }

    /// A two-state chain with `P(0->1) = p01` and `P(1->0) = p10`
    /// (the on/off building block).
    pub fn two_state(p01: f64, p10: f64) -> Self {
        Self::new(vec![vec![1.0 - p01, p01], vec![p10, 1.0 - p10]])
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.p.len()
    }

    /// Transition probability `P(i -> j)`.
    pub fn prob(&self, i: usize, j: usize) -> f64 {
        self.p[i][j]
    }

    /// The full matrix.
    pub fn matrix(&self) -> &[Vec<f64>] {
        &self.p
    }

    /// Stationary distribution `π` with `π P = π`, by power iteration.
    ///
    /// Converges for any irreducible aperiodic chain; a damping factor keeps
    /// periodic chains (which can arise from degenerate test inputs)
    /// convergent too, without changing the fixed point.
    pub fn stationary(&self) -> Vec<f64> {
        let n = self.num_states();
        let mut pi = vec![1.0 / n as f64; n];
        let mut next = vec![0.0; n];
        // Damped iteration: pi' = pi * (0.5 I + 0.5 P). Same fixed point,
        // aperiodic by construction.
        for _ in 0..100_000 {
            for x in next.iter_mut() {
                *x = 0.0;
            }
            for i in 0..n {
                let w = pi[i];
                if w == 0.0 {
                    continue;
                }
                next[i] += 0.5 * w;
                for (x, &pij) in next.iter_mut().zip(&self.p[i]) {
                    *x += 0.5 * w * pij;
                }
            }
            let diff: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut pi, &mut next);
            if diff < 1e-14 {
                break;
            }
        }
        // Normalize away accumulated round-off.
        let sum: f64 = pi.iter().sum();
        for x in pi.iter_mut() {
            *x /= sum;
        }
        pi
    }

    /// Sample the next state from state `i`.
    pub fn step(&self, i: usize, rng: &mut SimRng) -> usize {
        rng.discrete(&self.p[i])
    }
}

/// A Markov-modulated source: the chain's state in slot `t` determines the
/// bits generated during slot `t`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MarkovModulatedSource {
    chain: MarkovChain,
    /// Bits generated per slot in each state.
    bits_per_slot: Vec<f64>,
    /// Slot duration in seconds.
    slot: f64,
}

impl MarkovModulatedSource {
    /// Build a source.
    ///
    /// # Panics
    /// Panics if `bits_per_slot` length mismatches the chain, any value is
    /// negative/non-finite, or `slot <= 0`.
    pub fn new(chain: MarkovChain, bits_per_slot: Vec<f64>, slot: f64) -> Self {
        assert_eq!(
            bits_per_slot.len(),
            chain.num_states(),
            "one emission per chain state required"
        );
        assert!(
            bits_per_slot.iter().all(|&b| b.is_finite() && b >= 0.0),
            "emissions must be finite and nonnegative"
        );
        assert!(
            slot > 0.0 && slot.is_finite(),
            "slot duration must be positive"
        );
        Self {
            chain,
            bits_per_slot,
            slot,
        }
    }

    /// The modulating chain.
    pub fn chain(&self) -> &MarkovChain {
        &self.chain
    }

    /// Bits per slot emitted in state `i`.
    pub fn emission(&self, i: usize) -> f64 {
        self.bits_per_slot[i]
    }

    /// All emissions.
    pub fn emissions(&self) -> &[f64] {
        &self.bits_per_slot
    }

    /// Slot duration in seconds.
    pub fn slot(&self) -> f64 {
        self.slot
    }

    /// Rate in state `i`, bits/second.
    pub fn rate(&self, i: usize) -> f64 {
        self.bits_per_slot[i] / self.slot
    }

    /// Long-run mean rate `Σ π_i r_i` in bits/second.
    pub fn mean_rate(&self) -> f64 {
        let pi = self.chain.stationary();
        pi.iter()
            .zip(&self.bits_per_slot)
            .map(|(p, b)| p * b)
            .sum::<f64>()
            / self.slot
    }

    /// Peak rate in bits/second.
    pub fn peak_rate(&self) -> f64 {
        self.bits_per_slot.iter().fold(0.0f64, |m, &b| m.max(b)) / self.slot
    }

    /// Generate a trace of `n` slots, starting from a state drawn from the
    /// stationary distribution.
    pub fn generate(&self, n: usize, rng: &mut SimRng) -> FrameTrace {
        let pi = self.chain.stationary();
        let mut state = rng.discrete(&pi);
        let mut bits = Vec::with_capacity(n);
        for _ in 0..n {
            bits.push(self.bits_per_slot[state]);
            state = self.chain.step(state, rng);
        }
        FrameTrace::new(self.slot, bits)
    }

    /// Generate a trace of `n` slots together with the visited state
    /// sequence (used by tests validating time-scale separation).
    pub fn generate_with_states(&self, n: usize, rng: &mut SimRng) -> (FrameTrace, Vec<usize>) {
        let pi = self.chain.stationary();
        let mut state = rng.discrete(&pi);
        let mut bits = Vec::with_capacity(n);
        let mut states = Vec::with_capacity(n);
        for _ in 0..n {
            bits.push(self.bits_per_slot[state]);
            states.push(state);
            state = self.chain.step(state, rng);
        }
        (FrameTrace::new(self.slot, bits), states)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn two_state_stationary_matches_closed_form() {
        let c = MarkovChain::two_state(0.1, 0.3);
        let pi = c.stationary();
        // π = (p10, p01) / (p01 + p10)
        assert!((pi[0] - 0.75).abs() < 1e-9, "{pi:?}");
        assert!((pi[1] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn identity_chain_keeps_initial_distribution_fixed_points() {
        // Identity matrix: every distribution is stationary; power iteration
        // should return the uniform start unchanged.
        let c = MarkovChain::new(vec![vec![1.0, 0.0], vec![0.0, 1.0]]);
        let pi = c.stationary();
        assert!((pi[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn periodic_chain_converges_via_damping() {
        // Strictly alternating chain has period 2; stationary is (0.5, 0.5).
        let c = MarkovChain::new(vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        let pi = c.stationary();
        assert!((pi[0] - 0.5).abs() < 1e-9, "{pi:?}");
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn non_stochastic_row_rejected() {
        MarkovChain::new(vec![vec![0.5, 0.4], vec![0.5, 0.5]]);
    }

    #[test]
    fn source_mean_and_peak() {
        let c = MarkovChain::two_state(0.5, 0.5); // π = (0.5, 0.5)
        let s = MarkovModulatedSource::new(c, vec![0.0, 1000.0], 0.1);
        assert!((s.mean_rate() - 5000.0).abs() < 1e-6);
        assert_eq!(s.peak_rate(), 10_000.0);
        assert_eq!(s.rate(1), 10_000.0);
    }

    #[test]
    fn generated_trace_matches_long_run_mean() {
        let c = MarkovChain::two_state(0.2, 0.2);
        let s = MarkovModulatedSource::new(c, vec![100.0, 900.0], 1.0);
        let mut rng = SimRng::from_seed(11);
        let tr = s.generate(200_000, &mut rng);
        assert!(
            (tr.mean_rate() - s.mean_rate()).abs() / s.mean_rate() < 0.02,
            "trace mean {} vs model mean {}",
            tr.mean_rate(),
            s.mean_rate()
        );
    }

    #[test]
    fn generate_with_states_is_consistent() {
        let c = MarkovChain::two_state(0.3, 0.4);
        let s = MarkovModulatedSource::new(c, vec![10.0, 20.0], 1.0);
        let mut rng = SimRng::from_seed(3);
        let (tr, states) = s.generate_with_states(1000, &mut rng);
        for (b, &st) in tr.frames().iter().zip(&states) {
            assert_eq!(*b, s.emission(st));
        }
    }

    proptest! {
        #[test]
        fn stationary_is_a_fixed_point(
            rows in proptest::collection::vec(
                proptest::collection::vec(0.01..1.0f64, 4), 4),
        ) {
            // Normalize rows to be stochastic.
            let p: Vec<Vec<f64>> = rows
                .into_iter()
                .map(|r| {
                    let s: f64 = r.iter().sum();
                    r.into_iter().map(|x| x / s).collect()
                })
                .collect();
            let c = MarkovChain::new(p.clone());
            let pi = c.stationary();
            prop_assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            // Check π P = π.
            for j in 0..4 {
                let pj: f64 = (0..4).map(|i| pi[i] * p[i][j]).sum();
                prop_assert!((pj - pi[j]).abs() < 1e-7, "component {j}: {pj} vs {}", pi[j]);
            }
        }
    }
}
