//! Multi-time-scale trace statistics.
//!
//! Used to validate that synthetic traces have the structure the paper
//! describes (Section II): burstiness at the frame/GoP scale *and* sustained
//! near-peak episodes at the scene scale.

use rcbr_sim::stats::RunningStats;
use serde::{Deserialize, Serialize};

use crate::trace::FrameTrace;

/// Summary statistics of a trace across time scales.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceStats {
    /// Slot duration, seconds.
    pub frame_interval: f64,
    /// Number of frames.
    pub frames: usize,
    /// Long-term mean rate, bits/s.
    pub mean_rate: f64,
    /// Per-frame peak rate, bits/s.
    pub peak_rate: f64,
    /// Per-frame rate coefficient of variation.
    pub frame_cv: f64,
    /// Rate CV after aggregating to ~1-second slots.
    pub second_cv: f64,
    /// Rate CV after aggregating to ~10-second slots.
    pub ten_second_cv: f64,
    /// 1-second-aggregated rates, bits/s (kept for sustained-peak queries).
    second_rates: Vec<f64>,
}

impl TraceStats {
    /// Compute statistics for `trace`.
    pub fn compute(trace: &FrameTrace) -> Self {
        let mean_rate = trace.mean_rate();
        let frame_cv = rate_cv(trace, 1);
        let per_second = (trace.frame_rate().round() as usize).max(1);
        let second_cv = rate_cv(trace, per_second);
        let ten_second_cv = rate_cv(trace, per_second * 10);
        let second_rates = aggregated_rates(trace, per_second);
        Self {
            frame_interval: trace.frame_interval(),
            frames: trace.len(),
            mean_rate,
            peak_rate: trace.peak_rate(),
            frame_cv,
            second_cv,
            ten_second_cv,
            second_rates,
        }
    }

    /// Length in seconds of the longest run of 1-second slots whose rate
    /// stays above `threshold_x_mean` times the long-term mean — the
    /// paper's "sustained peak" measure.
    pub fn longest_sustained_peak(&self, threshold_x_mean: f64) -> f64 {
        let thresh = threshold_x_mean * self.mean_rate;
        let mut best = 0usize;
        let mut run = 0usize;
        for &r in &self.second_rates {
            if r > thresh {
                run += 1;
                best = best.max(run);
            } else {
                run = 0;
            }
        }
        best as f64
    }

    /// Fraction of 1-second slots whose rate exceeds `threshold_x_mean`
    /// times the mean.
    pub fn fraction_above(&self, threshold_x_mean: f64) -> f64 {
        if self.second_rates.is_empty() {
            return 0.0;
        }
        let thresh = threshold_x_mean * self.mean_rate;
        self.second_rates.iter().filter(|&&r| r > thresh).count() as f64
            / self.second_rates.len() as f64
    }

    /// Lag-`k` autocorrelation of the per-frame sizes — MPEG GoP structure
    /// shows up as strong positive correlation at multiples of the GoP
    /// length.
    pub fn frame_autocorrelation(trace: &FrameTrace, k: usize) -> f64 {
        let xs = trace.frames();
        if k >= xs.len() {
            return 0.0;
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        if var == 0.0 {
            return 0.0;
        }
        let cov: f64 = (0..n - k)
            .map(|i| (xs[i] - mean) * (xs[i + k] - mean))
            .sum::<f64>()
            / (n - k) as f64;
        cov / var
    }
}

/// Rates of the trace aggregated into `factor`-frame slots, bits/s.
fn aggregated_rates(trace: &FrameTrace, factor: usize) -> Vec<f64> {
    if trace.len() < factor.max(1) {
        return vec![trace.mean_rate()];
    }
    let agg = trace.aggregate(factor.max(1));
    (0..agg.len()).map(|t| agg.rate(t)).collect()
}

/// Coefficient of variation of the rate at the given aggregation level.
fn rate_cv(trace: &FrameTrace, factor: usize) -> f64 {
    let rates = aggregated_rates(trace, factor);
    let stats: RunningStats = rates.into_iter().collect();
    stats.cv()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_has_zero_variability() {
        let tr = FrameTrace::new(1.0 / 24.0, vec![100.0; 1000]);
        let s = TraceStats::compute(&tr);
        assert_eq!(s.frame_cv, 0.0);
        assert_eq!(s.second_cv, 0.0);
        assert_eq!(s.longest_sustained_peak(1.5), 0.0);
        assert_eq!(s.fraction_above(1.01), 0.0);
    }

    #[test]
    fn sustained_peak_is_detected() {
        // 24 fps; 100 bits/frame background with a 20-second episode at
        // 500 bits/frame.
        let mut bits = vec![100.0; 24 * 120];
        for b in bits.iter_mut().skip(24 * 50).take(24 * 20) {
            *b = 500.0;
        }
        let tr = FrameTrace::new(1.0 / 24.0, bits);
        let s = TraceStats::compute(&tr);
        // Mean ~ 166.7 bits/frame; the episode is ~3x the mean.
        let run = s.longest_sustained_peak(2.0);
        assert!((run - 20.0).abs() <= 1.0, "run {run}");
        let frac = s.fraction_above(2.0);
        assert!((frac - 20.0 / 120.0).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn aggregation_reduces_cv_for_alternating_traffic() {
        // Alternating 0/200 at frame scale has huge frame CV but zero
        // second-scale CV (every second contains the same mix).
        let bits: Vec<f64> = (0..24 * 60)
            .map(|i| if i % 2 == 0 { 0.0 } else { 200.0 })
            .collect();
        let tr = FrameTrace::new(1.0 / 24.0, bits);
        let s = TraceStats::compute(&tr);
        assert!(s.frame_cv > 0.9, "frame cv {}", s.frame_cv);
        assert!(s.second_cv < 0.01, "second cv {}", s.second_cv);
    }

    #[test]
    fn autocorrelation_sees_periodicity() {
        let bits: Vec<f64> = (0..1200)
            .map(|i| if i % 12 == 0 { 1000.0 } else { 100.0 })
            .collect();
        let tr = FrameTrace::new(1.0 / 24.0, bits);
        let at_gop = TraceStats::frame_autocorrelation(&tr, 12);
        let off_gop = TraceStats::frame_autocorrelation(&tr, 6);
        assert!(at_gop > 0.9, "GoP-lag autocorrelation {at_gop}");
        assert!(off_gop < 0.0, "off-lag autocorrelation {off_gop}");
    }

    #[test]
    fn autocorrelation_edge_cases() {
        let tr = FrameTrace::new(1.0, vec![1.0, 2.0]);
        assert_eq!(TraceStats::frame_autocorrelation(&tr, 5), 0.0);
        let flat = FrameTrace::new(1.0, vec![3.0; 10]);
        assert_eq!(TraceStats::frame_autocorrelation(&flat, 1), 0.0);
    }

    #[test]
    fn short_trace_aggregation_is_safe() {
        let tr = FrameTrace::new(1.0 / 24.0, vec![10.0; 5]);
        let s = TraceStats::compute(&tr);
        assert!((s.second_cv - 0.0).abs() < 1e-12);
        assert!((s.ten_second_cv - 0.0).abs() < 1e-12);
    }
}
