//! One-shot traffic descriptors: token (leaky) buckets.
//!
//! Section II argues that a *static* descriptor — a token bucket chosen once
//! at connection setup — cannot capture multiple-time-scale traffic without
//! giving up statistical multiplexing gain, loss, buffering, or protection.
//! This module provides that baseline machinery: conformance testing,
//! shaping, and the minimal bucket depth needed for a given token rate
//! (the trace's burstiness curve, which also generates Fig. 5's x-axis).

use serde::{Deserialize, Serialize};

use crate::trace::FrameTrace;

/// A token bucket with token rate `rate` (bits/s) and depth `depth` (bits).
///
/// Tokens accrue continuously at `rate` up to `depth`; sending `b` bits
/// requires `b` tokens.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenBucket {
    rate: f64,
    depth: f64,
    tokens: f64,
    last_time: f64,
}

impl TokenBucket {
    /// Create a bucket that starts full at time 0.
    ///
    /// # Panics
    /// Panics unless `rate > 0` and `depth >= 0`.
    pub fn new(rate: f64, depth: f64) -> Self {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "token rate must be positive"
        );
        assert!(
            depth >= 0.0 && depth.is_finite(),
            "bucket depth must be nonnegative"
        );
        Self {
            rate,
            depth,
            tokens: depth,
            last_time: 0.0,
        }
    }

    /// Token rate, bits/s.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Bucket depth, bits.
    pub fn depth(&self) -> f64 {
        self.depth
    }

    /// Tokens currently available (after accrual up to `time`).
    pub fn available(&mut self, time: f64) -> f64 {
        self.accrue(time);
        self.tokens
    }

    fn accrue(&mut self, time: f64) {
        assert!(
            time >= self.last_time - 1e-9,
            "time must not move backwards"
        );
        let time = time.max(self.last_time);
        self.tokens = (self.tokens + self.rate * (time - self.last_time)).min(self.depth);
        self.last_time = time;
    }

    /// Attempt to send `bits` at `time`. Returns `true` (and consumes
    /// tokens) iff the burst conforms.
    pub fn try_send(&mut self, time: f64, bits: f64) -> bool {
        assert!(bits >= 0.0, "bits must be nonnegative");
        self.accrue(time);
        if bits <= self.tokens + 1e-9 {
            self.tokens = (self.tokens - bits).max(0.0);
            true
        } else {
            false
        }
    }

    /// Check a whole trace for conformance: returns the number of
    /// non-conformant frames (frames are offered at their slot start
    /// times). Non-conformant frames do *not* consume tokens (policing
    /// semantics: the excess is dropped or tagged).
    pub fn police(&mut self, trace: &FrameTrace) -> usize {
        let mut violations = 0;
        for t in 0..trace.len() {
            let time = t as f64 * trace.frame_interval();
            if !self.try_send(time, trace.bits(t)) {
                violations += 1;
            }
        }
        violations
    }
}

/// The minimal bucket depth such that `trace` conforms to a bucket of the
/// given token `rate`: `max_t (A(t) - rate * t)` over cumulative arrivals
/// `A`. This is the classic burstiness curve σ(ρ); the paper's Fig. 5 is
/// the loss-tolerant version of it.
pub fn min_conforming_depth(trace: &FrameTrace, rate: f64) -> f64 {
    assert!(rate >= 0.0, "rate must be nonnegative");
    let dt = trace.frame_interval();
    let mut backlog: f64 = 0.0;
    let mut worst: f64 = 0.0;
    for t in 0..trace.len() {
        // Frame arrives at the start of the slot; tokens accrue over the
        // slot. The required depth is the peak instantaneous deficit.
        backlog += trace.bits(t);
        worst = worst.max(backlog);
        backlog = (backlog - rate * dt).max(0.0);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_accrues_and_caps() {
        let mut b = TokenBucket::new(100.0, 500.0);
        assert!(b.try_send(0.0, 500.0)); // full at start
        assert!(!b.try_send(1.0, 200.0)); // only 100 accrued
        assert!(b.try_send(5.0, 500.0)); // refilled (capped at depth)
        assert_eq!(b.available(5.0), 0.0);
    }

    #[test]
    fn conformant_trace_passes_policing() {
        // 10 frames of 50 bits at 1s spacing; rate 100 b/s, depth 50.
        let tr = FrameTrace::new(1.0, vec![50.0; 10]);
        let mut b = TokenBucket::new(100.0, 50.0);
        assert_eq!(b.police(&tr), 0);
    }

    #[test]
    fn bursty_trace_violates_small_bucket() {
        let tr = FrameTrace::new(1.0, vec![0.0, 0.0, 1000.0, 0.0]);
        let mut b = TokenBucket::new(10.0, 50.0);
        assert_eq!(b.police(&tr), 1);
    }

    #[test]
    fn min_depth_makes_trace_conform() {
        let tr = FrameTrace::new(0.5, vec![10.0, 500.0, 0.0, 300.0, 20.0]);
        let rate = 1.2 * tr.mean_rate();
        let depth = min_conforming_depth(&tr, rate);
        let mut b = TokenBucket::new(rate, depth);
        assert_eq!(b.police(&tr), 0, "depth {depth} should conform");
    }

    #[test]
    fn min_depth_at_peak_rate_is_one_frame() {
        let tr = FrameTrace::new(1.0, vec![100.0, 100.0, 100.0]);
        // Rate = peak rate: depth need only hold one frame burst.
        let d = min_conforming_depth(&tr, 100.0);
        assert!((d - 100.0).abs() < 1e-9);
    }

    proptest! {
        /// The computed minimal depth always polices cleanly, and any
        /// materially smaller depth does not (when the trace actually
        /// exceeds the token rate somewhere).
        #[test]
        fn min_depth_is_tight(
            bits in proptest::collection::vec(0.0..1e4f64, 2..60),
            rate_factor in 0.5..2.0f64,
        ) {
            let tr = FrameTrace::new(0.25, bits);
            prop_assume!(tr.total_bits() > 0.0);
            let rate = rate_factor * tr.mean_rate();
            prop_assume!(rate > 0.0);
            let depth = min_conforming_depth(&tr, rate);
            let mut ok = TokenBucket::new(rate, depth);
            prop_assert_eq!(ok.police(&tr), 0);
            if depth > 1.0 {
                let mut tight = TokenBucket::new(rate, depth * 0.99 - 0.5);
                prop_assert!(tight.police(&tr) > 0);
            }
        }
    }
}
