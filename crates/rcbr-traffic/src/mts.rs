//! The multiple-time-scale (MTS) Markov source model of Section V-A.
//!
//! The state space is a union of disjoint *subchains*. Dynamics within a
//! subchain model fast time-scale behaviour (correlations between adjacent
//! frames); transitions *between* subchains are rare — probability `ε_k` per
//! slot — and model the slow time scale (scene changes). The "sustained
//! peak" the paper observes corresponds to a long sojourn in a high-rate
//! subchain (Fig. 4).
//!
//! [`MtsModel`] exposes exactly the quantities the theory needs:
//!
//! * the flattened [`MarkovModulatedSource`] (for simulation),
//! * the per-subchain mean rates `m_k` and steady-state subchain
//!   probabilities `p_k` (for the Chernoff estimates (10)–(12)),
//! * per-subchain sources in isolation (for the equivalent-bandwidth
//!   maximum of eq. (9)).

use rcbr_sim::stats::DiscreteDistribution;
use serde::{Deserialize, Serialize};

use crate::markov::{MarkovChain, MarkovModulatedSource};

/// One fast-time-scale subchain: a Markov chain plus per-state emissions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Subchain {
    chain: MarkovChain,
    bits_per_slot: Vec<f64>,
}

impl Subchain {
    /// Build a subchain.
    ///
    /// # Panics
    /// Panics if emissions don't match the chain's state count or are
    /// negative/non-finite.
    pub fn new(chain: MarkovChain, bits_per_slot: Vec<f64>) -> Self {
        assert_eq!(
            bits_per_slot.len(),
            chain.num_states(),
            "one emission per state"
        );
        assert!(
            bits_per_slot.iter().all(|&b| b.is_finite() && b >= 0.0),
            "emissions must be finite and nonnegative"
        );
        Self {
            chain,
            bits_per_slot,
        }
    }

    /// A single-state subchain emitting a constant number of bits per slot.
    pub fn constant(bits_per_slot: f64) -> Self {
        Self::new(MarkovChain::new(vec![vec![1.0]]), vec![bits_per_slot])
    }

    /// The fast-dynamics chain.
    pub fn chain(&self) -> &MarkovChain {
        &self.chain
    }

    /// Emissions per state, bits per slot.
    pub fn emissions(&self) -> &[f64] {
        &self.bits_per_slot
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.chain.num_states()
    }

    /// Mean bits per slot under the subchain's own stationary distribution.
    pub fn mean_bits_per_slot(&self) -> f64 {
        self.chain
            .stationary()
            .iter()
            .zip(&self.bits_per_slot)
            .map(|(p, b)| p * b)
            .sum()
    }

    /// Peak bits per slot.
    pub fn peak_bits_per_slot(&self) -> f64 {
        self.bits_per_slot.iter().fold(0.0f64, |m, &b| m.max(b))
    }

    /// This subchain *in isolation* as a Markov-modulated source with the
    /// given slot duration — the object whose equivalent bandwidth appears
    /// in eq. (9).
    pub fn as_source(&self, slot: f64) -> MarkovModulatedSource {
        MarkovModulatedSource::new(self.chain.clone(), self.bits_per_slot.clone(), slot)
    }
}

/// A multiple-time-scale source: subchains plus rare inter-subchain jumps.
///
/// From subchain `k`, each slot jumps with probability `eps[k]` to subchain
/// `l ≠ k` chosen with probability `switch[k][l]`, entering `l` in its
/// stationary distribution; otherwise the fast chain of `k` takes one step.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MtsModel {
    subchains: Vec<Subchain>,
    switch: Vec<Vec<f64>>,
    eps: Vec<f64>,
    slot: f64,
}

impl MtsModel {
    /// Build an MTS model.
    ///
    /// # Panics
    /// Panics unless there are ≥ 2 subchains, `switch` is square with zero
    /// diagonal and rows summing to 1, `eps` values are in `(0, 1)`, and
    /// `slot > 0`.
    pub fn new(subchains: Vec<Subchain>, switch: Vec<Vec<f64>>, eps: Vec<f64>, slot: f64) -> Self {
        let k = subchains.len();
        assert!(k >= 2, "an MTS model needs at least two subchains");
        assert_eq!(
            switch.len(),
            k,
            "switch matrix must have one row per subchain"
        );
        assert_eq!(eps.len(), k, "one rare-transition probability per subchain");
        assert!(
            slot > 0.0 && slot.is_finite(),
            "slot duration must be positive"
        );
        for (i, row) in switch.iter().enumerate() {
            assert_eq!(row.len(), k, "switch matrix must be square");
            assert!(
                row[i] == 0.0,
                "switch matrix diagonal must be zero (row {i})"
            );
            assert!(
                row.iter().all(|&x| x.is_finite() && x >= 0.0),
                "switch probs invalid"
            );
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "switch row {i} sums to {s}");
        }
        assert!(
            eps.iter().all(|&e| e > 0.0 && e < 1.0),
            "rare-transition probabilities must lie in (0, 1)"
        );
        Self {
            subchains,
            switch,
            eps,
            slot,
        }
    }

    /// Convenience constructor: uniform switch probabilities and a common
    /// rare-transition probability `eps`.
    pub fn uniform_switching(subchains: Vec<Subchain>, eps: f64, slot: f64) -> Self {
        let k = subchains.len();
        assert!(k >= 2, "an MTS model needs at least two subchains");
        let mut switch = vec![vec![0.0; k]; k];
        for (i, row) in switch.iter_mut().enumerate() {
            for (j, x) in row.iter_mut().enumerate() {
                if i != j {
                    *x = 1.0 / (k - 1) as f64;
                }
            }
        }
        Self::new(subchains, switch, vec![eps; k], slot)
    }

    /// The subchains.
    pub fn subchains(&self) -> &[Subchain] {
        &self.subchains
    }

    /// Number of subchains.
    pub fn num_subchains(&self) -> usize {
        self.subchains.len()
    }

    /// Slot duration in seconds.
    pub fn slot(&self) -> f64 {
        self.slot
    }

    /// Rare-transition probability out of subchain `k`, per slot.
    pub fn eps(&self, k: usize) -> f64 {
        self.eps[k]
    }

    /// Mean sojourn time in subchain `k`, seconds (`slot / eps_k`).
    pub fn mean_sojourn(&self, k: usize) -> f64 {
        self.slot / self.eps[k]
    }

    /// Mean rate of subchain `k` in isolation, bits/second — the `m_k` of
    /// the slow-time-scale marginal.
    pub fn subchain_mean_rate(&self, k: usize) -> f64 {
        self.subchains[k].mean_bits_per_slot() / self.slot
    }

    /// Steady-state probability `p_k` of being in each subchain.
    ///
    /// The embedded subchain-level chain has transition probabilities
    /// `switch[k][l]`; sojourn times are geometric with mean `1/eps_k`
    /// slots, so `p_k ∝ ν_k / eps_k` with `ν` the embedded stationary
    /// distribution.
    pub fn subchain_probs(&self) -> Vec<f64> {
        let embedded = MarkovChain::new(self.switch.clone());
        let nu = embedded.stationary();
        let mut p: Vec<f64> = nu.iter().zip(&self.eps).map(|(n, e)| n / e).collect();
        let total: f64 = p.iter().sum();
        for x in p.iter_mut() {
            *x /= total;
        }
        p
    }

    /// The slow-time-scale marginal: a distribution over the subchain mean
    /// rates weighted by `p_k` — the random variable `R` of eq. (10), whose
    /// Chernoff estimate governs the shared-buffer loss probability.
    pub fn slow_scale_distribution(&self) -> DiscreteDistribution {
        let p = self.subchain_probs();
        let pairs: Vec<(f64, f64)> = (0..self.num_subchains())
            .map(|k| (self.subchain_mean_rate(k), p[k]))
            .collect();
        DiscreteDistribution::from_weights(&pairs)
    }

    /// Long-run mean rate of the whole source, bits/second.
    pub fn mean_rate(&self) -> f64 {
        let p = self.subchain_probs();
        (0..self.num_subchains())
            .map(|k| p[k] * self.subchain_mean_rate(k))
            .sum()
    }

    /// Peak rate across all states of all subchains, bits/second.
    pub fn peak_rate(&self) -> f64 {
        self.subchains
            .iter()
            .map(|s| s.peak_bits_per_slot())
            .fold(0.0f64, f64::max)
            / self.slot
    }

    /// Flatten into a single Markov-modulated source over the union state
    /// space (for simulation and for single-time-scale analyses applied to
    /// the whole source).
    pub fn flatten(&self) -> MarkovModulatedSource {
        let sizes: Vec<usize> = self.subchains.iter().map(|s| s.num_states()).collect();
        let offsets: Vec<usize> = sizes
            .iter()
            .scan(0usize, |acc, &s| {
                let o = *acc;
                *acc += s;
                Some(o)
            })
            .collect();
        let n: usize = sizes.iter().sum();
        let mut p = vec![vec![0.0; n]; n];
        let mut emissions = vec![0.0; n];
        let stationaries: Vec<Vec<f64>> = self
            .subchains
            .iter()
            .map(|s| s.chain().stationary())
            .collect();
        for (k, sub) in self.subchains.iter().enumerate() {
            let ok = offsets[k];
            let ek = self.eps[k];
            for i in 0..sub.num_states() {
                emissions[ok + i] = sub.emissions()[i];
                // Fast transitions within subchain k.
                for j in 0..sub.num_states() {
                    p[ok + i][ok + j] += (1.0 - ek) * sub.chain().prob(i, j);
                }
                // Rare transitions to subchain l, landing in l's stationary
                // distribution.
                for (l, &ql) in self.switch[k].iter().enumerate() {
                    if ql == 0.0 {
                        continue;
                    }
                    let ol = offsets[l];
                    for (j, &pj) in stationaries[l].iter().enumerate() {
                        p[ok + i][ol + j] += ek * ql * pj;
                    }
                }
            }
        }
        MarkovModulatedSource::new(MarkovChain::new(p), emissions, self.slot)
    }

    /// The three-subchain example of Fig. 4, scaled to a video-like source:
    /// a low-activity scene (on/off around 200 kb/s), a medium scene
    /// (on/off around 500 kb/s), and a high-action scene sustained near
    /// 1.5 Mb/s — with mean scene length `1/eps` slots.
    pub fn fig4_example(eps: f64, slot: f64) -> MtsModel {
        let kb = 1_000.0;
        // Subchain 1: low activity, alternating 100/300 kb/s.
        let low = Subchain::new(
            MarkovChain::two_state(0.3, 0.3),
            vec![100.0 * kb * slot, 300.0 * kb * slot],
        );
        // Subchain 2: medium activity, alternating 300/700 kb/s.
        let med = Subchain::new(
            MarkovChain::two_state(0.4, 0.4),
            vec![300.0 * kb * slot, 700.0 * kb * slot],
        );
        // Subchain 3: sustained high action, 1.2–1.8 Mb/s.
        let high = Subchain::new(
            MarkovChain::two_state(0.5, 0.5),
            vec![1200.0 * kb * slot, 1800.0 * kb * slot],
        );
        // Scene transitions: mostly between low and medium; high is rarer.
        let switch = vec![
            vec![0.0, 0.8, 0.2],
            vec![0.7, 0.0, 0.3],
            vec![0.5, 0.5, 0.0],
        ];
        MtsModel::new(vec![low, med, high], switch, vec![eps; 3], slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcbr_sim::SimRng;

    fn model(eps: f64) -> MtsModel {
        MtsModel::fig4_example(eps, 1.0 / 24.0)
    }

    #[test]
    fn subchain_probs_sum_to_one() {
        let m = model(1e-3);
        let p = m.subchain_probs();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn uniform_eps_probs_match_embedded_stationary() {
        let m = model(1e-3);
        let embedded = MarkovChain::new(vec![
            vec![0.0, 0.8, 0.2],
            vec![0.7, 0.0, 0.3],
            vec![0.5, 0.5, 0.0],
        ]);
        let nu = embedded.stationary();
        let p = m.subchain_probs();
        for (a, b) in nu.iter().zip(&p) {
            assert!((a - b).abs() < 1e-9, "{nu:?} vs {p:?}");
        }
    }

    #[test]
    fn heterogeneous_eps_weights_by_sojourn() {
        let a = Subchain::constant(100.0);
        let b = Subchain::constant(200.0);
        let switch = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        // Subchain 0 sojourns 10x longer.
        let m = MtsModel::new(vec![a, b], switch, vec![0.001, 0.01], 1.0);
        let p = m.subchain_probs();
        assert!((p[0] - 10.0 / 11.0).abs() < 1e-9, "{p:?}");
    }

    #[test]
    fn mean_rate_mixes_subchain_means() {
        let m = model(1e-3);
        let p = m.subchain_probs();
        let expect: f64 = (0..3).map(|k| p[k] * m.subchain_mean_rate(k)).sum();
        assert!((m.mean_rate() - expect).abs() < 1e-9);
        // Subchain means: 200, 500, 1500 kb/s.
        assert!((m.subchain_mean_rate(0) - 200_000.0).abs() < 1e-6);
        assert!((m.subchain_mean_rate(1) - 500_000.0).abs() < 1e-6);
        assert!((m.subchain_mean_rate(2) - 1_500_000.0).abs() < 1e-6);
    }

    #[test]
    fn flattened_source_preserves_mean_rate() {
        let m = model(1e-2);
        let flat = m.flatten();
        assert!(
            (flat.mean_rate() - m.mean_rate()).abs() / m.mean_rate() < 1e-6,
            "flat {} vs model {}",
            flat.mean_rate(),
            m.mean_rate()
        );
        assert_eq!(flat.chain().num_states(), 6);
        assert!((flat.peak_rate() - m.peak_rate()).abs() < 1e-6);
    }

    #[test]
    fn slow_scale_distribution_is_consistent() {
        let m = model(1e-3);
        let d = m.slow_scale_distribution();
        assert_eq!(d.len(), 3);
        assert!((d.mean() - m.mean_rate()).abs() < 1e-6);
        assert!((d.peak() - 1_500_000.0).abs() < 1e-6);
    }

    #[test]
    fn sojourns_scale_with_eps() {
        let m = model(1e-4);
        assert!((m.mean_sojourn(0) - (1.0 / 24.0) / 1e-4).abs() < 1e-9);
    }

    #[test]
    fn simulated_subchain_occupancy_matches_probs() {
        // With small eps the flattened source should spend ~p_k of its time
        // at subchain k's emission levels.
        let m = model(5e-3);
        let flat = m.flatten();
        let mut rng = SimRng::from_seed(99);
        let (tr, _) = flat.generate_with_states(400_000, &mut rng);
        // Classify each slot by its emission level: low subchain emits
        // <= 300 kb/s * slot, high subchain >= 1200 kb/s * slot.
        let slot = m.slot();
        let high_frac = tr
            .frames()
            .iter()
            .filter(|&&b| b >= 1200.0 * 1000.0 * slot - 1.0)
            .count() as f64
            / tr.len() as f64;
        let p = m.subchain_probs();
        assert!(
            (high_frac - p[2]).abs() < 0.05,
            "high occupancy {high_frac} vs p2 {}",
            p[2]
        );
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn nonzero_switch_diagonal_rejected() {
        let a = Subchain::constant(1.0);
        let b = Subchain::constant(2.0);
        MtsModel::new(
            vec![a, b],
            vec![vec![0.5, 0.5], vec![1.0, 0.0]],
            vec![0.01, 0.01],
            1.0,
        );
    }
}
