//! Frame traces: per-frame bit counts at a fixed frame interval.
//!
//! This is the workload representation the paper's experiments consume. The
//! natural time slot is one frame (Section IV-A: "for video, a time slot
//! would typically be the duration of a frame"), so every slotted algorithm
//! in the workspace — the trellis optimizer, the fluid-queue scenarios —
//! indexes a [`FrameTrace`] by slot.

use serde::{Deserialize, Serialize};

/// A video (or other slotted) traffic trace: `frame_bits[t]` bits arrive
/// during slot `t`, each slot lasting `frame_interval` seconds.
///
/// ```
/// use rcbr_traffic::FrameTrace;
///
/// let trace = FrameTrace::new(0.5, vec![100.0, 300.0]);
/// assert_eq!(trace.mean_rate(), 400.0);       // 400 bits over 1 second
/// assert_eq!(trace.peak_rate(), 600.0);       // 300 bits in half a second
/// assert_eq!(trace.shifted(1).frames(), &[300.0, 100.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrameTrace {
    frame_interval: f64,
    frame_bits: Vec<f64>,
}

impl FrameTrace {
    /// Build a trace from per-frame bit counts.
    ///
    /// # Panics
    /// Panics if `frame_interval <= 0`, if the trace is empty, or if any
    /// frame size is negative or non-finite.
    pub fn new(frame_interval: f64, frame_bits: Vec<f64>) -> Self {
        assert!(
            frame_interval > 0.0 && frame_interval.is_finite(),
            "frame interval must be positive and finite"
        );
        assert!(
            !frame_bits.is_empty(),
            "trace must contain at least one frame"
        );
        assert!(
            frame_bits.iter().all(|b| b.is_finite() && *b >= 0.0),
            "frame sizes must be finite and nonnegative"
        );
        Self {
            frame_interval,
            frame_bits,
        }
    }

    /// Slot duration in seconds.
    pub fn frame_interval(&self) -> f64 {
        self.frame_interval
    }

    /// Frames per second.
    pub fn frame_rate(&self) -> f64 {
        1.0 / self.frame_interval
    }

    /// Number of frames (slots).
    pub fn len(&self) -> usize {
        self.frame_bits.len()
    }

    /// Always `false` (construction rejects empty traces); provided for
    /// clippy-idiomatic pairing with [`len`](Self::len).
    pub fn is_empty(&self) -> bool {
        self.frame_bits.is_empty()
    }

    /// Total duration in seconds.
    pub fn duration(&self) -> f64 {
        self.len() as f64 * self.frame_interval
    }

    /// Bits in frame `t`.
    pub fn bits(&self, t: usize) -> f64 {
        self.frame_bits[t]
    }

    /// All frame sizes.
    pub fn frames(&self) -> &[f64] {
        &self.frame_bits
    }

    /// Total bits in the trace.
    pub fn total_bits(&self) -> f64 {
        self.frame_bits.iter().sum()
    }

    /// Long-term average rate in bits/second.
    pub fn mean_rate(&self) -> f64 {
        self.total_bits() / self.duration()
    }

    /// Instantaneous rate of slot `t` in bits/second.
    pub fn rate(&self, t: usize) -> f64 {
        self.frame_bits[t] / self.frame_interval
    }

    /// Largest single-slot rate in bits/second.
    pub fn peak_rate(&self) -> f64 {
        self.frame_bits.iter().fold(0.0f64, |m, &b| m.max(b)) / self.frame_interval
    }

    /// Circularly shift the trace by `offset` frames (the paper's "randomly
    /// shifted versions of this trace" used to build multiplexed source
    /// populations).
    pub fn shifted(&self, offset: usize) -> FrameTrace {
        let n = self.len();
        let k = offset % n;
        let mut bits = Vec::with_capacity(n);
        bits.extend_from_slice(&self.frame_bits[k..]);
        bits.extend_from_slice(&self.frame_bits[..k]);
        FrameTrace {
            frame_interval: self.frame_interval,
            frame_bits: bits,
        }
    }

    /// Bits of frame `t` of the trace circularly shifted by `offset`,
    /// without materializing the shifted copy. Equivalent to
    /// `self.shifted(offset).bits(t)`.
    pub fn bits_shifted(&self, offset: usize, t: usize) -> f64 {
        let n = self.len();
        self.frame_bits[(t + offset % n) % n]
    }

    /// A sub-trace of frames `[start, start + len)`.
    ///
    /// # Panics
    /// Panics if the range exceeds the trace.
    pub fn window(&self, start: usize, len: usize) -> FrameTrace {
        assert!(start + len <= self.len(), "window out of range");
        assert!(len > 0, "window must be nonempty");
        FrameTrace {
            frame_interval: self.frame_interval,
            frame_bits: self.frame_bits[start..start + len].to_vec(),
        }
    }

    /// Aggregate consecutive frames into coarser slots of `factor` frames
    /// (summing bits). A trailing partial slot is dropped. Used by the
    /// trellis optimizer to trade resolution for speed, and by the
    /// multi-time-scale statistics.
    ///
    /// # Panics
    /// Panics if `factor == 0` or the trace is shorter than one full slot.
    pub fn aggregate(&self, factor: usize) -> FrameTrace {
        assert!(factor > 0, "aggregation factor must be positive");
        let n = self.len() / factor;
        assert!(n > 0, "trace shorter than one aggregated slot");
        let bits = (0..n)
            .map(|i| self.frame_bits[i * factor..(i + 1) * factor].iter().sum())
            .collect();
        FrameTrace {
            frame_interval: self.frame_interval * factor as f64,
            frame_bits: bits,
        }
    }

    /// Cumulative arrivals: `A[t] =` bits in frames `0..t` (so `A[0] = 0`
    /// and `A[len] =` total). Length `len + 1`.
    pub fn cumulative(&self) -> Vec<f64> {
        let mut cum = Vec::with_capacity(self.len() + 1);
        let mut acc = 0.0;
        cum.push(0.0);
        for &b in &self.frame_bits {
            acc += b;
            cum.push(acc);
        }
        cum
    }

    /// Concatenate `self` repeated `times` times (for building long
    /// workloads out of a base trace).
    pub fn repeat(&self, times: usize) -> FrameTrace {
        assert!(times > 0, "repeat count must be positive");
        let mut bits = Vec::with_capacity(self.len() * times);
        for _ in 0..times {
            bits.extend_from_slice(&self.frame_bits);
        }
        FrameTrace {
            frame_interval: self.frame_interval,
            frame_bits: bits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn t(bits: &[f64]) -> FrameTrace {
        FrameTrace::new(0.5, bits.to_vec())
    }

    #[test]
    fn basic_rates() {
        let tr = t(&[100.0, 300.0]);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.duration(), 1.0);
        assert_eq!(tr.total_bits(), 400.0);
        assert_eq!(tr.mean_rate(), 400.0);
        assert_eq!(tr.rate(0), 200.0);
        assert_eq!(tr.peak_rate(), 600.0);
        assert_eq!(tr.frame_rate(), 2.0);
    }

    #[test]
    fn shift_is_circular() {
        let tr = t(&[1.0, 2.0, 3.0, 4.0]);
        let s = tr.shifted(1);
        assert_eq!(s.frames(), &[2.0, 3.0, 4.0, 1.0]);
        let s = tr.shifted(4);
        assert_eq!(s.frames(), tr.frames());
        let s = tr.shifted(6);
        assert_eq!(s.frames(), &[3.0, 4.0, 1.0, 2.0]);
    }

    #[test]
    fn bits_shifted_matches_materialized_shift() {
        let tr = t(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        for off in 0..12 {
            let s = tr.shifted(off);
            for i in 0..tr.len() {
                assert_eq!(tr.bits_shifted(off, i), s.bits(i), "off={off} i={i}");
            }
        }
    }

    #[test]
    fn window_and_repeat() {
        let tr = t(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(tr.window(1, 2).frames(), &[2.0, 3.0]);
        assert_eq!(
            tr.repeat(2).frames(),
            &[1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn aggregate_sums_and_rescales() {
        let tr = t(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let a = tr.aggregate(2);
        assert_eq!(a.frames(), &[3.0, 7.0]);
        assert_eq!(a.frame_interval(), 1.0);
        // Mean rate is preserved up to the dropped tail.
        let full = t(&[1.0, 2.0, 3.0, 4.0]);
        assert!((full.aggregate(2).mean_rate() - full.mean_rate()).abs() < 1e-12);
    }

    #[test]
    fn cumulative_arrivals() {
        let tr = t(&[1.0, 2.0, 3.0]);
        assert_eq!(tr.cumulative(), vec![0.0, 1.0, 3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn empty_trace_rejected() {
        FrameTrace::new(1.0, vec![]);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_frame_rejected() {
        FrameTrace::new(1.0, vec![1.0, -2.0]);
    }

    proptest! {
        #[test]
        fn shift_preserves_totals(
            bits in proptest::collection::vec(0.0..1e6f64, 1..100),
            off in 0usize..500,
        ) {
            let tr = FrameTrace::new(1.0 / 24.0, bits);
            let s = tr.shifted(off);
            prop_assert!((s.total_bits() - tr.total_bits()).abs() < 1e-6);
            prop_assert_eq!(s.len(), tr.len());
        }

        #[test]
        fn aggregate_preserves_counted_bits(
            bits in proptest::collection::vec(0.0..1e6f64, 4..100),
            factor in 1usize..8,
        ) {
            let tr = FrameTrace::new(1.0, bits);
            prop_assume!(tr.len() >= factor);
            let a = tr.aggregate(factor);
            let counted = a.len() * factor;
            let expect: f64 = tr.frames()[..counted].iter().sum();
            prop_assert!((a.total_bits() - expect).abs() < 1e-6);
        }
    }
}
