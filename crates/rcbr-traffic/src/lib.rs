#![warn(missing_docs)]

//! # rcbr-traffic — traffic models for the RCBR reproduction
//!
//! The paper's evaluation rests on two kinds of workload, and this crate
//! provides both:
//!
//! * **Frame traces** ([`trace::FrameTrace`]) — sequences of per-frame bit
//!   counts at a fixed frame interval, the representation of the MPEG-1
//!   *Star Wars* trace the paper uses. Since the original trace is
//!   proprietary, [`mpeg::SyntheticMpegSource`] generates statistically
//!   equivalent traces: an I/B/P GoP structure provides the fast
//!   (intra-scene) time scale and a heavy-tailed scene process provides the
//!   slow time scale, calibrated to the paper's reported statistics (mean
//!   374 kb/s, sustained peaks of 4–5x the mean lasting 10–30 s).
//! * **Markov-modulated models** ([`markov`], [`mts`], [`onoff`]) — the
//!   analytical source models of Section V-A, including the
//!   multiple-time-scale subchain construction of Fig. 4 whose equivalent
//!   bandwidth the theory predicts.
//!
//! [`shaping`] adds the leaky/token-bucket machinery of the Section II
//! discussion (the "one-shot traffic descriptor" RCBR replaces), and
//! [`stats`] computes the multi-time-scale statistics used to validate that
//! the synthetic traces look like the paper's.

pub mod fit;
pub mod interactive;
pub mod io;
pub mod markov;
pub mod mpeg;
pub mod mts;
pub mod onoff;
pub mod shaping;
pub mod stats;
pub mod trace;

pub use fit::{fit_mts, MtsFit, MtsFitConfig};
pub use interactive::{interactive_session, InteractiveConfig, InteractiveSession, VcrState};
pub use markov::{MarkovChain, MarkovModulatedSource};
pub use mpeg::{SyntheticMpegConfig, SyntheticMpegSource};
pub use mts::{MtsModel, Subchain};
pub use onoff::OnOffSource;
pub use shaping::TokenBucket;
pub use stats::TraceStats;
pub use trace::FrameTrace;
