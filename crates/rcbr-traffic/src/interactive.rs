//! Interactive (VCR) viewing behavior over stored video.
//!
//! Section VI's reason why a-priori descriptors go stale: "Even for stored
//! video, where the empirical bandwidth distribution could be computed in
//! advance, user interactivity (fast forward, pause, etc.) reduces the
//! accuracy of this descriptor." This module models a viewer as a Markov
//! process over `Play` / `Pause` / `FastForward` and rewrites a stored
//! trace into the traffic the network *actually* sees, so admission
//! experiments can quantify the descriptor drift that motivates
//! measurement-based admission control.

use rcbr_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::trace::FrameTrace;

/// Viewer states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VcrState {
    /// Normal playback: frames stream at their encoded sizes.
    Play,
    /// Paused: nothing streams, the playout position freezes.
    Pause,
    /// Fast forward: the position advances `ff_speed` frames per slot but
    /// only a subsampled, reduced-size stream is sent.
    FastForward,
}

/// Configuration of the viewer process.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct InteractiveConfig {
    /// Mean playback episode, seconds.
    pub mean_play: f64,
    /// Mean pause, seconds.
    pub mean_pause: f64,
    /// Mean fast-forward episode, seconds.
    pub mean_ff: f64,
    /// Probability that a non-play episode is a pause (vs. fast forward).
    pub pause_bias: f64,
    /// Position advance per slot while fast-forwarding (frames).
    pub ff_speed: usize,
    /// Fraction of the skipped frames' bits actually sent during fast
    /// forward (an FF stream is subsampled, typically to I frames).
    pub ff_bit_fraction: f64,
}

impl Default for InteractiveConfig {
    fn default() -> Self {
        Self {
            mean_play: 120.0,
            mean_pause: 8.0,
            mean_ff: 6.0,
            pause_bias: 0.6,
            ff_speed: 8,
            ff_bit_fraction: 0.25,
        }
    }
}

impl InteractiveConfig {
    fn validate(&self) {
        assert!(
            self.mean_play > 0.0 && self.mean_pause > 0.0 && self.mean_ff > 0.0,
            "episode means must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&self.pause_bias),
            "pause bias must be in [0, 1]"
        );
        assert!(self.ff_speed >= 2, "fast forward must be faster than play");
        assert!(
            (0.0..=1.0).contains(&self.ff_bit_fraction),
            "FF bit fraction must be in [0, 1]"
        );
    }
}

/// The result of an interactive session.
#[derive(Debug, Clone)]
pub struct InteractiveSession {
    /// What the network carried, slot by slot.
    pub trace: FrameTrace,
    /// Viewer state in each slot.
    pub states: Vec<VcrState>,
    /// Fraction of slots spent in each of play/pause/ff.
    pub time_shares: [f64; 3],
}

/// Play `movie` through an interactive viewer for `session_frames` slots.
/// The playout position wraps at the end of the movie (continuous-loop
/// semantics keep session length independent of viewing speed).
///
/// # Panics
/// Panics on an invalid config or `session_frames == 0`.
pub fn interactive_session(
    movie: &FrameTrace,
    config: InteractiveConfig,
    session_frames: usize,
    rng: &mut SimRng,
) -> InteractiveSession {
    config.validate();
    assert!(session_frames > 0, "session must be at least one slot");
    let tau = movie.frame_interval();
    let fps = 1.0 / tau;
    let mut bits = Vec::with_capacity(session_frames);
    let mut states = Vec::with_capacity(session_frames);
    let mut counts = [0usize; 3];

    let mut pos = 0usize;
    let mut state = VcrState::Play;
    let mut remaining = (rng.exponential(1.0 / config.mean_play) * fps)
        .ceil()
        .max(1.0) as usize;

    for _ in 0..session_frames {
        match state {
            VcrState::Play => {
                bits.push(movie.bits(pos % movie.len()));
                pos += 1;
                counts[0] += 1;
            }
            VcrState::Pause => {
                bits.push(0.0);
                counts[1] += 1;
            }
            VcrState::FastForward => {
                // The bits of the skipped stretch, subsampled.
                let mut chunk = 0.0;
                for k in 0..config.ff_speed {
                    chunk += movie.bits((pos + k) % movie.len());
                }
                bits.push(chunk * config.ff_bit_fraction);
                pos += config.ff_speed;
                counts[2] += 1;
            }
        }
        states.push(state);
        remaining -= 1;
        if remaining == 0 {
            let (next, mean) = match state {
                VcrState::Play => {
                    if rng.chance(config.pause_bias) {
                        (VcrState::Pause, config.mean_pause)
                    } else {
                        (VcrState::FastForward, config.mean_ff)
                    }
                }
                _ => (VcrState::Play, config.mean_play),
            };
            state = next;
            remaining = (rng.exponential(1.0 / mean) * fps).ceil().max(1.0) as usize;
        }
    }

    let n = session_frames as f64;
    InteractiveSession {
        trace: FrameTrace::new(tau, bits),
        states,
        time_shares: [
            counts[0] as f64 / n,
            counts[1] as f64 / n,
            counts[2] as f64 / n,
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mpeg::SyntheticMpegSource;

    fn movie(frames: usize) -> FrameTrace {
        let mut rng = SimRng::from_seed(77);
        SyntheticMpegSource::star_wars_like().generate(frames, &mut rng)
    }

    #[test]
    fn session_has_all_three_behaviors() {
        let m = movie(24_000);
        let mut rng = SimRng::from_seed(1);
        let s = interactive_session(&m, InteractiveConfig::default(), 48_000, &mut rng);
        assert_eq!(s.trace.len(), 48_000);
        assert!(
            s.time_shares[0] > 0.5,
            "mostly playing: {:?}",
            s.time_shares
        );
        assert!(s.time_shares[1] > 0.0, "some pausing");
        assert!(s.time_shares[2] > 0.0, "some fast forward");
        assert!((s.time_shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pauses_are_silent_and_ff_is_loud() {
        let m = movie(24_000);
        let mut rng = SimRng::from_seed(2);
        let cfg = InteractiveConfig::default();
        let s = interactive_session(&m, cfg, 48_000, &mut rng);
        let mut ff_rate = 0.0;
        let mut ff_n = 0.0;
        for (b, st) in s.trace.frames().iter().zip(&s.states) {
            match st {
                VcrState::Pause => assert_eq!(*b, 0.0),
                VcrState::FastForward => {
                    ff_rate += *b;
                    ff_n += 1.0;
                }
                VcrState::Play => {}
            }
        }
        // FF sends a subsampled chunk of 8 frames at 25%: about 2x the
        // per-frame mean.
        let mean_frame = m.total_bits() / m.len() as f64;
        let ff_mean = ff_rate / ff_n;
        assert!(
            ff_mean > 1.2 * mean_frame,
            "FF should be louder than play on average: {ff_mean} vs {mean_frame}"
        );
    }

    #[test]
    fn interactivity_degrades_the_a_priori_descriptor() {
        // The Section VI point: the session's bandwidth statistics differ
        // from the pristine movie's, so a descriptor computed in advance
        // is wrong.
        let m = movie(24_000);
        let mut rng = SimRng::from_seed(3);
        let cfg = InteractiveConfig {
            mean_play: 30.0,
            mean_pause: 15.0,
            ..InteractiveConfig::default()
        };
        let s = interactive_session(&m, cfg, 96_000, &mut rng);
        let drift = (s.trace.mean_rate() - m.mean_rate()).abs() / m.mean_rate();
        assert!(
            drift > 0.05,
            "heavy interactivity must shift the mean rate: drift {drift:.3}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let m = movie(2400);
        let mut r1 = SimRng::from_seed(9);
        let mut r2 = SimRng::from_seed(9);
        let a = interactive_session(&m, InteractiveConfig::default(), 4800, &mut r1);
        let b = interactive_session(&m, InteractiveConfig::default(), 4800, &mut r2);
        assert_eq!(a.trace.frames(), b.trace.frames());
        assert_eq!(a.states, b.states);
    }

    #[test]
    #[should_panic(expected = "faster than play")]
    fn slow_ff_rejected() {
        let m = movie(240);
        let mut rng = SimRng::from_seed(0);
        let cfg = InteractiveConfig {
            ff_speed: 1,
            ..InteractiveConfig::default()
        };
        interactive_session(&m, cfg, 100, &mut rng);
    }
}
