//! Trace persistence.
//!
//! Two formats:
//!
//! * **JSON** — the full [`FrameTrace`] via serde, self-describing.
//! * **Plain text** — one frame size (bits) per line, the format the
//!   original research traces (including Garrett's *Star Wars* trace) were
//!   distributed in; the frame interval is supplied out of band. If you
//!   have access to a real trace in this format it can be dropped straight
//!   into every experiment in this workspace.

use std::fs;
use std::io::{self, BufRead, BufReader, Write};
use std::path::Path;

use crate::trace::FrameTrace;

/// Errors arising while loading a trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// JSON (de)serialization failure.
    Json(serde_json::Error),
    /// A text line failed to parse as a nonnegative number.
    Parse {
        /// 1-based line number in the file.
        line: usize,
        /// The offending line's trimmed content.
        content: String,
    },
    /// The file contained no frames.
    Empty,
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Json(e) => write!(f, "trace JSON error: {e}"),
            TraceIoError::Parse { line, content } => {
                write!(f, "trace parse error at line {line}: {content:?}")
            }
            TraceIoError::Empty => write!(f, "trace file contains no frames"),
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<serde_json::Error> for TraceIoError {
    fn from(e: serde_json::Error) -> Self {
        TraceIoError::Json(e)
    }
}

/// Save a trace as JSON.
pub fn save_json(trace: &FrameTrace, path: &Path) -> Result<(), TraceIoError> {
    let json = serde_json::to_string(trace)?;
    fs::write(path, json)?;
    Ok(())
}

/// Load a trace from JSON.
pub fn load_json(path: &Path) -> Result<FrameTrace, TraceIoError> {
    let data = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&data)?)
}

/// Save a trace as one frame size (bits) per line.
pub fn save_text(trace: &FrameTrace, path: &Path) -> Result<(), TraceIoError> {
    let mut out = fs::File::create(path)?;
    for &b in trace.frames() {
        writeln!(out, "{b}")?;
    }
    Ok(())
}

/// Load a one-frame-size-per-line text trace. Blank lines and lines
/// starting with `#` are skipped; each remaining line must parse as a
/// nonnegative number of bits.
pub fn load_text(path: &Path, frame_interval: f64) -> Result<FrameTrace, TraceIoError> {
    let file = fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut bits = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match trimmed.parse::<f64>() {
            Ok(v) if v.is_finite() && v >= 0.0 => bits.push(v),
            _ => {
                return Err(TraceIoError::Parse {
                    line: i + 1,
                    content: trimmed.to_string(),
                })
            }
        }
    }
    if bits.is_empty() {
        return Err(TraceIoError::Empty);
    }
    Ok(FrameTrace::new(frame_interval, bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rcbr-traffic-io-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn json_roundtrip() {
        let tr = FrameTrace::new(1.0 / 24.0, vec![1.0, 2.5, 3.75]);
        let p = tmp("roundtrip.json");
        save_json(&tr, &p).unwrap();
        let back = load_json(&p).unwrap();
        assert_eq!(tr, back);
    }

    #[test]
    fn text_roundtrip() {
        let tr = FrameTrace::new(0.04, vec![100.0, 0.0, 250.5]);
        let p = tmp("roundtrip.txt");
        save_text(&tr, &p).unwrap();
        let back = load_text(&p, 0.04).unwrap();
        assert_eq!(tr, back);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let p = tmp("comments.txt");
        fs::write(&p, "# header\n100\n\n  200  \n# trailer\n").unwrap();
        let tr = load_text(&p, 1.0).unwrap();
        assert_eq!(tr.frames(), &[100.0, 200.0]);
    }

    #[test]
    fn text_reports_parse_errors_with_line_numbers() {
        let p = tmp("bad.txt");
        fs::write(&p, "100\nnot-a-number\n").unwrap();
        match load_text(&p, 1.0) {
            Err(TraceIoError::Parse { line, content }) => {
                assert_eq!(line, 2);
                assert_eq!(content, "not-a-number");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn negative_values_are_rejected() {
        let p = tmp("neg.txt");
        fs::write(&p, "-5\n").unwrap();
        assert!(matches!(
            load_text(&p, 1.0),
            Err(TraceIoError::Parse { .. })
        ));
    }

    #[test]
    fn empty_file_is_an_error() {
        let p = tmp("empty.txt");
        fs::write(&p, "# only a comment\n").unwrap();
        assert!(matches!(load_text(&p, 1.0), Err(TraceIoError::Empty)));
    }

    #[test]
    fn missing_file_is_io_error() {
        let p = tmp("does-not-exist.json");
        let _ = fs::remove_file(&p);
        assert!(matches!(load_json(&p), Err(TraceIoError::Io(_))));
    }
}
