#![warn(missing_docs)]

//! # serde (offline stand-in)
//!
//! The build container for this repository has no network access and no
//! cargo registry cache, so the real `serde` crate cannot be fetched. This
//! crate is a deliberately small, in-tree replacement providing exactly the
//! surface the workspace uses:
//!
//! * `#[derive(Serialize, Deserialize)]` on non-generic structs with named
//!   fields and on enums with unit, tuple, and struct variants (via the
//!   sibling `serde_derive` proc-macro crate, which parses token streams by
//!   hand — no `syn`/`quote`);
//! * a self-describing [`Value`] data model that `serde_json` (also
//!   in-tree) renders to and parses from JSON text.
//!
//! It is **not** API-compatible with the real serde beyond that surface —
//! there is no `Serializer`/`Deserializer` pair, no borrowed
//! deserialization, and no `#[serde(...)]` attributes. If a future change
//! needs more, extend this crate rather than adding a registry dependency.

use std::collections::HashMap;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree of JSON-compatible data.
///
/// Numbers keep their integer-ness where possible so that `u64` counters
/// round-trip exactly; non-finite floats are preserved via the
/// `Infinity`/`-Infinity`/`NaN` literals (the same convention Python's
/// `json` module uses).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true`/`false`.
    Bool(bool),
    /// A negative integer (or any value serialized from a signed type).
    Int(i64),
    /// A nonnegative integer serialized from an unsigned type.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion-ordered (maps are sorted by key on serialize so
    /// output is deterministic).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object, if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of an array, if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Look up an object field by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Error produced when a [`Value`] does not match the requested shape.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a free-form message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// An error noting what was expected.
    pub fn expected(what: &str) -> Self {
        Self::new(format!("expected {what}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the data model.
    fn to_json_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the data model.
    fn from_json_value(v: &Value) -> Result<Self, DeError>;
}

/// Fetch and deserialize a named field of an object (derive support).
pub fn from_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    let field = v
        .get(name)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))?;
    T::from_json_value(field).map_err(|e| DeError::new(format!("field `{name}`: {}", e.message)))
}

/// Build the externally-tagged object `{name: value}` (derive support).
pub fn variant_obj(name: &str, value: Value) -> Value {
    Value::Object(vec![(name.to_string(), value)])
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    _ => return Err(DeError::expected("unsigned integer")),
                };
                <$t>::try_from(raw).map_err(|_| DeError::expected("in-range unsigned integer"))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let raw = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => {
                        i64::try_from(u).map_err(|_| DeError::expected("in-range integer"))?
                    }
                    _ => return Err(DeError::expected("integer")),
                };
                <$t>::try_from(raw).map_err(|_| DeError::expected("in-range integer"))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(x) => Ok(x as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    _ => Err(DeError::expected("number")),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::expected("boolean")),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string")),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_json_value(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("array"))?;
                if items.len() != $len {
                    return Err(DeError::expected(concat!("array of length ", $len)));
                }
                Ok(($($name::from_json_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

/// Map keys renderable as JSON object keys.
pub trait JsonKey: Sized {
    /// Render to the object-key string.
    fn to_key(&self) -> String;
    /// Parse back from the object-key string.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

macro_rules! impl_json_key {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::expected("numeric object key"))
            }
        }
    )*};
}
impl_json_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

impl<K: JsonKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_json_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_json_value()))
            .collect();
        // HashMap iteration order is arbitrary; sort for stable output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: JsonKey + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object"))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_json_value(val)?)))
            .collect()
    }
}

impl<K: JsonKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        // BTreeMap iterates in key order; keys stringify monotonically for
        // the JsonKey types we support, so the output is already stable.
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for std::collections::BTreeMap<K, V>
where
    K: JsonKey + Ord,
    V: Deserialize,
{
    fn from_json_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::expected("object"))?
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_json_value(val)?)))
            .collect()
    }
}
