//! Satellite: flash-crowd storm survival and shed determinism.
//!
//! A `x10` one-round renegotiation storm against a bounded signaling
//! queue must (a) keep the engine live — requests keep completing and
//! the run terminates, (b) shed deterministically — every counter,
//! including the new shed/brownout families, bit-identical at shard
//! counts {1, 2, 4} and against the sequential replay, and (c) settle
//! every non-shed VC — the end-of-run audit closes at zero drift. And
//! the other direction: a zero signaling budget (the default) must
//! reproduce the pre-shedding runtime exactly, storm or no storm.

use rcbr_runtime::{run, run_sequential, RuntimeConfig, StormSpec};

/// A contended storm scenario: 64 VCs on 8 switches with a per-switch
/// budget small enough that the storm window must shed, and generous
/// port headroom so shedding (not admission denial) is the binding
/// constraint.
fn storm_cfg(num_shards: usize, budget: u64, storm: Option<StormSpec>) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::balanced(num_shards, 64);
    cfg.target_requests = 1_500;
    let flows_per_switch = (cfg.num_vcs * cfg.hops_per_vc) as f64 / cfg.num_switches as f64;
    cfg.port_capacity = flows_per_switch * cfg.initial_rate * 2.5;
    cfg.resync_interval = 8;
    cfg.audit_interval = 16;
    cfg.signaling_budget_per_round = budget;
    cfg.storm = storm;
    cfg
}

const X10: StormSpec = StormSpec {
    at_round: 2,
    rounds: 1,
    burst: 10,
};

#[test]
fn a_x10_storm_sheds_deterministically_and_still_settles() {
    let reference = run_sequential(&storm_cfg(1, 4, Some(X10)));
    // Live under overload: the storm shed real cells, yet requests kept
    // completing and every surviving reservation settled.
    assert!(
        reference.counters.cells_shed > 0,
        "a x10 storm against budget 4 never shed"
    );
    assert!(
        reference.counters.completed > 0,
        "the engine went dead under the storm"
    );
    assert_eq!(
        reference.audit.final_drift, 0,
        "the storm left unrepaired drift behind"
    );
    // Shed accounting is exhaustive and fate accounting still closes.
    let c = &reference.counters;
    assert_eq!(
        c.sheds_gold + c.sheds_silver + c.sheds_best_effort,
        c.cells_shed
    );
    assert_eq!(c.completed, c.accepted + c.exhausted);
    // Determinism: the shed plan is a pure function of the per-switch
    // meeting sets, so the partition must not change a single counter.
    for shards in [1, 2, 4] {
        let r = run(&storm_cfg(shards, 4, Some(X10)));
        assert_eq!(
            r.counters, reference.counters,
            "{shards}-shard counters diverged from the sequential replay"
        );
        assert_eq!(
            r.vcs, reference.vcs,
            "{shards}-shard per-VC outcomes diverged"
        );
        assert_eq!(
            r.brownout_vcs, reference.brownout_vcs,
            "{shards}-shard brownout census diverged"
        );
        assert_eq!(r.audit.final_drift, 0);
    }
}

#[test]
fn a_zero_budget_reproduces_the_unbounded_runtime_bit_for_bit() {
    // The legacy-parity claim: budget 0 must not merely shed nothing —
    // it must leave every counter exactly where the pre-shedding
    // runtime put it. The storm only widens the traffic window, so a
    // stormless budget-0 run and the defaults must agree too.
    let legacy = run_sequential(&storm_cfg(1, 0, None));
    assert_eq!(legacy.counters.cells_shed, 0);
    assert_eq!(legacy.counters.pressure_rounds, 0);
    assert_eq!(legacy.counters.brownout_entries, 0);
    assert_eq!(legacy.brownout_vcs, 0);
    for shards in [1, 2, 4] {
        let r = run(&storm_cfg(shards, 0, None));
        assert_eq!(r.counters, legacy.counters);
        assert_eq!(r.vcs, legacy.vcs);
    }
    // An unbounded queue under a storm sheds nothing either: heavier
    // traffic alone must never trip the shed machinery.
    let stormy = run_sequential(&storm_cfg(1, 0, Some(X10)));
    assert_eq!(stormy.counters.cells_shed, 0);
    assert_eq!(stormy.counters.brownout_entries, 0);
    assert_eq!(stormy.audit.final_drift, 0);
}
