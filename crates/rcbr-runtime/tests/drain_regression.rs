//! Regression coverage for the drain-loop barrier discipline.
//!
//! The hazard (PR 2's deadlock, now also encoded as the linter's
//! `barrier-discipline` rule): the quiescence/stop decision in the drain
//! loop must come from a single snapshot taken between barriers, where no
//! shard can write the counters. Reading `completed` after the drain
//! barrier races the next round's phase-A timeout writes; shards then
//! disagree on the stop-run branch and one of them waits forever on a
//! barrier the others have abandoned.
//!
//! The configurations here maximize the racy window the snapshot has to
//! protect against: heavy fault delays at the maximum bound keep cells in
//! flight across many supersteps (so drain loops iterate often), while a
//! tight timeout plus a tiny retry budget makes verdict phases complete
//! requests via timeouts — the exact writes a misplaced read would race.
//! Each run must terminate (a deadlock hangs the test harness's timeout)
//! and stay bit-identical to the sequential replay.

use rcbr_runtime::{run, run_sequential, RuntimeConfig};

fn max_delay_cfg(seed: u64) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::balanced(1, 8);
    cfg.target_requests = 150;
    cfg.seed = seed;
    cfg.timeout_supersteps = 4; // tight: delayed cells overshoot it
    cfg.retry_budget = 1; // exhaustion completes requests in phase A
    cfg.audit_interval = 4;
    cfg.fault.seed = seed ^ 0xd7a1;
    cfg.fault.drop_bp = 1500; // many timeouts
    cfg.fault.delay_bp = 3000; // a third of surviving cells delayed...
    cfg.fault.max_delay = 8; // ...well past the timeout bound
    cfg
}

/// Max-delay fault scheduling with timeout-driven completions: the drain
/// loop must terminate and agree with the replay at every shard count.
#[test]
fn drain_terminates_under_max_delay_faults() {
    for seed in [3u64, 11, 42] {
        let cfg = max_delay_cfg(seed);
        let reference = run_sequential(&cfg);
        assert_eq!(
            reference.audit.final_drift, 0,
            "recovery leaves no residual drift (seed {seed})"
        );
        for shards in [1usize, 2, 4] {
            let mut scfg = cfg.clone();
            scfg.num_shards = shards;
            let parallel = run(&scfg);
            assert_eq!(
                parallel.counters, reference.counters,
                "counters diverged from the replay at {shards} shards (seed {seed})"
            );
            assert_eq!(
                parallel.supersteps, reference.supersteps,
                "logical clocks diverged at {shards} shards (seed {seed})"
            );
        }
    }
}

/// The degenerate corner: half of all cells are dropped — their requests
/// can only complete via a phase-A timeout verdict, the write a misplaced
/// read would race — and the other half are delayed toward the maximum,
/// stretching every drain loop across many supersteps. If any shard's
/// stop decision read `completed` outside the snapshot window, this
/// workload would hang rather than converge.
#[test]
fn drain_terminates_when_all_completions_are_timeouts() {
    let mut cfg = RuntimeConfig::balanced(2, 6);
    cfg.target_requests = 60;
    cfg.max_rounds = 200;
    cfg.timeout_supersteps = 2;
    cfg.retry_budget = 0; // first timeout exhausts: completions land in phase A
    cfg.fault.seed = 0x5eed;
    cfg.fault.dup_bp = 0;
    cfg.fault.corrupt_bp = 0;
    cfg.fault.drop_bp = 5_000; // half of all cells dropped
    cfg.fault.delay_bp = 5_000; // the other half delayed
    cfg.fault.max_delay = 6;
    let reference = run_sequential(&cfg);
    assert!(
        reference.counters.timeouts > 0,
        "the workload must actually exercise timeout verdicts"
    );
    let parallel = run(&cfg);
    assert_eq!(parallel.counters, reference.counters);
}
