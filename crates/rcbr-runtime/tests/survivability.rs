//! Survivable-signaling integration tests: permanent kills, link flaps,
//! lease expiry — always with the bit-identity contract (counters equal
//! across shard counts and the sequential replay) and a clean end-of-run
//! audit (`final_drift == 0`).

use rcbr_net::{FaultConfig, KillSpec, LinkDownSpec};
use rcbr_runtime::{run, run_sequential, RunReport, RuntimeConfig};

/// Run `cfg` at shard counts 1, 2, 4 and sequentially; assert the
/// counters (and audit) are bit-identical everywhere, and return the
/// sequential report for scenario-specific assertions.
fn assert_identical_everywhere(cfg: &RuntimeConfig) -> RunReport {
    let reference = run_sequential(cfg);
    for shards in [1usize, 2, 4] {
        let mut c = cfg.clone();
        c.num_shards = shards;
        let r = run(&c);
        assert_eq!(
            r.counters, reference.counters,
            "counters diverged at {shards} shards"
        );
        assert_eq!(
            r.audit, reference.audit,
            "audit diverged at {shards} shards"
        );
        assert_eq!(r.supersteps, reference.supersteps);
        assert_eq!(
            r.vcs, reference.vcs,
            "VC outcomes diverged at {shards} shards"
        );
    }
    reference
}

/// A quiet (no random cell faults) base scenario with enough capacity
/// that rerouted load never causes denials — failures come only from the
/// scheduled topology events each test adds.
fn survivable_cfg(num_vcs: usize) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::balanced(4, num_vcs);
    cfg.fault = FaultConfig::transparent();
    cfg.port_capacity *= 8.0;
    cfg.target_requests = 1_500;
    cfg
}

#[test]
fn permanent_kill_reroutes_survivors_and_strands_endpoint_vcs() {
    let mut cfg = survivable_cfg(16); // 8 switches, 4-hop paths
    cfg.extra_links = vec![(2, 4)];
    cfg.fault.kills = vec![KillSpec {
        switch: 3,
        at_superstep: 40,
    }];
    let r = assert_identical_everywhere(&cfg);

    assert!(r.counters.reroutes_committed > 0, "survivors must reroute");
    assert!(r.counters.stranded_events > 0, "endpoint VCs must strand");
    assert_eq!(r.counters.unstranded_events, 0, "kills are permanent");
    assert!(r.counters.teardown_cells > 0);
    assert_eq!(r.audit.final_drift, 0);
    assert_eq!(r.audit.port_inconsistencies, 0);
    // Torn-down VCs leave only zero-rate stubs behind: anything the
    // end-of-run audit reclaims off-route must hold no bandwidth.
    assert_eq!(r.audit.off_route_residue, 0);

    for vc in &r.vcs {
        let start = vc.vci as usize % 8;
        let endpoint_killed = start == 3 || start == 0;
        if endpoint_killed {
            // src == 3 (vci % 8 == 3) or dst == 3 (start 0 -> 0,1,2,3):
            // no alternate path can avoid a dead endpoint.
            assert!(vc.degraded, "VC {} lost an endpoint", vc.vci);
            assert_eq!(vc.believed, 0.0);
            assert!(vc.route.is_empty());
        } else {
            assert!(
                !vc.route.is_empty() && !vc.route.contains(&3),
                "VC {} must end on a live route, got {:?}",
                vc.vci,
                vc.route
            );
            assert!(vc.believed > 0.0);
        }
    }
}

#[test]
fn link_flap_reroutes_around_the_outage_without_stranding() {
    let mut cfg = survivable_cfg(16);
    // Chords covering both path families that cross ring link (1, 2).
    cfg.extra_links = vec![(1, 3), (0, 2)];
    // Two flapping windows on the same link.
    cfg.fault.link_downs = vec![
        LinkDownSpec {
            a: 1,
            b: 2,
            at_superstep: 40,
            down_supersteps: 120,
        },
        LinkDownSpec {
            a: 1,
            b: 2,
            at_superstep: 400,
            down_supersteps: 120,
        },
    ];
    let r = assert_identical_everywhere(&cfg);

    assert!(
        r.counters.reroutes_committed > 0,
        "flapped VCs must reroute"
    );
    assert_eq!(
        r.counters.stranded_events, 0,
        "a chord detour always survives the flap"
    );
    assert_eq!(r.audit.final_drift, 0);
    assert_eq!(r.audit.off_route_residue, 0);
    for vc in &r.vcs {
        assert!(!vc.route.is_empty(), "no VC loses service to a link flap");
        assert!(vc.believed > 0.0);
        assert!(
            !vc.route
                .windows(2)
                .any(|w| (w[0] == 1 && w[1] == 2) || (w[0] == 2 && w[1] == 1))
                || r.counters.cells_link_killed == 0,
            "VC {} still crosses the flapped link it was rerouted off",
            vc.vci
        );
    }
}

/// Satellite regression: a VC torn down mid-run (stranded by a kill with
/// no surviving alternate path) must contribute zero to every port's
/// reserved sum at end of run — the audit sees only zero-rate stubs
/// off-route and no residual drift anywhere.
#[test]
fn mid_run_teardown_leaves_zero_reserved_contribution() {
    let mut cfg = survivable_cfg(8); // 8 switches, one VC per start
    cfg.num_shards = 1;
    // No chords: VCs 0 (dst = 3... start 0) — recompute: path_of(v) is 4
    // consecutive switches from v % 8. Killing switch 0 strands VC 0
    // (src) and VC 5 (dst = 5+3 = 0); VCs 6 and 7 cross 0 internally and
    // reroute the long way around the ring.
    cfg.fault.kills = vec![KillSpec {
        switch: 0,
        at_superstep: 30,
    }];
    let r = assert_identical_everywhere(&cfg);

    for vc in &r.vcs {
        match vc.vci {
            0 | 5 => {
                assert!(vc.degraded, "VC {} lost an endpoint", vc.vci);
                assert_eq!(vc.believed, 0.0, "torn down VCs hold nothing");
                assert!(vc.route.is_empty());
            }
            6 | 7 => {
                assert!(
                    !vc.route.contains(&0),
                    "VC {} must route around the kill, got {:?}",
                    vc.vci,
                    vc.route
                );
                assert!(vc.believed > 0.0);
            }
            _ => {
                assert!(vc.believed > 0.0);
                assert!(!vc.route.is_empty());
            }
        }
    }
    // The torn-down VCs' former reservations are gone: every reclaimed
    // off-route stub held zero bandwidth, and the drift + port-sum
    // cross-checks both close at zero.
    assert_eq!(r.audit.off_route_residue, 0);
    assert_eq!(r.audit.final_drift, 0);
    assert_eq!(r.audit.port_inconsistencies, 0);
    assert!(r.counters.stranded_events >= 2);
}

/// Under genuine capacity pressure the reroute engine may be denied and
/// must stay deterministic: whatever mix of committed reroutes,
/// break-before-make fallbacks, and clean stranding results, it is
/// bit-identical at every shard count and the audit still closes at zero.
#[test]
fn capacity_pressure_reroutes_stay_deterministic_and_clean() {
    let mut cfg = RuntimeConfig::balanced(4, 8);
    cfg.fault = FaultConfig::transparent();
    // No chords: the only detour around a killed switch is the long way
    // round the ring — through switches the VC never reserved on, whose
    // ports have almost no headroom. Make-before-break gets denied there,
    // the break-before-make fallback retries, and a VC that still cannot
    // fit must strand cleanly.
    let flows_per_switch = (cfg.num_vcs * cfg.hops_per_vc) as f64 / cfg.num_switches as f64;
    cfg.port_capacity = flows_per_switch * cfg.initial_rate * 1.05;
    cfg.target_requests = 1_000;
    cfg.fault.kills = vec![KillSpec {
        switch: 0,
        at_superstep: 40,
    }];
    let r = assert_identical_everywhere(&cfg);

    assert!(
        r.counters.reroutes_denied > 0,
        "full detour ports must deny at least one walk: {:?}",
        r.counters
    );
    assert_eq!(r.audit.final_drift, 0);
    assert_eq!(r.audit.port_inconsistencies, 0);
    for vc in &r.vcs {
        // Every VC ends in exactly one of the two sanctioned states:
        // holding a live route, or cleanly torn down — never half-done.
        if vc.route.is_empty() {
            assert_eq!(vc.believed, 0.0, "VC {} holds rate without a route", vc.vci);
            assert!(vc.degraded);
        } else {
            assert!(!vc.route.contains(&0), "VC {} routes over the kill", vc.vci);
        }
    }
}

/// Leases: when every RM cell is lost, refreshes stop and every hop
/// reclaims its bandwidth use-it-or-lose-it; the end-of-run audit then
/// rebuilds the believed rates and still closes at zero drift.
#[test]
fn lease_expiry_reclaims_when_rm_cells_stop_arriving() {
    let mut cfg = RuntimeConfig::balanced(2, 8);
    cfg.fault = FaultConfig::transparent();
    cfg.fault.drop_bp = 10_000; // every cell dies at its first hop
    cfg.lease_supersteps = 48;
    cfg.retry_budget = 1;
    cfg.timeout_supersteps = 8;
    cfg.target_requests = 200;
    let r = assert_identical_everywhere(&cfg);

    assert!(
        r.counters.leases_expired > 0,
        "stopped refreshes must expire leases"
    );
    assert!(r.counters.timeouts > 0);
    assert_eq!(r.audit.final_drift, 0);
    assert_eq!(r.audit.port_inconsistencies, 0);
}

/// Leases stay inert while disabled: the flag default (0) reproduces the
/// legacy counters bit for bit.
#[test]
fn disabled_leases_change_nothing() {
    let mut cfg = RuntimeConfig::balanced(2, 8);
    cfg.target_requests = 400;
    let base = run_sequential(&cfg);
    assert_eq!(base.counters.leases_expired, 0);
    assert_eq!(base.counters.reroutes, 0);
    let sharded = run(&cfg);
    assert_eq!(sharded.counters, base.counters);
}
