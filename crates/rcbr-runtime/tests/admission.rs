//! Satellite: live admission determinism across shard counts.
//!
//! For every admission policy — the legacy static peak-rate check and
//! both measurement-based policies — the sharded engine at shard counts
//! {1, 2, 4} must reproduce the sequential replay bit for bit: counters,
//! per-VC outcomes, the admission report (including its float
//! utilization reduction), and the audit. The measured policies must
//! actually measure (windows roll, estimators observe, the EB cache
//! fills), and `PeakRate` must behave exactly like the runtime before
//! live admission existed: ceilings never move, nothing is estimated.

use rcbr_runtime::{run, run_sequential, AdmissionPolicy, RuntimeConfig};

const POLICIES: [AdmissionPolicy; 3] = [
    AdmissionPolicy::PeakRate,
    AdmissionPolicy::Memoryless { target: 1e-3 },
    AdmissionPolicy::ChernoffEb { epsilon: 1e-6 },
];

/// A contended configuration where the booking ceilings decide outcomes:
/// ~1.08x headroom over the initial admission load, short measurement
/// windows so each policy rolls many times, and the default mild fault
/// mix so admission interacts with retries and resync.
fn measured_cfg(policy: AdmissionPolicy, num_shards: usize) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::balanced(num_shards, 32);
    cfg.target_requests = 3_000;
    let flows_per_switch = (cfg.num_vcs * cfg.hops_per_vc) as f64 / cfg.num_switches as f64;
    cfg.port_capacity = flows_per_switch * cfg.initial_rate * 1.08;
    cfg.resync_interval = 8;
    cfg.audit_interval = 16;
    cfg.admission = policy;
    cfg.measurement_window_supersteps = 16;
    cfg
}

#[test]
fn every_policy_is_shard_count_invariant() {
    for policy in POLICIES {
        let reference = run_sequential(&measured_cfg(policy, 1));
        for shards in [1, 2, 4] {
            let r = run(&measured_cfg(policy, shards));
            assert_eq!(
                r.counters,
                reference.counters,
                "[{}] {shards}-shard counters diverged from the sequential replay",
                policy.name()
            );
            assert_eq!(
                r.vcs,
                reference.vcs,
                "[{}] {shards}-shard per-VC outcomes diverged",
                policy.name()
            );
            assert_eq!(
                r.admission,
                reference.admission,
                "[{}] {shards}-shard admission report diverged",
                policy.name()
            );
            assert_eq!(
                r.audit,
                reference.audit,
                "[{}] {shards}-shard audit diverged",
                policy.name()
            );
            assert_eq!(
                r.supersteps,
                reference.supersteps,
                "[{}] {shards}-shard logical clock diverged",
                policy.name()
            );
        }
    }
}

#[test]
fn measured_policies_measure_and_peak_rate_does_not() {
    for policy in POLICIES {
        let r = run(&measured_cfg(policy, 2));
        let a = &r.admission;
        assert_eq!(a.policy, policy.name());
        assert_eq!(
            a.admitted_cells + a.denied_cells,
            r.counters.admission_grants + r.counters.admission_denials,
            "[{}] admission split must mirror the counters",
            policy.name()
        );
        assert!(
            a.mean_port_utilization > 0.0,
            "[{}] utilization is sampled under every policy",
            policy.name()
        );
        if policy.measures() {
            assert!(a.rolls > 0, "[{}] windows never rolled", policy.name());
            assert!(
                a.estimator_observations > 0,
                "[{}] the estimator never observed a delivered cell",
                policy.name()
            );
        } else {
            assert_eq!(a.rolls, 0, "peak-rate must never roll a window");
            assert_eq!(
                a.estimator_observations, 0,
                "peak-rate must not estimate anything"
            );
            assert_eq!(
                a.eb_cache_misses, 0,
                "peak-rate must not touch the EB cache"
            );
        }
        if matches!(policy, AdmissionPolicy::ChernoffEb { .. }) {
            assert!(
                a.eb_cache_misses > 0,
                "chernoff-eb rolls must compute equivalent bandwidths"
            );
        }
    }
}

#[test]
fn denial_loss_split_is_exhaustive() {
    // Every unhappy outcome is attributed exactly once: a cell is either
    // denied at an admission check or lost to the fault plane, never both
    // and never unaccounted.
    let r = run(&measured_cfg(
        AdmissionPolicy::Memoryless { target: 1e-3 },
        2,
    ));
    let a = &r.admission;
    let c = &r.counters;
    assert!(a.denied_cells > 0, "tight ports must deny someone: {a:?}");
    assert_eq!(
        a.fault_lost_cells,
        c.cells_dropped + c.cells_corrupted + c.crash_killed + c.cells_link_killed,
        "fault-plane losses must be the sum of the fault counters"
    );
    assert!(
        a.fault_lost_cells > 0,
        "the default fault mix must lose cells: {a:?}"
    );
}
