//! Satellite property tests for the fault plane contract:
//!
//! 1. Any seed and any fault mix keep the sharded engine bit-identical to
//!    the sequential replay, at every shard count.
//! 2. Any drop/delay/duplicate/corrupt pattern, followed by end-of-run
//!    recovery (one absolute resync per drifted VC), leaves zero residual
//!    drift.
//!
//! Five cases per property — each case is four full engine runs, and the
//! space being sampled (seed x four fault intensities) is exactly where a
//! partition-dependent bug would show as a counter mismatch.

use proptest::prelude::*;
use rcbr_runtime::{run, run_sequential, RuntimeConfig};

fn chaos_cfg(
    seed: u64,
    drop_bp: u32,
    delay_bp: u32,
    dup_bp: u32,
    corrupt_bp: u32,
) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::balanced(1, 8);
    cfg.target_requests = 300;
    cfg.seed = seed;
    // Moderate contention so denials/rollbacks are part of the mix.
    let flows_per_switch = (cfg.num_vcs * cfg.hops_per_vc) as f64 / cfg.num_switches as f64;
    cfg.port_capacity = flows_per_switch * cfg.initial_rate * 1.2;
    cfg.resync_interval = 4;
    cfg.audit_interval = 8;
    cfg.fault.seed = seed ^ 0xc4a05;
    cfg.fault.drop_bp = drop_bp;
    cfg.fault.delay_bp = delay_bp;
    cfg.fault.max_delay = 3;
    cfg.fault.dup_bp = dup_bp;
    cfg.fault.corrupt_bp = corrupt_bp;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Same seed + same fault config => bit-identical counters across
    /// shard counts {1, 2, 4} and vs the sequential replay.
    #[test]
    fn any_fault_mix_is_shard_count_invariant(
        seed in 0u64..512,
        drop_bp in 0u32..500,
        delay_bp in 0u32..300,
        dup_bp in 0u32..200,
        corrupt_bp in 0u32..200,
    ) {
        let cfg = chaos_cfg(seed, drop_bp, delay_bp, dup_bp, corrupt_bp);
        let reference = run_sequential(&cfg);
        for shards in [1usize, 2, 4] {
            let mut scfg = cfg.clone();
            scfg.num_shards = shards;
            let parallel = run(&scfg);
            prop_assert_eq!(
                parallel.counters, reference.counters,
                "{} shards diverged (seed {}, faults {}/{}/{}/{})",
                shards, seed, drop_bp, delay_bp, dup_bp, corrupt_bp
            );
            prop_assert_eq!(parallel.supersteps, reference.supersteps);
            prop_assert_eq!(parallel.audit, reference.audit);
        }
    }

    /// Any drop/delay/duplicate/corrupt pattern + final recovery =>
    /// zero residual drift between sources and switches.
    #[test]
    fn recovery_always_reaches_zero_drift(
        seed in 0u64..512,
        drop_bp in 0u32..500,
        delay_bp in 0u32..300,
        dup_bp in 0u32..200,
        corrupt_bp in 0u32..200,
    ) {
        let cfg = chaos_cfg(seed, drop_bp, delay_bp, dup_bp, corrupt_bp);
        let report = run_sequential(&cfg);
        prop_assert_eq!(
            report.audit.final_drift, 0,
            "residual drift after recovery: {:?}", report.audit
        );
        prop_assert_eq!(report.audit.port_inconsistencies, 0);
        prop_assert_eq!(
            report.counters.completed,
            report.counters.accepted + report.counters.exhausted
        );
    }
}
