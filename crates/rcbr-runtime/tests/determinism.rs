//! Satellite: concurrency correctness under chaos.
//!
//! With a fixed seed and a fixed fault configuration — drops, delays,
//! duplicates, corruption, a switch crash/restart, and a shard-group
//! stall, all at once — running N threads x M renegotiations must yield
//! the same counters as a sequential replay of the same request log, and
//! re-running the sharded engine must be bit-identical.

use rcbr_net::{CrashSpec, StallSpec};
use rcbr_runtime::{run, run_sequential, RuntimeConfig};

/// A config small enough for tests but busy enough to exercise every
/// counter: tight capacity forces denials and rollbacks, and every fault
/// mode is armed at once.
fn contended_cfg(num_shards: usize) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::balanced(num_shards, 32);
    cfg.target_requests = 4_000;
    // ~1.08x headroom over the initial admission load: grants are common
    // but upward renegotiations regularly collide.
    let flows_per_switch = (cfg.num_vcs * cfg.hops_per_vc) as f64 / cfg.num_switches as f64;
    cfg.port_capacity = flows_per_switch * cfg.initial_rate * 1.08;
    cfg.resync_interval = 8;
    cfg.audit_interval = 16;
    cfg.timeout_supersteps = 24;
    cfg.retry_budget = 3;
    cfg.backoff_base = 2;
    cfg.backoff_jitter = 3;
    cfg.fault.drop_bp = 200;
    cfg.fault.delay_bp = 150;
    cfg.fault.max_delay = 3;
    cfg.fault.dup_bp = 100;
    cfg.fault.corrupt_bp = 100;
    cfg.fault.crashes = vec![CrashSpec {
        switch: 1,
        at_superstep: 40,
        down_supersteps: 30,
    }];
    cfg.fault.stall = Some(StallSpec {
        groups: 3,
        group: 1,
        at_superstep: 25,
        supersteps: 12,
    });
    cfg
}

#[test]
fn sharded_counters_match_sequential_replay_under_chaos() {
    let reference = run_sequential(&contended_cfg(1));
    for shards in [1, 2, 4] {
        let parallel = run(&contended_cfg(shards));
        assert_eq!(
            parallel.counters, reference.counters,
            "{shards}-shard run diverged from the sequential replay"
        );
        assert_eq!(
            parallel.supersteps, reference.supersteps,
            "{shards}-shard run's logical clock diverged"
        );
        assert_eq!(
            parallel.latency.count, reference.latency.count,
            "{shards}-shard run recorded a different number of latency samples"
        );
        assert_eq!(
            parallel.audit, reference.audit,
            "{shards}-shard audit diverged from the sequential replay"
        );
        assert_eq!(parallel.degraded_vcs, reference.degraded_vcs);
    }
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let a = run(&contended_cfg(4));
    let b = run(&contended_cfg(4));
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.audit, b.audit);
    assert_eq!(a.latency.count, b.latency.count);
    assert_eq!(a.latency.p50.to_bits(), b.latency.p50.to_bits());
    assert_eq!(a.latency.p99.to_bits(), b.latency.p99.to_bits());
    assert_eq!(a.mean_source_loss.to_bits(), b.mean_source_loss.to_bits());
}

#[test]
fn chaotic_workload_exercises_every_path_and_recovers() {
    let report = run(&contended_cfg(2));
    let c = &report.counters;
    assert!(c.completed >= 4_000, "target not reached: {c:?}");
    assert_eq!(
        c.completed,
        c.accepted + c.exhausted,
        "fate accounting broken: {c:?}"
    );
    assert_eq!(
        report.latency.count,
        c.accepted + c.denied,
        "latency sample accounting broken: {c:?}"
    );
    assert!(c.accepted > 0, "no grants: {c:?}");
    assert!(c.denied > 0, "capacity never contended: {c:?}");
    assert!(
        c.rollbacks > 0,
        "no multi-hop denial ever rolled back: {c:?}"
    );
    assert!(
        c.rolled_back_hops >= c.rollbacks,
        "rollback hop accounting broken: {c:?}"
    );
    // Every fault mode must actually have fired.
    assert!(c.cells_dropped > 0, "no drops: {c:?}");
    assert!(c.cells_delayed > 0, "no delays: {c:?}");
    assert!(c.cells_duplicated > 0, "no duplicates: {c:?}");
    assert!(c.cells_corrupted > 0, "no corruption: {c:?}");
    assert!(
        c.crash_killed > 0,
        "the crash window never killed a cell: {c:?}"
    );
    // ... and the recovery machinery must have answered.
    assert!(c.timeouts > 0, "killed cells never timed out: {c:?}");
    assert!(c.retries > 0, "no retries: {c:?}");
    assert!(c.resyncs > 0, "no resync cells injected: {c:?}");
    assert!(c.resync_repairs > 0, "drift never repaired: {c:?}");
    assert!(c.audit_runs > 0, "the periodic auditor never ran: {c:?}");
    assert_eq!(
        report.audit.final_drift, 0,
        "end-of-run recovery left residual drift: {:?}",
        report.audit
    );
    assert_eq!(report.audit.port_inconsistencies, 0);
    assert!(report.latency.count > 0 && report.latency.p99 > 0.0);
}

#[test]
fn different_seeds_diverge() {
    let mut a_cfg = contended_cfg(2);
    let mut b_cfg = contended_cfg(2);
    a_cfg.seed = 1;
    b_cfg.seed = 2;
    let a = run(&a_cfg);
    let b = run(&b_cfg);
    assert_ne!(
        a.counters, b.counters,
        "different seeds should produce different workloads"
    );
}
