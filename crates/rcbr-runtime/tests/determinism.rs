//! Satellite: concurrency correctness.
//!
//! With a fixed seed, running N threads x M renegotiations must yield the
//! same accept/deny/rollback counters as a sequential replay of the same
//! request log — and re-running the sharded engine must be bit-identical.

use rcbr_runtime::{run, run_sequential, RuntimeConfig};

/// A config small enough for tests but busy enough to exercise every
/// counter: tight capacity forces denials and rollbacks, loss and resync
/// are both enabled.
fn contended_cfg(num_shards: usize) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::balanced(num_shards, 32);
    cfg.target_requests = 4_000;
    // ~1.08x headroom over the initial admission load: grants are common
    // but upward renegotiations regularly collide.
    let flows_per_switch = (cfg.num_vcs * cfg.hops_per_vc) as f64 / cfg.num_switches as f64;
    cfg.port_capacity = flows_per_switch * cfg.initial_rate * 1.08;
    cfg
}

#[test]
fn sharded_counters_match_sequential_replay() {
    let reference = run_sequential(&contended_cfg(1));
    for shards in [1, 2, 4] {
        let parallel = run(&contended_cfg(shards));
        assert_eq!(
            parallel.counters, reference.counters,
            "{shards}-shard run diverged from the sequential replay"
        );
        assert_eq!(
            parallel.latency.count, reference.latency.count,
            "{shards}-shard run recorded a different number of latency samples"
        );
    }
}

#[test]
fn same_seed_runs_are_bit_identical() {
    let a = run(&contended_cfg(4));
    let b = run(&contended_cfg(4));
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.latency.count, b.latency.count);
    assert_eq!(a.latency.p50.to_bits(), b.latency.p50.to_bits());
    assert_eq!(a.latency.p99.to_bits(), b.latency.p99.to_bits());
}

#[test]
fn contended_workload_exercises_every_path() {
    let report = run(&contended_cfg(2));
    let c = &report.counters;
    assert!(c.completed >= 4_000, "target not reached: {c:?}");
    assert_eq!(
        c.completed,
        c.accepted + c.denied + c.lost,
        "fate accounting broken: {c:?}"
    );
    assert!(c.accepted > 0, "no grants: {c:?}");
    assert!(c.denied > 0, "capacity never contended: {c:?}");
    assert!(
        c.rollbacks > 0,
        "no multi-hop denial ever rolled back: {c:?}"
    );
    assert!(
        c.rolled_back_hops >= c.rollbacks,
        "rollback hop accounting broken: {c:?}"
    );
    assert!(c.lost > 0, "deterministic loss never fired: {c:?}");
    assert!(c.resyncs > 0, "no resync cells injected: {c:?}");
    assert!(
        c.resync_repairs > 0,
        "loss-induced drift never repaired: {c:?}"
    );
    assert!(report.latency.count > 0 && report.latency.p99 > 0.0);
}

#[test]
fn different_seeds_diverge() {
    let mut a_cfg = contended_cfg(2);
    let mut b_cfg = contended_cfg(2);
    a_cfg.seed = 1;
    b_cfg.seed = 2;
    let a = run(&a_cfg);
    let b = run(&b_cfg);
    assert_ne!(
        a.counters, b.counters,
        "different seeds should produce different workloads"
    );
}
