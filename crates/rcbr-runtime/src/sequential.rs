//! Single-threaded replay with wave-for-superstep semantics.
//!
//! Each wave of this replay corresponds to one superstep of the sharded
//! engine: every in-flight job advances exactly one hop, and jobs are
//! processed in global sequence order. Since jobs at different switches
//! never interact within a wave, sorting the whole wave by `seq` yields
//! the same per-switch cell order the sharded engine produces — so the
//! counters (and the latency histogram's bin counts) come out identical.
//! This is the reference the concurrency tests compare the sharded engine
//! against.

use std::sync::atomic::Ordering;
use std::sync::Mutex;
use std::time::Instant;

use rcbr_net::Switch;
use rcbr_sim::RunningStats;

use crate::config::RuntimeConfig;
use crate::core::{advance_job, CompletionSink, Counters, Job, JobKind, VciSlot};
use crate::gen::VcRunner;
use crate::report::{latency_histogram, summarize_latency, RunReport, ShardReport};

/// Run the workload single-threaded and report.
pub fn run_sequential(cfg: &RuntimeConfig) -> RunReport {
    cfg.validate();
    let started = Instant::now();

    let counters = Counters::default();
    let vci_states: Vec<Mutex<VciSlot>> = (0..cfg.num_vcs)
        .map(|_| Mutex::new(VciSlot::default()))
        .collect();

    let mut switches: Vec<Switch> = (0..cfg.num_switches)
        .map(|_| Switch::new(&[cfg.port_capacity]))
        .collect();
    for vci in 0..cfg.num_vcs as u32 {
        for &h in &cfg.path_of(vci) {
            let admitted = switches[h]
                .setup(vci, 0, cfg.initial_rate)
                .expect("fresh VCI");
            assert!(admitted, "initial admission must fit; raise port_capacity");
        }
    }
    let mut runners: Vec<VcRunner> = (0..cfg.num_vcs as u32)
        .map(|v| VcRunner::new(cfg, v))
        .collect();

    let mut latency = latency_histogram(cfg);
    let mut moments = RunningStats::new();
    let mut processed = 0u64;
    let mut injected = 0u64;
    let mut max_batch = 0u64;
    let mut rounds = 0u64;
    let path_len = cfg.hops_per_vc;

    let mut wave: Vec<Job> = Vec::new();
    for round in 0..cfg.max_rounds {
        rounds = round + 1;
        for runner in &mut runners {
            let outcome = vci_states[runner.vci() as usize]
                .lock()
                .expect("vci lock")
                .outcome
                .take();
            if let Some(o) = outcome {
                runner.apply_outcome(o);
            }
            runner.step_round(cfg, round, &mut wave);
        }
        for job in &wave {
            counters.injected.fetch_add(1, Ordering::Relaxed);
            counters.in_flight.fetch_add(1, Ordering::Relaxed);
            if matches!(job.kind, JobKind::Resync { .. }) {
                counters.resyncs.fetch_add(1, Ordering::Relaxed);
            }
            injected += 1;
        }

        while !wave.is_empty() {
            max_batch = max_batch.max(wave.len() as u64);
            wave.sort_unstable_by_key(|j| j.seq);
            let mut next_wave = Vec::with_capacity(wave.len());
            let mut sink = CompletionSink {
                latency: &mut latency,
                moments: &mut moments,
            };
            for job in wave.drain(..) {
                processed += 1;
                let h = cfg.path_of(job.vci)[job.hop];
                if let Some(nj) = advance_job(
                    job,
                    &mut switches[h],
                    path_len,
                    cfg,
                    &counters,
                    &vci_states,
                    &mut sink,
                ) {
                    next_wave.push(nj);
                }
            }
            wave = next_wave;
        }

        if counters.completed.load(Ordering::Relaxed) >= cfg.target_requests {
            break;
        }
    }

    let wall = started.elapsed().as_secs_f64();
    let counters = counters.snapshot();
    RunReport {
        num_shards: 1,
        num_vcs: cfg.num_vcs,
        num_switches: cfg.num_switches,
        hops_per_vc: cfg.hops_per_vc,
        rounds,
        wall_seconds: wall,
        throughput_per_sec: if wall > 0.0 {
            counters.completed as f64 / wall
        } else {
            0.0
        },
        counters,
        latency: summarize_latency(&latency, &moments),
        shards: vec![ShardReport {
            shard: 0,
            processed,
            injected,
            max_batch,
        }],
    }
}
