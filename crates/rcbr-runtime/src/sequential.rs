//! Single-threaded replay with wave-for-superstep semantics.
//!
//! Each wave of this replay corresponds to one superstep of the sharded
//! engine: the same logical clock ticks, the same fault-delayed cells are
//! released, the same stall holds and crash wipes apply, and jobs are
//! processed in the same `(seq, salt)` order. Since jobs at different
//! switches never interact within a wave, sorting the whole wave yields
//! the same per-switch cell order the sharded engine produces — so the
//! counters (and the latency histogram's bin counts) come out identical,
//! fault plane and all. This is the reference the concurrency and chaos
//! tests compare the sharded engine against.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rcbr_net::{FaultPlane, ShedKey, SignalingQueue, Switch};

use crate::admission::{reduce_admission, SwitchAdmission};
use crate::audit::{audit_shard, finalize, reduce_source_loss, VcFinal};
use crate::config::RuntimeConfig;
use crate::core::{
    advance_job, shed_job, CompletionSink, Counters, FaultCtx, Job, JobKind, VciSlot,
};
use crate::gen::VcRunner;
use crate::report::{
    latency_histogram, summarize_latency, RunReport, ShardReport, VcOutcome, WallTimer,
};

/// Run the workload single-threaded and report.
pub fn run_sequential(cfg: &RuntimeConfig) -> RunReport {
    cfg.validate();
    let started = WallTimer::start();
    let plane = FaultPlane::new(cfg.fault.clone());
    let topo = cfg.topology();

    let counters = Counters::default();
    let vci_states: Vec<Mutex<VciSlot>> = (0..cfg.num_vcs)
        .map(|_| Mutex::new(VciSlot::default()))
        .collect();
    let believed: Vec<AtomicU64> = (0..cfg.num_vcs)
        .map(|_| AtomicU64::new(cfg.initial_rate.to_bits()))
        .collect();
    let routes: Vec<Mutex<Vec<u16>>> = (0..cfg.num_vcs as u32)
        .map(|vci| Mutex::new(cfg.path_of(vci).iter().map(|&h| h as u16).collect()))
        .collect();

    let mut switches: Vec<Switch> = (0..cfg.num_switches)
        .map(|_| Switch::new(&[cfg.port_capacity]))
        .collect();
    for vci in 0..cfg.num_vcs as u32 {
        for &h in &cfg.path_of(vci) {
            let admitted = switches[h]
                .setup(vci, 0, cfg.initial_rate)
                .expect("fresh VCI");
            assert!(admitted, "initial admission must fit; raise port_capacity");
        }
    }
    let mut admission: Vec<SwitchAdmission> =
        switches.iter().map(|_| SwitchAdmission::new(cfg)).collect();
    let measuring = cfg.admission.measures();
    // Per-switch bounded signaling queues — the replay twin of the
    // engine's (budget 0 = unbounded, the legacy behavior).
    let budget = cfg.signaling_budget_per_round;
    let mut queues: Vec<SignalingQueue> = switches
        .iter()
        .map(|_| SignalingQueue::new(budget))
        .collect();
    let mut runners: Vec<VcRunner> = (0..cfg.num_vcs as u32)
        .map(|v| VcRunner::new(cfg, v))
        .collect();

    let mut latency = latency_histogram(cfg);
    let mut moments = crate::report::RttStats::new();
    let mut processed = 0u64;
    let mut injected = 0u64;
    let mut max_batch = 0u64;
    let mut rounds = 0u64;
    let mut superstep = 0u64;

    let mut wave: Vec<Job> = Vec::new();
    let mut delayed: Vec<(u64, Job)> = Vec::new();
    let mut held: Vec<Job> = Vec::new();
    let mut wiped: Vec<bool> = vec![false; cfg.num_switches];

    for round in 0..cfg.max_rounds {
        rounds = round + 1;
        if cfg.lease_supersteps > 0 {
            for (h, sw) in switches.iter_mut().enumerate() {
                if plane.switch_down(h, superstep) {
                    continue;
                }
                let reclaimed = sw.expire_leases(superstep, cfg.lease_supersteps);
                counters
                    .leases_expired
                    .fetch_add(reclaimed, Ordering::Relaxed);
            }
        }
        // Admission sweep — identical to the engine's round-top sweep.
        for (h, sw) in switches.iter_mut().enumerate() {
            if plane.switch_down(h, superstep) {
                continue;
            }
            let sa = &mut admission[h];
            sa.sample(sw);
            if measuring && superstep >= sa.next_roll_at {
                sa.roll(cfg, superstep, sw);
            }
        }
        // Pressure accounting — identical to the engine's round-top count.
        if budget > 0 {
            for q in &queues {
                if q.under_pressure(superstep) {
                    counters.pressure_rounds.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        for runner in &mut runners {
            let (outcome, pressured) = {
                let mut slot = vci_states[runner.vci() as usize].lock().expect("vci lock");
                (slot.outcome.take(), std::mem::take(&mut slot.pressure))
            };
            runner.begin_round(cfg, &topo, &plane, outcome, pressured, superstep, &counters);
            believed[runner.vci() as usize]
                .store(runner.believed_rate().to_bits(), Ordering::Relaxed);
            *routes[runner.vci() as usize].lock().expect("route lock") = runner.audit_route();
        }
        if cfg.audit_interval > 0 && round > 0 && round.is_multiple_of(cfg.audit_interval) {
            audit_shard(
                &plane, &switches, 0, 1, &believed, &routes, superstep, &counters,
            );
        }

        for runner in &mut runners {
            runner.emit_round(cfg, &topo, &plane, round, superstep, &mut wave, &counters);
        }
        for job in &wave {
            counters.injected.fetch_add(1, Ordering::Relaxed);
            counters.in_flight.fetch_add(1, Ordering::Relaxed);
            match job.kind {
                JobKind::Resync { .. } => {
                    counters.resyncs.fetch_add(1, Ordering::Relaxed);
                }
                JobKind::Reroute { .. } => {
                    counters.reroutes.fetch_add(1, Ordering::Relaxed);
                }
                JobKind::Teardown => {
                    counters.teardown_cells.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
            injected += 1;
        }

        // Same snapshot-then-decide shape as the engine's drain loop,
        // so the replay breaks on the identical (quiescent, completed)
        // observation.
        let completed_now = loop {
            superstep += 1;
            let mut i = 0;
            while i < delayed.len() {
                if delayed[i].0 <= superstep {
                    wave.push(delayed.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
            wave.append(&mut held);
            max_batch = max_batch.max(wave.len() as u64);
            let drain = counters.snapshot_drain();
            if drain.quiescent {
                break drain.completed;
            }
            for (h, sw) in switches.iter_mut().enumerate() {
                if !wiped[h] {
                    if let Some(restart) = plane.restart_superstep(h) {
                        if superstep >= restart {
                            sw.wipe_soft_state();
                            admission[h].wipe_measurements();
                            wiped[h] = true;
                        }
                    }
                }
            }
            wave.sort_unstable_by_key(|j| (j.seq, j.salt));
            // Signaling-queue admission — the replay twin of the engine's
            // per-superstep shed plan (same meeting sets, same pure
            // ordering, so the identical cells are shed).
            let mut shed_plans: Vec<Vec<(u64, u8)>> = Vec::new();
            if budget > 0 {
                let mut candidates: Vec<Vec<ShedKey>> =
                    switches.iter().map(|_| Vec::new()).collect();
                for job in &wave {
                    let h = job.route.hop(job.hop);
                    if plane.stalled(h, superstep) {
                        continue;
                    }
                    if matches!(job.kind, JobKind::Delta(_) | JobKind::Resync { .. }) {
                        candidates[h].push(ShedKey {
                            class: job.class,
                            seq: job.seq,
                            salt: job.salt,
                        });
                    }
                }
                shed_plans = candidates
                    .into_iter()
                    .enumerate()
                    .map(|(h, keys)| {
                        queues[h]
                            .admit_superstep(keys, superstep, cfg.pressure_hold_supersteps)
                            .into_iter()
                            .map(|k| (k.seq, k.salt))
                            .collect()
                    })
                    .collect();
            }
            let fx = FaultCtx {
                plane: &plane,
                superstep,
            };
            let mut next_wave = Vec::with_capacity(wave.len());
            let mut sink = CompletionSink {
                latency: &mut latency,
                moments: &mut moments,
            };
            for job in wave.drain(..) {
                let h = job.route.hop(job.hop);
                if plane.stalled(h, superstep) {
                    held.push(job);
                    continue;
                }
                processed += 1;
                if budget > 0
                    && matches!(job.kind, JobKind::Delta(_) | JobKind::Resync { .. })
                    && shed_plans[h].binary_search(&(job.seq, job.salt)).is_ok()
                {
                    shed_job(&job, cfg, &counters, &vci_states, &mut sink);
                    continue;
                }
                let (forward, hold) = advance_job(
                    job,
                    &mut switches[h],
                    h,
                    cfg,
                    &fx,
                    &counters,
                    &vci_states,
                    &mut sink,
                    if measuring {
                        Some(&mut admission[h])
                    } else {
                        None
                    },
                    budget > 0 && queues[h].under_pressure(superstep),
                );
                if let Some(nj) = forward {
                    next_wave.push(nj);
                }
                if let Some(entry) = hold {
                    delayed.push(entry);
                }
            }
            wave = next_wave;
        };

        if completed_now >= cfg.target_requests {
            break;
        }
    }

    let mut finals: Vec<VcFinal> = Vec::with_capacity(cfg.num_vcs);
    for runner in &mut runners {
        // Read before apply_final: the final verdict collapses a
        // mid-flight reroute to Settled while its residue stays behind.
        let unsettled = runner.unsettled_at_exit();
        let outcome = vci_states[runner.vci() as usize]
            .lock()
            .expect("vci lock")
            .outcome
            .take();
        if let Some(o) = outcome {
            runner.apply_final(o);
        }
        finals.push(VcFinal {
            vci: runner.vci(),
            believed: runner.believed_rate(),
            degraded: runner.is_degraded(),
            loss: runner.loss_fraction(),
            route: runner.final_route(),
            unsettled,
            brownout: runner.in_brownout(),
        });
    }

    let audit = finalize(cfg, &plane, &mut switches, &mut finals, superstep);
    let degraded_vcs = finals.iter().filter(|f| f.degraded).count() as u64;
    let unsettled_vcs = finals.iter().filter(|f| f.unsettled).count() as u64;
    let brownout_vcs = finals.iter().filter(|f| f.brownout).count() as u64;
    let (mean_source_loss, max_source_loss) = reduce_source_loss(&finals, cfg.num_vcs);
    let vcs = finals
        .iter()
        .map(|f| VcOutcome {
            vci: f.vci,
            believed: f.believed,
            degraded: f.degraded,
            loss: f.loss,
            route: f.route.clone(),
        })
        .collect();

    let wall = started.elapsed_seconds();
    let counters = counters.snapshot();
    debug_assert_eq!(counters.completed, counters.accepted + counters.exhausted);
    let admission = reduce_admission(cfg.admission, &counters, &admission);
    RunReport {
        num_shards: 1,
        num_vcs: cfg.num_vcs,
        num_switches: cfg.num_switches,
        hops_per_vc: cfg.hops_per_vc,
        rounds,
        supersteps: superstep,
        wall_seconds: wall,
        throughput_per_sec: if wall > 0.0 {
            counters.completed as f64 / wall
        } else {
            0.0
        },
        counters,
        audit,
        admission,
        degraded_vcs,
        unsettled_vcs,
        brownout_vcs,
        mean_source_loss,
        max_source_loss,
        vcs,
        latency: summarize_latency(&latency, &moments, cfg.hop_latency),
        shards: vec![ShardReport {
            shard: 0,
            processed,
            injected,
            max_batch,
        }],
    }
}
