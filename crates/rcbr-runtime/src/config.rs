//! Runtime configuration.

use rcbr_net::{FaultConfig, PriorityClass};
use serde::{Deserialize, Serialize};

use crate::admission::AdmissionPolicy;

/// A flash-crowd arrival storm: for `rounds` rounds starting at
/// `at_round`, every VC steps `burst ×` its usual traffic slots per
/// round, so renegotiation demand across the population spikes in
/// lockstep — the synchronized control-plane burst the signaling budget
/// exists to survive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StormSpec {
    /// First storm round.
    pub at_round: u64,
    /// Storm length, rounds.
    pub rounds: u64,
    /// Traffic-slot multiplier during the storm (`1` = no storm).
    pub burst: u64,
}

/// Configuration of a signaling-plane run.
///
/// The same configuration drives both [`run`](crate::run) (sharded, one
/// worker thread per shard) and [`run_sequential`](crate::run_sequential)
/// (single-threaded replay); by construction the two produce identical
/// accept/deny/rollback counters, and so does the sharded engine at any
/// shard count — including under every fault mode of the embedded
/// [`FaultConfig`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Worker threads; switch `h` is owned by shard `h % num_shards` and
    /// VC `v` by shard `v % num_shards`.
    pub num_shards: usize,
    /// Virtual channels (each an independent MPEG-like source driving the
    /// AR(1) renegotiation heuristic).
    pub num_vcs: usize,
    /// Switches in the population; each has one output port.
    pub num_switches: usize,
    /// Hops per VC path (consecutive switches starting at
    /// `vci % num_switches`). Must not exceed `num_switches`.
    pub hops_per_vc: usize,
    /// Output-port capacity, bits/second. Size this against
    /// `num_vcs * hops_per_vc / num_switches` flows at `initial_rate`:
    /// tight capacity produces denials and rollbacks, loose capacity
    /// mostly grants.
    pub port_capacity: f64,
    /// Initial per-VC reservation (and the AR(1) policy's initial rate),
    /// bits/second.
    pub initial_rate: f64,
    /// End-system buffer per VC, bits (the paper's `B = 300 kb`).
    pub buffer: f64,
    /// Renegotiation granularity `Δ`, bits/second; finer means more
    /// frequent requests.
    pub granularity: f64,
    /// Per-VC synthetic trace length; the trace is replayed cyclically.
    pub trace_frames: usize,
    /// Traffic slots each VC advances per round before the signaling
    /// pipeline drains.
    pub slots_per_round: usize,
    /// Stop once this many signaling requests have completed (granted, or
    /// abandoned after retry exhaustion).
    pub target_requests: u64,
    /// Hard cap on rounds (guards against a workload that stops
    /// renegotiating before reaching `target_requests`).
    pub max_rounds: u64,
    /// Every `resync_interval`-th request a VC emits is sent as an
    /// absolute-rate resync cell instead of a delta. `0` disables resync.
    pub resync_interval: u64,
    /// A request with no verdict after this many supersteps has timed out
    /// (its RM cell was dropped, corrupted, or killed by a crash).
    pub timeout_supersteps: u64,
    /// Retries allowed after the initial attempt; one more failure
    /// exhausts the request and the VC degrades (keeps its granted rate).
    pub retry_budget: u32,
    /// Base retry backoff, supersteps (doubles per consecutive failure).
    pub backoff_base: u64,
    /// Maximum seeded jitter added to each backoff, supersteps.
    pub backoff_jitter: u64,
    /// Run the invariant auditor every `audit_interval` rounds,
    /// cross-checking every reservation against the owning source's
    /// believed rate. `0` disables periodic audits (the end-of-run audit
    /// always runs).
    pub audit_interval: u64,
    /// One-way per-hop signaling latency, seconds (for the modeled
    /// round-trip latency histogram).
    pub hop_latency: f64,
    /// The fault scenario: per-traversal drop/delay/duplicate/corrupt
    /// probabilities, scheduled switch crashes and kills, link-down
    /// windows, and stalls.
    pub fault: FaultConfig,
    /// Per-hop reservation leases: a switch reclaims a VC's bandwidth
    /// use-it-or-lose-it when no RM cell has refreshed it for this many
    /// supersteps. The routing entry survives expiry, so a later
    /// absolute-rate resync re-establishes service. `0` disables leases
    /// (the legacy behavior).
    pub lease_supersteps: u64,
    /// Extra duplex chords `(a, b)` added on top of the ring substrate
    /// [`topology`](Self::topology) builds — the alternate paths the
    /// reroute engine needs to survive a killed switch or a down link.
    pub extra_links: Vec<(usize, usize)>,
    /// Alternate routes the reroute engine enumerates per attempt
    /// (the `k` of its deterministic k-shortest-path selection).
    pub reroute_k: usize,
    /// The admission test gating renegotiation RM cells at each port.
    /// [`AdmissionPolicy::PeakRate`] (the default) is the legacy static
    /// check, bit-identical to the runtime before live admission existed;
    /// the measurement-based policies move per-port booking ceilings at
    /// each measurement-window roll.
    pub admission: AdmissionPolicy,
    /// Length of an admission measurement window, supersteps. Windows
    /// advance only at the top of a round (phase-A quiescence), at the
    /// first round whose superstep has reached the schedule — so rolls
    /// land on the same superstep at every shard count. Ignored under
    /// `PeakRate`.
    pub measurement_window_supersteps: u64,
    /// Per-switch signaling-queue budget: renegotiation RM cells (deltas
    /// and resyncs, ghosts included) a switch serves per superstep.
    /// Overflow is shed deterministically by the pure
    /// `(priority_class, seq, salt)` order — see `rcbr_net::signaling`.
    /// `0` disables the bound (the legacy behavior, bit-identical to the
    /// runtime before overload protection existed).
    pub signaling_budget_per_round: u64,
    /// Percent of VCIs (by `vci % 100`) assigned `PriorityClass::Gold`.
    pub gold_pct: u32,
    /// Percent of VCIs assigned `PriorityClass::Silver` (after the Gold
    /// band); the remainder are `BestEffort`.
    pub silver_pct: u32,
    /// Consecutive sheds one request absorbs before the source abandons
    /// it (keeping its last granted rate). A separate account from
    /// `retry_budget`: sheds are the network asking for patience, not a
    /// verdict, so they must not consume the failure budget.
    pub shed_budget: u32,
    /// How long a browned-out BestEffort VC holds its last granted rate
    /// before probing again, supersteps (the timer fallback; a
    /// pressure-free response exits brownout earlier).
    pub brownout_hold_supersteps: u64,
    /// How long a switch advertises overload pressure after shedding,
    /// supersteps.
    pub pressure_hold_supersteps: u64,
    /// Optional flash-crowd storm window (`None` = steady arrivals).
    pub storm: Option<StormSpec>,
    /// Master seed; all traffic and policy randomness derives from it.
    pub seed: u64,
}

impl RuntimeConfig {
    /// A balanced configuration for `num_shards` shards and `num_vcs`
    /// VCs: 4-hop paths over `num_vcs / 8` switches (at least 8), with
    /// ~1.5x capacity headroom over the *most-loaded* port's initial
    /// admission. (The maximum, not the average: with fewer VCs than
    /// switches the consecutive-hop paths overlap unevenly, and an
    /// average-sized port would reject the initial admission.) The
    /// MPEG-like sources demand well above their mean for sustained
    /// stretches, so a long run saturates the ports — the sweep
    /// exercises every signaling path: grants, denials, multi-hop
    /// rollbacks, retries, and resync. A mild default fault mix (1.5%
    /// drop, 1% delay, 0.5% duplicate, 0.5% corrupt) keeps the recovery
    /// machinery honest; override `fault` for clean or chaos runs.
    pub fn balanced(num_shards: usize, num_vcs: usize) -> Self {
        let num_switches = (num_vcs / 8).max(8);
        let hops_per_vc = 4.min(num_switches);
        let initial_rate = 374_000.0; // the Star Wars trace mean
        let mut flows = vec![0u64; num_switches];
        for vci in 0..num_vcs {
            for k in 0..hops_per_vc {
                flows[(vci + k) % num_switches] += 1;
            }
        }
        let flows_per_switch = flows.iter().copied().max().unwrap_or(1) as f64;
        Self {
            num_shards,
            num_vcs,
            num_switches,
            hops_per_vc,
            port_capacity: flows_per_switch * initial_rate * 1.5,
            initial_rate,
            buffer: 300_000.0,
            granularity: 50_000.0,
            trace_frames: 2048,
            slots_per_round: 64,
            target_requests: 100_000,
            max_rounds: 1_000_000,
            resync_interval: 8,
            timeout_supersteps: 32,
            retry_budget: 3,
            backoff_base: 4,
            backoff_jitter: 3,
            audit_interval: 64,
            hop_latency: 1e-3,
            fault: FaultConfig {
                seed: 13,
                drop_bp: 150,
                delay_bp: 100,
                max_delay: 3,
                dup_bp: 50,
                corrupt_bp: 50,
                crashes: Vec::new(),
                link_downs: Vec::new(),
                kills: Vec::new(),
                stall: None,
            },
            lease_supersteps: 0,
            extra_links: Vec::new(),
            reroute_k: 4,
            admission: AdmissionPolicy::PeakRate,
            measurement_window_supersteps: 64,
            signaling_budget_per_round: 0,
            gold_pct: 25,
            silver_pct: 25,
            shed_budget: 4,
            brownout_hold_supersteps: 64,
            pressure_hold_supersteps: 8,
            storm: None,
            seed: 7,
        }
    }

    /// Panic on an inconsistent configuration.
    pub fn validate(&self) {
        assert!(self.num_shards >= 1, "need at least one shard");
        assert!(self.num_vcs >= 1, "need at least one VC");
        assert!(self.num_switches >= 1, "need at least one switch");
        assert!(
            (1..=self.num_switches).contains(&self.hops_per_vc),
            "hops_per_vc must be in 1..=num_switches"
        );
        assert!(
            self.port_capacity > 0.0 && self.port_capacity.is_finite(),
            "bad capacity"
        );
        assert!(
            self.initial_rate > 0.0 && self.initial_rate.is_finite(),
            "bad initial rate"
        );
        assert!(self.buffer > 0.0, "bad buffer");
        assert!(self.granularity > 0.0, "bad granularity");
        assert!(self.trace_frames >= 1, "need a nonempty trace");
        assert!(
            self.slots_per_round >= 1,
            "need at least one slot per round"
        );
        assert!(self.max_rounds >= 1, "need at least one round");
        assert!(
            self.timeout_supersteps >= 1,
            "timeout must be at least one superstep"
        );
        assert!(self.backoff_base >= 1, "backoff base must be >= 1");
        assert!(
            self.hop_latency >= 0.0 && self.hop_latency.is_finite(),
            "bad hop latency"
        );
        assert!(
            self.hops_per_vc <= crate::core::MAX_ROUTE,
            "hops_per_vc must fit an inline job route (<= {})",
            crate::core::MAX_ROUTE
        );
        assert!(
            self.num_switches <= u16::MAX as usize,
            "switch indices must fit u16"
        );
        assert!(self.reroute_k >= 1, "need at least one candidate route");
        match self.admission {
            AdmissionPolicy::PeakRate => {}
            AdmissionPolicy::Memoryless { target } => assert!(
                target > 0.0 && target < 1.0,
                "memoryless admission target must be in (0, 1)"
            ),
            AdmissionPolicy::ChernoffEb { epsilon } => assert!(
                epsilon > 0.0 && epsilon < 1.0,
                "chernoff-eb admission epsilon must be in (0, 1)"
            ),
        }
        if self.admission.measures() {
            assert!(
                self.measurement_window_supersteps >= 1,
                "measurement window must be at least one superstep"
            );
        }
        let n = self.num_switches;
        for (i, &(a, b)) in self.extra_links.iter().enumerate() {
            assert!(a < n && b < n, "extra link ({a}, {b}) out of range");
            assert!(a != b, "extra link ({a}, {b}) is a self-link");
            assert!(
                n < 2 || ((a + 1) % n != b && (b + 1) % n != a),
                "extra link ({a}, {b}) duplicates a ring link"
            );
            assert!(
                !self.extra_links[..i]
                    .iter()
                    .any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a)),
                "duplicate extra link ({a}, {b})"
            );
        }
        assert!(
            self.gold_pct + self.silver_pct <= 100,
            "gold_pct + silver_pct must not exceed 100"
        );
        if let Some(storm) = self.storm {
            assert!(storm.burst >= 1, "storm burst must be >= 1");
            assert!(storm.rounds >= 1, "storm must last at least one round");
        }
        self.fault.validate();
    }

    /// The switch graph this configuration runs over: a bidirectional
    /// ring `0 - 1 - ... - (n-1) - 0` (so the consecutive-switch default
    /// paths of [`path_of`](Self::path_of) are always valid routes), plus
    /// the configured [`extra_links`](Self::extra_links) chords. Every
    /// link shares the switch's single output port, matching the
    /// one-port-per-switch reservation model.
    pub fn topology(&self) -> rcbr_net::Topology {
        let n = self.num_switches;
        let mut topo = rcbr_net::Topology::new(n, self.hop_latency);
        if n == 2 {
            topo.add_duplex(0, 1, 0);
        } else if n > 2 {
            for i in 0..n {
                topo.add_duplex(i, (i + 1) % n, 0);
            }
        }
        for &(a, b) in &self.extra_links {
            topo.add_duplex(a, b, 0);
        }
        topo
    }

    /// The switch indices VC `vci` traverses: `hops_per_vc` consecutive
    /// switches starting at `vci % num_switches`. Pure function of the
    /// config, so every shard (and the sequential replay) derives the
    /// same routing without coordination.
    pub fn path_of(&self, vci: u32) -> Vec<usize> {
        let start = vci as usize % self.num_switches;
        (0..self.hops_per_vc)
            .map(|k| (start + k) % self.num_switches)
            .collect()
    }

    /// The priority class of VC `vci`: the `vci % 100` bucket falls in the
    /// Gold band, the Silver band after it, or the BestEffort remainder.
    /// Pure function of the config, so every shard (and the generator that
    /// stamps jobs) agrees without coordination.
    pub fn class_of(&self, vci: u32) -> PriorityClass {
        PriorityClass::from_mix(vci, self.gold_pct, self.silver_pct)
    }

    /// Traffic slots VC drivers step in `round`: `slots_per_round`,
    /// multiplied by the storm burst inside the storm window.
    pub fn slots_in_round(&self, round: u64) -> usize {
        match self.storm {
            Some(s) if (s.at_round..s.at_round + s.rounds).contains(&round) => {
                self.slots_per_round * s.burst as usize
            }
            _ => self.slots_per_round,
        }
    }

    /// Global traffic-slot index at which `round` begins — the sum of
    /// [`slots_in_round`](Self::slots_in_round) over all earlier rounds,
    /// in closed form so sequence numbers stay O(1) to derive. With no
    /// storm this is exactly `round * slots_per_round`, preserving the
    /// legacy sequence-number layout bit for bit.
    pub fn slot_base(&self, round: u64) -> u64 {
        let base = round * self.slots_per_round as u64;
        match self.storm {
            Some(s) => {
                let storm_rounds_before =
                    round.min(s.at_round + s.rounds).saturating_sub(s.at_round);
                base + storm_rounds_before * self.slots_per_round as u64 * (s.burst - 1)
            }
            None => base,
        }
    }

    /// The retry policy implied by this configuration.
    pub fn retry_policy(&self) -> rcbr_schedule::RetryPolicy {
        rcbr_schedule::RetryPolicy {
            timeout_supersteps: self.timeout_supersteps,
            retry_budget: self.retry_budget,
            backoff_base: self.backoff_base,
            backoff_jitter: self.backoff_jitter,
            // Decorrelate from the traffic seed so retry jitter and the
            // synthetic traces draw from independent streams.
            seed: self.seed ^ 0x5254_5259, // "RTRY"
        }
    }
}
