//! # rcbr-runtime — sharded signaling-plane runtime
//!
//! RCBR's core claim is that renegotiated CBR service is *cheap*: the
//! fast path of a renegotiation is two table lookups per switch, so a
//! signaling processor should sustain very high renegotiation rates. This
//! crate turns the [`rcbr_net`] primitives into a concurrent engine that
//! measures exactly that:
//!
//! - **Sharding** — switch/port reservation state is partitioned across
//!   worker threads; each shard owns a disjoint set of output ports.
//!   Channels carry batched RM-cell work between shards, and a mutex
//!   guards each VC's slow-path completion slot.
//! - **Pipelined multi-hop renegotiation** — a request traverses its
//!   path's shards one hop per superstep, preserving the paper's hop-`k`
//!   semantics: denial at hop `k` rolls back the `k` upstream
//!   reservations, lost delta cells leave real drift, and periodic
//!   absolute-rate resync cells repair it.
//! - **Open-loop load generation** — every VC plays a synthetic MPEG
//!   trace (calibrated to the Star Wars statistics) through the online
//!   AR(1) heuristic from [`rcbr_schedule`], which decides *when* that VC
//!   renegotiates and to what rate.
//! - **A deterministic fault plane** — a seeded
//!   [`FaultPlane`](rcbr_net::FaultPlane) drops, delays, duplicates, and
//!   bit-corrupts RM cells per hop, crashes and restarts switches (wiping
//!   their soft reservation state), and stalls switch groups. Sources run
//!   a timeout / bounded-retry / exponential-backoff state machine and
//!   degrade gracefully when the budget runs out; a periodic invariant
//!   auditor counts reservation drift and the end-of-run audit repairs it
//!   to zero.
//! - **Determinism under concurrency** — the engine is bulk-synchronous,
//!   so [`run`] produces bit-identical accept/deny/rollback/fault counters
//!   at any shard count, equal to the single-threaded [`run_sequential`]
//!   replay — under every fault mode. See [`engine`] for the argument.
//! - **Live measurement-based admission** — every switch carries a
//!   deterministic arrival estimator over the delivered renegotiation
//!   stream; an [`AdmissionPolicy`] (the memoryless Chernoff test or the
//!   equivalent-bandwidth test of the paper's Section VI) rolls the
//!   measurement window into per-port booking ceilings at superstep
//!   boundaries. The default [`AdmissionPolicy::PeakRate`] is the legacy
//!   static check, bit for bit. See [`admission`].
//!
//! ```
//! use rcbr_runtime::{run, run_sequential, RuntimeConfig};
//!
//! let mut cfg = RuntimeConfig::balanced(2, 16);
//! cfg.target_requests = 500;
//! let sharded = run(&cfg);
//! let replay = run_sequential(&cfg);
//! assert_eq!(sharded.counters, replay.counters);
//! assert!(sharded.counters.completed >= 500);
//! ```

pub mod admission;
mod audit;
pub mod config;
pub mod core;
pub mod engine;
mod gen;
pub mod report;
pub mod sequential;

pub use admission::{AdmissionPolicy, AdmissionReport, ArrivalEstimator, SwitchAdmission};
pub use audit::AuditReport;
pub use config::{RuntimeConfig, StormSpec};
pub use core::{CounterSnapshot, Outcome};
pub use engine::run;
pub use report::{LatencySummary, RunReport, ShardReport, VcOutcome};
pub use sequential::run_sequential;
