//! Run reports: counters, merged latency statistics, per-shard metrics.
//!
//! This module is also the runtime's *only* sanctioned wall-clock
//! boundary (`lint.toml` exempts it from the `wall-clock` rule): the
//! [`WallTimer`] below feeds throughput reporting and nothing else.

use rcbr_sim::Histogram;
use serde::{Deserialize, Serialize};

use crate::admission::AdmissionReport;
use crate::audit::AuditReport;
use crate::config::RuntimeConfig;
use crate::core::CounterSnapshot;

/// The audited wall-clock boundary. Wall time influences only the
/// `wall_seconds` / `throughput_per_sec` fields of a [`RunReport`] —
/// never simulation state, which runs on the logical superstep clock.
/// Reading `std::time::Instant` anywhere else in the runtime is a
/// `wall-clock` lint violation.
pub(crate) struct WallTimer {
    started: std::time::Instant,
}

impl WallTimer {
    /// Start timing.
    pub(crate) fn start() -> Self {
        Self {
            started: std::time::Instant::now(),
        }
    }

    /// Seconds elapsed since `start()`, for throughput accounting only.
    pub(crate) fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

/// Per-worker pipeline metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Jobs this shard processed across all supersteps.
    pub processed: u64,
    /// Requests this shard's VCs injected.
    pub injected: u64,
    /// Deepest per-superstep inbox this shard drained (the "queue depth"
    /// high-water mark).
    pub max_batch: u64,
}

/// Modeled signaling round-trip latency, merged across shards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Attempts with a latency sample (granted + denied; killed cells
    /// never report back, so timeouts carry no latency).
    pub count: u64,
    /// Mean round trip, seconds.
    pub mean: f64,
    /// Median round trip, seconds.
    pub p50: f64,
    /// 95th percentile, seconds.
    pub p95: f64,
    /// 99th percentile, seconds.
    pub p99: f64,
    /// Largest observed round trip, seconds.
    pub max: f64,
}

/// One VC's end-of-run outcome, for survivability assertions: did it end
/// on a valid route at a live rate, or cleanly degraded holding nothing?
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VcOutcome {
    /// The VC's identifier.
    pub vci: u32,
    /// The rate the source believes is reserved end to end (0 for a
    /// stranded/torn-down VC).
    pub believed: f64,
    /// The VC ended degraded (exhausted a retry budget, was stranded, or
    /// was floored by end-of-run recovery).
    pub degraded: bool,
    /// The VC's end-system buffer loss fraction.
    pub loss: f64,
    /// The route the VC's reservations live on at exit (empty if it holds
    /// nothing).
    pub route: Vec<usize>,
}

/// The result of one signaling-plane run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Shard count this run used (the sequential replay reports `1`).
    pub num_shards: usize,
    /// VC count.
    pub num_vcs: usize,
    /// Switch count.
    pub num_switches: usize,
    /// Hops per VC path.
    pub hops_per_vc: usize,
    /// Rounds executed.
    pub rounds: u64,
    /// Supersteps the logical clock advanced (identical across shard
    /// counts and the sequential replay).
    pub supersteps: u64,
    /// Wall-clock duration, seconds.
    pub wall_seconds: f64,
    /// Completed requests per wall-clock second.
    pub throughput_per_sec: f64,
    /// The shared atomic counters at the end of the run.
    pub counters: CounterSnapshot,
    /// What the end-of-run auditor found and repaired; `audit.final_drift`
    /// must be 0.
    pub audit: AuditReport,
    /// Admission accounting: grants and denials at the booking checks
    /// (split from the fault plane's lost cells), plus estimator and
    /// equivalent-bandwidth-cache telemetry.
    pub admission: AdmissionReport,
    /// VCs that ended the run degraded (exhausted a retry budget, or were
    /// floored by end-of-run recovery).
    pub degraded_vcs: u64,
    /// VCs whose route machinery was still in motion when the run ended —
    /// a reroute walk awaiting its verdict, a reroute backoff pending, or
    /// teardown walks queued but not yet emitted. Such VCs can
    /// legitimately leave `audit.off_route_residue` behind; when this is
    /// zero the residue must be zero too (the fuzzer's quiescent-residue
    /// oracle).
    pub unsettled_vcs: u64,
    /// VCs that ended the run browned out — BestEffort sources holding
    /// their last granted rate under advertised overload pressure instead
    /// of renegotiating.
    pub brownout_vcs: u64,
    /// Mean end-system buffer loss fraction across VCs.
    pub mean_source_loss: f64,
    /// Worst end-system buffer loss fraction across VCs.
    pub max_source_loss: f64,
    /// Per-VC end-of-run outcomes, ascending VCI.
    pub vcs: Vec<VcOutcome>,
    /// Merged latency statistics.
    pub latency: LatencySummary,
    /// Per-shard pipeline metrics (one entry for the sequential replay).
    pub shards: Vec<ShardReport>,
}

/// The latency histogram every worker records into (merged at the end);
/// bounds cover the longest possible modeled round trip.
pub(crate) fn latency_histogram(cfg: &RuntimeConfig) -> Histogram {
    let hi = (cfg.hop_latency * 2.0 * (cfg.hops_per_vc + 1) as f64).max(1e-9);
    Histogram::new(0.0, hi, 4 * (cfg.hops_per_vc + 1))
}

/// Exact round-trip accumulator: every modeled RTT is an integer hop
/// count scaled by `2 * hop_latency`, so summing the *hop counts* (and
/// scaling once at summary time) keeps the mean a pure function of the
/// completion multiset. A float running mean would pick up
/// partition-dependent rounding (parallel Welford merges in shard order,
/// the sequential replay streams in arrival order), breaking the
/// bit-identity invariant in the last ulps.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct RttStats {
    hops: u64,
    count: u64,
    max_hops: u64,
}

impl RttStats {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed attempt that touched `hops` hops.
    pub fn record(&mut self, hops: usize) {
        self.hops += hops as u64;
        self.count += 1;
        self.max_hops = self.max_hops.max(hops as u64);
    }

    /// Exact merge (integer sums are associative and commutative).
    pub fn merge(&mut self, other: &RttStats) {
        self.hops += other.hops;
        self.count += other.count;
        self.max_hops = self.max_hops.max(other.max_hops);
    }
}

/// Summarize merged latency stats.
pub(crate) fn summarize_latency(
    hist: &Histogram,
    rtt: &RttStats,
    hop_latency: f64,
) -> LatencySummary {
    let per_hop = 2.0 * hop_latency;
    LatencySummary {
        count: hist.count(),
        mean: if rtt.count > 0 {
            per_hop * rtt.hops as f64 / rtt.count as f64
        } else {
            0.0
        },
        p50: hist.quantile(0.5),
        p95: hist.quantile(0.95),
        p99: hist.quantile(0.99),
        max: per_hop * rtt.max_hops as f64,
    }
}
