//! The open-loop load generator: one [`VcRunner`] per virtual channel,
//! now with a failure-handling state machine.
//!
//! Each VC owns a synthetic MPEG trace (derived from the master seed and
//! its VCI, so generation is identical no matter which shard hosts it), an
//! end-system buffer, and the AR(1) renegotiation heuristic, packaged in
//! [`rcbr_schedule::VcDriver`]. Stepping a runner produces [`Job`]s tagged
//! with globally unique, shard-invariant sequence numbers.
//!
//! ## The request state machine
//!
//! ```text
//!            step() emits             verdict = Granted
//!   Idle ────────────────▶ Await ───────────────────────▶ Idle
//!                            │ verdict = Denied, or timeout
//!                            ▼
//!                         Backoff ──(due)──▶ Await  (retry as resync)
//!                            │ budget exhausted
//!                            ▼
//!                          Idle  (abandon: keep last granted rate,
//!                                 mark the VC degraded)
//! ```
//!
//! A killed cell (dropped, corrupted, crash-killed) never reports back, so
//! `Await` is exited by a per-request timeout measured in supersteps.
//! Retries re-request the *pending* rate as an absolute resync cell: the
//! failed attempt may have half-applied its delta along the path, and an
//! absolute cell both retries the request and repairs that drift in one
//! traversal. Backoff doubles per failure with seeded per-VC jitter so
//! synchronized failures don't retry in lockstep — yet every schedule is
//! deterministic, keeping the sharded engine and the sequential replay
//! bit-identical.
//!
//! The state machine is admission-policy agnostic: a `Denied` verdict is
//! handled identically whether a switch's static peak-rate check or a live
//! measurement-based policy (see [`crate::admission`]) refused the
//! booking. MBAC denials simply arrive as ordinary denials and ride the
//! same backoff / retry / degrade path above, unchanged.

use rcbr_net::{FaultPlane, PriorityClass, Topology, SALT_PRIMARY, SALT_TEARDOWN_BASE};
use rcbr_schedule::online::{Ar1Config, Ar1Policy};
use rcbr_schedule::{RetryBudget, RetryPolicy, ShedAccount, VcDriver};
use rcbr_sim::SimRng;
use rcbr_traffic::SyntheticMpegSource;

use std::sync::atomic::Ordering;

use crate::config::RuntimeConfig;
use crate::core::{Counters, Job, JobKind, Outcome, Route, MAX_ROUTE};

/// Supersteps a break-before-make teardown round occupies before the
/// replacement reservation walk goes out: exactly one round, so the
/// teardown has fully drained when the new walk is injected.
const BBM_TEAR_SUPERSTEPS: u64 = 1;

/// Where the VC's outstanding request stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqPhase {
    /// No request outstanding.
    Idle,
    /// An attempt is in flight (or was killed and will time out).
    Await {
        /// Superstep the attempt was injected at.
        injected_at: u64,
        /// Failed attempts so far for this request.
        failures: u32,
    },
    /// Waiting out a backoff before the next retry.
    Backoff {
        /// First superstep the retry may be injected at.
        until: u64,
        /// Failed attempts so far for this request.
        failures: u32,
    },
}

/// How a reroute sequences reservation against teardown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RerouteMode {
    /// Reserve the candidate route end to end first; tear the old hops
    /// down only after the commit. The default — service never gaps.
    MakeBeforeBreak,
    /// Tear the old route down first, then reserve fresh. The fallback
    /// under capacity pressure: a denied make-before-break attempt means
    /// old + new do not fit side by side, so the retry releases the old
    /// reservation (believed rate drops to 0 for the gap) before asking.
    BreakBeforeMake,
}

/// Where the VC stands with respect to its route's liveness.
#[derive(Debug, Clone, PartialEq)]
enum RouteState {
    /// The active route is live (as of the last check).
    Settled,
    /// A reroute walk is in flight along `candidate`.
    RerouteAwait {
        /// Superstep the walk was injected at.
        injected_at: u64,
        /// The route being reserved.
        candidate: Vec<usize>,
        /// The sequencing mode of this attempt.
        mode: RerouteMode,
    },
    /// Waiting out a backoff (or the teardown round of break-before-make)
    /// before the next reroute attempt.
    RerouteBackoff {
        /// First superstep the attempt may be injected at.
        until: u64,
        /// The sequencing mode of the next attempt.
        mode: RerouteMode,
    },
    /// No live route to the destination exists. The VC holds nothing and
    /// believes rate 0, and rechecks the topology every round — degraded,
    /// never deadlocked.
    Stranded,
}

/// Whether every switch on `route` is unkilled and every link between
/// consecutive hops is up at `now`. Transient crashes do *not* fail this
/// check: they end on their own and the retry machinery rides them out.
fn route_alive(route: &[usize], plane: &FaultPlane, now: u64) -> bool {
    route.iter().all(|&h| !plane.switch_killed(h, now))
        && route.windows(2).all(|w| !plane.link_down(w[0], w[1], now))
}

/// One VC's source-side state.
pub(crate) struct VcRunner {
    vci: u32,
    driver: VcDriver<Ar1Policy>,
    /// Requests emitted so far (drives the resync cadence).
    emitted: u64,
    phase: ReqPhase,
    retry: RetryPolicy,
    /// The VC's fixed endpoints (reroutes preserve them).
    src: usize,
    dst: usize,
    /// The route the VC's reservations currently live on.
    active_route: Vec<usize>,
    route_state: RouteState,
    /// The old route is torn down (break-before-make window, or
    /// stranded): the VC holds no reservations and believes rate 0.
    torn: bool,
    /// Monotone failure count, for deterministic candidate rotation.
    route_failures: u64,
    /// Consecutive-failure account for reroute attempts; refilled by any
    /// committed reroute.
    budget: RetryBudget,
    /// Teardown walks queued at phase A for emission at phase B.
    pending_tear: Vec<Vec<usize>>,
    /// The VC stranded and has not yet recovered (drives the
    /// `unstranded_events` counter).
    stranded_sticky: bool,
    /// The VC's priority class — stamped on every job it emits, so
    /// over-budget signaling queues shed in class order.
    class: PriorityClass,
    /// Consecutive-shed account, deliberately separate from the failure
    /// budget: sheds are congestion push-back, not verdicts.
    sheds: ShedAccount,
    /// BestEffort brownout: the VC holds its last granted rate and stops
    /// offering slot renegotiations until pressure clears (a clean grant)
    /// or the hold timer lapses.
    brownout: bool,
    /// Superstep at which a brownout's hold timer lapses.
    brownout_clear_at: u64,
}

impl VcRunner {
    /// Build the runner for `vci`. Deterministic in `(cfg.seed, vci)`.
    pub fn new(cfg: &RuntimeConfig, vci: u32) -> Self {
        let mut rng = SimRng::from_seed(cfg.seed).substream(vci as u64 + 1);
        let trace = SyntheticMpegSource::star_wars_like().generate(cfg.trace_frames, &mut rng);
        let tau = trace.frame_interval();
        let policy_cfg = Ar1Config::fig2(cfg.granularity, cfg.initial_rate, tau);
        let policy = Ar1Policy::new(policy_cfg, tau);
        let active_route = cfg.path_of(vci);
        Self {
            vci,
            driver: VcDriver::new(trace, policy, cfg.buffer),
            emitted: 0,
            phase: ReqPhase::Idle,
            retry: cfg.retry_policy(),
            src: active_route[0],
            dst: *active_route.last().expect("routes are nonempty"),
            active_route,
            route_state: RouteState::Settled,
            torn: false,
            route_failures: 0,
            budget: RetryBudget::new(cfg.retry_budget),
            pending_tear: Vec::new(),
            stranded_sticky: false,
            class: cfg.class_of(vci),
            sheds: ShedAccount::new(cfg.shed_budget),
            brownout: false,
            brownout_clear_at: 0,
        }
    }

    /// Round boundary, phase A: consume the outstanding attempt's verdict
    /// if one arrived, otherwise check it for timeout; then check the
    /// active route's liveness against the fault plane. `now` is the
    /// engine's superstep clock. The pipeline is quiescent here, which is
    /// what makes route decisions race-free: no cell is in flight to
    /// observe a half-switched route.
    #[allow(clippy::too_many_arguments)]
    pub fn begin_round(
        &mut self,
        cfg: &RuntimeConfig,
        topo: &Topology,
        plane: &FaultPlane,
        outcome: Option<Outcome>,
        pressured: bool,
        now: u64,
        counters: &Counters,
    ) {
        // Brownout timer fallback: probe again once the hold lapses (not
        // counted as an exit — only a clean grant proves pressure cleared).
        if self.brownout && now >= self.brownout_clear_at {
            self.brownout = false;
        }
        if matches!(self.route_state, RouteState::RerouteAwait { .. }) {
            // The outstanding attempt is a reroute walk; its verdict (or
            // timeout) belongs to the route machinery.
            self.reroute_verdict(outcome, now, counters);
        } else {
            match outcome {
                Some(Outcome::Granted) => {
                    self.driver.on_grant();
                    self.phase = ReqPhase::Idle;
                    self.sheds.on_success();
                    if self.brownout {
                        if pressured {
                            // The response still carried a hop's pressure
                            // flag: hold the brownout, refresh the timer.
                            self.brownout_clear_at = now + cfg.brownout_hold_supersteps;
                        } else {
                            self.brownout = false;
                            counters.brownout_exits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Some(Outcome::Shed) => self.shed(cfg, now, counters),
                Some(Outcome::Denied) => {
                    let ReqPhase::Await { failures, .. } = self.phase else {
                        unreachable!("a verdict implies an attempt in flight");
                    };
                    self.fail(failures + 1, now, counters);
                }
                None => {
                    if let ReqPhase::Await {
                        injected_at,
                        failures,
                    } = self.phase
                    {
                        if self.retry.timed_out(injected_at, now) {
                            // The cell was killed (dropped, corrupted, or
                            // crash-killed): no verdict will ever arrive.
                            counters.timeouts.fetch_add(1, Ordering::Relaxed);
                            self.fail(failures + 1, now, counters);
                        }
                    }
                }
            }
        }
        self.check_route(cfg, topo, plane, now);
    }

    /// Process the verdict (or timeout) of an in-flight reroute walk.
    fn reroute_verdict(&mut self, outcome: Option<Outcome>, now: u64, counters: &Counters) {
        let RouteState::RerouteAwait {
            injected_at,
            candidate,
            mode,
        } = std::mem::replace(&mut self.route_state, RouteState::Settled)
        else {
            unreachable!("caller checked the state");
        };
        match outcome {
            Some(Outcome::Shed) => {
                unreachable!("reroute walks are exempt from signaling-queue shedding")
            }
            Some(Outcome::Granted) => {
                // Commit: the candidate is reserved end to end, so switch
                // over *before* tearing down — hops the candidate does not
                // share with the old route become stale and are reclaimed
                // by an explicit teardown walk this round.
                counters.reroutes_committed.fetch_add(1, Ordering::Relaxed);
                let stale: Vec<usize> = self
                    .active_route
                    .iter()
                    .copied()
                    .filter(|h| !candidate.contains(h))
                    .collect();
                if !self.torn && !stale.is_empty() {
                    self.queue_tear(stale);
                }
                self.active_route = candidate;
                self.torn = false;
                // A successful renegotiation refills the retry account.
                self.budget.on_success();
                if self.stranded_sticky {
                    self.stranded_sticky = false;
                    counters.unstranded_events.fetch_add(1, Ordering::Relaxed);
                }
            }
            Some(Outcome::Denied) => {
                // Capacity: old + new do not fit side by side. The retry
                // goes break-before-make.
                counters.reroutes_denied.fetch_add(1, Ordering::Relaxed);
                self.reroute_failed(candidate, RerouteMode::BreakBeforeMake, now, counters);
            }
            None => {
                if self.retry.timed_out(injected_at, now) {
                    counters.timeouts.fetch_add(1, Ordering::Relaxed);
                    self.reroute_failed(candidate, mode, now, counters);
                } else {
                    self.route_state = RouteState::RerouteAwait {
                        injected_at,
                        candidate,
                        mode,
                    };
                }
            }
        }
    }

    /// Record a failed reroute attempt: compensate partial installs, then
    /// back off for a retry or strand.
    fn reroute_failed(
        &mut self,
        candidate: Vec<usize>,
        mode: RerouteMode,
        now: u64,
        counters: &Counters,
    ) {
        self.budget.on_failure();
        self.route_failures += 1;
        // Compensate: clear whatever the failed walk installed on hops
        // the active route does not cover. Uninstall is idempotent, so
        // hops the walk never reached are no-ops — the exact install
        // prefix need not be known.
        let comp: Vec<usize> = if self.torn {
            candidate
        } else {
            candidate
                .into_iter()
                .filter(|h| !self.active_route.contains(h))
                .collect()
        };
        if !comp.is_empty() {
            self.queue_tear(comp);
        }
        if self.budget.exhausted() {
            self.strand(counters);
        } else {
            let mode = if self.torn {
                // No reservations left to keep alive: stay break-first.
                RerouteMode::BreakBeforeMake
            } else {
                mode
            };
            self.route_state = RouteState::RerouteBackoff {
                until: now + self.retry.backoff(self.vci, self.budget.failures()),
                mode,
            };
        }
    }

    /// Out of live routes (or out of budget): release everything, mark
    /// degraded, and park in [`RouteState::Stranded`] — which rechecks
    /// the topology every round, so the VC is degraded but never
    /// deadlocked.
    fn strand(&mut self, counters: &Counters) {
        if !self.torn {
            self.queue_tear(self.active_route.clone());
            self.torn = true;
        }
        counters.stranded_events.fetch_add(1, Ordering::Relaxed);
        counters.exhausted.fetch_add(1, Ordering::Relaxed);
        counters.completed.fetch_add(1, Ordering::Relaxed);
        if !self.driver.is_degraded() {
            self.driver.mark_degraded();
            counters.degraded_events.fetch_add(1, Ordering::Relaxed);
        }
        self.stranded_sticky = true;
        self.route_state = RouteState::Stranded;
    }

    fn queue_tear(&mut self, hops: Vec<usize>) {
        debug_assert!(
            self.pending_tear.len() < 2,
            "at most two teardown walks per round"
        );
        self.pending_tear.push(hops);
    }

    /// Phase A route-liveness check: a Settled VC whose route died starts
    /// a reroute; a Stranded VC re-arms when the topology heals.
    fn check_route(&mut self, cfg: &RuntimeConfig, topo: &Topology, plane: &FaultPlane, now: u64) {
        match self.route_state {
            RouteState::Settled if !route_alive(&self.active_route, plane, now) => {
                // Cancel any outstanding normal request: the pipeline
                // is quiescent, so an attempt without a verdict is
                // already dead, and the reroute preempts retries.
                if self.driver.pending_rate().is_some() {
                    self.driver.on_deny();
                }
                self.phase = ReqPhase::Idle;
                self.route_state = RouteState::RerouteBackoff {
                    until: now,
                    mode: RerouteMode::MakeBeforeBreak,
                };
            }
            RouteState::Stranded if !self.candidates(cfg, topo, plane, now).is_empty() => {
                // A path reopened (e.g. a flapped link restored): start a
                // fresh failure episode from the torn state.
                self.budget = RetryBudget::new(cfg.retry_budget);
                self.route_state = RouteState::RerouteBackoff {
                    until: now,
                    mode: RerouteMode::BreakBeforeMake,
                };
            }
            _ => {}
        }
    }

    /// The live candidate routes between this VC's endpoints, in the
    /// deterministic `(length, lexicographic)` order of
    /// [`Topology::alive_routes`].
    fn candidates(
        &self,
        cfg: &RuntimeConfig,
        topo: &Topology,
        plane: &FaultPlane,
        now: u64,
    ) -> Vec<Vec<usize>> {
        topo.alive_routes(
            self.src,
            self.dst,
            cfg.reroute_k,
            MAX_ROUTE,
            &|s| !plane.switch_killed(s, now),
            &|a, b| !plane.link_down(a, b, now),
        )
    }

    /// Record the `failures`-th failure of the outstanding request:
    /// either back off for a retry, or exhaust the budget and degrade —
    /// the source keeps its last granted rate (the paper's fallback) and
    /// the request completes as abandoned.
    fn fail(&mut self, failures: u32, now: u64, counters: &Counters) {
        if self.retry.exhausted(failures) {
            counters.exhausted.fetch_add(1, Ordering::Relaxed);
            counters.completed.fetch_add(1, Ordering::Relaxed);
            self.driver.abandon();
            if !self.driver.is_degraded() {
                self.driver.mark_degraded();
                counters.degraded_events.fetch_add(1, Ordering::Relaxed);
            }
            self.phase = ReqPhase::Idle;
        } else {
            self.phase = ReqPhase::Backoff {
                until: now + self.retry.backoff(self.vci, failures),
                failures,
            };
        }
    }

    /// The outstanding attempt was shed by an over-budget signaling
    /// queue. Retryable on its own account — never the failure budget —
    /// with the decorrelated widening shed backoff; a BestEffort VC also
    /// enters brownout. An exhausted shed account abandons the request
    /// (the source keeps its granted rate) *without* degrading the VC:
    /// shedding is congestion push-back, not a failure.
    fn shed(&mut self, cfg: &RuntimeConfig, now: u64, counters: &Counters) {
        let ReqPhase::Await { failures, .. } = self.phase else {
            unreachable!("a shed verdict implies an attempt in flight");
        };
        let sheds = self.sheds.on_shed();
        if self.class == PriorityClass::BestEffort && !self.brownout {
            self.brownout = true;
            self.brownout_clear_at = now + cfg.brownout_hold_supersteps;
            counters.brownout_entries.fetch_add(1, Ordering::Relaxed);
        } else if self.brownout {
            self.brownout_clear_at = now + cfg.brownout_hold_supersteps;
        }
        if self.sheds.exhausted() {
            counters.exhausted.fetch_add(1, Ordering::Relaxed);
            counters.completed.fetch_add(1, Ordering::Relaxed);
            self.driver.abandon();
            self.phase = ReqPhase::Idle;
            // A fresh account for the next request.
            self.sheds.on_success();
        } else {
            self.phase = ReqPhase::Backoff {
                until: now + self.retry.shed_backoff(self.vci, sheds),
                failures,
            };
        }
    }

    /// Round boundary, phase B: run the reroute engine's emission half
    /// (due reroute walks, queued teardowns), then — only while Settled —
    /// inject a due retry and step the VC through one round of traffic
    /// slots. A reroute in progress pauses all normal emission: the
    /// source is busy re-establishing connectivity.
    #[allow(clippy::too_many_arguments)]
    pub fn emit_round(
        &mut self,
        cfg: &RuntimeConfig,
        topo: &Topology,
        plane: &FaultPlane,
        round: u64,
        now: u64,
        out: &mut Vec<Job>,
        counters: &Counters,
    ) {
        // The slot-0 sequence number for this round: free for control
        // traffic whenever no traffic-slot attempt claims it (a pending
        // request or an in-progress reroute suppresses slot emissions),
        // and teardown walks use distinct salts besides. `slot_base`
        // accounts for storm rounds' widened slot windows; without a storm
        // it is exactly `round * slots_per_round`, the legacy layout.
        let base_seq = cfg.slot_base(round) * cfg.num_vcs as u64 + self.vci as u64;

        if let RouteState::RerouteBackoff { until, mode } = self.route_state {
            if now >= until {
                if !self.pending_tear.is_empty() {
                    // Teardown walks queued this round overlap any
                    // candidate on the shared endpoints at minimum (a
                    // stranding tear covers the whole active route, a
                    // compensation tear the whole failed candidate).
                    // Launching a walk now would race them on those
                    // hops: sorted after the walk at a shared switch,
                    // the teardown uninstalls the entry the walk just
                    // reserved, and a later grant commits a route with
                    // holes in it. Same discipline as break-before-make:
                    // let the tears drain, walk next round.
                    self.route_state = RouteState::RerouteBackoff {
                        until: now + BBM_TEAR_SUPERSTEPS,
                        mode,
                    };
                } else if mode == RerouteMode::BreakBeforeMake && !self.torn {
                    // Break first: tear the old route down completely; the
                    // fresh reservation walk goes out next round, after
                    // the teardown has drained.
                    self.queue_tear(self.active_route.clone());
                    self.torn = true;
                    self.route_state = RouteState::RerouteBackoff {
                        until: now + BBM_TEAR_SUPERSTEPS,
                        mode,
                    };
                } else {
                    let cands = self.candidates(cfg, topo, plane, now);
                    if cands.is_empty() {
                        self.strand(counters);
                    } else {
                        // Deterministic rotation: successive failures try
                        // successive candidates of the (len, lex)-ordered
                        // list — a pure function of (failure count,
                        // topology, fault schedule).
                        let pick = (self.route_failures % cands.len() as u64) as usize;
                        let candidate = cands.into_iter().nth(pick).expect("pick < len");
                        out.push(Job {
                            seq: base_seq,
                            vci: self.vci,
                            hop: 0,
                            kind: JobKind::Reroute {
                                rate: self.driver.current_rate(),
                            },
                            salt: SALT_PRIMARY,
                            origin: 0,
                            cleared: false,
                            class: self.class,
                            pressured: false,
                            route: Route::from_slice(&candidate),
                        });
                        self.route_state = RouteState::RerouteAwait {
                            injected_at: now,
                            candidate,
                            mode,
                        };
                    }
                }
            }
        }

        if matches!(self.route_state, RouteState::Settled) {
            let route = Route::from_slice(&self.active_route);
            if let ReqPhase::Backoff { until, failures } = self.phase {
                if now >= until {
                    // Retry the pending rate as an absolute resync: the
                    // failed attempt may have half-applied its delta, and
                    // an absolute cell repairs that drift while re-asking.
                    let rate = self
                        .driver
                        .pending_rate()
                        .expect("backoff implies a pending request");
                    counters.retries.fetch_add(1, Ordering::Relaxed);
                    out.push(Job {
                        seq: base_seq,
                        vci: self.vci,
                        hop: 0,
                        kind: JobKind::Resync {
                            rate,
                            expected_prior: self.driver.current_rate(),
                        },
                        salt: SALT_PRIMARY,
                        origin: 0,
                        cleared: false,
                        class: self.class,
                        pressured: false,
                        route,
                    });
                    self.phase = ReqPhase::Await {
                        injected_at: now,
                        failures,
                    };
                }
            }
            for slot in 0..cfg.slots_in_round(round) {
                let Some(rate) = self.driver.step() else {
                    continue;
                };
                if self.brownout {
                    // Browned out: hold the granted rate and never offer
                    // the request to the network — the shed-backoff probe
                    // above is the only signaling until pressure clears.
                    // No counters move; the request was never injected.
                    self.driver.abandon();
                    continue;
                }
                let global_slot = cfg.slot_base(round) + slot as u64;
                let seq = global_slot * cfg.num_vcs as u64 + self.vci as u64;
                // The driver's current rate is still the pre-grant rate:
                // the delta below is what the network must add (or
                // return).
                let current = self.driver.current_rate();
                self.emitted += 1;
                let kind = if cfg.resync_interval > 0
                    && self.emitted.is_multiple_of(cfg.resync_interval)
                {
                    JobKind::Resync {
                        rate,
                        expected_prior: current,
                    }
                } else {
                    JobKind::Delta(rate - current)
                };
                out.push(Job {
                    seq,
                    vci: self.vci,
                    hop: 0,
                    kind,
                    salt: SALT_PRIMARY,
                    origin: 0,
                    cleared: false,
                    class: self.class,
                    pressured: false,
                    route,
                });
                self.phase = ReqPhase::Await {
                    injected_at: now,
                    failures: 0,
                };
            }
        }

        // Queued teardown walks last (stale hops after a commit,
        // compensation after a failed walk, break-before-make, or
        // stranding). Distinct salts keep same-seq control jobs totally
        // ordered — partition-independently.
        for (i, tear) in std::mem::take(&mut self.pending_tear)
            .into_iter()
            .enumerate()
        {
            out.push(Job {
                seq: base_seq,
                vci: self.vci,
                hop: 0,
                kind: JobKind::Teardown,
                salt: SALT_TEARDOWN_BASE + i as u8,
                origin: 0,
                cleared: true,
                class: self.class,
                pressured: false,
                route: Route::from_slice(&tear),
            });
        }
    }

    /// End of run: apply a verdict that arrived in the final round so the
    /// driver's believed rate (and route) reflects it — no retry
    /// processing, the run is over.
    pub fn apply_final(&mut self, outcome: Outcome) {
        if let RouteState::RerouteAwait { candidate, .. } = &self.route_state {
            // A granted reroute commits the route switch (its
            // reservations are already placed); a denial leaves residue
            // on the candidate hops for the end-of-run audit to reclaim.
            if outcome == Outcome::Granted {
                self.active_route = candidate.clone();
                self.torn = false;
            }
            self.route_state = RouteState::Settled;
            return;
        }
        match outcome {
            Outcome::Granted => self.driver.on_grant(),
            Outcome::Denied => self.driver.on_deny(),
            // The run is over: a final shed is just an unserved request —
            // the source keeps what it has.
            Outcome::Shed => self.driver.abandon(),
        }
        self.phase = ReqPhase::Idle;
    }

    /// Whether the run is ending with this VC's route machinery still in
    /// motion: a reroute walk awaiting its verdict, a backoff pending the
    /// next attempt, or teardown walks queued but not yet emitted. Such a
    /// VC can legitimately leave bandwidth on candidate or stale hops for
    /// the end-of-run audit to reclaim (`off_route_residue`), so the
    /// residue invariant only binds when every VC reports settled.
    ///
    /// Must be read *before* [`apply_final`](Self::apply_final): applying
    /// a final reroute verdict collapses the state to `Settled` while the
    /// residue it documents is still on the hops.
    pub fn unsettled_at_exit(&self) -> bool {
        !self.pending_tear.is_empty()
            || matches!(
                self.route_state,
                RouteState::RerouteAwait { .. } | RouteState::RerouteBackoff { .. }
            )
    }

    /// The VCI this runner drives.
    pub fn vci(&self) -> u32 {
        self.vci
    }

    /// The rate the source currently believes is reserved end to end —
    /// 0 while the VC holds nothing (torn down or stranded).
    pub fn believed_rate(&self) -> f64 {
        if self.torn {
            0.0
        } else {
            self.driver.current_rate()
        }
    }

    /// The route the auditor should cross-check this VC's reservations
    /// against — empty while the VC holds nothing, so every entry it may
    /// still be leaving behind is treated as off-route residue.
    pub fn audit_route(&self) -> Vec<u16> {
        if self.torn {
            Vec::new()
        } else {
            self.active_route.iter().map(|&h| h as u16).collect()
        }
    }

    /// The route this VC's reservations should live on at end of run
    /// (empty if it holds nothing).
    pub fn final_route(&self) -> Vec<usize> {
        if self.torn {
            Vec::new()
        } else {
            self.active_route.clone()
        }
    }

    /// Whether this VC ever exhausted a retry budget (or was floored by
    /// the end-of-run auditor).
    pub fn is_degraded(&self) -> bool {
        self.driver.is_degraded()
    }

    /// Whether this VC is ending the run browned out (holding its granted
    /// rate, not renegotiating, waiting for pressure to clear).
    pub fn in_brownout(&self) -> bool {
        self.brownout
    }

    /// Fraction of arrived bits this VC lost to end-system buffer
    /// overflow.
    pub fn loss_fraction(&self) -> f64 {
        self.driver.loss_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cfg() -> RuntimeConfig {
        let mut cfg = RuntimeConfig::balanced(1, 8);
        cfg.fault = rcbr_net::FaultConfig::transparent();
        cfg
    }

    /// Drive `r` for `rounds` rounds against a synthetic network that
    /// answers every attempt with `verdict` (or, with `verdict == None`,
    /// kills every cell so only timeouts answer).
    fn drive(
        r: &mut VcRunner,
        cfg: &RuntimeConfig,
        rounds: u64,
        verdict: Option<Outcome>,
        counters: &Counters,
    ) -> Vec<Job> {
        let topo = cfg.topology();
        let plane = FaultPlane::new(cfg.fault.clone());
        let mut jobs = Vec::new();
        let mut superstep = 0u64;
        let mut outstanding = false;
        for round in 0..rounds {
            let outcome = if outstanding { verdict } else { None };
            if outcome.is_some() {
                outstanding = false;
            }
            r.begin_round(cfg, &topo, &plane, outcome, false, superstep, counters);
            let before = jobs.len();
            r.emit_round(cfg, &topo, &plane, round, superstep, &mut jobs, counters);
            assert!(jobs.len() - before <= 1, "multiple attempts in one round");
            if jobs.len() > before {
                outstanding = true;
            }
            superstep += 8; // a plausible per-round superstep budget
        }
        jobs
    }

    #[test]
    fn construction_is_deterministic() {
        let cfg = quiet_cfg();
        let ca = Counters::default();
        let cb = Counters::default();
        let mut a = VcRunner::new(&cfg, 3);
        let mut b = VcRunner::new(&cfg, 3);
        let ja = drive(&mut a, &cfg, 50, Some(Outcome::Granted), &ca);
        let jb = drive(&mut b, &cfg, 50, Some(Outcome::Granted), &cb);
        assert!(
            !ja.is_empty(),
            "the MPEG source must trigger renegotiations"
        );
        assert_eq!(ja.len(), jb.len());
        for (x, y) in ja.iter().zip(&jb) {
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn denials_are_retried_then_exhausted() {
        let mut cfg = quiet_cfg();
        cfg.retry_budget = 2;
        cfg.backoff_base = 1;
        cfg.backoff_jitter = 0;
        let counters = Counters::default();
        let mut r = VcRunner::new(&cfg, 0);
        let jobs = drive(&mut r, &cfg, 300, Some(Outcome::Denied), &counters);
        assert!(!jobs.is_empty());
        let snap = counters.snapshot();
        assert!(snap.retries > 0, "denials must trigger retries");
        assert!(snap.exhausted > 0, "the budget must run out");
        assert_eq!(snap.completed, snap.exhausted);
        assert_eq!(snap.degraded_events, 1, "degradation is marked once");
        assert!(r.is_degraded());
        // Retries go out as absolute resync cells.
        assert!(jobs
            .iter()
            .any(|j| matches!(j.kind, JobKind::Resync { .. })));
    }

    #[test]
    fn killed_cells_time_out() {
        let mut cfg = quiet_cfg();
        cfg.timeout_supersteps = 16;
        cfg.retry_budget = 1;
        let counters = Counters::default();
        let mut r = VcRunner::new(&cfg, 2);
        drive(&mut r, &cfg, 300, None, &counters);
        let snap = counters.snapshot();
        assert!(snap.timeouts > 0, "unanswered attempts must time out");
        assert!(snap.exhausted > 0);
        assert!(r.is_degraded());
    }

    #[test]
    fn killed_route_triggers_mbb_reroute_commit_and_stale_teardown() {
        let mut cfg = quiet_cfg();
        cfg.extra_links = vec![(2, 4)];
        // VC 1's default route is [1, 2, 3, 4]; killing switch 3 leaves
        // the chord detour [1, 2, 4] as the shortest live candidate.
        cfg.fault.kills = vec![rcbr_net::KillSpec {
            switch: 3,
            at_superstep: 1,
        }];
        let topo = cfg.topology();
        let plane = FaultPlane::new(cfg.fault.clone());
        let counters = Counters::default();
        let mut r = VcRunner::new(&cfg, 1);

        let mut jobs = Vec::new();
        r.begin_round(&cfg, &topo, &plane, None, false, 2, &counters);
        r.emit_round(&cfg, &topo, &plane, 0, 2, &mut jobs, &counters);
        assert_eq!(jobs.len(), 1, "a dead route emits exactly the reroute walk");
        assert!(matches!(jobs[0].kind, JobKind::Reroute { .. }));
        let walked: Vec<usize> = (0..jobs[0].route.len())
            .map(|i| jobs[0].route.hop(i))
            .collect();
        assert_eq!(walked, vec![1, 2, 4], "make-before-break takes the chord");
        // Believed rate stays up through the make-before-break window.
        assert!(r.believed_rate() > 0.0);

        jobs.clear();
        r.begin_round(
            &cfg,
            &topo,
            &plane,
            Some(Outcome::Granted),
            false,
            8,
            &counters,
        );
        assert_eq!(r.final_route(), vec![1, 2, 4]);
        r.emit_round(&cfg, &topo, &plane, 1, 8, &mut jobs, &counters);
        let tears: Vec<&Job> = jobs
            .iter()
            .filter(|j| matches!(j.kind, JobKind::Teardown))
            .collect();
        assert_eq!(tears.len(), 1, "the stale hop gets one teardown walk");
        assert_eq!(tears[0].route.len(), 1);
        assert_eq!(tears[0].route.hop(0), 3);
        let snap = counters.snapshot();
        assert_eq!(snap.reroutes_committed, 1);
        assert_eq!(snap.stranded_events, 0);
    }

    #[test]
    fn denied_reroute_falls_back_to_break_before_make() {
        let mut cfg = quiet_cfg();
        cfg.backoff_base = 1;
        cfg.backoff_jitter = 0;
        cfg.extra_links = vec![(2, 4)];
        cfg.fault.kills = vec![rcbr_net::KillSpec {
            switch: 3,
            at_superstep: 1,
        }];
        let topo = cfg.topology();
        let plane = FaultPlane::new(cfg.fault.clone());
        let counters = Counters::default();
        let mut r = VcRunner::new(&cfg, 1);

        // Round 0: make-before-break walk along the chord goes out.
        let mut jobs = Vec::new();
        r.begin_round(&cfg, &topo, &plane, None, false, 2, &counters);
        r.emit_round(&cfg, &topo, &plane, 0, 2, &mut jobs, &counters);
        assert!(matches!(jobs[0].kind, JobKind::Reroute { .. }));

        // The walk is denied (capacity): the retry must go break-first.
        jobs.clear();
        r.begin_round(
            &cfg,
            &topo,
            &plane,
            Some(Outcome::Denied),
            false,
            10,
            &counters,
        );
        assert_eq!(counters.snapshot().reroutes_denied, 1);
        assert!(r.believed_rate() > 0.0, "nothing torn yet");
        // Backoff elapses: the break round tears the whole old route.
        r.emit_round(&cfg, &topo, &plane, 1, 20, &mut jobs, &counters);
        let tears: Vec<&Job> = jobs
            .iter()
            .filter(|j| matches!(j.kind, JobKind::Teardown))
            .collect();
        assert_eq!(tears.len(), 1);
        assert_eq!(
            tears[0].route.len(),
            4,
            "break-before-make tears everything"
        );
        assert_eq!(r.believed_rate(), 0.0, "service gaps during the break");

        // Next round: the fresh reservation walk goes out, and a grant
        // restores service on the new route.
        jobs.clear();
        r.begin_round(&cfg, &topo, &plane, None, false, 28, &counters);
        r.emit_round(&cfg, &topo, &plane, 2, 28, &mut jobs, &counters);
        assert!(jobs
            .iter()
            .any(|j| matches!(j.kind, JobKind::Reroute { .. })));
        r.begin_round(
            &cfg,
            &topo,
            &plane,
            Some(Outcome::Granted),
            false,
            36,
            &counters,
        );
        assert_eq!(counters.snapshot().reroutes_committed, 1);
        assert!(r.believed_rate() > 0.0);
        assert!(!r.final_route().contains(&3));
    }

    #[test]
    fn unreachable_destination_strands_then_recovers_when_links_heal() {
        let mut cfg = quiet_cfg();
        cfg.retry_budget = 1;
        cfg.backoff_base = 1;
        cfg.backoff_jitter = 0;
        // Cut both ring links around VC 1's destination (switch 4) for a
        // window: no candidate survives, so the VC must strand — and then
        // re-arm once the links come back.
        for (a, b) in [(3usize, 4usize), (4, 5)] {
            cfg.fault.link_downs.push(rcbr_net::LinkDownSpec {
                a,
                b,
                at_superstep: 1,
                down_supersteps: 100,
            });
        }
        let topo = cfg.topology();
        let plane = FaultPlane::new(cfg.fault.clone());
        let counters = Counters::default();
        let mut r = VcRunner::new(&cfg, 1);

        let mut jobs = Vec::new();
        r.begin_round(&cfg, &topo, &plane, None, false, 2, &counters);
        r.emit_round(&cfg, &topo, &plane, 0, 2, &mut jobs, &counters);
        assert_eq!(counters.snapshot().stranded_events, 1);
        assert_eq!(r.believed_rate(), 0.0, "a stranded VC holds nothing");
        assert!(r.final_route().is_empty());
        let tears = jobs
            .iter()
            .filter(|j| matches!(j.kind, JobKind::Teardown))
            .count();
        assert_eq!(tears, 1, "stranding tears the whole active route down");

        // Links heal at superstep 101: the recheck re-arms, the walk goes
        // out, and a grant un-strands the VC.
        jobs.clear();
        r.begin_round(&cfg, &topo, &plane, None, false, 101, &counters);
        r.emit_round(&cfg, &topo, &plane, 1, 101, &mut jobs, &counters);
        assert!(
            jobs.iter()
                .any(|j| matches!(j.kind, JobKind::Reroute { .. })),
            "a revived topology re-arms the stranded VC"
        );
        r.begin_round(
            &cfg,
            &topo,
            &plane,
            Some(Outcome::Granted),
            false,
            108,
            &counters,
        );
        let snap = counters.snapshot();
        assert_eq!(snap.unstranded_events, 1);
        assert_eq!(r.final_route(), vec![1, 2, 3, 4]);
        assert!(r.believed_rate() > 0.0);
    }

    #[test]
    fn sheds_exhaust_their_own_account_without_degrading() {
        let mut cfg = quiet_cfg();
        cfg.shed_budget = 2;
        cfg.backoff_base = 1;
        cfg.backoff_jitter = 0;
        let counters = Counters::default();
        // VC 1 is Gold under the default 25/25 mix: sheds must never
        // brown it out, only back it off and eventually abandon.
        let mut r = VcRunner::new(&cfg, 1);
        drive(&mut r, &cfg, 300, Some(Outcome::Shed), &counters);
        let snap = counters.snapshot();
        assert!(snap.exhausted > 0, "the shed account must run out");
        assert_eq!(snap.completed, snap.exhausted);
        assert_eq!(
            snap.degraded_events, 0,
            "sheds are push-back, not failures: no degradation"
        );
        assert!(!r.is_degraded());
        assert!(!r.in_brownout(), "Gold VCs never brown out");
        assert_eq!(snap.brownout_entries, 0);
    }

    #[test]
    fn best_effort_shed_enters_brownout_and_a_clean_grant_exits() {
        let mut cfg = quiet_cfg();
        cfg.backoff_base = 1;
        cfg.backoff_jitter = 0;
        cfg.brownout_hold_supersteps = 10_000;
        let topo = cfg.topology();
        let plane = FaultPlane::new(cfg.fault.clone());
        let counters = Counters::default();
        // vci % 100 = 51 falls past the Gold + Silver bands.
        assert_eq!(cfg.class_of(51), rcbr_net::PriorityClass::BestEffort);
        let mut r = VcRunner::new(&cfg, 51);

        // Step rounds until the driver offers an attempt.
        let mut jobs = Vec::new();
        let mut round = 0u64;
        let mut now = 0u64;
        while jobs.is_empty() {
            r.begin_round(&cfg, &topo, &plane, None, false, now, &counters);
            r.emit_round(&cfg, &topo, &plane, round, now, &mut jobs, &counters);
            round += 1;
            now += 8;
        }

        // Shed it: the BestEffort VC browns out and schedules the probe.
        r.begin_round(
            &cfg,
            &topo,
            &plane,
            Some(Outcome::Shed),
            false,
            now,
            &counters,
        );
        assert!(r.in_brownout());
        assert_eq!(counters.snapshot().brownout_entries, 1);
        jobs.clear();
        now += 8;
        r.begin_round(&cfg, &topo, &plane, None, false, now, &counters);
        r.emit_round(&cfg, &topo, &plane, round, now, &mut jobs, &counters);
        assert_eq!(
            jobs.len(),
            1,
            "brownout allows exactly the shed-backoff probe, no slot traffic"
        );
        assert!(matches!(jobs[0].kind, JobKind::Resync { .. }));

        // The probe comes back granted and clean: the brownout ends.
        now += 8;
        r.begin_round(
            &cfg,
            &topo,
            &plane,
            Some(Outcome::Granted),
            false,
            now,
            &counters,
        );
        assert!(!r.in_brownout(), "a clean grant ends the brownout");
        assert_eq!(counters.snapshot().brownout_exits, 1);
    }

    #[test]
    fn pressured_grant_keeps_the_brownout() {
        let mut cfg = quiet_cfg();
        cfg.backoff_base = 1;
        cfg.backoff_jitter = 0;
        cfg.brownout_hold_supersteps = 10_000;
        let topo = cfg.topology();
        let plane = FaultPlane::new(cfg.fault.clone());
        let counters = Counters::default();
        let mut r = VcRunner::new(&cfg, 51);
        let mut jobs = Vec::new();
        let mut round = 0u64;
        let mut now = 0u64;
        while jobs.is_empty() {
            r.begin_round(&cfg, &topo, &plane, None, false, now, &counters);
            r.emit_round(&cfg, &topo, &plane, round, now, &mut jobs, &counters);
            round += 1;
            now += 8;
        }
        r.begin_round(
            &cfg,
            &topo,
            &plane,
            Some(Outcome::Shed),
            false,
            now,
            &counters,
        );
        assert!(r.in_brownout());
        // The probe's grant still carries a hop's pressure flag: the VC
        // stays browned out (timer refreshed) and no exit is counted.
        r.begin_round(
            &cfg,
            &topo,
            &plane,
            Some(Outcome::Granted),
            true,
            now + 8,
            &counters,
        );
        assert!(r.in_brownout(), "a pressured grant refreshes the brownout");
        assert_eq!(counters.snapshot().brownout_exits, 0);
        // And while browned out with nothing pending, no slot traffic.
        jobs.clear();
        r.emit_round(&cfg, &topo, &plane, round, now + 8, &mut jobs, &counters);
        assert!(jobs.is_empty(), "brownout suppresses slot renegotiation");
    }

    #[test]
    fn brownout_hold_timer_lapses_into_probing() {
        let mut cfg = quiet_cfg();
        cfg.backoff_base = 1;
        cfg.backoff_jitter = 0;
        cfg.brownout_hold_supersteps = 16;
        let topo = cfg.topology();
        let plane = FaultPlane::new(cfg.fault.clone());
        let counters = Counters::default();
        let mut r = VcRunner::new(&cfg, 51);
        let mut jobs = Vec::new();
        let mut round = 0u64;
        let mut now = 0u64;
        while jobs.is_empty() {
            r.begin_round(&cfg, &topo, &plane, None, false, now, &counters);
            r.emit_round(&cfg, &topo, &plane, round, now, &mut jobs, &counters);
            round += 1;
            now += 8;
        }
        r.begin_round(
            &cfg,
            &topo,
            &plane,
            Some(Outcome::Shed),
            false,
            now,
            &counters,
        );
        assert!(r.in_brownout());
        // The timer lapses: the VC resumes renegotiating without a grant,
        // and the lapse is not counted as a pressure-cleared exit.
        r.begin_round(&cfg, &topo, &plane, None, false, now + 17, &counters);
        assert!(!r.in_brownout());
        assert_eq!(counters.snapshot().brownout_exits, 0);
    }

    #[test]
    fn storm_rounds_widen_the_slot_window_deterministically() {
        let mut cfg = quiet_cfg();
        cfg.storm = Some(crate::config::StormSpec {
            at_round: 2,
            rounds: 2,
            burst: 3,
        });
        cfg.validate();
        let spr = cfg.slots_per_round as u64;
        assert_eq!(cfg.slots_in_round(0), cfg.slots_per_round);
        assert_eq!(cfg.slots_in_round(2), cfg.slots_per_round * 3);
        assert_eq!(cfg.slots_in_round(3), cfg.slots_per_round * 3);
        assert_eq!(cfg.slots_in_round(4), cfg.slots_per_round);
        // slot_base is the running sum of slots_in_round.
        let mut acc = 0u64;
        for round in 0..8 {
            assert_eq!(cfg.slot_base(round), acc, "round {round}");
            acc += cfg.slots_in_round(round) as u64;
        }
        // And without a storm it reduces to the legacy layout bit for bit.
        cfg.storm = None;
        for round in 0..8 {
            assert_eq!(cfg.slot_base(round), round * spr);
        }
    }

    #[test]
    fn resync_cadence() {
        let mut cfg = quiet_cfg();
        cfg.resync_interval = 2;
        let counters = Counters::default();
        let mut r = VcRunner::new(&cfg, 1);
        let jobs = drive(&mut r, &cfg, 400, Some(Outcome::Granted), &counters);
        let resyncs = jobs
            .iter()
            .filter(|j| matches!(j.kind, JobKind::Resync { .. }))
            .count();
        assert!(resyncs > 0, "no resync cells emitted");
        // Every second request is a resync (no retries here: all granted).
        assert_eq!(resyncs, jobs.len() / 2);
    }
}
