//! The open-loop load generator: one [`VcRunner`] per virtual channel,
//! now with a failure-handling state machine.
//!
//! Each VC owns a synthetic MPEG trace (derived from the master seed and
//! its VCI, so generation is identical no matter which shard hosts it), an
//! end-system buffer, and the AR(1) renegotiation heuristic, packaged in
//! [`rcbr_schedule::VcDriver`]. Stepping a runner produces [`Job`]s tagged
//! with globally unique, shard-invariant sequence numbers.
//!
//! ## The request state machine
//!
//! ```text
//!            step() emits             verdict = Granted
//!   Idle ────────────────▶ Await ───────────────────────▶ Idle
//!                            │ verdict = Denied, or timeout
//!                            ▼
//!                         Backoff ──(due)──▶ Await  (retry as resync)
//!                            │ budget exhausted
//!                            ▼
//!                          Idle  (abandon: keep last granted rate,
//!                                 mark the VC degraded)
//! ```
//!
//! A killed cell (dropped, corrupted, crash-killed) never reports back, so
//! `Await` is exited by a per-request timeout measured in supersteps.
//! Retries re-request the *pending* rate as an absolute resync cell: the
//! failed attempt may have half-applied its delta along the path, and an
//! absolute cell both retries the request and repairs that drift in one
//! traversal. Backoff doubles per failure with seeded per-VC jitter so
//! synchronized failures don't retry in lockstep — yet every schedule is
//! deterministic, keeping the sharded engine and the sequential replay
//! bit-identical.

use rcbr_schedule::online::{Ar1Config, Ar1Policy};
use rcbr_schedule::{RetryPolicy, VcDriver};
use rcbr_sim::SimRng;
use rcbr_traffic::SyntheticMpegSource;

use std::sync::atomic::Ordering;

use crate::config::RuntimeConfig;
use crate::core::{Counters, Job, JobKind, Outcome};

/// Where the VC's outstanding request stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReqPhase {
    /// No request outstanding.
    Idle,
    /// An attempt is in flight (or was killed and will time out).
    Await {
        /// Superstep the attempt was injected at.
        injected_at: u64,
        /// Failed attempts so far for this request.
        failures: u32,
    },
    /// Waiting out a backoff before the next retry.
    Backoff {
        /// First superstep the retry may be injected at.
        until: u64,
        /// Failed attempts so far for this request.
        failures: u32,
    },
}

/// One VC's source-side state.
pub(crate) struct VcRunner {
    vci: u32,
    driver: VcDriver<Ar1Policy>,
    /// Requests emitted so far (drives the resync cadence).
    emitted: u64,
    phase: ReqPhase,
    retry: RetryPolicy,
}

impl VcRunner {
    /// Build the runner for `vci`. Deterministic in `(cfg.seed, vci)`.
    pub fn new(cfg: &RuntimeConfig, vci: u32) -> Self {
        let mut rng = SimRng::from_seed(cfg.seed).substream(vci as u64 + 1);
        let trace = SyntheticMpegSource::star_wars_like().generate(cfg.trace_frames, &mut rng);
        let tau = trace.frame_interval();
        let policy_cfg = Ar1Config::fig2(cfg.granularity, cfg.initial_rate, tau);
        let policy = Ar1Policy::new(policy_cfg, tau);
        Self {
            vci,
            driver: VcDriver::new(trace, policy, cfg.buffer),
            emitted: 0,
            phase: ReqPhase::Idle,
            retry: cfg.retry_policy(),
        }
    }

    /// Round boundary, phase A: consume the outstanding attempt's verdict
    /// if one arrived, otherwise check it for timeout. `now` is the
    /// engine's superstep clock.
    pub fn begin_round(&mut self, outcome: Option<Outcome>, now: u64, counters: &Counters) {
        match outcome {
            Some(Outcome::Granted) => {
                self.driver.on_grant();
                self.phase = ReqPhase::Idle;
            }
            Some(Outcome::Denied) => {
                let ReqPhase::Await { failures, .. } = self.phase else {
                    unreachable!("a verdict implies an attempt in flight");
                };
                self.fail(failures + 1, now, counters);
            }
            None => {
                if let ReqPhase::Await {
                    injected_at,
                    failures,
                } = self.phase
                {
                    if self.retry.timed_out(injected_at, now) {
                        // The cell was killed (dropped, corrupted, or
                        // crash-killed): no verdict will ever arrive.
                        counters.timeouts.fetch_add(1, Ordering::Relaxed);
                        self.fail(failures + 1, now, counters);
                    }
                }
            }
        }
    }

    /// Record the `failures`-th failure of the outstanding request:
    /// either back off for a retry, or exhaust the budget and degrade —
    /// the source keeps its last granted rate (the paper's fallback) and
    /// the request completes as abandoned.
    fn fail(&mut self, failures: u32, now: u64, counters: &Counters) {
        if self.retry.exhausted(failures) {
            counters.exhausted.fetch_add(1, Ordering::Relaxed);
            counters.completed.fetch_add(1, Ordering::Relaxed);
            self.driver.abandon();
            if !self.driver.is_degraded() {
                self.driver.mark_degraded();
                counters.degraded_events.fetch_add(1, Ordering::Relaxed);
            }
            self.phase = ReqPhase::Idle;
        } else {
            self.phase = ReqPhase::Backoff {
                until: now + self.retry.backoff(self.vci, failures),
                failures,
            };
        }
    }

    /// Round boundary, phase B: inject a due retry, then step the VC
    /// through one round of traffic slots, appending emitted requests to
    /// `out`. At most one attempt per round surfaces (the source has a
    /// single outstanding RM cell; the driver suppresses policy requests
    /// while one is pending).
    pub fn emit_round(
        &mut self,
        cfg: &RuntimeConfig,
        round: u64,
        now: u64,
        out: &mut Vec<Job>,
        counters: &Counters,
    ) {
        if let ReqPhase::Backoff { until, failures } = self.phase {
            if now >= until {
                // Retry the pending rate as an absolute resync: the failed
                // attempt may have half-applied its delta, and an absolute
                // cell repairs that drift while re-asking.
                let rate = self
                    .driver
                    .pending_rate()
                    .expect("backoff implies a pending request");
                counters.retries.fetch_add(1, Ordering::Relaxed);
                // The slot-0 sequence number for this round; unique, since
                // a pending request suppresses every traffic-slot emission.
                let seq = round * cfg.slots_per_round as u64 * cfg.num_vcs as u64 + self.vci as u64;
                out.push(Job {
                    seq,
                    vci: self.vci,
                    hop: 0,
                    kind: JobKind::Resync {
                        rate,
                        expected_prior: self.driver.current_rate(),
                    },
                    salt: 0,
                    origin: 0,
                    cleared: false,
                });
                self.phase = ReqPhase::Await {
                    injected_at: now,
                    failures,
                };
            }
        }
        for slot in 0..cfg.slots_per_round {
            let Some(rate) = self.driver.step() else {
                continue;
            };
            let global_slot = round * cfg.slots_per_round as u64 + slot as u64;
            let seq = global_slot * cfg.num_vcs as u64 + self.vci as u64;
            // The driver's current rate is still the pre-grant rate: the
            // delta below is what the network must add (or return).
            let current = self.driver.current_rate();
            self.emitted += 1;
            let kind =
                if cfg.resync_interval > 0 && self.emitted.is_multiple_of(cfg.resync_interval) {
                    JobKind::Resync {
                        rate,
                        expected_prior: current,
                    }
                } else {
                    JobKind::Delta(rate - current)
                };
            out.push(Job {
                seq,
                vci: self.vci,
                hop: 0,
                kind,
                salt: 0,
                origin: 0,
                cleared: false,
            });
            self.phase = ReqPhase::Await {
                injected_at: now,
                failures: 0,
            };
        }
    }

    /// End of run: apply a verdict that arrived in the final round so the
    /// driver's believed rate reflects it (no retry processing — the run
    /// is over).
    pub fn apply_final(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Granted => self.driver.on_grant(),
            Outcome::Denied => self.driver.on_deny(),
        }
        self.phase = ReqPhase::Idle;
    }

    /// The VCI this runner drives.
    pub fn vci(&self) -> u32 {
        self.vci
    }

    /// The rate the source currently believes is reserved end to end.
    pub fn believed_rate(&self) -> f64 {
        self.driver.current_rate()
    }

    /// Whether this VC ever exhausted a retry budget (or was floored by
    /// the end-of-run auditor).
    pub fn is_degraded(&self) -> bool {
        self.driver.is_degraded()
    }

    /// Fraction of arrived bits this VC lost to end-system buffer
    /// overflow.
    pub fn loss_fraction(&self) -> f64 {
        self.driver.loss_fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_cfg() -> RuntimeConfig {
        let mut cfg = RuntimeConfig::balanced(1, 8);
        cfg.fault = rcbr_net::FaultConfig::transparent();
        cfg
    }

    /// Drive `r` for `rounds` rounds against a synthetic network that
    /// answers every attempt with `verdict` (or, with `verdict == None`,
    /// kills every cell so only timeouts answer).
    fn drive(
        r: &mut VcRunner,
        cfg: &RuntimeConfig,
        rounds: u64,
        verdict: Option<Outcome>,
        counters: &Counters,
    ) -> Vec<Job> {
        let mut jobs = Vec::new();
        let mut superstep = 0u64;
        let mut outstanding = false;
        for round in 0..rounds {
            let outcome = if outstanding { verdict } else { None };
            if outcome.is_some() {
                outstanding = false;
            }
            r.begin_round(outcome, superstep, counters);
            let before = jobs.len();
            r.emit_round(cfg, round, superstep, &mut jobs, counters);
            assert!(jobs.len() - before <= 1, "multiple attempts in one round");
            if jobs.len() > before {
                outstanding = true;
            }
            superstep += 8; // a plausible per-round superstep budget
        }
        jobs
    }

    #[test]
    fn construction_is_deterministic() {
        let cfg = quiet_cfg();
        let ca = Counters::default();
        let cb = Counters::default();
        let mut a = VcRunner::new(&cfg, 3);
        let mut b = VcRunner::new(&cfg, 3);
        let ja = drive(&mut a, &cfg, 50, Some(Outcome::Granted), &ca);
        let jb = drive(&mut b, &cfg, 50, Some(Outcome::Granted), &cb);
        assert!(
            !ja.is_empty(),
            "the MPEG source must trigger renegotiations"
        );
        assert_eq!(ja.len(), jb.len());
        for (x, y) in ja.iter().zip(&jb) {
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn denials_are_retried_then_exhausted() {
        let mut cfg = quiet_cfg();
        cfg.retry_budget = 2;
        cfg.backoff_base = 1;
        cfg.backoff_jitter = 0;
        let counters = Counters::default();
        let mut r = VcRunner::new(&cfg, 0);
        let jobs = drive(&mut r, &cfg, 300, Some(Outcome::Denied), &counters);
        assert!(!jobs.is_empty());
        let snap = counters.snapshot();
        assert!(snap.retries > 0, "denials must trigger retries");
        assert!(snap.exhausted > 0, "the budget must run out");
        assert_eq!(snap.completed, snap.exhausted);
        assert_eq!(snap.degraded_events, 1, "degradation is marked once");
        assert!(r.is_degraded());
        // Retries go out as absolute resync cells.
        assert!(jobs
            .iter()
            .any(|j| matches!(j.kind, JobKind::Resync { .. })));
    }

    #[test]
    fn killed_cells_time_out() {
        let mut cfg = quiet_cfg();
        cfg.timeout_supersteps = 16;
        cfg.retry_budget = 1;
        let counters = Counters::default();
        let mut r = VcRunner::new(&cfg, 2);
        drive(&mut r, &cfg, 300, None, &counters);
        let snap = counters.snapshot();
        assert!(snap.timeouts > 0, "unanswered attempts must time out");
        assert!(snap.exhausted > 0);
        assert!(r.is_degraded());
    }

    #[test]
    fn resync_cadence() {
        let mut cfg = quiet_cfg();
        cfg.resync_interval = 2;
        let counters = Counters::default();
        let mut r = VcRunner::new(&cfg, 1);
        let jobs = drive(&mut r, &cfg, 400, Some(Outcome::Granted), &counters);
        let resyncs = jobs
            .iter()
            .filter(|j| matches!(j.kind, JobKind::Resync { .. }))
            .count();
        assert!(resyncs > 0, "no resync cells emitted");
        // Every second request is a resync (no retries here: all granted).
        assert_eq!(resyncs, jobs.len() / 2);
    }
}
