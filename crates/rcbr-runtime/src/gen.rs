//! The open-loop load generator: one [`VcRunner`] per virtual channel.
//!
//! Each VC owns a synthetic MPEG trace (derived from the master seed and
//! its VCI, so generation is identical no matter which shard hosts it), an
//! end-system buffer, and the AR(1) renegotiation heuristic, packaged in
//! [`rcbr_schedule::VcDriver`]. Stepping a runner produces [`Job`]s tagged
//! with globally unique, shard-invariant sequence numbers.

use rcbr_schedule::online::{Ar1Config, Ar1Policy};
use rcbr_schedule::VcDriver;
use rcbr_sim::SimRng;
use rcbr_traffic::SyntheticMpegSource;

use crate::config::RuntimeConfig;
use crate::core::{Job, JobKind, Outcome};

/// One VC's source-side state.
pub(crate) struct VcRunner {
    vci: u32,
    driver: VcDriver<Ar1Policy>,
    /// Requests emitted so far (drives the resync cadence).
    emitted: u64,
}

impl VcRunner {
    /// Build the runner for `vci`. Deterministic in `(cfg.seed, vci)`.
    pub fn new(cfg: &RuntimeConfig, vci: u32) -> Self {
        let mut rng = SimRng::from_seed(cfg.seed).substream(vci as u64 + 1);
        let trace = SyntheticMpegSource::star_wars_like().generate(cfg.trace_frames, &mut rng);
        let tau = trace.frame_interval();
        let policy_cfg = Ar1Config::fig2(cfg.granularity, cfg.initial_rate, tau);
        let policy = Ar1Policy::new(policy_cfg, tau);
        Self {
            vci,
            driver: VcDriver::new(trace, policy, cfg.buffer),
            emitted: 0,
        }
    }

    /// Deliver the verdict of the VC's outstanding request.
    pub fn apply_outcome(&mut self, outcome: Outcome) {
        match outcome {
            Outcome::Granted => self.driver.on_grant(),
            Outcome::Denied => self.driver.on_deny(),
            Outcome::Lost => self.driver.on_lost(),
        }
    }

    /// Step the VC through one round of traffic slots, appending any
    /// emitted request to `out`. At most one request per round surfaces
    /// (the source has a single outstanding RM cell; further policy
    /// requests are suppressed until the verdict arrives next round).
    pub fn step_round(&mut self, cfg: &RuntimeConfig, round: u64, out: &mut Vec<Job>) {
        for slot in 0..cfg.slots_per_round {
            let Some(rate) = self.driver.step() else {
                continue;
            };
            let global_slot = round * cfg.slots_per_round as u64 + slot as u64;
            let seq = global_slot * cfg.num_vcs as u64 + self.vci as u64;
            // The driver's current rate is still the pre-grant rate: the
            // delta below is what the network must add (or return).
            let current = self.driver.current_rate();
            self.emitted += 1;
            let kind =
                if cfg.resync_interval > 0 && self.emitted.is_multiple_of(cfg.resync_interval) {
                    JobKind::Resync {
                        rate,
                        expected_prior: current,
                    }
                } else {
                    JobKind::Delta(rate - current)
                };
            out.push(Job {
                seq,
                vci: self.vci,
                hop: 0,
                kind,
            });
        }
    }

    /// The VCI this runner drives.
    pub fn vci(&self) -> u32 {
        self.vci
    }

    /// Whether a request is awaiting its verdict.
    #[cfg(test)]
    pub fn has_pending(&self) -> bool {
        self.driver.has_pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_is_deterministic() {
        let cfg = RuntimeConfig::balanced(1, 8);
        let mut a = VcRunner::new(&cfg, 3);
        let mut b = VcRunner::new(&cfg, 3);
        let mut ja = Vec::new();
        let mut jb = Vec::new();
        for round in 0..50 {
            a.step_round(&cfg, round, &mut ja);
            b.step_round(&cfg, round, &mut jb);
            if a.has_pending() {
                a.apply_outcome(Outcome::Granted);
                b.apply_outcome(Outcome::Granted);
            }
        }
        assert!(
            !ja.is_empty(),
            "the MPEG source must trigger renegotiations"
        );
        assert_eq!(ja.len(), jb.len());
        for (x, y) in ja.iter().zip(&jb) {
            assert_eq!(x.seq, y.seq);
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn at_most_one_outstanding_request() {
        let cfg = RuntimeConfig::balanced(1, 8);
        let mut r = VcRunner::new(&cfg, 0);
        let mut jobs = Vec::new();
        for round in 0..200 {
            let before = jobs.len();
            r.step_round(&cfg, round, &mut jobs);
            assert!(jobs.len() - before <= 1, "multiple requests in one round");
            if r.has_pending() {
                r.apply_outcome(Outcome::Denied);
            }
        }
    }

    #[test]
    fn resync_cadence() {
        let mut cfg = RuntimeConfig::balanced(1, 8);
        cfg.resync_interval = 2;
        let mut r = VcRunner::new(&cfg, 1);
        let mut jobs = Vec::new();
        for round in 0..400 {
            r.step_round(&cfg, round, &mut jobs);
            if r.has_pending() {
                r.apply_outcome(Outcome::Granted);
            }
        }
        let resyncs = jobs
            .iter()
            .filter(|j| matches!(j.kind, JobKind::Resync { .. }))
            .count();
        assert!(resyncs > 0, "no resync cells emitted");
        // Every second request is a resync.
        assert_eq!(resyncs, jobs.len() / 2);
    }
}
