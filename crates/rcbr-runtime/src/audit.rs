//! The runtime invariant auditor.
//!
//! Drift is the failure mode delta-encoded signaling pays for its speed
//! with (the paper's footnote 2): a dropped, corrupted, duplicated, or
//! crash-killed RM cell leaves some hops holding a different rate than
//! the source believes. The auditor makes that drift *observable* and —
//! at end of run — *repairable*:
//!
//! * **Periodic** ([`audit_shard`]): every `audit_interval` rounds, while
//!   the pipeline is quiescent, each shard walks its switches and counts
//!   every `(switch, VC)` reservation that disagrees with the owning
//!   source's believed rate by more than [`DRIFT_EPS`]. Runs and counts
//!   are deterministic, so they are part of the cross-shard bit-identity
//!   contract.
//! * **End of run** ([`finalize`]): one full absolute-rate resync per
//!   drifted VC repairs every hop to the source's believed rate. If the
//!   believed rate no longer fits (another VC's over-reservation, or a
//!   crash wiped the port and contention refilled it), the VC falls back
//!   use-it-or-lose-it style to the *minimum* rate any hop still holds —
//!   a reduction everywhere, so recovery itself can never be denied —
//!   and is marked degraded. Afterwards the residual drift must be zero.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rcbr_net::{FaultPlane, RmCell, Switch};
use serde::{Deserialize, Serialize};

use crate::config::RuntimeConfig;
use crate::core::Counters;

/// Reservations within this many bits/second of the believed rate count
/// as synchronized: real drift is at least one granularity step (tens of
/// kb/s), while float accumulation noise is many orders smaller.
pub(crate) const DRIFT_EPS: f64 = 1.0;

/// What the end-of-run audit found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditReport {
    /// `(switch, VC)` reservation pairs drifted from the source's
    /// believed rate before recovery.
    pub final_drift_before: u64,
    /// Hop reservations rewritten during recovery.
    pub drift_repaired: u64,
    /// VCs whose believed rate no longer fit and were floored to the
    /// minimum rate any of their hops still held (use-it-or-lose-it).
    pub lose_it_vcs: u64,
    /// Drifted pairs remaining after recovery — the headline invariant:
    /// this must be 0.
    pub final_drift: u64,
    /// Ports whose aggregate disagreed with the sum of their per-VCI
    /// reservations after recovery (0 unless the switch itself is buggy).
    pub port_inconsistencies: u64,
    /// Switch entries found off their VC's final route and removed
    /// (teardown leftovers at down switches, expired-lease stubs, hops of
    /// a reroute that was still in flight at exit).
    pub stale_reclaimed: u64,
    /// Of those, entries that still held bandwidth above [`DRIFT_EPS`] —
    /// real residue a clean teardown should not leave. Nonzero only when
    /// the run ended mid-reroute.
    pub off_route_residue: u64,
}

/// One VC's end-of-run source state, collected from its runner.
#[derive(Debug, Clone)]
pub(crate) struct VcFinal {
    pub vci: u32,
    /// The rate the source believes is reserved end to end.
    pub believed: f64,
    /// The VC exhausted a retry budget mid-run (or is floored below).
    pub degraded: bool,
    /// The VC's end-system buffer loss fraction.
    pub loss: f64,
    /// The route the VC's reservations should live on (empty if the VC
    /// was torn down / stranded and holds nothing).
    pub route: Vec<usize>,
    /// The run ended with this VC's route machinery still in motion
    /// (reroute in flight or teardowns queued) — see
    /// `VcRunner::unsettled_at_exit`. Read before `apply_final`.
    pub unsettled: bool,
    /// The VC ended the run browned out — holding its granted rate under
    /// overload pressure instead of renegotiating.
    pub brownout: bool,
}

/// Snapshot one VC's published believed rate. Must be called while the
/// pipeline is quiescent, after the post-phase-A barrier guarantees every
/// shard's stores have happened and before any shard can write again —
/// the same between-barriers discipline as `Counters::snapshot_drain`.
fn snapshot_believed(believed: &[AtomicU64], vci: u32) -> f64 {
    f64::from_bits(believed[vci as usize].load(Ordering::Relaxed))
}

/// Reduce per-VC source loss fractions to `(mean, max)`. The input order
/// is partition-independent: both engines sort `finals` by ascending VCI
/// before calling this, so the float sum accumulates in the same order no
/// matter how many shards produced the entries.
pub(crate) fn reduce_source_loss(finals: &[VcFinal], num_vcs: usize) -> (f64, f64) {
    debug_assert!(finals.windows(2).all(|w| w[0].vci < w[1].vci));
    let mean = finals.iter().map(|f| f.loss).sum::<f64>() / num_vcs as f64;
    let max = finals.iter().fold(0.0f64, |m, f| m.max(f.loss));
    (mean, max)
}

/// The periodic mid-run audit over one shard's switches. Must be called
/// while the pipeline is quiescent and after every shard published its
/// VCs' believed rates (phase A of a round).
///
/// Counts drifted `(switch, VC)` pairs into `counters.audit_drift`.
/// `audit_runs` is bumped by shard 0 only, so the count is independent of
/// the shard count.
#[allow(clippy::too_many_arguments)]
pub(crate) fn audit_shard(
    plane: &FaultPlane,
    local_switches: &[Switch],
    shard: usize,
    num_shards: usize,
    believed: &[AtomicU64],
    routes: &[Mutex<Vec<u16>>],
    superstep: u64,
    counters: &Counters,
) {
    if shard == 0 {
        counters.audit_runs.fetch_add(1, Ordering::Relaxed);
    }
    for (li, sw) in local_switches.iter().enumerate() {
        let h = shard + li * num_shards;
        if plane.switch_down(h, superstep) {
            // A crashed switch cannot answer an audit probe.
            continue;
        }
        for vci in sw.vcis() {
            // Only reservations on the VC's *published* route are held
            // against the believed rate: an entry off that route is a
            // known transient (a reroute's partial install awaiting
            // commit or compensation, or a teardown leftover at a switch
            // that was down when the walk passed) and is reclaimed by the
            // end-of-run audit if it survives that long.
            let on_route = routes[vci as usize]
                .lock()
                .expect("route lock")
                .contains(&(h as u16));
            if !on_route {
                continue;
            }
            let b = snapshot_believed(believed, vci);
            let r = sw.vci_rate(vci).expect("routed VCI has a rate");
            if (r - b).abs() > DRIFT_EPS {
                counters.audit_drift.fetch_add(1, Ordering::Relaxed);
            }
        }
        debug_assert!(
            sw.port(0).expect("one port per switch").is_consistent(),
            "port aggregate drifted from its per-VCI sum at switch {h}"
        );
    }
}

/// Count `(hop, VC)` pairs on each VC's final route whose reservation
/// disagrees with the source's believed rate. A hop with no entry (e.g. a
/// teardown raced a kill) counts as holding 0.
fn count_drift(switches: &[Switch], finals: &[VcFinal]) -> u64 {
    let mut n = 0;
    for f in finals {
        for &h in &f.route {
            let r = switches[h].vci_rate(f.vci).unwrap_or(0.0);
            if (r - f.believed).abs() > DRIFT_EPS {
                n += 1;
            }
        }
    }
    n
}

/// The end-of-run audit and recovery pass. `switches` is the full global
/// switch population (reassembled from the shards), `finals` the per-VC
/// source states in ascending VCI order, `final_superstep` the engine's
/// clock at exit.
///
/// Recovery is exactly what a real deployment would do: one absolute-rate
/// resync per drifted VC, with the use-it-or-lose-it floor as the
/// fallback when the believed rate no longer fits. Updates `finals` in
/// place (floored VCs get their new believed rate and a degraded mark).
pub(crate) fn finalize(
    _cfg: &RuntimeConfig,
    plane: &FaultPlane,
    switches: &mut [Switch],
    finals: &mut [VcFinal],
    final_superstep: u64,
) -> AuditReport {
    // A switch still inside its crash window at exit — transient or
    // permanently killed — loses its soft state just as a restarting one
    // does.
    for (h, sw) in switches.iter_mut().enumerate() {
        if plane.switch_down(h, final_superstep) {
            sw.wipe_soft_state();
        }
    }

    // Recovery reconciles against *physical* capacity, not against
    // whatever booking ceiling a measurement-based admission policy last
    // rolled: the run is over, the policy with it. A no-op under the
    // default PeakRate, whose ceilings never move.
    for sw in switches.iter_mut() {
        sw.reset_admit_ceilings();
    }

    // Stale reclaim: remove every entry that is not on its VC's final
    // route. Torn-down and expired VCs leave zero-rate stubs (counted but
    // harmless); a reroute caught mid-flight by the end of the run can
    // leave real bandwidth on candidate hops — that is the off-route
    // residue, reclaimed here exactly as the compensating teardown would
    // have.
    let mut stale_reclaimed = 0u64;
    let mut off_route_residue = 0u64;
    for (h, sw) in switches.iter_mut().enumerate() {
        for vci in sw.vcis() {
            let f = &finals[vci as usize];
            debug_assert_eq!(f.vci, vci, "finals indexed by VCI");
            if f.route.contains(&h) {
                continue;
            }
            if let Some(rate) = sw.uninstall(vci) {
                stale_reclaimed += 1;
                if rate > DRIFT_EPS {
                    off_route_residue += 1;
                }
            }
        }
    }

    let final_drift_before = count_drift(switches, finals);
    let mut drift_repaired = 0u64;
    let mut lose_it_vcs = 0u64;

    for f in finals.iter_mut() {
        let vci = f.vci;
        let path = &f.route;
        let drifted = move |switches: &[Switch], h: usize, target: f64| {
            (switches[h].vci_rate(vci).unwrap_or(0.0) - target).abs() > DRIFT_EPS
        };
        if !path.iter().any(|&h| drifted(switches, h, f.believed)) {
            continue;
        }
        // Fast path: resync every drifted hop to the believed rate.
        let mut denied = false;
        for &h in path {
            if !drifted(switches, h, f.believed) {
                continue;
            }
            // A hop that lost its entry (teardown raced a restart) is
            // re-installed first; resync then rebuilds the reservation.
            switches[h].install(vci, 0);
            let cell = switches[h]
                .process_rm(RmCell::resync(vci, f.believed))
                .expect("installed above");
            if cell.denied {
                denied = true;
                break;
            }
            drift_repaired += 1;
        }
        if denied {
            // Use-it-or-lose-it: the believed rate no longer fits
            // somewhere, so fall back to the minimum rate any hop still
            // holds. The write goes through the administrative
            // `force_set` path: reducing to the floor is always the right
            // repair, but the *checked* path can still refuse it at a
            // port an admission policy left overbooked past the physical
            // capacity (the aggregate stays above the limit even after
            // this VC shrinks). Identical state mutation to the checked
            // path wherever that path would have succeeded.
            let floor = path
                .iter()
                .map(|&h| switches[h].vci_rate(vci).unwrap_or(0.0))
                .fold(f.believed, f64::min);
            for &h in path {
                if !drifted(switches, h, floor) {
                    continue;
                }
                switches[h].install(vci, 0);
                switches[h].force_set(vci, floor).expect("installed above");
                drift_repaired += 1;
            }
            f.believed = floor;
            f.degraded = true;
            lose_it_vcs += 1;
        }
    }

    let final_drift = count_drift(switches, finals);
    let port_inconsistencies = switches
        .iter()
        .filter(|s| !s.port(0).expect("one port per switch").is_consistent())
        .count() as u64;
    AuditReport {
        final_drift_before,
        drift_repaired,
        lose_it_vcs,
        final_drift,
        port_inconsistencies,
        stale_reclaimed,
        off_route_residue,
    }
}
