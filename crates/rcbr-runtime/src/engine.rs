//! The sharded signaling-plane engine.
//!
//! ## Execution model: bulk-synchronous supersteps
//!
//! Switch `h` lives on shard `h % num_shards`; VC `v`'s load generator on
//! shard `v % num_shards`. Each **round** has three phases:
//!
//! 1. **Verdicts** — every shard delivers last round's outcomes to its
//!    VCs' retry state machines (grant / deny / timeout / backoff) and
//!    publishes each VC's believed rate. On audit rounds, a barrier
//!    follows and every shard audits its own switches against those
//!    beliefs.
//! 2. **Generate** — every shard steps its VCs through `slots_per_round`
//!    traffic slots (plus at most one due retry); emitted attempts are
//!    batched into the first hop's shard channel.
//! 3. **Drain** — the pipeline runs in supersteps until no job is in
//!    flight. Each superstep advances the global logical clock by one; a
//!    shard drains its inbox, releases due fault-delayed cells, retries
//!    stall-held cells, applies due crash-restart wipes, sorts the batch
//!    by `(seq, salt)`, advances every job one hop, and sends follow-up
//!    jobs to the next hop's shard.
//!
//! ## Why the outcome is shard-count invariant — even under faults
//!
//! A job injected in round `r` reaches hop `k` at a superstep that
//! depends only on the logical clock and the fault plane's pure decisions
//! — *independent of the partition*. Delays are keyed to release
//! supersteps, crashes and stalls to superstep windows, duplicates to
//! `(seq, hop, salt)`; none of them can observe which thread owns a
//! switch. So the set of jobs meeting at a switch in a given superstep is
//! fixed, and the sort-by-`(seq, salt)` before processing fixes their
//! order. Every switch therefore processes exactly the same cell sequence
//! whether there is one shard or eight — which is what makes the counters
//! bit-identical across shard counts and equal to the single-threaded
//! [`run_sequential`](crate::run_sequential) replay, fault plane and all.
//!
//! Barriers separate the drain / process phases, so a channel is never
//! written while its owner drains it; `std::sync::mpsc` carries the
//! batches and a `std::sync::Mutex` guards each VC's slow-path completion
//! slot.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Barrier, Mutex};

use rcbr_net::{FaultPlane, ShedKey, SignalingQueue, Switch, Topology};
use rcbr_sim::Histogram;

use crate::admission::{reduce_admission, SwitchAdmission};
use crate::audit::{audit_shard, finalize, reduce_source_loss, VcFinal};
use crate::config::RuntimeConfig;
use crate::core::{
    advance_job, shed_job, CompletionSink, Counters, FaultCtx, Job, JobKind, VciSlot,
};
use crate::gen::VcRunner;
use crate::report::{
    latency_histogram, summarize_latency, RunReport, ShardReport, VcOutcome, WallTimer,
};

/// What each worker hands back when the run ends.
struct ShardResult {
    shard: usize,
    latency: Histogram,
    moments: crate::report::RttStats,
    processed: u64,
    injected: u64,
    max_batch: u64,
    rounds: u64,
    superstep: u64,
    /// This shard's switches, in local (strided) order.
    switches: Vec<Switch>,
    /// Per-switch admission state, parallel to `switches`.
    admission: Vec<SwitchAdmission>,
    /// This shard's VCs' final source states.
    finals: Vec<VcFinal>,
}

/// Run the sharded engine to completion and report.
pub fn run(cfg: &RuntimeConfig) -> RunReport {
    cfg.validate();
    let started = WallTimer::start();
    let shards = cfg.num_shards;
    let plane = FaultPlane::new(cfg.fault.clone());
    let topo = cfg.topology();

    let counters = Counters::default();
    let vci_states: Vec<Mutex<VciSlot>> = (0..cfg.num_vcs)
        .map(|_| Mutex::new(VciSlot::default()))
        .collect();
    // Each VC's believed end-to-end rate (f64 bits), published by its
    // owner shard every round for the auditor.
    let believed: Vec<AtomicU64> = (0..cfg.num_vcs)
        .map(|_| AtomicU64::new(cfg.initial_rate.to_bits()))
        .collect();
    // Each VC's published route, for the auditor's off-route skip. Only
    // the owner shard writes (phase A); other shards read on audit rounds
    // after the post-publish barrier.
    let routes: Vec<Mutex<Vec<u16>>> = (0..cfg.num_vcs as u32)
        .map(|vci| Mutex::new(cfg.path_of(vci).iter().map(|&h| h as u16).collect()))
        .collect();
    let barrier = Barrier::new(shards);

    let mut senders: Vec<Sender<Vec<Job>>> = Vec::with_capacity(shards);
    let mut receivers: Vec<Option<Receiver<Vec<Job>>>> = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = mpsc::channel();
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let mut results: Vec<ShardResult> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards);
        for (shard, rx_slot) in receivers.iter_mut().enumerate() {
            let rx = rx_slot.take().expect("receiver taken once");
            let txs = senders.clone();
            let counters = &counters;
            let vci_states = &vci_states;
            let believed = &believed;
            let routes = &routes;
            let barrier = &barrier;
            let plane = &plane;
            let topo = &topo;
            handles.push(scope.spawn(move || {
                worker(
                    shard, cfg, plane, topo, rx, txs, counters, vci_states, believed, routes,
                    barrier,
                )
            }));
        }
        // Drop the main thread's senders so workers hold the only handles.
        senders.clear();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    results.sort_by_key(|r| r.shard);

    let wall = started.elapsed_seconds();
    let mut latency = latency_histogram(cfg);
    let mut moments = crate::report::RttStats::new();
    let mut shard_reports = Vec::with_capacity(shards);
    let rounds = results[0].rounds;
    let superstep = results[0].superstep;
    // Reassemble the global switch population and VC states from the
    // strided shard partitions for the end-of-run audit.
    let mut all_switches: Vec<Option<Switch>> = (0..cfg.num_switches).map(|_| None).collect();
    let mut all_admission: Vec<Option<SwitchAdmission>> =
        (0..cfg.num_switches).map(|_| None).collect();
    let mut finals: Vec<VcFinal> = Vec::with_capacity(cfg.num_vcs);
    for r in &mut results {
        debug_assert_eq!(r.rounds, rounds, "shards disagree on round count");
        debug_assert_eq!(r.superstep, superstep, "shards disagree on the clock");
        latency.merge(&r.latency);
        moments.merge(&r.moments);
        shard_reports.push(ShardReport {
            shard: r.shard,
            processed: r.processed,
            injected: r.injected,
            max_batch: r.max_batch,
        });
        for (li, sw) in r.switches.drain(..).enumerate() {
            all_switches[r.shard + li * shards] = Some(sw);
        }
        for (li, sa) in r.admission.drain(..).enumerate() {
            all_admission[r.shard + li * shards] = Some(sa);
        }
        finals.append(&mut r.finals);
    }
    let mut all_switches: Vec<Switch> = all_switches
        .into_iter()
        .map(|s| s.expect("every switch owned by exactly one shard"))
        .collect();
    // Ascending switch order, so the report's float reduction is
    // shard-invariant.
    let all_admission: Vec<SwitchAdmission> = all_admission
        .into_iter()
        .map(|s| s.expect("every switch owned by exactly one shard"))
        .collect();
    finals.sort_by_key(|f| f.vci);

    let audit = finalize(cfg, &plane, &mut all_switches, &mut finals, superstep);
    let degraded_vcs = finals.iter().filter(|f| f.degraded).count() as u64;
    let unsettled_vcs = finals.iter().filter(|f| f.unsettled).count() as u64;
    let brownout_vcs = finals.iter().filter(|f| f.brownout).count() as u64;
    let (mean_source_loss, max_source_loss) = reduce_source_loss(&finals, cfg.num_vcs);
    let vcs = finals
        .iter()
        .map(|f| VcOutcome {
            vci: f.vci,
            believed: f.believed,
            degraded: f.degraded,
            loss: f.loss,
            route: f.route.clone(),
        })
        .collect();

    let counters = counters.snapshot();
    debug_assert_eq!(counters.completed, counters.accepted + counters.exhausted);
    let admission = reduce_admission(cfg.admission, &counters, &all_admission);
    RunReport {
        num_shards: shards,
        num_vcs: cfg.num_vcs,
        num_switches: cfg.num_switches,
        hops_per_vc: cfg.hops_per_vc,
        rounds,
        supersteps: superstep,
        wall_seconds: wall,
        throughput_per_sec: if wall > 0.0 {
            counters.completed as f64 / wall
        } else {
            0.0
        },
        counters,
        audit,
        admission,
        degraded_vcs,
        unsettled_vcs,
        brownout_vcs,
        mean_source_loss,
        max_source_loss,
        vcs,
        latency: summarize_latency(&latency, &moments, cfg.hop_latency),
        shards: shard_reports,
    }
}

/// Build the switches owned by `shard` plus the `global index -> local
/// slot` mapping implied by the strided partition.
fn build_local_switches(cfg: &RuntimeConfig, shard: usize) -> Vec<Switch> {
    let mut local = Vec::new();
    let mut h = shard;
    while h < cfg.num_switches {
        local.push(Switch::new(&[cfg.port_capacity]));
        h += cfg.num_shards;
    }
    local
}

#[allow(clippy::too_many_arguments)]
fn worker(
    shard: usize,
    cfg: &RuntimeConfig,
    plane: &FaultPlane,
    topo: &Topology,
    rx: Receiver<Vec<Job>>,
    txs: Vec<Sender<Vec<Job>>>,
    counters: &Counters,
    vci_states: &[Mutex<VciSlot>],
    believed: &[AtomicU64],
    routes: &[Mutex<Vec<u16>>],
    barrier: &Barrier,
) -> ShardResult {
    let shards = cfg.num_shards;
    let mut switches = build_local_switches(cfg, shard);
    let mut admission: Vec<SwitchAdmission> =
        switches.iter().map(|_| SwitchAdmission::new(cfg)).collect();
    let measuring = cfg.admission.measures();
    // Per-switch bounded signaling queues (budget 0 = unbounded, the
    // legacy behavior). Queue state evolves from the shard-invariant
    // meeting sets, so it is identical at every shard count.
    let budget = cfg.signaling_budget_per_round;
    let mut queues: Vec<SignalingQueue> = switches
        .iter()
        .map(|_| SignalingQueue::new(budget))
        .collect();

    // Initial admission: every VC's base rate is reserved on each of its
    // hops, in ascending VCI order per switch (the same order the
    // sequential replay uses, so per-port float accumulation matches).
    for vci in 0..cfg.num_vcs as u32 {
        for &h in &cfg.path_of(vci) {
            if h % shards == shard {
                let admitted = switches[h / shards]
                    .setup(vci, 0, cfg.initial_rate)
                    .expect("fresh VCI");
                assert!(admitted, "initial admission must fit; raise port_capacity");
            }
        }
    }

    let mut runners: Vec<VcRunner> = (0..cfg.num_vcs as u32)
        .filter(|v| *v as usize % shards == shard)
        .map(|v| VcRunner::new(cfg, v))
        .collect();

    let mut latency = latency_histogram(cfg);
    let mut moments = crate::report::RttStats::new();
    let mut processed = 0u64;
    let mut injected = 0u64;
    let mut max_batch = 0u64;
    let mut rounds = 0u64;
    // The global logical clock: +1 per drain iteration, in lockstep
    // across shards (and identical in the sequential replay).
    let mut superstep = 0u64;

    let mut staging: Vec<Job> = Vec::new();
    let mut out_batches: Vec<Vec<Job>> = (0..shards).map(|_| Vec::new()).collect();
    // Fault-delayed cells and spawned ghosts, keyed by release superstep.
    // Both stay at their current hop, so they never cross shards.
    let mut delayed: Vec<(u64, Job)> = Vec::new();
    // Cells held because their switch is stalled; retried every superstep.
    let mut held: Vec<Job> = Vec::new();
    // Crash-restart wipes already applied, per local switch.
    let mut wiped: Vec<bool> = vec![false; switches.len()];

    for round in 0..cfg.max_rounds {
        rounds = round + 1;
        // Lease sweep: each shard reclaims expired reservations on its
        // own switches while the pipeline is quiescent. A down switch
        // cannot run its sweep (its soft state is wiped on restart
        // anyway).
        if cfg.lease_supersteps > 0 {
            for (li, sw) in switches.iter_mut().enumerate() {
                let h = shard + li * shards;
                if plane.switch_down(h, superstep) {
                    continue;
                }
                let reclaimed = sw.expire_leases(superstep, cfg.lease_supersteps);
                counters
                    .leases_expired
                    .fetch_add(reclaimed, Ordering::Relaxed);
            }
        }
        // Admission sweep: at the round top the pipeline is quiescent, so
        // utilization samples and window rolls observe a settled switch.
        // Sampling runs under every policy (the frontier sweep needs the
        // PeakRate baseline's utilization); rolls only when a
        // measurement-based policy is live and the schedule is due. Down
        // switches skip both — their soft state is mid-crash.
        for (li, sw) in switches.iter_mut().enumerate() {
            let h = shard + li * shards;
            if plane.switch_down(h, superstep) {
                continue;
            }
            let sa = &mut admission[li];
            sa.sample(sw);
            if measuring && superstep >= sa.next_roll_at {
                sa.roll(cfg, superstep, sw);
            }
        }
        // Pressure accounting: one count per (round, local switch) still
        // advertising overload pressure at the round top.
        if budget > 0 {
            for q in &queues {
                if q.under_pressure(superstep) {
                    counters.pressure_rounds.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Phase A: deliver last round's verdicts (grant / deny / timeout)
        // and publish believed rates and routes for the auditor.
        for runner in &mut runners {
            let (outcome, pressured) = {
                let mut slot = vci_states[runner.vci() as usize].lock().expect("vci lock");
                (slot.outcome.take(), std::mem::take(&mut slot.pressure))
            };
            runner.begin_round(cfg, topo, plane, outcome, pressured, superstep, counters);
            believed[runner.vci() as usize]
                .store(runner.believed_rate().to_bits(), Ordering::Relaxed);
            *routes[runner.vci() as usize].lock().expect("route lock") = runner.audit_route();
        }
        if cfg.audit_interval > 0 && round > 0 && round.is_multiple_of(cfg.audit_interval) {
            // One extra barrier so every shard's believed rates and
            // routes are published before any shard reads them.
            barrier.wait();
            audit_shard(
                plane, &switches, shard, shards, believed, routes, superstep, counters,
            );
        }

        // Phase B: generate this round's attempts (due retries first).
        for runner in &mut runners {
            runner.emit_round(cfg, topo, plane, round, superstep, &mut staging, counters);
        }
        for job in staging.drain(..) {
            counters.injected.fetch_add(1, Ordering::Relaxed);
            counters.in_flight.fetch_add(1, Ordering::Relaxed);
            match job.kind {
                JobKind::Resync { .. } => {
                    counters.resyncs.fetch_add(1, Ordering::Relaxed);
                }
                JobKind::Reroute { .. } => {
                    counters.reroutes.fetch_add(1, Ordering::Relaxed);
                }
                JobKind::Teardown => {
                    counters.teardown_cells.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
            injected += 1;
            let first_hop = job.route.hop(0);
            out_batches[first_hop % shards].push(job);
        }
        send_batches(&mut out_batches, &txs);
        barrier.wait(); // all injections delivered

        // Phase C: drain the pipeline in supersteps. The loop yields the
        // completed-request total as of quiescence, snapshotted at a
        // point all shards agree on.
        let completed_now = loop {
            superstep += 1;
            let mut jobs: Vec<Job> = Vec::new();
            while let Ok(batch) = rx.try_recv() {
                jobs.extend(batch);
            }
            // Release fault-delayed cells that are due, and re-offer
            // every stall-held cell.
            let mut i = 0;
            while i < delayed.len() {
                if delayed[i].0 <= superstep {
                    jobs.push(delayed.swap_remove(i).1);
                } else {
                    i += 1;
                }
            }
            jobs.append(&mut held);
            max_batch = max_batch.max(jobs.len() as u64);
            // Safe read window: in_flight and completed are only written
            // while shards process (or in the next round's phases), and
            // every shard is draining right now — the barrier below makes
            // sure everyone has read before anyone can write again.
            // Delayed and held cells keep in_flight nonzero, so rounds
            // only end once every fault-induced straggler has resolved;
            // both counters must be snapshotted *here*, together, so all
            // shards take the same stop-run branch (a shard racing ahead
            // into the next round's verdict phase can complete requests
            // via timeouts).
            let drain = counters.snapshot_drain();
            barrier.wait(); // all inboxes drained
            if drain.quiescent {
                break drain.completed;
            }
            // Crash restarts due this superstep wipe soft state — the
            // admission measurements with it (the EB cache survives).
            for (li, sw) in switches.iter_mut().enumerate() {
                if !wiped[li] {
                    if let Some(restart) = plane.restart_superstep(shard + li * shards) {
                        if superstep >= restart {
                            sw.wipe_soft_state();
                            admission[li].wipe_measurements();
                            wiped[li] = true;
                        }
                    }
                }
            }
            jobs.sort_unstable_by_key(|j| (j.seq, j.salt));
            // Signaling-queue admission: with a budget configured, each
            // switch serves at most `budget` renegotiation cells this
            // superstep; overflow is chosen by the pure (class, seq, salt)
            // order over the switch's whole meeting set — never by arrival
            // order — so the plan is identical at every shard count.
            // Stall-held cells never meet the switch, and rollback /
            // reroute / teardown walks are exempt: undo and repair traffic
            // must not be shed.
            let mut shed_plans: Vec<Vec<(u64, u8)>> = Vec::new();
            if budget > 0 {
                let mut candidates: Vec<Vec<ShedKey>> =
                    switches.iter().map(|_| Vec::new()).collect();
                for job in &jobs {
                    let h = job.route.hop(job.hop);
                    if plane.stalled(h, superstep) {
                        continue;
                    }
                    if matches!(job.kind, JobKind::Delta(_) | JobKind::Resync { .. }) {
                        candidates[h / shards].push(ShedKey {
                            class: job.class,
                            seq: job.seq,
                            salt: job.salt,
                        });
                    }
                }
                shed_plans = candidates
                    .into_iter()
                    .enumerate()
                    .map(|(li, keys)| {
                        queues[li]
                            .admit_superstep(keys, superstep, cfg.pressure_hold_supersteps)
                            .into_iter()
                            .map(|k| (k.seq, k.salt))
                            .collect()
                    })
                    .collect();
            }
            let fx = FaultCtx { plane, superstep };
            let mut sink = CompletionSink {
                latency: &mut latency,
                moments: &mut moments,
            };
            for job in jobs {
                let h = job.route.hop(job.hop);
                if plane.stalled(h, superstep) {
                    // The switch is stalled: hold the cell, retry next
                    // superstep (pure latency, no loss).
                    held.push(job);
                    continue;
                }
                processed += 1;
                if budget > 0
                    && matches!(job.kind, JobKind::Delta(_) | JobKind::Resync { .. })
                    && shed_plans[h / shards]
                        .binary_search(&(job.seq, job.salt))
                        .is_ok()
                {
                    shed_job(&job, cfg, counters, vci_states, &mut sink);
                    continue;
                }
                let (forward, hold) = advance_job(
                    job,
                    &mut switches[h / shards],
                    h,
                    cfg,
                    &fx,
                    counters,
                    vci_states,
                    &mut sink,
                    if measuring {
                        Some(&mut admission[h / shards])
                    } else {
                        None
                    },
                    budget > 0 && queues[h / shards].under_pressure(superstep),
                );
                if let Some(nj) = forward {
                    let nh = nj.route.hop(nj.hop);
                    out_batches[nh % shards].push(nj);
                }
                if let Some(entry) = hold {
                    delayed.push(entry);
                }
            }
            send_batches(&mut out_batches, &txs);
            barrier.wait(); // all follow-up sends delivered
        };

        if completed_now >= cfg.target_requests {
            break;
        }
    }

    // Apply verdicts delivered in the final round so believed rates are
    // current, then snapshot each VC's source state for the audit.
    let mut finals = Vec::with_capacity(runners.len());
    for runner in &mut runners {
        // Read before apply_final: the final verdict collapses a
        // mid-flight reroute to Settled while its residue stays behind.
        let unsettled = runner.unsettled_at_exit();
        let outcome = vci_states[runner.vci() as usize]
            .lock()
            .expect("vci lock")
            .outcome
            .take();
        if let Some(o) = outcome {
            runner.apply_final(o);
        }
        finals.push(VcFinal {
            vci: runner.vci(),
            believed: runner.believed_rate(),
            degraded: runner.is_degraded(),
            loss: runner.loss_fraction(),
            route: runner.final_route(),
            unsettled,
            brownout: runner.in_brownout(),
        });
    }

    ShardResult {
        shard,
        latency,
        moments,
        processed,
        injected,
        max_batch,
        rounds,
        superstep,
        switches,
        admission,
        finals,
    }
}

fn send_batches(out: &mut [Vec<Job>], txs: &[Sender<Vec<Job>>]) {
    for (shard, batch) in out.iter_mut().enumerate() {
        if !batch.is_empty() {
            txs[shard]
                .send(std::mem::take(batch))
                .expect("receiver alive");
        }
    }
}
