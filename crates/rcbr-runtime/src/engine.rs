//! The sharded signaling-plane engine.
//!
//! ## Execution model: bulk-synchronous supersteps
//!
//! Switch `h` lives on shard `h % num_shards`; VC `v`'s load generator on
//! shard `v % num_shards`. Each **round** has two phases:
//!
//! 1. **Generate** — every shard steps its VCs through `slots_per_round`
//!    traffic slots in parallel; emitted requests are batched into the
//!    first hop's shard channel.
//! 2. **Drain** — the pipeline runs in supersteps until no job is in
//!    flight. In each superstep a shard drains its inbox, sorts the batch
//!    by global sequence number, advances every job one hop (reserve /
//!    deny / roll back one hop / drop), and sends follow-up jobs to the
//!    next hop's shard.
//!
//! ## Why the outcome is shard-count invariant
//!
//! A job injected in round `r` reaches hop `k` in superstep `k` (rollbacks
//! walk back one hop per superstep) — *independent of the partition*. So
//! the set of jobs meeting at a switch in a given superstep is fixed, and
//! the sort-by-`seq` before processing fixes their order. Every switch
//! therefore processes exactly the same cell sequence whether there is one
//! shard or eight — which is what makes the accept/deny/rollback counters
//! bit-identical across shard counts and equal to the single-threaded
//! [`run_sequential`](crate::run_sequential) replay.
//!
//! Barriers separate the drain / process phases, so a channel is never
//! written while its owner drains it; `std::sync::mpsc` carries the
//! batches and a `std::sync::Mutex` guards each VC's slow-path completion
//! slot.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Barrier, Mutex};
use std::time::Instant;

use rcbr_net::Switch;
use rcbr_sim::{Histogram, RunningStats};

use crate::config::RuntimeConfig;
use crate::core::{advance_job, CompletionSink, Counters, Job, JobKind, VciSlot};
use crate::gen::VcRunner;
use crate::report::{latency_histogram, summarize_latency, RunReport, ShardReport};

/// What each worker hands back when the run ends.
struct ShardResult {
    shard: usize,
    latency: Histogram,
    moments: RunningStats,
    processed: u64,
    injected: u64,
    max_batch: u64,
    rounds: u64,
}

/// Run the sharded engine to completion and report.
pub fn run(cfg: &RuntimeConfig) -> RunReport {
    cfg.validate();
    let started = Instant::now();
    let shards = cfg.num_shards;

    let counters = Counters::default();
    let vci_states: Vec<Mutex<VciSlot>> = (0..cfg.num_vcs)
        .map(|_| Mutex::new(VciSlot::default()))
        .collect();
    let barrier = Barrier::new(shards);

    let mut senders: Vec<Sender<Vec<Job>>> = Vec::with_capacity(shards);
    let mut receivers: Vec<Option<Receiver<Vec<Job>>>> = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = mpsc::channel();
        senders.push(tx);
        receivers.push(Some(rx));
    }

    let mut results: Vec<ShardResult> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards);
        for (shard, rx_slot) in receivers.iter_mut().enumerate() {
            let rx = rx_slot.take().expect("receiver taken once");
            let txs = senders.clone();
            let counters = &counters;
            let vci_states = &vci_states;
            let barrier = &barrier;
            handles.push(
                scope.spawn(move || worker(shard, cfg, rx, txs, counters, vci_states, barrier)),
            );
        }
        // Drop the main thread's senders so workers hold the only handles.
        senders.clear();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    results.sort_by_key(|r| r.shard);

    let wall = started.elapsed().as_secs_f64();
    let mut latency = latency_histogram(cfg);
    let mut moments = RunningStats::new();
    let mut shard_reports = Vec::with_capacity(shards);
    for r in &results {
        latency.merge(&r.latency);
        moments.merge(&r.moments);
        shard_reports.push(ShardReport {
            shard: r.shard,
            processed: r.processed,
            injected: r.injected,
            max_batch: r.max_batch,
        });
    }
    let counters = counters.snapshot();
    debug_assert_eq!(
        counters.completed,
        counters.accepted + counters.denied + counters.lost
    );
    RunReport {
        num_shards: shards,
        num_vcs: cfg.num_vcs,
        num_switches: cfg.num_switches,
        hops_per_vc: cfg.hops_per_vc,
        rounds: results[0].rounds,
        wall_seconds: wall,
        throughput_per_sec: if wall > 0.0 {
            counters.completed as f64 / wall
        } else {
            0.0
        },
        counters,
        latency: summarize_latency(&latency, &moments),
        shards: shard_reports,
    }
}

/// Build the switches owned by `shard` plus the `global index -> local
/// slot` mapping implied by the strided partition.
fn build_local_switches(cfg: &RuntimeConfig, shard: usize) -> Vec<Switch> {
    let mut local = Vec::new();
    let mut h = shard;
    while h < cfg.num_switches {
        local.push(Switch::new(&[cfg.port_capacity]));
        h += cfg.num_shards;
    }
    local
}

fn worker(
    shard: usize,
    cfg: &RuntimeConfig,
    rx: Receiver<Vec<Job>>,
    txs: Vec<Sender<Vec<Job>>>,
    counters: &Counters,
    vci_states: &[Mutex<VciSlot>],
    barrier: &Barrier,
) -> ShardResult {
    let shards = cfg.num_shards;
    let mut switches = build_local_switches(cfg, shard);

    // Initial admission: every VC's base rate is reserved on each of its
    // hops, in ascending VCI order per switch (the same order the
    // sequential replay uses, so per-port float accumulation matches).
    for vci in 0..cfg.num_vcs as u32 {
        for &h in &cfg.path_of(vci) {
            if h % shards == shard {
                let admitted = switches[h / shards]
                    .setup(vci, 0, cfg.initial_rate)
                    .expect("fresh VCI");
                assert!(admitted, "initial admission must fit; raise port_capacity");
            }
        }
    }

    let mut runners: Vec<VcRunner> = (0..cfg.num_vcs as u32)
        .filter(|v| *v as usize % shards == shard)
        .map(|v| VcRunner::new(cfg, v))
        .collect();

    let mut latency = latency_histogram(cfg);
    let mut moments = RunningStats::new();
    let mut processed = 0u64;
    let mut injected = 0u64;
    let mut max_batch = 0u64;
    let mut rounds = 0u64;

    let mut staging: Vec<Job> = Vec::new();
    let mut out_batches: Vec<Vec<Job>> = (0..shards).map(|_| Vec::new()).collect();
    let path_len = cfg.hops_per_vc;

    for round in 0..cfg.max_rounds {
        rounds = round + 1;
        // Phase 1: generate. Deliver last round's verdicts, then step the
        // traffic slots.
        for runner in &mut runners {
            let outcome = vci_states[runner.vci() as usize]
                .lock()
                .expect("vci lock")
                .outcome
                .take();
            if let Some(o) = outcome {
                runner.apply_outcome(o);
            }
            runner.step_round(cfg, round, &mut staging);
        }
        for job in staging.drain(..) {
            counters.injected.fetch_add(1, Ordering::Relaxed);
            counters.in_flight.fetch_add(1, Ordering::Relaxed);
            if matches!(job.kind, JobKind::Resync { .. }) {
                counters.resyncs.fetch_add(1, Ordering::Relaxed);
            }
            injected += 1;
            let first_hop = cfg.path_of(job.vci)[0];
            out_batches[first_hop % shards].push(job);
        }
        send_batches(&mut out_batches, &txs);
        barrier.wait(); // all injections delivered

        // Phase 2: drain the pipeline in supersteps.
        loop {
            let mut jobs: Vec<Job> = Vec::new();
            while let Ok(batch) = rx.try_recv() {
                jobs.extend(batch);
            }
            max_batch = max_batch.max(jobs.len() as u64);
            // Safe read window: in_flight is only written while shards
            // process, and every shard is draining right now.
            let quiescent = counters.in_flight.load(Ordering::Relaxed) == 0;
            barrier.wait(); // all inboxes drained
            if quiescent {
                break;
            }
            jobs.sort_unstable_by_key(|j| j.seq);
            let mut sink = CompletionSink {
                latency: &mut latency,
                moments: &mut moments,
            };
            for job in jobs {
                processed += 1;
                let h = cfg.path_of(job.vci)[job.hop];
                let next = advance_job(
                    job,
                    &mut switches[h / shards],
                    path_len,
                    cfg,
                    counters,
                    vci_states,
                    &mut sink,
                );
                if let Some(nj) = next {
                    let nh = cfg.path_of(nj.vci)[nj.hop];
                    out_batches[nh % shards].push(nj);
                }
            }
            send_batches(&mut out_batches, &txs);
            barrier.wait(); // all follow-up sends delivered
        }

        // Stable here: the pipeline is quiescent and nothing is written
        // until the next generate phase, so every shard sees the same
        // totals and takes the same branch.
        if counters.completed.load(Ordering::Relaxed) >= cfg.target_requests {
            break;
        }
    }

    ShardResult {
        shard,
        latency,
        moments,
        processed,
        injected,
        max_batch,
        rounds,
    }
}

fn send_batches(out: &mut [Vec<Job>], txs: &[Sender<Vec<Job>>]) {
    for (shard, batch) in out.iter_mut().enumerate() {
        if !batch.is_empty() {
            txs[shard]
                .send(std::mem::take(batch))
                .expect("receiver alive");
        }
    }
}
