//! The hop-by-hop job state machine shared by the sharded engine and the
//! sequential replay.
//!
//! A renegotiation request is a [`Job`] that visits its path's switches
//! one hop per superstep. All engine-visible effects of one hop —
//! fault decisions, reservation updates, counter increments, outcome
//! delivery, latency recording — live in [`advance_job`], so the two
//! engines cannot drift apart semantically: they differ only in *where*
//! switches live and *how* jobs travel between hops.
//!
//! ## Faults at a hop
//!
//! Before a cell is processed at a hop, the [`FaultPlane`] decides its
//! fate — a pure function of `(seed, seq, hop, salt)`, so every shard
//! count and the sequential replay agree. Dropped, corrupted, and
//! crash-killed cells die *without a verdict*: the source's retry state
//! machine (in the load generator) times the request out. Delayed cells
//! stay in flight and are re-presented `1..=max_delay` supersteps later,
//! already `cleared` so the fate is not re-decided. Duplicated cells spawn
//! a ghost (`salt = 1`) that re-traverses the path from the current hop
//! one superstep later, double-applying the cell's effect — the
//! over-reservation drift that absolute resync repairs. Ghosts mutate
//! switch state but never touch request-level counters or report a
//! verdict; a denied ghost unwinds only the hops the ghost itself
//! touched (its `origin` floor).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rcbr_net::{
    FaultAction, FaultPlane, PriorityClass, RateField, RmCell, Switch, SALT_GHOST, SALT_PRIMARY,
};
use rcbr_sim::Histogram;
use serde::{Deserialize, Serialize};

use crate::admission::SwitchAdmission;
use crate::config::RuntimeConfig;

/// Longest route a job can carry inline, in switches.
pub const MAX_ROUTE: usize = 16;

/// A route carried *inside* every [`Job`], so resolving a hop to a switch
/// never consults shared routing state mid-drain. Routes only change at
/// round boundaries (the pipeline is quiescent at phase A), so a job's
/// inline copy can never be stale — and two engines processing the same
/// job necessarily walk the same switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    len: u8,
    hops: [u16; MAX_ROUTE],
}

impl Route {
    /// Pack a switch-index route.
    ///
    /// # Panics
    /// Panics on an empty route, more than [`MAX_ROUTE`] hops, or a
    /// switch index that does not fit `u16`.
    pub fn from_slice(hops: &[usize]) -> Self {
        assert!(
            !hops.is_empty() && hops.len() <= MAX_ROUTE,
            "route must have 1..={MAX_ROUTE} hops"
        );
        let mut packed = [0u16; MAX_ROUTE];
        for (i, &h) in hops.iter().enumerate() {
            packed[i] = u16::try_from(h).expect("switch index fits u16");
        }
        Self {
            len: hops.len() as u8,
            hops: packed,
        }
    }

    /// The switch at hop `i`.
    pub fn hop(&self, i: usize) -> usize {
        assert!(i < self.len(), "hop index out of route");
        self.hops[i] as usize
    }

    /// Hops in the route.
    #[allow(clippy::len_without_is_empty)] // routes are never empty
    pub fn len(&self) -> usize {
        self.len as usize
    }
}

/// What kind of RM cell a job carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobKind {
    /// Fast path: a signed rate change.
    Delta(f64),
    /// Slow path: absolute-rate resync. `expected_prior` is the rate the
    /// source believes every hop currently holds; a hop holding anything
    /// else has drifted (a lost delta upstream) and gets repaired here.
    Resync {
        /// The absolute rate being installed.
        rate: f64,
        /// The source's belief of the current end-to-end reservation.
        expected_prior: f64,
    },
    /// A denial is unwinding previously granted hops, one per superstep.
    Rollback(f64),
    /// Establish the VC on the job's route at an absolute rate: each hop
    /// installs a routing entry if it has none, then reserves. The
    /// make-before-break walk of the reroute engine — idempotent, so a
    /// retry (or a duplicate ghost) re-walking the route is harmless.
    Reroute {
        /// The absolute rate to reserve on every hop of the new route.
        rate: f64,
    },
    /// Remove the VC from each switch on the job's route: release its
    /// reservation and drop its routing entry. Fire-and-forget control
    /// traffic — no verdict — and modeled as reliable (exempt from the
    /// fault plane): teardown correctness is additionally backstopped by
    /// lease expiry, and the end-of-run audit asserts nothing survives.
    Teardown,
}

/// One in-flight signaling operation.
#[derive(Debug, Clone, Copy)]
pub struct Job {
    /// Global sequence number: `slot * num_vcs + vci`. Unique per request,
    /// and (with `salt` as tiebreak) the total order switches process
    /// concurrent cells in — regardless of how switches are partitioned
    /// into shards.
    pub seq: u64,
    /// The VC being renegotiated.
    pub vci: u32,
    /// Index into the VC's path (for [`JobKind::Rollback`] it walks
    /// backwards).
    pub hop: usize,
    /// The cell being carried.
    pub kind: JobKind,
    /// `0` for the original cell, `1` for a fault-plane duplicate ghost.
    /// Part of the processing sort key, and ghosts skip all request-level
    /// bookkeeping.
    pub salt: u8,
    /// The hop this job entered the pipeline at — the floor a rollback
    /// unwinds down to. `0` for originals; a ghost's spawn hop.
    pub origin: u8,
    /// The fault plane already ruled on this hop visit (set on delayed
    /// cells when they are re-presented, so the fate is decided once).
    pub cleared: bool,
    /// The VC's priority class — part of the deterministic shed order when
    /// a switch's signaling queue overflows (Gold sheds last).
    pub class: PriorityClass,
    /// Some hop this job visited was advertising overload pressure; the
    /// flag rides the cell back to the source (wire flags bit 1).
    pub pressured: bool,
    /// The switch route this job walks (`hop` indexes into it).
    pub route: Route,
}

/// Terminal verdict of a signaling attempt, reported back to the source.
/// A killed cell (dropped, corrupted, crash-killed) produces *no* verdict;
/// the source times out and retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every hop granted.
    Granted,
    /// Some hop denied (already-granted hops are rolled back for deltas;
    /// resyncs keep their partial progress).
    Denied,
    /// A hop's signaling queue was over budget and dropped the cell before
    /// processing it. Unlike a denial this is not a capacity verdict — the
    /// request is retryable after backoff — and unlike a fault-plane drop
    /// the source is told immediately (the shed notification models the
    /// switch's local push-back).
    Shed,
}

/// Per-VCI slow-path state, guarded by a mutex: the pipeline's completion
/// side writes the outcome here and the load generator consumes it at the
/// next round boundary.
#[derive(Debug, Default)]
pub struct VciSlot {
    /// The fate of the VC's outstanding attempt, if it completed.
    pub outcome: Option<Outcome>,
    /// The attempt's response carried a hop's overload-pressure flag
    /// (wire flags bit 1). Consumed alongside `outcome` at the round
    /// boundary; keeps browned-out BestEffort VCs from renegotiating
    /// until a response comes back clean.
    pub pressure: bool,
}

/// Shared atomic counters. All increments use relaxed ordering — the
/// engine's barriers provide the synchronization; the atomics only make
/// the increments themselves race-free.
///
/// Request-level counters (`accepted`, `denied`, `rollbacks`,
/// `rolled_back_hops`, `resync_repairs`, `completed`, and the retry
/// family) describe salt-0 attempts only; the cell-level fault counters
/// (`cells_*`, `crash_killed`) count ghosts too.
#[derive(Debug, Default)]
pub struct Counters {
    /// Signaling attempts injected into the pipeline (initial + retries).
    pub injected: AtomicU64,
    /// Requests granted at every hop.
    pub accepted: AtomicU64,
    /// Attempts denied at some hop.
    pub denied: AtomicU64,
    /// Denied attempts that had upstream reservations to unwind.
    pub rollbacks: AtomicU64,
    /// Individual hop reservations unwound by rollback.
    pub rolled_back_hops: AtomicU64,
    /// Absolute-rate resync cells injected (periodic + retries).
    pub resyncs: AtomicU64,
    /// Hops whose reservation disagreed with the source's belief when a
    /// resync cell arrived — i.e. drift actually repaired.
    pub resync_repairs: AtomicU64,
    /// Requests that reached a terminal fate (granted or abandoned after
    /// retry exhaustion): `completed == accepted + exhausted`.
    pub completed: AtomicU64,
    /// Cells dropped by the fault plane.
    pub cells_dropped: AtomicU64,
    /// Cells delayed by the fault plane.
    pub cells_delayed: AtomicU64,
    /// Ghost duplicates spawned by the fault plane.
    pub cells_duplicated: AtomicU64,
    /// Cells bit-corrupted by the fault plane (caught by the checksum and
    /// discarded).
    pub cells_corrupted: AtomicU64,
    /// Cells that arrived at a crashed (down) switch.
    pub crash_killed: AtomicU64,
    /// Attempts that timed out waiting for a verdict.
    pub timeouts: AtomicU64,
    /// Retry attempts injected after a timeout or denial.
    pub retries: AtomicU64,
    /// Requests abandoned after exhausting the retry budget.
    pub exhausted: AtomicU64,
    /// VCs that newly entered the degraded state (kept a stale rate).
    pub degraded_events: AtomicU64,
    /// Cells killed in flight crossing a down link.
    pub cells_link_killed: AtomicU64,
    /// Per-hop reservations reclaimed use-it-or-lose-it because no RM
    /// cell refreshed the lease in time.
    pub leases_expired: AtomicU64,
    /// Reroute attempts injected (initial + retries).
    pub reroutes: AtomicU64,
    /// Reroutes granted end to end (the VC committed to the new route).
    pub reroutes_committed: AtomicU64,
    /// Reroute attempts denied at some hop (capacity on the new route).
    pub reroutes_denied: AtomicU64,
    /// Teardown walks injected (route switches, stale-hop cleanup, and
    /// break-before-make compensation).
    pub teardown_cells: AtomicU64,
    /// Individual switch entries removed by teardown walks.
    pub teardown_hops: AtomicU64,
    /// VCs that ran out of live routes and released everything (stranded).
    pub stranded_events: AtomicU64,
    /// Stranded VCs that later re-established service on a revived route.
    pub unstranded_events: AtomicU64,
    /// Periodic invariant audits executed.
    pub audit_runs: AtomicU64,
    /// (switch, VC) reservation pairs the periodic auditor found drifted
    /// from the source's believed rate.
    pub audit_drift: AtomicU64,
    /// Per-hop booking checks that admitted an RM cell (delta, resync, or
    /// reroute; ghosts included — every cell that reaches a port faces the
    /// admission test).
    pub admission_grants: AtomicU64,
    /// Per-hop booking checks that denied an RM cell. These are admission
    /// losses, as distinct from the fault plane's `cells_*` destruction.
    pub admission_denials: AtomicU64,
    /// Cells shed by over-budget signaling queues (ghosts included):
    /// `cells_shed == sheds_gold + sheds_silver + sheds_best_effort`.
    pub cells_shed: AtomicU64,
    /// Shed cells whose VC is Gold class.
    pub sheds_gold: AtomicU64,
    /// Shed cells whose VC is Silver class.
    pub sheds_silver: AtomicU64,
    /// Shed cells whose VC is BestEffort class.
    pub sheds_best_effort: AtomicU64,
    /// BestEffort VCs that entered brownout (held their granted rate and
    /// stopped renegotiating under pressure).
    pub brownout_entries: AtomicU64,
    /// Brownouts that ended on a clean (pressure-free) grant, as opposed
    /// to the hold timer lapsing.
    pub brownout_exits: AtomicU64,
    /// (round, switch) pairs where the switch was still advertising
    /// overload pressure at the round top.
    pub pressure_rounds: AtomicU64,
    /// Jobs currently in the pipeline (including rollbacks still
    /// unwinding, delayed cells, and ghosts).
    pub in_flight: AtomicU64,
}

/// A point-in-time copy of [`Counters`], comparable and serializable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Signaling attempts injected into the pipeline (initial + retries).
    pub injected: u64,
    /// Requests granted at every hop.
    pub accepted: u64,
    /// Attempts denied at some hop.
    pub denied: u64,
    /// Denied attempts that required rollback.
    pub rollbacks: u64,
    /// Individual hop reservations unwound.
    pub rolled_back_hops: u64,
    /// Resync cells injected.
    pub resyncs: u64,
    /// Drifted hops repaired by resync.
    pub resync_repairs: u64,
    /// Requests that reached a terminal fate (`accepted + exhausted`).
    pub completed: u64,
    /// Cells dropped by the fault plane.
    pub cells_dropped: u64,
    /// Cells delayed by the fault plane.
    pub cells_delayed: u64,
    /// Ghost duplicates spawned.
    pub cells_duplicated: u64,
    /// Cells bit-corrupted (detected and discarded).
    pub cells_corrupted: u64,
    /// Cells killed at a crashed switch.
    pub crash_killed: u64,
    /// Attempts that timed out.
    pub timeouts: u64,
    /// Retry attempts injected.
    pub retries: u64,
    /// Requests abandoned after retry exhaustion.
    pub exhausted: u64,
    /// VCs that newly degraded.
    pub degraded_events: u64,
    /// Cells killed crossing a down link.
    pub cells_link_killed: u64,
    /// Hop reservations reclaimed by lease expiry.
    pub leases_expired: u64,
    /// Reroute attempts injected.
    pub reroutes: u64,
    /// Reroutes committed end to end.
    pub reroutes_committed: u64,
    /// Reroute attempts denied at some hop.
    pub reroutes_denied: u64,
    /// Teardown walks injected.
    pub teardown_cells: u64,
    /// Switch entries removed by teardown walks.
    pub teardown_hops: u64,
    /// VCs stranded with no live route.
    pub stranded_events: u64,
    /// Stranded VCs that recovered onto a revived route.
    pub unstranded_events: u64,
    /// Periodic audits executed.
    pub audit_runs: u64,
    /// Drifted reservation pairs detected by periodic audits.
    pub audit_drift: u64,
    /// Per-hop booking checks that admitted an RM cell.
    pub admission_grants: u64,
    /// Per-hop booking checks that denied an RM cell.
    pub admission_denials: u64,
    /// Cells shed by over-budget signaling queues (sum of the per-class
    /// counters below).
    pub cells_shed: u64,
    /// Shed cells whose VC is Gold class.
    pub sheds_gold: u64,
    /// Shed cells whose VC is Silver class.
    pub sheds_silver: u64,
    /// Shed cells whose VC is BestEffort class.
    pub sheds_best_effort: u64,
    /// BestEffort VCs that entered brownout.
    pub brownout_entries: u64,
    /// Brownouts that ended on a clean grant.
    pub brownout_exits: u64,
    /// (round, switch) pairs still under pressure at the round top.
    pub pressure_rounds: u64,
}

/// The pair of reads that decides a drain loop's fate, taken together in
/// the safe window between barriers.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DrainSnapshot {
    /// No job is in the pipeline: the round can end.
    pub quiescent: bool,
    /// Completed-request total as of the same instant, so every shard
    /// takes the same stop-run branch.
    pub completed: u64,
}

impl Counters {
    /// Snapshot the drain-loop decision state. Must be called in a window
    /// where no shard can write these counters — in the engine, after a
    /// shard drained its inbox and *before* the end-of-superstep barrier
    /// releases anyone into the next round's phases (the PR 2 deadlock:
    /// reading after that barrier races the next round's timeout writes
    /// and desynchronizes the shards' break decisions).
    pub(crate) fn snapshot_drain(&self) -> DrainSnapshot {
        DrainSnapshot {
            quiescent: self.in_flight.load(Ordering::Relaxed) == 0,
            completed: self.completed.load(Ordering::Relaxed),
        }
    }

    /// Copy the current values.
    pub fn snapshot(&self) -> CounterSnapshot {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        CounterSnapshot {
            injected: ld(&self.injected),
            accepted: ld(&self.accepted),
            denied: ld(&self.denied),
            rollbacks: ld(&self.rollbacks),
            rolled_back_hops: ld(&self.rolled_back_hops),
            resyncs: ld(&self.resyncs),
            resync_repairs: ld(&self.resync_repairs),
            completed: ld(&self.completed),
            cells_dropped: ld(&self.cells_dropped),
            cells_delayed: ld(&self.cells_delayed),
            cells_duplicated: ld(&self.cells_duplicated),
            cells_corrupted: ld(&self.cells_corrupted),
            crash_killed: ld(&self.crash_killed),
            timeouts: ld(&self.timeouts),
            retries: ld(&self.retries),
            exhausted: ld(&self.exhausted),
            degraded_events: ld(&self.degraded_events),
            cells_link_killed: ld(&self.cells_link_killed),
            leases_expired: ld(&self.leases_expired),
            reroutes: ld(&self.reroutes),
            reroutes_committed: ld(&self.reroutes_committed),
            reroutes_denied: ld(&self.reroutes_denied),
            teardown_cells: ld(&self.teardown_cells),
            teardown_hops: ld(&self.teardown_hops),
            stranded_events: ld(&self.stranded_events),
            unstranded_events: ld(&self.unstranded_events),
            audit_runs: ld(&self.audit_runs),
            audit_drift: ld(&self.audit_drift),
            admission_grants: ld(&self.admission_grants),
            admission_denials: ld(&self.admission_denials),
            cells_shed: ld(&self.cells_shed),
            sheds_gold: ld(&self.sheds_gold),
            sheds_silver: ld(&self.sheds_silver),
            sheds_best_effort: ld(&self.sheds_best_effort),
            brownout_entries: ld(&self.brownout_entries),
            brownout_exits: ld(&self.brownout_exits),
            pressure_rounds: ld(&self.pressure_rounds),
        }
    }
}

/// Where a completing job records its modeled latency.
pub(crate) struct CompletionSink<'a> {
    pub latency: &'a mut Histogram,
    pub moments: &'a mut crate::report::RttStats,
}

/// The fault plane plus the logical clock a hop is processed at.
pub(crate) struct FaultCtx<'a> {
    pub plane: &'a FaultPlane,
    pub superstep: u64,
}

/// Record a booking-check verdict: bump the admission grant/denial
/// counters and, when a measurement-based policy is live, fold the VC's
/// post-decision reservation at this switch into the estimator. Ghosts are
/// observed too — they are real cells that mutated real switch state, and
/// the estimator measures the switch, not the load generator.
fn record_admission(
    cell: &RmCell,
    vci: u32,
    sw: &Switch,
    counters: &Counters,
    adm: Option<&mut SwitchAdmission>,
) {
    if cell.denied {
        counters.admission_denials.fetch_add(1, Ordering::Relaxed);
    } else {
        counters.admission_grants.fetch_add(1, Ordering::Relaxed);
    }
    if let Some(sa) = adm {
        sa.observe(vci, sw.vci_rate(vci).unwrap_or(0.0));
    }
}

/// The RM cell a forward job would put on the wire (used to corrupt real
/// bytes and prove the checksum catches them).
fn wire_cell(job: &Job) -> RmCell {
    match job.kind {
        JobKind::Delta(d) => RmCell::delta(job.vci, d),
        JobKind::Resync { rate, .. } | JobKind::Reroute { rate } => RmCell::resync(job.vci, rate),
        JobKind::Rollback(_) | JobKind::Teardown => {
            unreachable!("rollback and teardown cells are never corrupted")
        }
    }
}

/// Drop `job` at its current hop because the switch's signaling queue is
/// over budget this superstep. The cell dies here — partial upstream
/// deltas stay applied (drift, repaired by the retry-as-resync path or the
/// audit) — and, for salt-0 attempts, the source is told immediately via
/// the retryable [`Outcome::Shed`] with the pressure flag set. Ghosts shed
/// silently but still count: `cells_shed` and the per-class counters see
/// every cell the queue refused.
pub(crate) fn shed_job(
    job: &Job,
    cfg: &RuntimeConfig,
    counters: &Counters,
    vci_states: &[Mutex<VciSlot>],
    sink: &mut CompletionSink<'_>,
) {
    counters.cells_shed.fetch_add(1, Ordering::Relaxed);
    match job.class {
        PriorityClass::Gold => &counters.sheds_gold,
        PriorityClass::Silver => &counters.sheds_silver,
        PriorityClass::BestEffort => &counters.sheds_best_effort,
    }
    .fetch_add(1, Ordering::Relaxed);
    counters.in_flight.fetch_sub(1, Ordering::Relaxed);
    if job.salt == SALT_PRIMARY {
        // The shed notification rides back from the refusing hop.
        let rtt = cfg.hop_latency * 2.0 * (job.hop + 1) as f64;
        sink.latency.record(rtt);
        sink.moments.record(job.hop + 1);
        let mut slot = vci_states[job.vci as usize].lock().expect("vci lock");
        slot.outcome = Some(Outcome::Shed);
        slot.pressure = true;
    }
}

/// Process `job` at the switch for its current hop.
///
/// Returns `(forward, delayed)`: `forward` is the follow-up job to route
/// this superstep (next hop, or the previous hop of a rollback);
/// `delayed` is a `(release_superstep, job)` pair the owner must hold —
/// either the job itself (fault-delayed) or a freshly spawned duplicate
/// ghost.
///
/// `sw` must be the switch at `job.route.hop(job.hop)` for this job, and
/// `switch_global` its global index. `adm` is the switch's admission
/// state when a measurement-based policy is live (`None` under the
/// default `PeakRate`, which keeps the legacy fast path untouched).
/// `under_pressure` is the switch's signaling queue still advertising a
/// recent shed; it stamps the job's pressure flag, which rides the
/// response back to the source.
#[allow(clippy::too_many_arguments)]
pub(crate) fn advance_job(
    job: Job,
    sw: &mut Switch,
    switch_global: usize,
    cfg: &RuntimeConfig,
    fx: &FaultCtx<'_>,
    counters: &Counters,
    vci_states: &[Mutex<VciSlot>],
    sink: &mut CompletionSink<'_>,
    adm: Option<&mut SwitchAdmission>,
    under_pressure: bool,
) -> (Option<Job>, Option<(u64, Job)>) {
    let mut job = job;
    job.pressured |= under_pressure;
    let job = job;
    let is_ghost = job.salt != SALT_PRIMARY;
    let path_len = job.route.len();
    let gone = |counters: &Counters| {
        counters.in_flight.fetch_sub(1, Ordering::Relaxed);
    };
    // A forward cell reaching hop `k` just crossed the link
    // `(route[k-1], route[k])`; if that link is down the cell died in
    // flight — no verdict, the source times out. Rollbacks are exempt
    // (like their drop-only fault treatment: an undo must not be lost to
    // the same failure it is compensating), and teardown is reliable
    // control traffic.
    if matches!(
        job.kind,
        JobKind::Delta(_) | JobKind::Resync { .. } | JobKind::Reroute { .. }
    ) && job.hop > 0
        && fx.plane.link_down(
            job.route.hop(job.hop - 1),
            job.route.hop(job.hop),
            fx.superstep,
        )
    {
        counters.cells_link_killed.fetch_add(1, Ordering::Relaxed);
        gone(counters);
        return (None, None);
    }
    // A crashed (or permanently killed) switch kills every arriving cell
    // — no verdict, so the source's retry machinery must time the attempt
    // out. Teardown walks continue past it: the down switch's soft state
    // is wiped on restart (or at end of run) anyway, and the walk must
    // still clean the live switches beyond it.
    let down = fx.plane.switch_down(switch_global, fx.superstep);
    if down && !matches!(job.kind, JobKind::Teardown) {
        counters.crash_killed.fetch_add(1, Ordering::Relaxed);
        gone(counters);
        return (None, None);
    }

    // Decide this hop visit's fate exactly once (delayed cells come back
    // `cleared`; teardown is exempt from the fault plane entirely).
    let mut spawned: Option<(u64, Job)> = None;
    if !job.cleared && !matches!(job.kind, JobKind::Teardown) {
        let action = if matches!(job.kind, JobKind::Rollback(_)) {
            // An undo must not be re-applied: rollback cells only drop.
            fx.plane.decide_rollback(job.seq, job.hop, job.salt)
        } else {
            fx.plane.decide(job.seq, job.hop, job.salt)
        };
        match action {
            FaultAction::Deliver => {}
            FaultAction::Drop => {
                counters.cells_dropped.fetch_add(1, Ordering::Relaxed);
                gone(counters);
                return (None, None);
            }
            FaultAction::Corrupt => {
                // Put the real bytes on the wire, flip bits, and let the
                // checksum reject them — the cell dies detected, not by
                // silently applying a garbled rate.
                let mut wire = wire_cell(&job).encode();
                fx.plane.corrupt_wire(&mut wire, job.seq, job.hop);
                debug_assert!(
                    RmCell::decode(&wire).is_none(),
                    "the checksum must catch fault-plane corruption"
                );
                counters.cells_corrupted.fetch_add(1, Ordering::Relaxed);
                gone(counters);
                return (None, None);
            }
            FaultAction::Delay(d) => {
                counters.cells_delayed.fetch_add(1, Ordering::Relaxed);
                return (
                    None,
                    Some((
                        fx.superstep + d,
                        Job {
                            cleared: true,
                            ..job
                        },
                    )),
                );
            }
            FaultAction::Duplicate => {
                // Process the original now; a ghost copy re-traverses from
                // this hop one superstep later, double-applying the cell.
                counters.cells_duplicated.fetch_add(1, Ordering::Relaxed);
                counters.in_flight.fetch_add(1, Ordering::Relaxed);
                spawned = Some((
                    fx.superstep + 1,
                    Job {
                        salt: SALT_GHOST,
                        origin: job.hop as u8,
                        cleared: false,
                        ..job
                    },
                ));
            }
        }
    }

    // Any RM cell that actually reached the switch refreshes the VC's
    // reservation lease there — ghosts included, they are real cells on
    // the wire. Dropped / corrupted / link-killed cells never arrive, so
    // they refresh nothing: that is exactly the signal loss that lets
    // leases expire.
    if cfg.lease_supersteps > 0 && !matches!(job.kind, JobKind::Teardown) {
        sw.touch_lease(job.vci, fx.superstep);
    }

    // Deliver the attempt's verdict to the source (salt-0 only: ghosts
    // are network artifacts, invisible to the load generator).
    let deliver = |outcome: Outcome,
                   hops_touched: usize,
                   counters: &Counters,
                   sink: &mut CompletionSink<'_>| {
        let rtt = cfg.hop_latency * 2.0 * hops_touched as f64;
        sink.latency.record(rtt);
        sink.moments.record(hops_touched);
        if outcome == Outcome::Granted {
            counters.accepted.fetch_add(1, Ordering::Relaxed);
            counters.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            counters.denied.fetch_add(1, Ordering::Relaxed);
        }
        let mut slot = vci_states[job.vci as usize].lock().expect("vci lock");
        slot.outcome = Some(outcome);
        slot.pressure = job.pressured;
    };

    match job.kind {
        JobKind::Delta(delta) => {
            let cell = sw
                .process_rm(RmCell {
                    vci: job.vci,
                    rate: RateField::Delta(delta),
                    denied: false,
                    pressure: false,
                })
                .expect("VC is routed through this switch");
            record_admission(&cell, job.vci, sw, counters, adm);
            if !cell.denied {
                if job.hop + 1 == path_len {
                    if !is_ghost {
                        deliver(Outcome::Granted, path_len, counters, sink);
                    }
                    gone(counters);
                    (None, spawned)
                } else {
                    (
                        Some(Job {
                            hop: job.hop + 1,
                            cleared: false,
                            ..job
                        }),
                        spawned,
                    )
                }
            } else {
                // The source learns of the denial now (round trip to the
                // denying hop); the unwind continues in-pipeline down to
                // this job's origin hop.
                if !is_ghost {
                    deliver(Outcome::Denied, job.hop + 1, counters, sink);
                }
                if job.hop == job.origin as usize {
                    gone(counters);
                    (None, spawned)
                } else {
                    if !is_ghost {
                        counters.rollbacks.fetch_add(1, Ordering::Relaxed);
                    }
                    (
                        Some(Job {
                            hop: job.hop - 1,
                            kind: JobKind::Rollback(delta),
                            cleared: false,
                            ..job
                        }),
                        spawned,
                    )
                }
            }
        }
        JobKind::Resync {
            rate,
            expected_prior,
        } => {
            let prior = sw
                .vci_rate(job.vci)
                .expect("VC is routed through this switch");
            if prior != expected_prior && !is_ghost {
                counters.resync_repairs.fetch_add(1, Ordering::Relaxed);
            }
            let cell = sw
                .process_rm(RmCell {
                    vci: job.vci,
                    rate: RateField::Absolute(rate),
                    denied: false,
                    pressure: false,
                })
                .expect("VC is routed through this switch");
            record_admission(&cell, job.vci, sw, counters, adm);
            if cell.denied {
                // No rollback for resync (Path::resync semantics): hops
                // already synchronized stay synchronized.
                if !is_ghost {
                    deliver(Outcome::Denied, job.hop + 1, counters, sink);
                }
                gone(counters);
                (None, spawned)
            } else if job.hop + 1 == path_len {
                if !is_ghost {
                    deliver(Outcome::Granted, path_len, counters, sink);
                }
                gone(counters);
                (None, spawned)
            } else {
                (
                    Some(Job {
                        hop: job.hop + 1,
                        cleared: false,
                        ..job
                    }),
                    spawned,
                )
            }
        }
        JobKind::Rollback(delta) => {
            // Best-effort: the grant being unwound may have been wiped by
            // a crash-restart, in which case there is nothing to undo.
            let unwound = sw
                .try_rollback_delta(job.vci, delta)
                .expect("VC is routed through this switch");
            if unwound && !is_ghost {
                counters.rolled_back_hops.fetch_add(1, Ordering::Relaxed);
            }
            if job.hop == job.origin as usize {
                gone(counters);
                (None, None)
            } else {
                (
                    Some(Job {
                        hop: job.hop - 1,
                        cleared: false,
                        ..job
                    }),
                    None,
                )
            }
        }
        JobKind::Reroute { rate } => {
            // Establish-or-repair: hops of the new route that never saw
            // this VC get a routing entry first, then every hop reserves
            // the absolute rate. On hops shared with the old route this
            // resyncs to the rate the VC already holds — a no-op that can
            // never be denied — so partial failures only ever leave
            // residue on *new* hops, which the runner's compensating
            // teardown (and ultimately the end-of-run audit) reclaims.
            sw.install(job.vci, 0);
            let cell = sw
                .process_rm(RmCell {
                    vci: job.vci,
                    rate: RateField::Absolute(rate),
                    denied: false,
                    pressure: false,
                })
                .expect("installed above");
            record_admission(&cell, job.vci, sw, counters, adm);
            if cell.denied {
                if !is_ghost {
                    deliver(Outcome::Denied, job.hop + 1, counters, sink);
                }
                gone(counters);
                (None, spawned)
            } else if job.hop + 1 == path_len {
                if !is_ghost {
                    deliver(Outcome::Granted, path_len, counters, sink);
                }
                gone(counters);
                (None, spawned)
            } else {
                (
                    Some(Job {
                        hop: job.hop + 1,
                        cleared: false,
                        ..job
                    }),
                    spawned,
                )
            }
        }
        JobKind::Teardown => {
            // Remove the VC from this switch: release the reservation and
            // drop the routing entry. Idempotent — a hop that never held
            // the VC (or was already torn) is a no-op — and skipped at a
            // down switch, whose soft state is wiped on restart or at end
            // of run anyway.
            if !down && sw.uninstall(job.vci).is_some() {
                counters.teardown_hops.fetch_add(1, Ordering::Relaxed);
            }
            if job.hop + 1 == path_len {
                gone(counters);
                (None, None)
            } else {
                (
                    Some(Job {
                        hop: job.hop + 1,
                        cleared: false,
                        ..job
                    }),
                    None,
                )
            }
        }
    }
}
