//! The hop-by-hop job state machine shared by the sharded engine and the
//! sequential replay.
//!
//! A renegotiation request is a [`Job`] that visits its path's switches
//! one hop per superstep. All engine-visible effects of one hop —
//! reservation updates, counter increments, outcome delivery, latency
//! recording — live in [`advance_job`], so the two engines cannot drift
//! apart semantically: they differ only in *where* switches live and *how*
//! jobs travel between hops.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rcbr_net::{RateField, RmCell, Switch};
use rcbr_sim::{Histogram, RunningStats};
use serde::{Deserialize, Serialize};

use crate::config::RuntimeConfig;

/// What kind of RM cell a job carries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobKind {
    /// Fast path: a signed rate change.
    Delta(f64),
    /// Slow path: absolute-rate resync. `expected_prior` is the rate the
    /// source believes every hop currently holds; a hop holding anything
    /// else has drifted (a lost delta upstream) and gets repaired here.
    Resync {
        /// The absolute rate being installed.
        rate: f64,
        /// The source's belief of the current end-to-end reservation.
        expected_prior: f64,
    },
    /// A denial is unwinding previously granted hops, one per superstep.
    Rollback(f64),
}

/// One in-flight signaling operation.
#[derive(Debug, Clone, Copy)]
pub struct Job {
    /// Global sequence number: `slot * num_vcs + vci`. Unique per request,
    /// and the total order switches process concurrent cells in —
    /// regardless of how switches are partitioned into shards.
    pub seq: u64,
    /// The VC being renegotiated.
    pub vci: u32,
    /// Index into the VC's path (for [`JobKind::Rollback`] it walks
    /// backwards).
    pub hop: usize,
    /// The cell being carried.
    pub kind: JobKind,
}

/// Terminal fate of a request, reported back to the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every hop granted.
    Granted,
    /// Some hop denied (already-granted hops are rolled back for deltas;
    /// resyncs keep their partial progress).
    Denied,
    /// The cell was dropped mid-path; the source times out, upstream hops
    /// keep the half-applied delta (drift).
    Lost,
}

/// Per-VCI slow-path state, guarded by a mutex: the pipeline's completion
/// side writes the outcome here and the load generator consumes it at the
/// next round boundary.
#[derive(Debug, Default)]
pub struct VciSlot {
    /// The fate of the VC's outstanding request, if it completed.
    pub outcome: Option<Outcome>,
}

/// Shared atomic counters. All increments use relaxed ordering — the
/// engine's barriers provide the synchronization; the atomics only make
/// the increments themselves race-free.
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests injected into the pipeline.
    pub injected: AtomicU64,
    /// Requests granted at every hop.
    pub accepted: AtomicU64,
    /// Requests denied at some hop.
    pub denied: AtomicU64,
    /// Denied requests that had upstream reservations to unwind.
    pub rollbacks: AtomicU64,
    /// Individual hop reservations unwound by rollback.
    pub rolled_back_hops: AtomicU64,
    /// Delta cells dropped mid-path.
    pub lost: AtomicU64,
    /// Absolute-rate resync cells injected.
    pub resyncs: AtomicU64,
    /// Hops whose reservation disagreed with the source's belief when a
    /// resync cell arrived — i.e. drift actually repaired.
    pub resync_repairs: AtomicU64,
    /// Requests that reached a terminal fate (granted + denied + lost).
    pub completed: AtomicU64,
    /// Jobs currently in the pipeline (including rollbacks still
    /// unwinding).
    pub in_flight: AtomicU64,
}

/// A point-in-time copy of [`Counters`], comparable and serializable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Requests injected into the pipeline.
    pub injected: u64,
    /// Requests granted at every hop.
    pub accepted: u64,
    /// Requests denied at some hop.
    pub denied: u64,
    /// Denied requests that required rollback.
    pub rollbacks: u64,
    /// Individual hop reservations unwound.
    pub rolled_back_hops: u64,
    /// Delta cells dropped mid-path.
    pub lost: u64,
    /// Resync cells injected.
    pub resyncs: u64,
    /// Drifted hops repaired by resync.
    pub resync_repairs: u64,
    /// Requests that reached a terminal fate.
    pub completed: u64,
}

impl Counters {
    /// Copy the current values.
    pub fn snapshot(&self) -> CounterSnapshot {
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);
        CounterSnapshot {
            injected: ld(&self.injected),
            accepted: ld(&self.accepted),
            denied: ld(&self.denied),
            rollbacks: ld(&self.rollbacks),
            rolled_back_hops: ld(&self.rolled_back_hops),
            lost: ld(&self.lost),
            resyncs: ld(&self.resyncs),
            resync_repairs: ld(&self.resync_repairs),
            completed: ld(&self.completed),
        }
    }
}

/// Where a completing job records its modeled latency.
pub(crate) struct CompletionSink<'a> {
    pub latency: &'a mut Histogram,
    pub moments: &'a mut RunningStats,
}

/// The hop at which delta cell `seq` is dropped, if it is lossy. Losses
/// are deterministic in the sequence number so every engine and shard
/// count drops exactly the same cells; dropping at hop >= 1 guarantees
/// real drift (some hops applied, some did not) on multi-hop paths.
fn loss_hop(cfg: &RuntimeConfig, seq: u64, path_len: usize) -> Option<usize> {
    if cfg.loss_period == 0 || !seq.is_multiple_of(cfg.loss_period) {
        return None;
    }
    if path_len == 1 {
        Some(0)
    } else {
        Some(1 + (seq % (path_len as u64 - 1)) as usize)
    }
}

/// Process `job` at the switch for its current hop. Returns the follow-up
/// job to route (the next hop forward, or the previous hop of a rollback),
/// or `None` when the job has left the pipeline.
///
/// `sw` must be the switch at `path[job.hop]` for the job's VC.
pub(crate) fn advance_job(
    job: Job,
    sw: &mut Switch,
    path_len: usize,
    cfg: &RuntimeConfig,
    counters: &Counters,
    vci_states: &[Mutex<VciSlot>],
    sink: &mut CompletionSink<'_>,
) -> Option<Job> {
    let complete = |outcome: Outcome,
                    hops_touched: usize,
                    counters: &Counters,
                    sink: &mut CompletionSink<'_>| {
        if outcome != Outcome::Lost {
            let rtt = cfg.hop_latency * 2.0 * hops_touched as f64;
            sink.latency.record(rtt);
            sink.moments.push(rtt);
        }
        counters.completed.fetch_add(1, Ordering::Relaxed);
        vci_states[job.vci as usize]
            .lock()
            .expect("vci lock")
            .outcome = Some(outcome);
    };

    match job.kind {
        JobKind::Delta(delta) => {
            if loss_hop(cfg, job.seq, path_len) == Some(job.hop) {
                // The cell vanishes: hops 0..hop keep the applied delta
                // (drift), the source will time out.
                counters.lost.fetch_add(1, Ordering::Relaxed);
                complete(Outcome::Lost, job.hop, counters, sink);
                counters.in_flight.fetch_sub(1, Ordering::Relaxed);
                return None;
            }
            let cell = sw
                .process_rm(RmCell {
                    vci: job.vci,
                    rate: RateField::Delta(delta),
                    denied: false,
                })
                .expect("VC is routed through this switch");
            if !cell.denied {
                if job.hop + 1 == path_len {
                    counters.accepted.fetch_add(1, Ordering::Relaxed);
                    complete(Outcome::Granted, path_len, counters, sink);
                    counters.in_flight.fetch_sub(1, Ordering::Relaxed);
                    None
                } else {
                    Some(Job {
                        hop: job.hop + 1,
                        ..job
                    })
                }
            } else {
                counters.denied.fetch_add(1, Ordering::Relaxed);
                // The source learns of the denial now (round trip to the
                // denying hop); the unwind continues in-pipeline.
                complete(Outcome::Denied, job.hop + 1, counters, sink);
                if job.hop == 0 {
                    counters.in_flight.fetch_sub(1, Ordering::Relaxed);
                    None
                } else {
                    counters.rollbacks.fetch_add(1, Ordering::Relaxed);
                    Some(Job {
                        hop: job.hop - 1,
                        kind: JobKind::Rollback(delta),
                        ..job
                    })
                }
            }
        }
        JobKind::Resync {
            rate,
            expected_prior,
        } => {
            let prior = sw
                .vci_rate(job.vci)
                .expect("VC is routed through this switch");
            if prior != expected_prior {
                counters.resync_repairs.fetch_add(1, Ordering::Relaxed);
            }
            let cell = sw
                .process_rm(RmCell {
                    vci: job.vci,
                    rate: RateField::Absolute(rate),
                    denied: false,
                })
                .expect("VC is routed through this switch");
            if cell.denied {
                // No rollback for resync (Path::resync semantics): hops
                // already synchronized stay synchronized.
                counters.denied.fetch_add(1, Ordering::Relaxed);
                complete(Outcome::Denied, job.hop + 1, counters, sink);
                counters.in_flight.fetch_sub(1, Ordering::Relaxed);
                None
            } else if job.hop + 1 == path_len {
                counters.accepted.fetch_add(1, Ordering::Relaxed);
                complete(Outcome::Granted, path_len, counters, sink);
                counters.in_flight.fetch_sub(1, Ordering::Relaxed);
                None
            } else {
                Some(Job {
                    hop: job.hop + 1,
                    ..job
                })
            }
        }
        JobKind::Rollback(delta) => {
            sw.rollback_delta(job.vci, delta)
                .expect("VC is routed through this switch");
            counters.rolled_back_hops.fetch_add(1, Ordering::Relaxed);
            if job.hop == 0 {
                counters.in_flight.fetch_sub(1, Ordering::Relaxed);
                None
            } else {
                Some(Job {
                    hop: job.hop - 1,
                    ..job
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> RuntimeConfig {
        let mut cfg = RuntimeConfig::balanced(1, 8);
        cfg.loss_period = 5;
        cfg
    }

    #[test]
    fn loss_hop_is_deterministic_and_mid_path() {
        let cfg = tiny_cfg();
        for seq in 0..100u64 {
            match loss_hop(&cfg, seq, 4) {
                Some(h) => {
                    assert_eq!(seq % 5, 0);
                    assert!((1..4).contains(&h), "loss hop {h} not mid-path");
                }
                None => assert_ne!(seq % 5, 0),
            }
        }
    }

    #[test]
    fn loss_disabled_when_period_zero() {
        let mut cfg = tiny_cfg();
        cfg.loss_period = 0;
        assert_eq!(loss_hop(&cfg, 0, 4), None);
    }
}
