//! Live measurement-based admission control for the signaling plane.
//!
//! The paper's Section VI studies admission control for RCBR traffic in two
//! flavors: a memoryless Chernoff test over the renegotiated-rate marginal
//! and an equivalent-bandwidth test over the empirical rate process. This
//! module brings both online: every switch carries an [`ArrivalEstimator`]
//! that folds the delivered renegotiation stream into an empirical
//! grid-level histogram plus transition counts, and at deterministic
//! superstep boundaries a [`SwitchAdmission`] rolls the measurement window
//! into a fresh booking ceiling for the switch's output ports.
//!
//! Three invariants keep this subsystem honest:
//!
//! * **Legacy parity.** [`AdmissionPolicy::PeakRate`] (the default) never
//!   rolls a window and never moves a ceiling, so every port keeps
//!   `ceiling == capacity` and the fast-path check is bit-identical to the
//!   static peak-rate check the runtime shipped with.
//! * **Determinism.** The estimator observes only *delivered* RM cells, in
//!   the per-switch deterministic order the drain loop already guarantees;
//!   windows roll only at the top of a round (phase-A quiescence) at
//!   supersteps derived from `measurement_window_supersteps`. All state
//!   lives in `BTreeMap`s. Counters and per-VC outcomes are therefore
//!   bit-identical across shard counts under every policy.
//! * **Soft state.** A crash-restart wipes the measurements along with the
//!   switch's reservations (the ceiling snaps back to the capacity); the
//!   [`rcbr_ldt::eb::EbCache`] survives, since equivalent bandwidth is a
//!   function of the model alone, not of who measured it.

use std::collections::BTreeMap;

use rcbr_admission::controllers::Memoryless;
use rcbr_ldt::eb::{EbCache, EbCacheStats, QosTarget};
use rcbr_net::Switch;
use rcbr_traffic::markov::{MarkovChain, MarkovModulatedSource};
use serde::{Deserialize, Serialize};

use crate::config::RuntimeConfig;
use crate::core::CounterSnapshot;

/// Hard clamp on how far a measured ceiling may move from the capacity, as
/// a multiplicative factor in either direction. Keeps a degenerate window
/// (one quiet sample, an all-zero histogram) from swinging the ceiling to
/// an absurd value before the next window corrects it.
pub const MAX_OVERBOOK: f64 = 4.0;

/// Which admission test gates renegotiation RM cells at each port.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdmissionPolicy {
    /// The legacy static check: admit iff the new aggregate fits the port
    /// capacity. No measurement, no ceiling movement — bit-identical to
    /// the runtime before this subsystem existed.
    PeakRate,
    /// The memoryless Chernoff MBAC of Section VI-A: from the measured
    /// rate marginal, find the per-source capacity at which the Chernoff
    /// bound on `P(sum > capacity)` meets `target`, and book against it.
    Memoryless {
        /// Acceptable renegotiation-failure probability, in `(0, 1)`.
        target: f64,
    },
    /// The equivalent-bandwidth MBAC of Section VI-B: fit an empirical
    /// Markov chain to the measured rate process and book against the sum
    /// of equivalent bandwidths at QoS target `(buffer, epsilon)`.
    ChernoffEb {
        /// Acceptable buffer-overflow probability, in `(0, 1)`.
        epsilon: f64,
    },
}

// Not derived: the vendored serde_derive shim cannot parse a `#[default]`
// variant attribute alongside its own derives.
#[allow(clippy::derivable_impls)]
impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy::PeakRate
    }
}

impl AdmissionPolicy {
    /// Stable lowercase name for reports and bench output.
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionPolicy::PeakRate => "peak-rate",
            AdmissionPolicy::Memoryless { .. } => "memoryless",
            AdmissionPolicy::ChernoffEb { .. } => "chernoff-eb",
        }
    }

    /// Whether this policy runs the measurement pipeline at all. PeakRate
    /// does not: its ceilings never move, so the estimator would be dead
    /// weight on the fast path.
    pub fn measures(&self) -> bool {
        !matches!(self, AdmissionPolicy::PeakRate)
    }
}

/// Per-switch online estimator of the renegotiated-rate process.
///
/// Rates are quantized to the renegotiation grid (`granularity` Δ from the
/// config), matching the paper's observation that RCBR sources only ever
/// request grid rates anyway. The estimator keeps, per measurement window,
/// a histogram of observed grid levels and pooled level-to-level
/// transition counts; across windows it remembers each VC's last level so
/// transitions chain over window boundaries, and a cumulative observation
/// count for reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalEstimator {
    granularity: f64,
    /// Histogram of grid levels seen this window.
    levels: BTreeMap<u64, u64>,
    /// Pooled `(from, to)` grid-level transition counts this window.
    transitions: BTreeMap<(u64, u64), u64>,
    /// Last observed grid level per VC — persists across window rolls so
    /// cross-window transitions still chain.
    ///
    /// The per-VC rate process does not restart at a window boundary:
    /// the first cell a VC delivers after a roll is a transition *from*
    /// its last pre-roll level, and forgetting that level would silently
    /// drop exactly one transition per VC per window. With windows short
    /// relative to the renegotiation cadence that loss is a systematic
    /// bias toward whatever the within-window dynamics happen to be —
    /// the fitted transition matrix (and so the booking ceilings) would
    /// then depend on where the roll landed, not on the traffic. Only a
    /// crash [`wipe`](Self::wipe) clears it: measurement state is soft
    /// state, and a restarted switch genuinely has no pre-crash evidence
    /// to chain from. [`clear_window`](Self::clear_window) keeps it.
    last_level: BTreeMap<u32, u64>,
    /// Cumulative observations since the last wipe (not reset by rolls).
    observed: u64,
}

impl ArrivalEstimator {
    /// New empty estimator on the given rate grid.
    ///
    /// # Panics
    /// Panics unless `granularity > 0` and finite.
    pub fn new(granularity: f64) -> Self {
        assert!(
            granularity > 0.0 && granularity.is_finite(),
            "estimator granularity must be positive"
        );
        Self {
            granularity,
            levels: BTreeMap::new(),
            transitions: BTreeMap::new(),
            last_level: BTreeMap::new(),
            observed: 0,
        }
    }

    fn grid(&self, rate: f64) -> u64 {
        (rate.max(0.0) / self.granularity).round() as u64
    }

    /// Fold one delivered RM cell into the window: `rate` is the VC's
    /// post-decision reservation at this switch.
    pub fn observe(&mut self, vci: u32, rate: f64) {
        let level = self.grid(rate);
        *self.levels.entry(level).or_insert(0) += 1;
        if let Some(&prev) = self.last_level.get(&vci) {
            *self.transitions.entry((prev, level)).or_insert(0) += 1;
        }
        self.last_level.insert(vci, level);
        self.observed += 1;
    }

    /// Cumulative observations since the last wipe.
    pub fn observations(&self) -> u64 {
        self.observed
    }

    /// VCs with at least one observation on record.
    pub fn active_vcs(&self) -> usize {
        self.last_level.len()
    }

    /// The measured rate marginal as `(rate, weight)` pairs, ascending by
    /// rate. Weights are raw counts; consumers normalize.
    pub fn weighted_levels(&self) -> Vec<(f64, f64)> {
        self.levels
            .iter()
            .map(|(&lvl, &n)| (lvl as f64 * self.granularity, n as f64))
            .collect()
    }

    /// Fit an empirical Markov-modulated source to this window: states are
    /// the observed grid levels, transition probabilities the pooled
    /// counts row-normalized (rows with no observed exits self-loop), and
    /// emissions the grid rates over a unit slot. Returns `None` on an
    /// empty window.
    pub fn empirical_source(&self) -> Option<MarkovModulatedSource> {
        if self.levels.is_empty() {
            return None;
        }
        let states: Vec<u64> = self.levels.keys().copied().collect();
        let index: BTreeMap<u64, usize> = states.iter().enumerate().map(|(i, &s)| (s, i)).collect();
        let n = states.len();
        let mut counts = vec![vec![0u64; n]; n];
        for (&(from, to), &c) in &self.transitions {
            // Transitions touching levels outside this window's histogram
            // (possible when a cross-window chain spans a roll) are
            // dropped: the state space is this window's evidence.
            if let (Some(&i), Some(&j)) = (index.get(&from), index.get(&to)) {
                counts[i][j] += c;
            }
        }
        let mut rows = Vec::with_capacity(n);
        for (i, row) in counts.iter().enumerate() {
            let mut total = 0u64;
            for &c in row {
                total += c;
            }
            let mut p = vec![0.0f64; n];
            if total == 0 {
                // No observed exits: a self-loop keeps the chain stochastic
                // without inventing dynamics.
                p[i] = 1.0;
            } else {
                let mut partial = 0.0f64;
                for j in 0..n - 1 {
                    p[j] = row[j] as f64 / total as f64;
                    partial += p[j];
                }
                // The last entry absorbs rounding so the row sums to one
                // exactly within the chain constructor's tolerance.
                p[n - 1] = (1.0 - partial).max(0.0);
            }
            rows.push(p);
        }
        let chain = MarkovChain::new(rows);
        let emissions: Vec<f64> = states
            .iter()
            .map(|&s| s as f64 * self.granularity)
            .collect();
        Some(MarkovModulatedSource::new(chain, emissions, 1.0))
    }

    /// Roll the window: forget this window's histogram and transitions but
    /// keep per-VC last levels (cross-window chaining) and the cumulative
    /// observation count.
    pub fn clear_window(&mut self) {
        self.levels.clear();
        self.transitions.clear();
    }

    /// Crash-wipe: forget everything, including last levels. Measurement
    /// state is soft state, rebuilt from the post-restart stream.
    pub fn wipe(&mut self) {
        self.levels.clear();
        self.transitions.clear();
        self.last_level.clear();
        self.observed = 0;
    }
}

/// Map a policy's measured capacity requirement to a port booking ceiling.
///
/// `needed` is the capacity the measured mix would require to meet the
/// policy's loss target. If the mix needs less than the physical capacity
/// the port can overbook by the same statistical margin; if it needs more,
/// the ceiling tightens below the capacity. `None` (no evidence yet) and
/// degenerate values fall back generously: an empty or all-idle window is
/// not evidence of congestion. The result is clamped to
/// `[capacity / MAX_OVERBOOK, capacity * MAX_OVERBOOK]`.
pub fn booking_ceiling(capacity: f64, needed: Option<f64>) -> f64 {
    let hi = capacity * MAX_OVERBOOK;
    let lo = capacity / MAX_OVERBOOK;
    match needed {
        None => capacity,
        Some(c) if c <= 0.0 || !c.is_finite() => hi,
        Some(c) => (capacity * (capacity / c)).clamp(lo, hi),
    }
}

/// All admission state a switch carries: the estimator, the
/// equivalent-bandwidth cache, the roll schedule, and utilization
/// telemetry for the frontier sweep.
#[derive(Debug, Clone)]
pub struct SwitchAdmission {
    est: ArrivalEstimator,
    cache: EbCache,
    /// Next superstep at or after which the window rolls (round top only).
    pub(crate) next_roll_at: u64,
    rolls: u64,
    util_sum: f64,
    util_samples: u64,
    overbooked_samples: u64,
}

impl SwitchAdmission {
    /// Fresh admission state per the runtime config.
    pub fn new(cfg: &RuntimeConfig) -> Self {
        Self {
            est: ArrivalEstimator::new(cfg.granularity),
            cache: EbCache::default(),
            next_roll_at: cfg.measurement_window_supersteps,
            rolls: 0,
            util_sum: 0.0,
            util_samples: 0,
            overbooked_samples: 0,
        }
    }

    /// The estimator, for observation and inspection.
    pub fn estimator(&self) -> &ArrivalEstimator {
        &self.est
    }

    /// Fold a delivered RM cell into the estimator.
    pub fn observe(&mut self, vci: u32, rate: f64) {
        self.est.observe(vci, rate);
    }

    /// Sample port utilization at a round top (all policies, including
    /// PeakRate — the frontier sweep needs the baseline's utilization).
    pub fn sample(&mut self, sw: &Switch) {
        for idx in 0..sw.num_ports() {
            let port = sw.port(idx).expect("index bounded by num_ports");
            self.util_sum += port.utilization();
            self.util_samples += 1;
            if port.reserved() > port.capacity() + 1e-9 {
                self.overbooked_samples += 1;
            }
        }
    }

    /// Roll the measurement window: compute the capacity the measured mix
    /// needs under `cfg.admission`, move every port's booking ceiling
    /// accordingly, clear the window, and schedule the next roll.
    pub fn roll(&mut self, cfg: &RuntimeConfig, superstep: u64, sw: &mut Switch) {
        for idx in 0..sw.num_ports() {
            let capacity = sw.port(idx).expect("index bounded by num_ports").capacity();
            let needed = self.needed_capacity(cfg);
            sw.set_admit_ceiling(idx, booking_ceiling(capacity, needed));
        }
        self.est.clear_window();
        self.rolls += 1;
        self.next_roll_at = superstep + cfg.measurement_window_supersteps;
    }

    /// The capacity the measured mix needs to meet the policy target, or
    /// `None` when the window holds no evidence (or the policy is static).
    fn needed_capacity(&mut self, cfg: &RuntimeConfig) -> Option<f64> {
        let active = self.est.active_vcs();
        match cfg.admission {
            AdmissionPolicy::PeakRate => None,
            AdmissionPolicy::Memoryless { target } => {
                Memoryless::new(target).needed_capacity(&self.est.weighted_levels(), active)
            }
            AdmissionPolicy::ChernoffEb { epsilon } => {
                let src = self.est.empirical_source()?;
                let qos = QosTarget::new(cfg.buffer, epsilon);
                Some(active as f64 * self.cache.equivalent_bandwidth(&src, qos))
            }
        }
    }

    /// Crash-wipe the measurement state (the EB cache survives — it is a
    /// pure function of the model, not of who measured it).
    pub fn wipe_measurements(&mut self) {
        self.est.wipe();
    }

    /// Window rolls performed so far.
    pub fn rolls(&self) -> u64 {
        self.rolls
    }

    /// Equivalent-bandwidth cache counters.
    pub fn cache_stats(&self) -> EbCacheStats {
        self.cache.stats()
    }
}

/// The admission slice of a run report: grant/denial accounting split from
/// fault-plane losses, plus estimator and cache telemetry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionReport {
    /// Policy name (`peak-rate`, `memoryless`, `chernoff-eb`).
    pub policy: String,
    /// RM cells admitted by a switch's booking check.
    pub admitted_cells: u64,
    /// RM cells denied by a switch's booking check (admission losses, as
    /// distinct from fault-plane losses below).
    pub denied_cells: u64,
    /// Cells the fault plane destroyed: dropped, corrupted, crash-killed,
    /// or killed on a downed link. Never an admission decision.
    pub fault_lost_cells: u64,
    /// Measurement windows rolled, summed over switches.
    pub rolls: u64,
    /// Delivered cells folded into estimators, summed over switches.
    pub estimator_observations: u64,
    /// Equivalent-bandwidth cache hits, summed over switches.
    pub eb_cache_hits: u64,
    /// Equivalent-bandwidth cache misses, summed over switches.
    pub eb_cache_misses: u64,
    /// Distinct cached models, summed over switches.
    pub eb_cache_entries: u64,
    /// Mean of per-switch mean port utilizations (round-top samples).
    pub mean_port_utilization: f64,
    /// Round-top samples that found a port booked past its capacity —
    /// nonzero only when a policy overbooks.
    pub overbooked_samples: u64,
}

/// Aggregate per-switch admission state into the report slice. Callers
/// pass `per_switch` in ascending switch order so float accumulation is
/// shard-invariant.
pub(crate) fn reduce_admission(
    policy: AdmissionPolicy,
    snap: &CounterSnapshot,
    per_switch: &[SwitchAdmission],
) -> AdmissionReport {
    let mut rolls = 0u64;
    let mut observations = 0u64;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut entries = 0u64;
    let mut overbooked = 0u64;
    let mut util_acc = 0.0f64;
    let mut util_cnt = 0u64;
    for sa in per_switch {
        rolls += sa.rolls;
        observations += sa.est.observations();
        let cs = sa.cache.stats();
        hits += cs.hits;
        misses += cs.misses;
        entries += cs.entries;
        overbooked += sa.overbooked_samples;
        if sa.util_samples > 0 {
            util_acc += sa.util_sum / sa.util_samples as f64;
            util_cnt += 1;
        }
    }
    AdmissionReport {
        policy: policy.name().to_string(),
        admitted_cells: snap.admission_grants,
        denied_cells: snap.admission_denials,
        fault_lost_cells: snap.cells_dropped
            + snap.cells_corrupted
            + snap.crash_killed
            + snap.cells_link_killed,
        rolls,
        estimator_observations: observations,
        eb_cache_hits: hits,
        eb_cache_misses: misses,
        eb_cache_entries: entries,
        mean_port_utilization: if util_cnt > 0 {
            util_acc / util_cnt as f64
        } else {
            0.0
        },
        overbooked_samples: overbooked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn policy_names_and_measurement_flags() {
        assert_eq!(AdmissionPolicy::default(), AdmissionPolicy::PeakRate);
        assert_eq!(AdmissionPolicy::PeakRate.name(), "peak-rate");
        assert!(!AdmissionPolicy::PeakRate.measures());
        let ml = AdmissionPolicy::Memoryless { target: 1e-3 };
        assert_eq!(ml.name(), "memoryless");
        assert!(ml.measures());
        let eb = AdmissionPolicy::ChernoffEb { epsilon: 1e-6 };
        assert_eq!(eb.name(), "chernoff-eb");
        assert!(eb.measures());
    }

    #[test]
    fn estimator_histograms_and_chains_transitions() {
        let mut est = ArrivalEstimator::new(100.0);
        est.observe(1, 100.0);
        est.observe(1, 200.0);
        est.observe(2, 200.0);
        assert_eq!(est.observations(), 3);
        assert_eq!(est.active_vcs(), 2);
        let levels = est.weighted_levels();
        assert_eq!(levels, vec![(100.0, 1.0), (200.0, 2.0)]);
        // Only VC 1 has a prior level, so exactly one transition (1 -> 2).
        let src = est.empirical_source().expect("non-empty window");
        assert_eq!(src.chain().num_states(), 2);
        assert_eq!(src.emissions(), &[100.0, 200.0]);
        assert!((src.chain().prob(0, 1) - 1.0).abs() < 1e-12);
        // State 2 has no observed exits: self-loop.
        assert!((src.chain().prob(1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn window_roll_keeps_last_levels_and_cumulative_count() {
        let mut est = ArrivalEstimator::new(100.0);
        est.observe(7, 300.0);
        est.clear_window();
        assert!(est.empirical_source().is_none());
        assert_eq!(est.observations(), 1);
        assert_eq!(est.active_vcs(), 1);
        // The cross-window transition 3 -> 1 chains through the roll.
        est.observe(7, 100.0);
        let src = est.empirical_source().expect("non-empty window");
        // Level 3 fell outside the new window's histogram, so the dangling
        // transition is dropped and the single state self-loops.
        assert_eq!(src.chain().num_states(), 1);
        assert!((src.chain().prob(0, 0) - 1.0).abs() < 1e-12);
        est.wipe();
        assert_eq!(est.observations(), 0);
        assert_eq!(est.active_vcs(), 0);
    }

    #[test]
    fn cross_window_transition_chains_when_the_prior_level_reoccurs() {
        // The kept-chain case pinning `last_level`'s reason to exist: the
        // VC's first post-roll cell is a transition *from* its last
        // pre-roll level, and when that level re-occurs in the new window
        // it is part of the state space — the chained transition must be
        // counted, not dropped like the dangling case above.
        let mut est = ArrivalEstimator::new(100.0);
        est.observe(7, 300.0); // level 3, pre-roll
        est.clear_window();
        est.observe(7, 100.0); // level 1: cross-window transition 3 -> 1
        est.observe(7, 300.0); // level 3 back in this window's histogram
        let src = est.empirical_source().expect("non-empty window");
        // States, ascending by level: index 0 = level 1, index 1 = level 3.
        assert_eq!(src.chain().num_states(), 2);
        // The 3 -> 1 chain crossed the roll; 1 -> 3 happened within the
        // window. Each row has exactly one observed exit.
        assert!((src.chain().prob(1, 0) - 1.0).abs() < 1e-12);
        assert!((src.chain().prob(0, 1) - 1.0).abs() < 1e-12);
        // A fresh estimator fed the same post-roll stream must fit
        // different dynamics: without the chained 3 -> 1 evidence, level
        // 3 has no observed exits and self-loops instead.
        let mut fresh = ArrivalEstimator::new(100.0);
        fresh.observe(7, 100.0);
        fresh.observe(7, 300.0);
        let unchained = fresh.empirical_source().expect("non-empty window");
        assert_eq!(unchained.chain().num_states(), 2);
        assert!((unchained.chain().prob(1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn booking_ceiling_overbooks_tightens_and_clamps() {
        // No evidence: stay at the legacy ceiling.
        assert_eq!(booking_ceiling(1000.0, None), 1000.0);
        // The mix needs half the capacity: overbook by 2x.
        assert!((booking_ceiling(1000.0, Some(500.0)) - 2000.0).abs() < 1e-9);
        // The mix needs double the capacity: tighten by 2x.
        assert!((booking_ceiling(1000.0, Some(2000.0)) - 500.0).abs() < 1e-9);
        // Degenerate and extreme values clamp.
        assert_eq!(booking_ceiling(1000.0, Some(0.0)), 4000.0);
        assert_eq!(booking_ceiling(1000.0, Some(f64::NAN)), 4000.0);
        assert_eq!(booking_ceiling(1000.0, Some(1.0)), 4000.0);
        assert_eq!(booking_ceiling(1000.0, Some(1e12)), 250.0);
    }

    #[test]
    fn roll_moves_ceilings_and_schedules_next() {
        let mut cfg = RuntimeConfig::balanced(1, 16);
        cfg.admission = AdmissionPolicy::Memoryless { target: 1e-3 };
        cfg.measurement_window_supersteps = 64;
        let mut sw = Switch::new(&[1_000_000.0]);
        let mut sa = SwitchAdmission::new(&cfg);
        assert_eq!(sa.next_roll_at, 64);
        // A constant low-rate mix: the ceiling should overbook.
        for vci in 0..4 {
            sa.observe(vci, 50_000.0);
            sa.observe(vci, 50_000.0);
        }
        sa.roll(&cfg, 64, &mut sw);
        assert_eq!(sa.rolls(), 1);
        assert_eq!(sa.next_roll_at, 128);
        let ceiling = sw.port(0).expect("one port").admit_ceiling();
        assert!(ceiling > 1_000_000.0, "expected overbooking, got {ceiling}");
        // Rolling an empty window falls back to the capacity.
        sa.wipe_measurements();
        sa.roll(&cfg, 128, &mut sw);
        let reset = sw.port(0).expect("one port").admit_ceiling();
        assert_eq!(reset, 1_000_000.0);
    }

    #[test]
    fn chernoff_eb_roll_uses_and_fills_the_cache() {
        let mut cfg = RuntimeConfig::balanced(1, 16);
        cfg.admission = AdmissionPolicy::ChernoffEb { epsilon: 1e-6 };
        cfg.measurement_window_supersteps = 64;
        let mut sw = Switch::new(&[1_000_000.0]);
        let mut sa = SwitchAdmission::new(&cfg);
        // First window: each VC cycles 100k -> 200k -> 100k, one 2->4 and
        // one 4->2 transition per VC.
        for vci in 0..4 {
            sa.observe(vci, 100_000.0);
            sa.observe(vci, 200_000.0);
            sa.observe(vci, 100_000.0);
        }
        sa.roll(&cfg, 64, &mut sw);
        let s1 = sa.cache_stats();
        assert_eq!((s1.hits, s1.misses, s1.entries), (0, 1, 1));
        // Next window continues the cycle. The per-VC last level (100k)
        // survives the roll, so 200k -> 100k again yields exactly one
        // 2->4 and one 4->2 transition per VC — the same empirical model,
        // so the cache hits.
        for vci in 0..4 {
            sa.observe(vci, 200_000.0);
            sa.observe(vci, 100_000.0);
        }
        sa.roll(&cfg, 128, &mut sw);
        let s2 = sa.cache_stats();
        assert_eq!((s2.hits, s2.misses, s2.entries), (1, 1, 1));
    }

    proptest! {
        /// The estimator is a pure function of the delivered-cell
        /// sequence: replaying the same sequence into a fresh estimator
        /// reproduces the state exactly, and interleaving observations of
        /// *distinct* switches' streams never cross-contaminates. This is
        /// the property the engine leans on for shard invariance — each
        /// switch sees its own stream in a deterministic order, regardless
        /// of which shard hosts it.
        #[test]
        fn estimator_is_a_pure_function_of_the_stream(
            stream in proptest::collection::vec(
                (0u32..8, 0u32..12), 1..200),
            rolls in proptest::collection::vec(0usize..200, 0..4),
        ) {
            let gran = 50_000.0;
            let mut a = ArrivalEstimator::new(gran);
            let mut b = ArrivalEstimator::new(gran);
            for (i, &(vci, lvl)) in stream.iter().enumerate() {
                let rate = lvl as f64 * gran;
                a.observe(vci, rate);
                if rolls.contains(&i) {
                    a.clear_window();
                }
            }
            for (i, &(vci, lvl)) in stream.iter().enumerate() {
                let rate = lvl as f64 * gran;
                b.observe(vci, rate);
                if rolls.contains(&i) {
                    b.clear_window();
                }
            }
            prop_assert_eq!(&a, &b);
            // And the derived model is equal too (bitwise on emissions and
            // transition rows).
            match (a.empirical_source(), b.empirical_source()) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    prop_assert_eq!(x.emissions(), y.emissions());
                    prop_assert_eq!(x.chain().num_states(), y.chain().num_states());
                    for i in 0..x.chain().num_states() {
                        for j in 0..x.chain().num_states() {
                            prop_assert_eq!(
                                x.chain().prob(i, j).to_bits(),
                                y.chain().prob(i, j).to_bits()
                            );
                        }
                    }
                }
                _ => prop_assert!(false, "sources disagree on emptiness"),
            }
        }

        /// The empirical chain is always a valid stochastic matrix, no
        /// matter how adversarial the observation stream.
        #[test]
        fn empirical_chain_rows_are_stochastic(
            stream in proptest::collection::vec(
                (0u32..6, 0u32..10), 1..120),
        ) {
            let mut est = ArrivalEstimator::new(10_000.0);
            for &(vci, lvl) in &stream {
                est.observe(vci, lvl as f64 * 10_000.0);
            }
            // `MarkovChain::new` asserts row-stochasticity internally, so
            // constructing the source at all is the property.
            let src = est.empirical_source().expect("non-empty stream");
            prop_assert!(src.mean_rate() <= src.peak_rate() + 1e-9);
        }
    }
}
