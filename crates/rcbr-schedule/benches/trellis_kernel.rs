//! Criterion benches for the data-oriented trellis kernel.
//!
//! Times the kernel against the retained reference implementation on the
//! same instances (exact and quantized modes), so a regression in the
//! candidate-merge, the bucket reduction, or the arena GC shows up as a
//! shrinking gap. Heavy sweeps live in the `trellis_bench` binary of
//! `rcbr-bench`; these benches are small enough for `cargo bench` runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcbr_schedule::trellis::reference;
use rcbr_schedule::{CostModel, OfflineOptimizer, RateGrid, TrellisConfig};
use rcbr_traffic::FrameTrace;

/// A deterministic bursty workload (no RNG: benches must not drift).
fn bursty_trace(len: usize) -> FrameTrace {
    let bits: Vec<f64> = (0..len)
        .map(|i| {
            if i % 13 < 4 {
                230_000.0 + (i % 3) as f64 * 7_000.0
            } else {
                30_000.0 + (i % 11) as f64 * 1_000.0
            }
        })
        .collect();
    FrameTrace::new(1.0 / 24.0, bits)
}

fn config(m: usize, quantized: bool) -> TrellisConfig {
    let buffer = 300_000.0;
    let grid = RateGrid::uniform(0.0, 6_000_000.0, m);
    let cfg = TrellisConfig::new(grid, CostModel::from_ratio(1e6), buffer);
    if quantized {
        cfg.with_q_resolution(buffer / 1000.0)
    } else {
        cfg
    }
}

fn bench_kernel(c: &mut Criterion) {
    let trace = bursty_trace(600);

    let mut group = c.benchmark_group("trellis_kernel_exact");
    group.sample_size(10);
    for m in [10usize, 20] {
        let cfg = config(m, false);
        group.bench_with_input(BenchmarkId::new("kernel", m), &cfg, |b, cfg| {
            let opt = OfflineOptimizer::new(cfg.clone());
            b.iter(|| opt.optimize(&trace).expect("feasible"))
        });
        group.bench_with_input(BenchmarkId::new("reference", m), &cfg, |b, cfg| {
            b.iter(|| reference::optimize_with_cost(cfg, &trace).expect("feasible"))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("trellis_kernel_quantized");
    group.sample_size(10);
    for m in [20usize, 50] {
        let cfg = config(m, true);
        group.bench_with_input(BenchmarkId::new("kernel", m), &cfg, |b, cfg| {
            let opt = OfflineOptimizer::new(cfg.clone());
            b.iter(|| opt.optimize(&trace).expect("feasible"))
        });
        group.bench_with_input(BenchmarkId::new("reference", m), &cfg, |b, cfg| {
            b.iter(|| reference::optimize_with_cost(cfg, &trace).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
