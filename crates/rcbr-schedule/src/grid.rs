//! Discrete rate grids.
//!
//! Renegotiated rates are drawn from a finite set `R = {r_1 < … < r_M}`
//! (Section IV-A assumes "the service rate during any time slot is in a
//! given set"). The paper's experiments use levels "chosen uniformly within
//! 48 kb/s and 2.4 Mb/s", and the online heuristic quantizes to a
//! granularity `Δ` — both are [`RateGrid`]s.

use serde::{Deserialize, Serialize};

/// A sorted set of allowed service rates, bits/second.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateGrid {
    levels: Vec<f64>,
}

impl RateGrid {
    /// Build from explicit levels (sorted and deduplicated internally).
    ///
    /// # Panics
    /// Panics if empty or if any level is negative or non-finite.
    pub fn new(mut levels: Vec<f64>) -> Self {
        assert!(!levels.is_empty(), "rate grid must be nonempty");
        assert!(
            levels.iter().all(|&r| r.is_finite() && r >= 0.0),
            "rate levels must be finite and nonnegative"
        );
        levels.sort_by(|a, b| a.total_cmp(b));
        levels.dedup();
        Self { levels }
    }

    /// `m` levels spaced uniformly over `[lo, hi]` inclusive — the paper's
    /// construction (e.g. 20 levels within 48 kb/s and 2.4 Mb/s).
    ///
    /// # Panics
    /// Panics unless `m >= 2` and `lo < hi`.
    pub fn uniform(lo: f64, hi: f64, m: usize) -> Self {
        assert!(m >= 2, "uniform grid needs at least two levels");
        assert!(lo >= 0.0 && lo < hi && hi.is_finite(), "invalid grid range");
        let step = (hi - lo) / (m - 1) as f64;
        Self::new((0..m).map(|i| lo + i as f64 * step).collect())
    }

    /// Multiples of a granularity `Δ`: `{0, Δ, 2Δ, …}` up to at least
    /// `max_rate` — the online heuristic's quantization lattice.
    ///
    /// # Panics
    /// Panics unless `delta > 0` and `max_rate >= 0`.
    pub fn granular(delta: f64, max_rate: f64) -> Self {
        assert!(
            delta > 0.0 && delta.is_finite(),
            "granularity must be positive"
        );
        assert!(max_rate >= 0.0, "max rate must be nonnegative");
        let n = (max_rate / delta).ceil() as usize + 1;
        Self::new((0..=n).map(|i| i as f64 * delta).collect())
    }

    /// The levels, ascending.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Number of levels `M`.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the grid is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Level at index `i`.
    pub fn level(&self, i: usize) -> f64 {
        self.levels[i]
    }

    /// Largest level.
    pub fn max(&self) -> f64 {
        *self.levels.last().expect("grid is nonempty")
    }

    /// Smallest level.
    pub fn min(&self) -> f64 {
        self.levels[0]
    }

    /// Index of the smallest level `>= rate`, or `None` if `rate` exceeds
    /// the grid maximum.
    pub fn ceil_index(&self, rate: f64) -> Option<usize> {
        // partition_point: first index with level >= rate.
        let i = self.levels.partition_point(|&l| l < rate);
        (i < self.levels.len()).then_some(i)
    }

    /// The smallest level `>= rate`, clamped to the maximum level.
    pub fn ceil(&self, rate: f64) -> f64 {
        match self.ceil_index(rate) {
            Some(i) => self.levels[i],
            None => self.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_grid_spans_range() {
        let g = RateGrid::uniform(48_000.0, 2_400_000.0, 20);
        assert_eq!(g.len(), 20);
        assert_eq!(g.min(), 48_000.0);
        assert_eq!(g.max(), 2_400_000.0);
        // Evenly spaced.
        let step = g.level(1) - g.level(0);
        for i in 1..g.len() {
            assert!((g.level(i) - g.level(i - 1) - step).abs() < 1e-6);
        }
    }

    #[test]
    fn granular_grid_is_multiples() {
        let g = RateGrid::granular(64_000.0, 200_000.0);
        assert_eq!(g.min(), 0.0);
        assert!(g.max() >= 200_000.0);
        assert_eq!(g.level(1), 64_000.0);
        assert_eq!(g.level(3), 192_000.0);
    }

    #[test]
    fn ceil_snaps_up() {
        let g = RateGrid::new(vec![100.0, 200.0, 300.0]);
        assert_eq!(g.ceil(150.0), 200.0);
        assert_eq!(g.ceil(200.0), 200.0);
        assert_eq!(g.ceil(0.0), 100.0);
        assert_eq!(g.ceil(1000.0), 300.0); // clamped
        assert_eq!(g.ceil_index(1000.0), None);
        assert_eq!(g.ceil_index(250.0), Some(2));
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let g = RateGrid::new(vec![300.0, 100.0, 300.0, 200.0]);
        assert_eq!(g.levels(), &[100.0, 200.0, 300.0]);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_grid_rejected() {
        RateGrid::new(vec![]);
    }
}
