//! Retry policy for signaling requests: timeouts, bounded retries with
//! deterministic exponential backoff + seeded jitter, and exhaustion.
//!
//! A dropped or corrupted RM cell never produces a verdict, so the source
//! must time the request out and retry. Retries are bounded: after the
//! budget is exhausted the source degrades gracefully — it keeps its last
//! granted rate (the paper's "the source can keep whatever bandwidth it
//! already has") and stops renegotiating upward for that request. Backoff
//! is deterministic in `(seed, vci, attempt)` so the sharded runtime and
//! the sequential replay schedule retries identically.

use serde::{Deserialize, Serialize};

/// splitmix64 finalizer (the same mixer the fault plane uses).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Timeout / retry / backoff parameters for one VC's signaling requests.
///
/// All durations are in *supersteps* — the signaling plane's logical
/// clock — so behavior is independent of wall time and shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// A request with no verdict after this many supersteps has timed out
    /// (its cell was dropped, corrupted, or killed by a crash).
    pub timeout_supersteps: u64,
    /// Retries allowed after the initial attempt; attempt `retry_budget +
    /// 1` failing exhausts the request.
    pub retry_budget: u32,
    /// Base backoff before the first retry, supersteps (doubles per
    /// failure, capped to avoid overflow).
    pub backoff_base: u64,
    /// Maximum seeded jitter added to each backoff, supersteps.
    pub backoff_jitter: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl RetryPolicy {
    /// Panic on an inconsistent policy.
    pub fn validate(&self) {
        assert!(self.timeout_supersteps >= 1, "timeout must be >= 1");
        assert!(self.backoff_base >= 1, "backoff base must be >= 1");
    }

    /// Whether a request injected at `injected_at` has timed out at `now`.
    pub fn timed_out(&self, injected_at: u64, now: u64) -> bool {
        now.saturating_sub(injected_at) >= self.timeout_supersteps
    }

    /// Whether `failures` failed attempts exhaust the request (initial
    /// attempt + `retry_budget` retries have all failed).
    pub fn exhausted(&self, failures: u32) -> bool {
        failures > self.retry_budget
    }

    /// Backoff before the retry after the `failures`-th failure
    /// (`failures >= 1`), supersteps: `base * 2^(failures-1)` (exponent
    /// capped at 16) plus jitter in `0..=backoff_jitter` hashed from
    /// `(seed, vci, failures)`.
    pub fn backoff(&self, vci: u32, failures: u32) -> u64 {
        assert!(failures >= 1, "backoff is only defined after a failure");
        let exp = (failures - 1).min(16);
        let base = self.backoff_base.saturating_mul(1u64 << exp);
        let jitter = if self.backoff_jitter == 0 {
            0
        } else {
            mix(self.seed ^ ((vci as u64) << 32) ^ failures as u64) % (self.backoff_jitter + 1)
        };
        base + jitter
    }

    /// Backoff before retrying a request the network *shed* (an over-budget
    /// signaling queue refused the cell), supersteps. Same exponential
    /// widening and jitter bounds as [`backoff`](Self::backoff), but drawn
    /// from a decorrelated jitter stream: a shed is the network asking the
    /// whole population for patience, so shed retries must not land on the
    /// same supersteps as failure retries — that would re-synchronize the
    /// very storm the shedding is dissipating.
    pub fn shed_backoff(&self, vci: u32, sheds: u32) -> u64 {
        assert!(sheds >= 1, "shed backoff is only defined after a shed");
        let exp = (sheds - 1).min(16);
        let base = self.backoff_base.saturating_mul(1u64 << exp);
        let jitter = if self.backoff_jitter == 0 {
            0
        } else {
            mix(self.seed ^ 0x5348_4544 ^ ((vci as u64) << 32) ^ sheds as u64) // "SHED"
                % (self.backoff_jitter + 1)
        };
        base + jitter
    }
}

/// Shed accounting for one request, parallel to — and deliberately
/// separate from — [`RetryBudget`]: a shed is the network asking for
/// patience, not a verdict on the request, so sheds must never draw down
/// the failure budget that decides degradation. Consecutive sheds draw
/// this account instead; any successful renegotiation refills it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShedAccount {
    cap: u32,
    sheds: u32,
}

impl ShedAccount {
    /// A full account allowing `cap` shed-retries after the first shed.
    pub fn new(cap: u32) -> Self {
        Self { cap, sheds: 0 }
    }

    /// Record a shed; returns the consecutive-shed count.
    pub fn on_shed(&mut self) -> u32 {
        self.sheds += 1;
        self.sheds
    }

    /// A renegotiation succeeded: refill the account.
    pub fn on_success(&mut self) {
        self.sheds = 0;
    }

    /// Consecutive sheds since the last success.
    pub fn sheds(&self) -> u32 {
        self.sheds
    }

    /// Whether consecutive sheds exhaust the account (the source gives up
    /// on this request and keeps its granted rate).
    pub fn exhausted(&self) -> bool {
        self.sheds > self.cap
    }
}

/// Stateful failure accounting for a long-lived recovery process (e.g.
/// rerouting a VC around a dead switch), layered over the stateless
/// [`RetryPolicy`]. Unlike a per-request failure count, the budget is an
/// *account*: consecutive failures draw it down, and any successful
/// renegotiation refills it in full — a source that just proved the
/// control plane works again deserves a fresh budget for the next
/// failure, not the tail end of the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryBudget {
    budget: u32,
    failures: u32,
}

impl RetryBudget {
    /// A full budget allowing `budget` retries after the initial attempt.
    pub fn new(budget: u32) -> Self {
        Self {
            budget,
            failures: 0,
        }
    }

    /// Record a failed attempt; returns the consecutive-failure count.
    pub fn on_failure(&mut self) -> u32 {
        self.failures += 1;
        self.failures
    }

    /// A renegotiation succeeded: reset the consecutive-failure count,
    /// restoring the full budget for the next failure episode.
    pub fn on_success(&mut self) {
        self.failures = 0;
    }

    /// Consecutive failures since the last success.
    pub fn failures(&self) -> u32 {
        self.failures
    }

    /// Whether the consecutive failures exhaust the budget (initial
    /// attempt + `budget` retries all failed).
    pub fn exhausted(&self) -> bool {
        self.failures > self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            timeout_supersteps: 8,
            retry_budget: 3,
            backoff_base: 4,
            backoff_jitter: 3,
            seed: 42,
        }
    }

    #[test]
    fn timeout_threshold() {
        let p = policy();
        assert!(!p.timed_out(100, 107));
        assert!(p.timed_out(100, 108));
        assert!(p.timed_out(100, 500));
    }

    #[test]
    fn exhaustion_counts_the_budget() {
        let p = policy();
        assert!(!p.exhausted(1));
        assert!(!p.exhausted(3));
        assert!(p.exhausted(4));
    }

    #[test]
    fn backoff_is_deterministic_and_exponential() {
        let p = policy();
        for failures in 1..=6u32 {
            let a = p.backoff(7, failures);
            let b = p.backoff(7, failures);
            assert_eq!(a, b, "same inputs must give the same backoff");
            let base = p.backoff_base * (1 << (failures - 1));
            assert!(
                (base..=base + p.backoff_jitter).contains(&a),
                "backoff {a} outside [{base}, {}]",
                base + p.backoff_jitter
            );
        }
    }

    #[test]
    fn jitter_varies_by_vci_and_is_bounded() {
        let p = policy();
        let spread: std::collections::BTreeSet<u64> =
            (0..64u32).map(|vci| p.backoff(vci, 1)).collect();
        assert!(spread.len() > 1, "jitter must actually spread retries");
        assert!(spread
            .iter()
            .all(|&b| { b >= p.backoff_base && b <= p.backoff_base + p.backoff_jitter }));
    }

    #[test]
    fn huge_failure_counts_do_not_overflow() {
        let p = policy();
        let b = p.backoff(0, u32::MAX);
        assert!(b >= p.backoff_base * (1 << 16));
    }

    #[test]
    fn shed_backoff_widens_and_decorrelates_from_failure_backoff() {
        let p = policy();
        for sheds in 1..=6u32 {
            let a = p.shed_backoff(7, sheds);
            assert_eq!(a, p.shed_backoff(7, sheds), "must be deterministic");
            let base = p.backoff_base * (1 << (sheds - 1));
            assert!(
                (base..=base + p.backoff_jitter).contains(&a),
                "shed backoff {a} outside [{base}, {}]",
                base + p.backoff_jitter
            );
        }
        // The two jitter streams must actually differ somewhere, or shed
        // retries re-synchronize with failure retries.
        assert!(
            (0..64u32).any(|vci| p.shed_backoff(vci, 1) != p.backoff(vci, 1)),
            "shed jitter stream must be decorrelated from failure jitter"
        );
    }

    #[test]
    fn sheds_do_not_touch_the_denial_budget() {
        // Satellite: a request that is shed (then eventually succeeds)
        // must leave the failure budget exactly where it was — sheds have
        // their own account.
        let mut denials = RetryBudget::new(2);
        let mut sheds = ShedAccount::new(2);
        denials.on_failure();
        let failures_before = denials.failures();
        assert_eq!(sheds.on_shed(), 1);
        assert_eq!(sheds.on_shed(), 2);
        assert!(!sheds.exhausted());
        assert_eq!(
            denials.failures(),
            failures_before,
            "sheds must not consume the denial budget"
        );
        // Shed-then-success refills the shed account; the denial account
        // is refilled by the same success, as before.
        sheds.on_success();
        denials.on_success();
        assert_eq!(sheds.sheds(), 0);
        assert_eq!(denials.failures(), 0);
        // And the shed account exhausts independently.
        let mut s = ShedAccount::new(1);
        s.on_shed();
        assert!(!s.exhausted());
        s.on_shed();
        assert!(s.exhausted(), "2 consecutive sheds exceed cap 1");
    }

    #[test]
    fn budget_refills_after_a_successful_renegotiation() {
        let mut b = RetryBudget::new(2);
        assert!(!b.exhausted());
        assert_eq!(b.on_failure(), 1);
        assert_eq!(b.on_failure(), 2);
        assert!(!b.exhausted(), "the budget allows exactly 2 retries");
        // A success mid-episode resets the account in full.
        b.on_success();
        assert_eq!(b.failures(), 0);
        assert_eq!(b.on_failure(), 1, "post-success failures start fresh");
        assert!(!b.exhausted());
        b.on_failure();
        b.on_failure();
        assert!(b.exhausted(), "3 consecutive failures exceed budget 2");
    }
}
