#![warn(missing_docs)]

//! # rcbr-schedule — renegotiation schedules (Section IV)
//!
//! An RCBR source must decide *when* to renegotiate and *what rate* to ask
//! for; those decisions form its renegotiation schedule. This crate
//! implements both algorithms from the paper:
//!
//! * [`trellis`] — the **offline optimum** for stored video: a Viterbi-like
//!   shortest path through a trellis of (time, rate, buffer-occupancy)
//!   nodes, minimizing `α·(#renegotiations) + β·(allocated bandwidth·time)`
//!   subject to a buffer (or delay) constraint, with the paper's Lemma 1
//!   cross-node pruning making full-movie traces tractable.
//! * [`online`] — the **causal heuristic** for interactive sources: an
//!   AR(1) rate estimator plus a buffer-flush term, with renegotiations
//!   triggered by buffer thresholds `B_l`/`B_h` and quantized to a
//!   bandwidth granularity `Δ` (eqs. (6)–(8)). A GoP-aware variant
//!   implements the paper's suggested future-work improvement of exploiting
//!   the MPEG frame structure.
//!
//! The common [`Schedule`] type carries the piecewise-CBR rate function and
//! computes the paper's metrics: bandwidth efficiency, mean renegotiation
//! interval, cost, feasibility against a buffer, and the empirical
//! bandwidth distribution used by admission control (Section VI).

pub mod cost;
pub mod driver;
pub mod grid;
pub mod online;
pub mod retry;
pub mod schedule;
pub mod smoothing;
pub mod trellis;

pub use cost::CostModel;
pub use driver::VcDriver;
pub use grid::RateGrid;
pub use online::{Ar1Config, Ar1Policy, GopAwareConfig, GopAwarePolicy, OnlinePolicy};
pub use retry::{RetryBudget, RetryPolicy, ShedAccount};
pub use schedule::{Schedule, ScheduleMetrics};
pub use smoothing::{min_peak_rate_bound, optimal_smoothing};
pub use trellis::{OfflineOptimizer, TrellisConfig, TrellisError, TrellisStats};
