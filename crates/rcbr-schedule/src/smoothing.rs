//! Optimal smoothing: the classic stored-video baseline.
//!
//! The smoothing literature the paper builds on (its Section VIII
//! discussion of work-ahead and bandwidth-allocation schemes) transmits
//! stored video along the *shortest path* through the corridor between
//! the cumulative-arrival curve `A(t)` and the buffer envelope
//! `A(t) − B`: the resulting piecewise-linear plan has the **minimum
//! possible peak rate** for the given buffer, and among minimum-peak
//! plans it also minimizes rate variability.
//!
//! RCBR differs in objective — it minimizes `α·(renegotiations) +
//! β·(reserved volume)` over a *discrete* rate grid — so the smoother is
//! the natural baseline for the ablation benches: it answers "how much of
//! RCBR's gain is just smoothing, and how much is the pricing-driven
//! schedule shape?".
//!
//! The implementation is the O(T) "taut string" (funnel) algorithm over
//! slot boundaries: feasible transmission totals `S(t)` satisfy
//! `max(A(t) − B, 0) ≤ S(t) ≤ A(t)` with `S(0) = 0` and `S(T) = A(T)`
//! (everything delivered by the end).

use rcbr_traffic::FrameTrace;

use crate::schedule::Schedule;

/// Compute the minimum-peak-rate transmission schedule for `trace` with a
/// sender buffer of `buffer` bits.
///
/// The returned schedule serves the whole trace with zero loss through a
/// `buffer`-bit queue and drains it completely by the end.
///
/// # Panics
/// Panics if `buffer < 0`.
pub fn optimal_smoothing(trace: &FrameTrace, buffer: f64) -> Schedule {
    assert!(
        buffer >= 0.0 && buffer.is_finite(),
        "buffer must be nonnegative"
    );
    let t_len = trace.len();
    let cum = trace.cumulative(); // cum[t] = arrivals through slot t-1 .. length T+1
    let total = cum[t_len];

    // Envelopes at slot boundaries 0..=T. The plan value S(t) is the
    // cumulative service by the end of slot t.
    let upper = |t: usize| if t == t_len { total } else { cum[t] };
    let lower = |t: usize| {
        if t == t_len {
            total
        } else {
            (cum[t] - buffer).max(0.0)
        }
    };

    let mut service = vec![0.0f64; t_len + 1];
    let mut start = 0usize; // boundary where the current segment begins
    let mut s_val = 0.0f64; // plan value at `start`

    while start < t_len {
        // Extend the horizon, tracking the tightest slopes. Slopes are in
        // bits per slot.
        let mut max_lo = f64::NEG_INFINITY;
        let mut arg_lo = start + 1;
        let mut min_hi = f64::INFINITY;
        let mut arg_hi = start + 1;
        let mut bend: Option<(usize, f64)> = None; // (new start, value there)
        for h in start + 1..=t_len {
            let dt = (h - start) as f64;
            let lo_slope = (lower(h) - s_val) / dt;
            let hi_slope = (upper(h) - s_val) / dt;
            if lo_slope > min_hi {
                // Must bend downward earlier: ride the upper envelope's
                // tightest slope and pin the segment at its argmin.
                bend = Some((arg_hi, upper(arg_hi)));
                break;
            }
            if hi_slope < max_lo {
                // Must bend upward earlier: pin at the lower envelope.
                bend = Some((arg_lo, lower(arg_lo)));
                break;
            }
            if lo_slope > max_lo {
                max_lo = lo_slope;
                arg_lo = h;
            }
            if hi_slope < min_hi {
                min_hi = hi_slope;
                arg_hi = h;
            }
        }
        let (seg_end, end_val) = match bend {
            Some(pin) => pin,
            None => {
                // Reached the horizon: finish with the exact-delivery
                // slope (feasible because T's envelopes coincide at the
                // total and were part of the slope tracking).
                (t_len, total)
            }
        };
        let slope = (end_val - s_val) / (seg_end - start) as f64;
        for (h, s) in service
            .iter_mut()
            .enumerate()
            .take(seg_end + 1)
            .skip(start + 1)
        {
            *s = s_val + slope * (h - start) as f64;
        }
        start = seg_end;
        s_val = end_val;
    }

    let tau = trace.frame_interval();
    let rates: Vec<f64> = (1..=t_len)
        .map(|t| ((service[t] - service[t - 1]) / tau).max(0.0))
        .collect();
    Schedule::from_rates(tau, &rates)
}

/// The information-theoretic lower bound on the peak rate of *any*
/// feasible plan: the steepest slope forced between an upper-envelope
/// point and a later lower-envelope point (O(T²); used by tests and
/// ablations).
pub fn min_peak_rate_bound(trace: &FrameTrace, buffer: f64) -> f64 {
    let t_len = trace.len();
    let cum = trace.cumulative();
    let total = cum[t_len];
    let upper = |t: usize| if t == t_len { total } else { cum[t] };
    let lower = |t: usize| {
        if t == t_len {
            total
        } else {
            (cum[t] - buffer).max(0.0)
        }
    };
    let mut best: f64 = 0.0;
    for t1 in 0..t_len {
        let u = if t1 == 0 { 0.0 } else { upper(t1) };
        for t2 in t1 + 1..=t_len {
            let slope = (lower(t2) - u) / (t2 - t1) as f64;
            best = best.max(slope);
        }
    }
    best / trace.frame_interval()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_input_yields_constant_plan() {
        let tr = FrameTrace::new(1.0, vec![100.0; 50]);
        let s = optimal_smoothing(&tr, 1000.0);
        assert_eq!(s.num_renegotiations(), 0);
        assert!((s.rate_at(0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn zero_buffer_tracks_the_input() {
        let tr = FrameTrace::new(1.0, vec![10.0, 50.0, 20.0, 80.0]);
        let s = optimal_smoothing(&tr, 0.0);
        assert_eq!(s.to_rates(), vec![10.0, 50.0, 20.0, 80.0]);
    }

    #[test]
    fn huge_buffer_smooths_to_one_line() {
        // With an effectively infinite buffer the only constraints are
        // S(t) <= A(t) and full delivery; the max prefix-average rate
        // bounds the single slope.
        let tr = FrameTrace::new(1.0, vec![100.0, 0.0, 0.0, 0.0]);
        let s = optimal_smoothing(&tr, 1e9);
        // Must still respect causality: slot 0 can serve at most 100.
        assert!(s.rate_at(0) <= 100.0 + 1e-9);
        let m = s.replay(&tr, 1e9);
        assert_eq!(m.loss_fraction, 0.0);
        assert!(m.final_backlog < 1e-9);
    }

    #[test]
    fn plan_achieves_the_min_peak_bound() {
        let bits: Vec<f64> = (0..120)
            .map(|i| {
                if i % 30 < 6 {
                    900.0
                } else {
                    50.0 + (i % 11) as f64
                }
            })
            .collect();
        let tr = FrameTrace::new(0.5, bits);
        for &buffer in &[0.0, 200.0, 1000.0, 4000.0] {
            let s = optimal_smoothing(&tr, buffer);
            let bound = min_peak_rate_bound(&tr, buffer);
            let peak = s.peak_service_rate();
            assert!(
                (peak - bound).abs() <= 1e-6 * bound.max(1.0),
                "buffer {buffer}: peak {peak} vs bound {bound}"
            );
            // And the plan is actually feasible.
            let m = s.replay(&tr, buffer + 1e-6);
            assert_eq!(m.loss_fraction, 0.0, "buffer {buffer}");
            assert!(m.final_backlog <= 1e-6, "buffer {buffer}");
        }
    }

    #[test]
    fn smoothing_peak_beats_trellis_peak() {
        use crate::{CostModel, OfflineOptimizer, RateGrid, TrellisConfig};
        let bits: Vec<f64> = (0..200)
            .map(|i| if i % 40 < 8 { 700.0 } else { 60.0 })
            .collect();
        let tr = FrameTrace::new(1.0, bits);
        let buffer = 1500.0;
        let smooth = optimal_smoothing(&tr, buffer);
        let grid = RateGrid::uniform(0.0, 800.0, 15);
        let trellis = OfflineOptimizer::new(
            TrellisConfig::new(grid, CostModel::from_ratio(100.0), buffer).with_drain_at_end(),
        )
        .optimize(&tr)
        .unwrap();
        // The smoother minimizes the peak; the trellis minimizes cost on a
        // grid — its peak can only be at least as high.
        assert!(
            smooth.peak_service_rate() <= trellis.peak_service_rate() + 1e-9,
            "smooth {} vs trellis {}",
            smooth.peak_service_rate(),
            trellis.peak_service_rate()
        );
    }

    proptest! {
        /// Feasibility, full delivery, and peak optimality on random
        /// workloads.
        #[test]
        fn smoothing_invariants(
            bits in proptest::collection::vec(0.0..1000.0f64, 2..80),
            buffer in 0.0..5000.0f64,
        ) {
            let tr = FrameTrace::new(0.25, bits);
            let s = optimal_smoothing(&tr, buffer);
            let m = s.replay(&tr, buffer + 1e-6);
            prop_assert!(m.loss_fraction <= 1e-12, "loss {}", m.loss_fraction);
            prop_assert!(m.final_backlog <= 1e-6, "residual {}", m.final_backlog);
            let bound = min_peak_rate_bound(&tr, buffer);
            prop_assert!(
                s.peak_service_rate() <= bound * (1.0 + 1e-9) + 1e-9,
                "peak {} above bound {bound}",
                s.peak_service_rate()
            );
        }
    }
}
