//! The paper's pricing model (Section IV-A, eq. (1)).
//!
//! Total cost of a schedule `s_1..s_T`:
//!
//! ```text
//! C = Σ_t [ α·1{s_t ≠ s_{t−1}} + β·s_t·τ ]
//! ```
//!
//! — a constant charge `α` per renegotiation plus a charge `β` per unit of
//! allocated bandwidth·time. Only the *ratio* `α/β` affects the optimal
//! schedule's shape; raising it buys fewer renegotiations at the cost of
//! bandwidth efficiency (Fig. 2's OPT curve sweeps this ratio).

use serde::{Deserialize, Serialize};

/// Pricing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost per renegotiation.
    pub alpha: f64,
    /// Cost per bit·second of allocated bandwidth (i.e. per bit of
    /// allocated volume).
    pub beta: f64,
}

impl CostModel {
    /// Create a cost model.
    ///
    /// # Panics
    /// Panics if either price is negative or non-finite, or if both are 0
    /// (a degenerate objective that makes every schedule optimal).
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha >= 0.0 && alpha.is_finite(),
            "alpha must be nonnegative"
        );
        assert!(beta >= 0.0 && beta.is_finite(), "beta must be nonnegative");
        assert!(
            alpha > 0.0 || beta > 0.0,
            "at least one price must be positive"
        );
        Self { alpha, beta }
    }

    /// A model defined only by the ratio `α/β` (β normalized to 1):
    /// the natural parameterization for sweeping Fig. 2's tradeoff.
    pub fn from_ratio(alpha_over_beta: f64) -> Self {
        Self::new(alpha_over_beta, 1.0)
    }

    /// The ratio `α/β` (infinite if `β = 0`).
    pub fn ratio(&self) -> f64 {
        if self.beta > 0.0 {
            self.alpha / self.beta
        } else {
            f64::INFINITY
        }
    }

    /// Cost of one slot: `β·rate·τ` plus `α` if the rate changed.
    pub fn slot_cost(&self, rate: f64, slot_duration: f64, renegotiated: bool) -> f64 {
        self.beta * rate * slot_duration + if renegotiated { self.alpha } else { 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_cost_components() {
        let c = CostModel::new(10.0, 2.0);
        assert_eq!(c.slot_cost(100.0, 0.5, false), 100.0);
        assert_eq!(c.slot_cost(100.0, 0.5, true), 110.0);
        assert_eq!(c.ratio(), 5.0);
    }

    #[test]
    fn ratio_parameterization() {
        let c = CostModel::from_ratio(1e6);
        assert_eq!(c.alpha, 1e6);
        assert_eq!(c.beta, 1.0);
        let free_bw = CostModel::new(1.0, 0.0);
        assert_eq!(free_bw.ratio(), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "at least one price")]
    fn all_zero_prices_rejected() {
        CostModel::new(0.0, 0.0);
    }
}
