//! Quantized-mode candidate expansion: per-`(rate, bucket)` reduction.
//!
//! With a quantized buffer axis the reference keeps at most one survivor
//! per `(target rate, bucket)` cell — the first in its global
//! `(bucket, w, generation)` order that passes the weight checks. Skipped
//! candidates never mutate the sweep state, so offering *only* each
//! cell's first-in-order candidate (its **representative**) is lossless:
//!
//! * if the representative is kept, every other same-cell candidate would
//!   have been skipped by the bucket-dedup check anyway;
//! * if the representative fails a weight check, every other same-cell
//!   candidate has `w` no smaller and faces minima no looser (the per-rate
//!   and global minima only tighten), so it fails the same check.
//!
//! Representatives are found in one pass per rate stream: the stream is
//! q-sorted, `bucket(q)` is monotone in `q`, so each cell is a contiguous
//! segment and a running `(w, gen)`-minimum suffices. The reps are then
//! *grouped* (not sorted) by a counting scatter on the bucket index —
//! bounded by `bucket(b_t)` since every feasible `q'` is at most the
//! slot's buffer bound. The sweep consumes the groups in ascending bucket
//! order and orders each bucket's reps only after filtering them against
//! the live frontier minima, which leaves almost nothing to sort (see
//! `Sweep::offer_buckets`). The per-slot cost is `O(n·M)` stream walking
//! plus `O(reps + buckets)` ordering, replacing the reference's
//! `O(n·M·log(n·M))` sort of every candidate.

use std::cmp::Ordering;

use super::kernel::{Rep, SlotCtx};
use super::shard;
use super::soa::Column;

/// Above this bucket count the counting-sort footprint stops paying for
/// itself (degenerate resolutions); fall back to the comparison sort.
const COUNTING_SORT_LIMIT: u64 = 1 << 22;

/// Reusable counting-sort buffers.
#[derive(Default)]
pub(super) struct Scratch {
    counts: Vec<u32>,
    buf: Vec<Rep>,
}

/// The reference's bucket function, verbatim: bucket 0 is reserved for an
/// exactly-empty buffer so quantization can never merge away the drained
/// state that `drain_at_end` selects on.
#[inline]
pub(super) fn bucket(q: f64, res: f64) -> u64 {
    if q == 0.0 {
        0
    } else {
        1 + (q / res) as u64
    }
}

/// Order reps by `(bucket, w, generation)` — the reference's stable
/// `(bucket, w)` sort with its generation tie order `(gsi, mi)` made
/// explicit. The key is unique per rep (one rep per `(rate, bucket)`
/// cell), so `sort_unstable` is deterministic regardless of input order —
/// which is what makes the sharded path bit-identical to the serial one.
pub(super) fn sort_reps(reps: &mut [Rep]) {
    reps.sort_unstable_by(|a, b| {
        a.bucket
            .cmp(&b.bucket)
            .then(a.w.total_cmp(&b.w))
            .then(a.gsi.cmp(&b.gsi))
            .then(a.mi.cmp(&b.mi))
    });
}

impl Scratch {
    /// Per-bucket end offsets into the rep list after a grouping
    /// [`expand`] (ascending bucket order; empty buckets have
    /// `end == start`).
    pub(super) fn bucket_ends(&self) -> &[u32] {
        &self.counts
    }
}

/// Counting scatter by bucket index: groups the reps into ascending
/// bucket order in `O(reps + buckets)`, leaving each bucket's reps in
/// arbitrary order. The sweep orders *within* a bucket itself — after
/// filtering against the frontier minima, which leaves almost nothing to
/// sort — so no global comparison sort is needed at all.
fn bucket_group(reps: &mut Vec<Rep>, max_bucket: u64, s: &mut Scratch) {
    s.counts.clear();
    s.counts.resize(max_bucket as usize + 1, 0);
    if reps.is_empty() {
        return;
    }
    for r in reps.iter() {
        s.counts[r.bucket as usize] += 1;
    }
    // Exclusive prefix sums: counts[b] becomes bucket b's start offset.
    let mut acc = 0u32;
    for c in s.counts.iter_mut() {
        let n = *c;
        *c = acc;
        acc += n;
    }
    s.buf.clear();
    s.buf.resize(reps.len(), reps[0]);
    for r in reps.iter() {
        let slot = &mut s.counts[r.bucket as usize];
        s.buf[*slot as usize] = *r;
        *slot += 1;
    }
    std::mem::swap(reps, &mut s.buf);
    // After the scatter, counts[b] is bucket b's end offset.
}

/// Expand one slot into `reps`, ready for the sweep. Returns `true` when
/// the reps are bucket-grouped (consume with the sweep's `offer_buckets`
/// and [`Scratch::bucket_ends`]); `false` when they fell back to the
/// fully sorted `(bucket, w, gen)` order (consume with plain `offer_rep`
/// in sequence).
pub(super) fn expand(
    ctx: &SlotCtx<'_>,
    cur: &Column,
    cutoffs: &[usize],
    res: f64,
    shards: usize,
    reps: &mut Vec<Rep>,
    scratch: &mut Scratch,
) -> bool {
    reps.clear();
    if shards <= 1 {
        for (mi, &cut) in cutoffs.iter().enumerate() {
            stream_reps(ctx, cur, mi as u16, cut, res, reps);
        }
    } else {
        let ranges = shard::band_ranges(cutoffs.len(), shards);
        let mut bands: Vec<Vec<Rep>> = ranges.iter().map(|_| Vec::new()).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(ranges.len());
            for (range, out) in ranges.iter().zip(bands.iter_mut()) {
                let range = range.clone();
                handles.push(scope.spawn(move || {
                    for mi in range {
                        stream_reps(ctx, cur, mi as u16, cutoffs[mi], res, out);
                    }
                }));
            }
            for h in handles {
                h.join().expect("trellis shard worker panicked");
            }
        });
        // Merge barrier: band order is immaterial — the sort below is on a
        // unique key.
        for band in &bands {
            reps.extend_from_slice(band);
        }
    }
    // Every feasible q' satisfies q' <= b_t, and bucket() is monotone, so
    // bucket(b_t) bounds every rep's bucket.
    let max_bucket = bucket(ctx.b_t, res);
    if max_bucket < COUNTING_SORT_LIMIT {
        bucket_group(reps, max_bucket, scratch);
        true
    } else {
        sort_reps(reps);
        false
    }
}

/// Walk one rate stream's feasible prefix and emit the representative of
/// each bucket segment: the candidate minimizing `(w, gen)`. Uses the
/// reference's exact float expressions for `q'` and `w'`.
///
/// Two lossless prunes keep the walk cheap:
///
/// * **Decreasing-envelope filter.** A rep whose `w` is ≥ any earlier
///   same-stream rep's `w` can never be kept by the sweep: if the earlier
///   rep was kept it set `per_rate_min[rate]` at or below that `w`; if it
///   was skipped, the check that skipped it only tightens by the time the
///   later rep arrives (both minima are non-increasing). Skipped reps
///   never mutate sweep state, so dropping them here is invisible — the
///   emitted reps are the strictly-decreasing-`w` envelope.
/// * **Deferred bucket computation.** A candidate with `w ≥ min_emitted`
///   can neither be emitted nor tie a future rep (every future emission
///   is strictly below `min_emitted`), so the comparatively expensive
///   `q'`/bucket computation — a division per candidate — is skipped for
///   the vast majority of candidates on the cheap `w`-only test.
fn stream_reps(ctx: &SlotCtx<'_>, cur: &Column, mi: u16, cut: usize, res: f64, out: &mut Vec<Rep>) {
    let svc = ctx.svc[mi as usize];
    let c = ctx.slot_cost[mi as usize];
    let mut min_emitted = f64::INFINITY;
    let mut best: Option<Rep> = None;
    for i in 0..cut {
        let w = cur.w[i] + c + if mi == cur.rate[i] { 0.0 } else { ctx.alpha };
        if w >= min_emitted {
            continue;
        }
        let q = (cur.q[i] + ctx.x - svc).max(0.0);
        let b = bucket(q, res);
        match &mut best {
            Some(rep) if rep.bucket == b => {
                let better = match w.total_cmp(&rep.w) {
                    Ordering::Less => true,
                    Ordering::Equal => cur.gen[i] < rep.gsi,
                    Ordering::Greater => false,
                };
                if better {
                    *rep = Rep {
                        bucket: b,
                        q,
                        w,
                        gsi: cur.gen[i],
                        mi,
                        parent: cur.arena[i],
                    };
                }
            }
            _ => {
                if let Some(rep) = best.take() {
                    // rep.w < min_emitted by construction (see above).
                    min_emitted = rep.w;
                    out.push(rep);
                }
                // Re-check against the just-tightened envelope; buckets
                // are monotone in the walk, so a failed adoption can be
                // picked up by a later same-bucket candidate only with a
                // strictly smaller w, which makes it the correct rep.
                if w < min_emitted {
                    best = Some(Rep {
                        bucket: b,
                        q,
                        w,
                        gsi: cur.gen[i],
                        mi,
                        parent: cur.arena[i],
                    });
                }
            }
        }
    }
    if let Some(rep) = best {
        out.push(rep);
    }
}
