//! The parent-pointer arena with mark-and-compact garbage collection.
//!
//! Path reconstruction needs, for every survivor, the chain of rate
//! choices back to slot 0. The reference implementation appends one
//! `(parent, rate)` entry per survivor per slot and never frees anything,
//! so its arena is `O(T · survivors)` for a `T`-slot trace. This arena
//! bounds memory with two exact (lossless) mechanisms, triggered whenever
//! the arena doubles past its post-collection size:
//!
//! * **mark-and-compact** — entries reachable from the live survivor
//!   column are marked (one descending pass suffices, because a parent
//!   index is always smaller than its child's) and slid down over the
//!   garbage, with survivor pointers remapped;
//! * **committed-prefix truncation** — the maximal chain prefix shared by
//!   *every* live survivor is, by Lemma 1's optimality argument, a prefix
//!   of whatever path the optimizer eventually returns. Its rates are
//!   moved to an output vector and the chain is cut, so the arena holds
//!   only the part of the trellis where live paths still disagree.
//!
//! Together these keep the live arena within a constant factor of the
//! survivor set's disagreement window, independent of trace length.

use super::stats::TrellisStats;

/// Sentinel parent index marking a path root.
pub(super) const NONE: u32 = u32::MAX;

/// Compactions are not worth their pass below this arena size.
const MIN_COMPACT_LEN: usize = 16 * 1024;

/// Growth factor past the post-collection size that triggers collection.
const GROWTH_FACTOR: usize = 2;

/// The parent-pointer arena.
#[derive(Debug, Default)]
pub(super) struct Arena {
    /// Parent index of each entry (`NONE` for roots).
    parent: Vec<u32>,
    /// Rate index chosen at each entry's slot.
    rate: Vec<u16>,
    /// Rates (in chronological order) already proven common to all live
    /// paths and truncated out of the chains.
    committed: Vec<u16>,
    /// Arena length at which the next collection triggers.
    watermark: usize,
    // Scratch buffers, reused across collections.
    mark: Vec<bool>,
    remap: Vec<u32>,
    child_count: Vec<u32>,
    last_child: Vec<u32>,
    direct_refs: Vec<u32>,
}

impl Arena {
    /// An empty arena.
    pub fn new() -> Self {
        Self {
            watermark: MIN_COMPACT_LEN,
            ..Self::default()
        }
    }

    /// Number of entries currently stored (live + garbage).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Rates already committed, chronological.
    pub fn committed(&self) -> &[u16] {
        &self.committed
    }

    /// Append an entry and return its index.
    pub fn push(&mut self, parent: u32, rate: u16) -> u32 {
        assert!(
            self.parent.len() < NONE as usize,
            "trellis arena exhausted; use a beam or a coarser grid"
        );
        let idx = self.parent.len() as u32;
        self.parent.push(parent);
        self.rate.push(rate);
        idx
    }

    /// Walk the chain starting at `idx`, yielding rate indices from the
    /// entry itself back to its root (reverse chronological order).
    pub fn walk(&self, mut idx: u32) -> impl Iterator<Item = u16> + '_ {
        std::iter::from_fn(move || {
            if idx == NONE {
                return None;
            }
            let rate = self.rate[idx as usize];
            idx = self.parent[idx as usize];
            Some(rate)
        })
    }

    /// Collect garbage if the arena has outgrown its watermark, remapping
    /// the survivor pointers in `survivors` in place.
    pub fn maybe_collect(&mut self, survivors: &mut [u32], stats: &mut TrellisStats) {
        stats.observe_arena(self.len());
        if self.len() >= self.watermark {
            self.collect(survivors, stats);
        }
    }

    /// Unconditional mark, commit, and compact pass.
    pub fn collect(&mut self, survivors: &mut [u32], stats: &mut TrellisStats) {
        let len = self.parent.len();
        stats.compactions += 1;

        // Mark: seed from the survivor column, then one descending pass —
        // parents always precede children, so by the time we visit index
        // `i` every chain that passes through it has already marked it.
        self.mark.clear();
        self.mark.resize(len, false);
        self.direct_refs.clear();
        self.direct_refs.resize(len, 0);
        for &a in survivors.iter() {
            if a != NONE {
                self.mark[a as usize] = true;
                self.direct_refs[a as usize] += 1;
            }
        }
        self.child_count.clear();
        self.child_count.resize(len, 0);
        self.last_child.clear();
        self.last_child.resize(len, NONE);
        let mut roots: u32 = 0;
        let mut the_root: u32 = NONE;
        for i in (0..len).rev() {
            if !self.mark[i] {
                continue;
            }
            let p = self.parent[i];
            if p == NONE {
                roots += 1;
                the_root = i as u32;
            } else {
                self.mark[p as usize] = true;
                self.child_count[p as usize] += 1;
                self.last_child[p as usize] = i as u32;
            }
        }

        // Commit the prefix common to all live paths: from a unique root,
        // follow single-child links that no survivor terminates on.
        if roots == 1 {
            let mut cur = the_root;
            while self.child_count[cur as usize] == 1 && self.direct_refs[cur as usize] == 0 {
                self.committed.push(self.rate[cur as usize]);
                stats.committed_slots += 1;
                self.mark[cur as usize] = false;
                cur = self.last_child[cur as usize];
            }
            // The first uncommitted entry becomes the new chain root.
            self.parent[cur as usize] = NONE;
        }

        // Compact: slide marked entries down, building the remap table.
        self.remap.clear();
        self.remap.resize(len, NONE);
        let mut out = 0usize;
        for i in 0..len {
            if !self.mark[i] {
                continue;
            }
            let p = self.parent[i];
            self.parent[out] = if p == NONE {
                NONE
            } else {
                self.remap[p as usize]
            };
            self.rate[out] = self.rate[i];
            self.remap[i] = out as u32;
            out += 1;
        }
        stats.compacted_entries += (len - out) as u64;
        self.parent.truncate(out);
        self.rate.truncate(out);
        for a in survivors.iter_mut() {
            if *a != NONE {
                *a = self.remap[*a as usize];
            }
        }

        self.watermark = (out * GROWTH_FACTOR).max(MIN_COMPACT_LEN);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_follows_parents() {
        let mut a = Arena::new();
        let r = a.push(NONE, 1);
        let c1 = a.push(r, 2);
        let c2 = a.push(c1, 3);
        let rates: Vec<u16> = a.walk(c2).collect();
        assert_eq!(rates, vec![3, 2, 1]);
    }

    #[test]
    fn collect_commits_common_prefix_and_drops_garbage() {
        let mut a = Arena::new();
        let mut stats = TrellisStats::default();
        // Chain 0 -> 1 -> 2, then a fork at 2 into 3 and 4; 5 is garbage.
        let n0 = a.push(NONE, 10);
        let n1 = a.push(n0, 11);
        let n2 = a.push(n1, 12);
        let n3 = a.push(n2, 13);
        let n4 = a.push(n2, 14);
        let _garbage = a.push(n1, 99);
        let mut survivors = vec![n3, n4];
        a.collect(&mut survivors, &mut stats);
        // 10, 11 are common to both live paths; 12 is the fork point and
        // stays (as the new root).
        assert_eq!(a.committed(), &[10, 11]);
        assert_eq!(a.len(), 3);
        let w0: Vec<u16> = a.walk(survivors[0]).collect();
        let w1: Vec<u16> = a.walk(survivors[1]).collect();
        assert_eq!(w0, vec![13, 12]);
        assert_eq!(w1, vec![14, 12]);
        assert_eq!(stats.committed_slots, 2);
        assert_eq!(stats.compacted_entries, 3); // 10, 11 committed + 99 dead
    }

    #[test]
    fn collect_with_survivor_on_trunk_stops_committing() {
        let mut a = Arena::new();
        let mut stats = TrellisStats::default();
        let n0 = a.push(NONE, 1);
        let n1 = a.push(n0, 2);
        let n2 = a.push(n1, 3);
        // One survivor ends at n1: nothing past n0 can be committed.
        let mut survivors = vec![n1, n2];
        a.collect(&mut survivors, &mut stats);
        assert_eq!(a.committed(), &[1]);
        assert_eq!(a.walk(survivors[0]).collect::<Vec<_>>(), vec![2]);
        assert_eq!(a.walk(survivors[1]).collect::<Vec<_>>(), vec![3, 2]);
    }

    #[test]
    fn collect_with_multiple_roots_commits_nothing() {
        let mut a = Arena::new();
        let mut stats = TrellisStats::default();
        let r0 = a.push(NONE, 1);
        let r1 = a.push(NONE, 2);
        let mut survivors = vec![r0, r1];
        a.collect(&mut survivors, &mut stats);
        assert!(a.committed().is_empty());
        assert_eq!(a.len(), 2);
    }
}
