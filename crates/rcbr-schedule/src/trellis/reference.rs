//! The straightforward trellis implementation, retained verbatim as the
//! oracle for the data-oriented kernel.
//!
//! This is the pre-optimization algorithm: materialize every feasible
//! candidate, globally sort the slot's candidate list, sweep, repeat. It
//! is `O(n·M·log(n·M))` per slot with an arena that grows for the whole
//! trace. The kernel in [`super::kernel`] must reproduce its output —
//! schedule *and* cost — bit for bit; equivalence proptests and
//! `trellis_bench` (which measures both in the same run) depend on this
//! module, which is why it is `pub` (but hidden: it is an implementation
//! detail, not API).

use rcbr_traffic::FrameTrace;

use super::{TrellisConfig, TrellisError};
use crate::schedule::Schedule;

/// One trellis node.
#[derive(Debug, Clone, Copy)]
struct Node {
    /// Rate index into the grid.
    rate: u16,
    /// Buffer occupancy at the end of the slot, bits.
    q: f64,
    /// Weight: cost of the best path reaching this node.
    w: f64,
    /// Index into the parent arena.
    arena: u32,
}

/// Compute the optimal schedule and its cost with the reference
/// algorithm.
pub fn optimize_with_cost(
    cfg: &TrellisConfig,
    trace: &FrameTrace,
) -> Result<(Schedule, f64), TrellisError> {
    let tau = trace.frame_interval();
    let m = cfg.grid.len();
    let svc: Vec<f64> = cfg.grid.levels().iter().map(|&r| r * tau).collect();
    let slot_cost: Vec<f64> = cfg
        .grid
        .levels()
        .iter()
        .map(|&r| cfg.cost.beta * r * tau)
        .collect();
    let alpha = cfg.cost.alpha;
    let t_len = trace.len();

    // Per-slot buffer bound: min(B, arrivals in the trailing delay
    // window) — see eq. (5)'s reduction in the module docs.
    let mut rolling = 0.0; // arrivals in the last D slots (window ending at t)

    // Parent arena: (parent index, rate index). u32::MAX = root.
    let mut parents: Vec<(u32, u16)> = Vec::new();
    let mut survivors: Vec<Node> = Vec::with_capacity(m);
    let mut candidates: Vec<Node> = Vec::new();

    for t in 0..t_len {
        let x = trace.bits(t);
        // Maintain the rolling delay window: the bound at slot t is
        // A_t − A_{t−D} = x_{t−D+1} + … + x_t, exactly D trailing slots.
        if let Some(d) = cfg.delay_slots {
            rolling += x;
            if t >= d {
                rolling -= trace.bits(t - d);
            }
        }
        let b_t = if cfg.delay_slots.is_some() {
            cfg.buffer.min(rolling)
        } else {
            cfg.buffer
        };

        candidates.clear();
        if t == 0 {
            // Initial column: the first rate choice is free of α.
            for (mi, (&s, &c)) in svc.iter().zip(&slot_cost).enumerate() {
                let q = (x - s).max(0.0);
                if q <= b_t {
                    candidates.push(Node {
                        rate: mi as u16,
                        q,
                        w: c,
                        arena: u32::MAX,
                    });
                }
            }
        } else {
            for node in &survivors {
                for (mi, (&s, &c)) in svc.iter().zip(&slot_cost).enumerate() {
                    let q = (node.q + x - s).max(0.0);
                    if q > b_t {
                        continue;
                    }
                    let w = node.w + c + if mi as u16 == node.rate { 0.0 } else { alpha };
                    candidates.push(Node {
                        rate: mi as u16,
                        q,
                        w,
                        arena: node.arena,
                    });
                }
            }
        }
        if candidates.is_empty() {
            return Err(TrellisError::Infeasible { slot: t });
        }

        // Lemma 1 pruning. Sort by (q asc, w asc) — with the buffer
        // axis optionally quantized into buckets — and sweep: a
        // candidate is dominated if an already-seen candidate (which
        // has q no larger, up to one bucket) beats it by weight within
        // its own rate, or by weight + α across rates.
        // Bucket 0 is reserved for an exactly-empty buffer so that the
        // quantization can never merge away the drained state that
        // `drain_at_end` selects on.
        let bucket = |q: f64| match cfg.q_resolution {
            Some(res) => {
                if q == 0.0 {
                    0
                } else {
                    1 + (q / res) as u64
                }
            }
            None => 0,
        };
        if cfg.q_resolution.is_some() {
            candidates.sort_by(|a, b| bucket(a.q).cmp(&bucket(b.q)).then(a.w.total_cmp(&b.w)));
        } else {
            candidates.sort_by(|a, b| a.q.total_cmp(&b.q).then(a.w.total_cmp(&b.w)));
        }
        let mut per_rate_min = vec![f64::INFINITY; m];
        let mut per_rate_bucket = vec![u64::MAX; m];
        let mut global_min = f64::INFINITY;
        survivors.clear();
        for cand in candidates.iter() {
            let r = cand.rate as usize;
            if cand.w >= per_rate_min[r] || cand.w - alpha >= global_min {
                continue;
            }
            if cfg.q_resolution.is_some() {
                // One survivor per (rate, bucket): the first (cheapest)
                // one wins.
                let b = bucket(cand.q);
                if per_rate_bucket[r] == b {
                    continue;
                }
                per_rate_bucket[r] = b;
            }
            per_rate_min[r] = cand.w;
            global_min = global_min.min(cand.w);
            // Commit to the arena lazily, only for survivors.
            assert!(
                parents.len() < u32::MAX as usize,
                "trellis arena exhausted; use a beam or a coarser grid"
            );
            let arena_idx = parents.len() as u32;
            parents.push((cand.arena, cand.rate));
            survivors.push(Node {
                arena: arena_idx,
                ..*cand
            });
        }

        // Optional beam: keep the lowest-weight survivors.
        if let Some(width) = cfg.max_survivors {
            if survivors.len() > width {
                survivors.sort_by(|a, b| a.w.total_cmp(&b.w));
                survivors.truncate(width);
            }
        }
    }

    // Best terminal node (restricted to drained nodes when required;
    // the Lemma 1 pruning preserves the best drained path because a
    // dominating node has no larger backlog, hence drains wherever the
    // dominated one does).
    let best = survivors
        .iter()
        .filter(|n| !cfg.drain_at_end || n.q <= 1e-9)
        .min_by(|a, b| a.w.total_cmp(&b.w))
        .ok_or(TrellisError::Infeasible { slot: t_len })?;

    // Reconstruct the rate sequence by walking the arena.
    let mut rates_rev: Vec<f64> = Vec::with_capacity(t_len);
    let mut idx = best.arena;
    while idx != u32::MAX {
        let (parent, rate) = parents[idx as usize];
        rates_rev.push(cfg.grid.level(rate as usize));
        idx = parent;
    }
    debug_assert_eq!(rates_rev.len(), t_len, "arena walk must span the trace");
    rates_rev.reverse();
    Ok((Schedule::from_rates(tau, &rates_rev), best.w))
}
