//! Exact-mode candidate expansion: the `M`-way frontier merge.
//!
//! For a fixed target rate `mi`, mapping the q-sorted survivor column
//! through `q' = max(q + x − s_mi, 0)` yields a q-sorted candidate
//! stream (the map is monotone, clamping included). The global
//! `(q, w, gen, rate)` candidate order the reference obtains with a full
//! `O(n·M·log(n·M))` sort is therefore an `M`-way merge of `M` sorted
//! streams — `O(n·M·log M)` — plus a tiny sort of each *exactly-equal-q*
//! group to restore the reference's `(w, gen, rate)` tie order (groups
//! are almost always singletons; the clamped `q = 0` run is the one
//! recurring exception).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use super::kernel::{Cand, SlotCtx, Sweep};
use super::shard;
use super::soa::Column;

/// One stream head in the merge heap: the next candidate of target rate
/// `mi`, drawn from survivor index `si`.
#[derive(Debug, Clone, Copy)]
struct Head {
    q: f64,
    mi: u16,
    si: u32,
}

impl PartialEq for Head {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Head {}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Head {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the smallest q.
        // `mi` tie-break is only for determinism; equal-q heads end up in
        // the same group and are re-ordered there.
        other
            .q
            .total_cmp(&self.q)
            .then_with(|| other.mi.cmp(&self.mi))
    }
}

/// Reusable merge buffers.
#[derive(Debug, Default)]
pub(super) struct Scratch {
    heap: BinaryHeap<Head>,
    group: Vec<Cand>,
    bands: Vec<Vec<Cand>>,
    band_pos: Vec<usize>,
}

/// Candidate for stream `mi` at survivor `si`, with the reference's exact
/// float expressions.
#[inline]
fn make_cand(ctx: &SlotCtx<'_>, cur: &Column, si: u32, mi: u16) -> Cand {
    let i = si as usize;
    let q = (cur.q[i] + ctx.x - ctx.svc[mi as usize]).max(0.0);
    let w = cur.w[i] + ctx.slot_cost[mi as usize] + if mi == cur.rate[i] { 0.0 } else { ctx.alpha };
    Cand {
        q,
        w,
        gsi: cur.gen[i],
        mi,
        parent: cur.arena[i],
    }
}

/// Expand one slot and drive the sweep, serially or sharded by rate band.
pub(super) fn expand(
    ctx: &SlotCtx<'_>,
    cur: &Column,
    cutoffs: &[usize],
    shards: usize,
    s: &mut Scratch,
    sweep: &mut Sweep<'_>,
) {
    if shards <= 1 {
        expand_serial(ctx, cur, cutoffs, s, sweep);
    } else {
        expand_sharded(ctx, cur, cutoffs, shards, s, sweep);
    }
}

/// Single-threaded path: all streams share one heap; candidates flow
/// straight from the merge into the sweep with no materialization.
fn expand_serial(
    ctx: &SlotCtx<'_>,
    cur: &Column,
    cutoffs: &[usize],
    s: &mut Scratch,
    sweep: &mut Sweep<'_>,
) {
    s.heap.clear();
    for (mi, &cut) in cutoffs.iter().enumerate() {
        if cut > 0 {
            let q = (cur.q[0] + ctx.x - ctx.svc[mi]).max(0.0);
            s.heap.push(Head {
                q,
                mi: mi as u16,
                si: 0,
            });
        }
    }
    while let Some(top) = s.heap.pop() {
        // Collect the exactly-equal-q group (bit equality via total_cmp,
        // matching the reference sort's key comparison).
        s.group.clear();
        advance(ctx, cur, cutoffs, &mut s.heap, top, &mut s.group);
        while let Some(&next) = s.heap.peek() {
            if next.q.total_cmp(&top.q) != Ordering::Equal {
                break;
            }
            let next = s.heap.pop().expect("peeked");
            advance(ctx, cur, cutoffs, &mut s.heap, next, &mut s.group);
        }
        flush_group(&mut s.group, sweep);
    }
}

/// Emit `head`'s candidate into `group` and push its stream's successor.
#[inline]
fn advance(
    ctx: &SlotCtx<'_>,
    cur: &Column,
    cutoffs: &[usize],
    heap: &mut BinaryHeap<Head>,
    head: Head,
    group: &mut Vec<Cand>,
) {
    group.push(make_cand(ctx, cur, head.si, head.mi));
    let next_si = head.si + 1;
    if (next_si as usize) < cutoffs[head.mi as usize] {
        let q = (cur.q[next_si as usize] + ctx.x - ctx.svc[head.mi as usize]).max(0.0);
        heap.push(Head {
            q,
            mi: head.mi,
            si: next_si,
        });
    }
}

/// Order an equal-q group by the reference tie keys and sweep it.
#[inline]
fn flush_group(group: &mut [Cand], sweep: &mut Sweep<'_>) {
    if group.len() > 1 {
        group.sort_unstable_by(|a, b| {
            a.w.total_cmp(&b.w)
                .then(a.gsi.cmp(&b.gsi))
                .then(a.mi.cmp(&b.mi))
        });
    }
    for c in group.iter() {
        sweep.offer(c);
    }
}

/// Sharded path: each rate band merges its own streams into a sorted
/// candidate list on its own thread; the main thread then runs a
/// deterministic `S`-way merge of the band lists into the same group
/// sweep. Output is bit-identical to the serial path at any shard count
/// because groups — the only place float ties are resolved — are formed
/// from the same exact-q equivalence classes either way.
fn expand_sharded(
    ctx: &SlotCtx<'_>,
    cur: &Column,
    cutoffs: &[usize],
    shards: usize,
    s: &mut Scratch,
    sweep: &mut Sweep<'_>,
) {
    let ranges = shard::band_ranges(cutoffs.len(), shards);
    s.bands.resize_with(ranges.len(), Vec::new);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(ranges.len());
        for (range, out) in ranges.iter().zip(s.bands.iter_mut()) {
            let range = range.clone();
            handles.push(scope.spawn(move || {
                out.clear();
                let mut heap: BinaryHeap<Head> = BinaryHeap::new();
                for mi in range {
                    if cutoffs[mi] > 0 {
                        let q = (cur.q[0] + ctx.x - ctx.svc[mi]).max(0.0);
                        heap.push(Head {
                            q,
                            mi: mi as u16,
                            si: 0,
                        });
                    }
                }
                while let Some(head) = heap.pop() {
                    out.push(make_cand(ctx, cur, head.si, head.mi));
                    let next_si = head.si + 1;
                    if (next_si as usize) < cutoffs[head.mi as usize] {
                        let q =
                            (cur.q[next_si as usize] + ctx.x - ctx.svc[head.mi as usize]).max(0.0);
                        heap.push(Head {
                            q,
                            mi: head.mi,
                            si: next_si,
                        });
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("trellis shard worker panicked");
        }
    });

    // Merge barrier: S-way merge of the per-band q-sorted lists.
    s.band_pos.clear();
    s.band_pos.resize(s.bands.len(), 0);
    loop {
        // The band with the smallest head q (band index breaks exact
        // ties; group re-ordering makes the choice immaterial).
        let mut best: Option<(usize, f64)> = None;
        for (b, band) in s.bands.iter().enumerate() {
            if let Some(c) = band.get(s.band_pos[b]) {
                best = match best {
                    Some((_, bq)) if bq.total_cmp(&c.q) != Ordering::Greater => best,
                    _ => Some((b, c.q)),
                };
            }
        }
        let Some((_, group_q)) = best else { break };
        s.group.clear();
        for (b, band) in s.bands.iter().enumerate() {
            while let Some(c) = band.get(s.band_pos[b]) {
                if c.q.total_cmp(&group_q) != Ordering::Equal {
                    break;
                }
                s.group.push(*c);
                s.band_pos[b] += 1;
            }
        }
        flush_group(&mut s.group, sweep);
    }
}
