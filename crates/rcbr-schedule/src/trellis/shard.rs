//! Rate-band partitioning for the optional sharded expansion.

use std::ops::Range;

/// Split `m` rate indices into at most `shards` contiguous, near-equal
/// bands (the first `m % shards` bands get one extra rate). Deterministic
/// in `(m, shards)`; never returns an empty band.
pub(super) fn band_ranges(m: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.clamp(1, m.max(1));
    let base = m / shards;
    let extra = m % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for b in 0..shards {
        let len = base + usize::from(b < extra);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_cover_exactly_once() {
        for m in 1..50 {
            for shards in 1..8 {
                let ranges = band_ranges(m, shards);
                let mut covered = vec![0u32; m];
                for r in &ranges {
                    for i in r.clone() {
                        covered[i] += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "m={m} shards={shards}");
                assert!(ranges.iter().all(|r| !r.is_empty()));
                assert!(ranges.len() <= shards);
            }
        }
    }

    #[test]
    fn band_sizes_differ_by_at_most_one() {
        let ranges = band_ranges(20, 3);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(sizes, vec![7, 7, 6]);
    }
}
