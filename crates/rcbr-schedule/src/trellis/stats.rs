//! Deterministic work counters for the trellis kernel.

use serde::{Deserialize, Serialize};

/// Work counters accumulated by one [`super::OfflineOptimizer`] run.
///
/// Every field is a pure function of `(config, shards-independent
/// candidate math, trace)`: counters are bit-identical across reruns and
/// across shard counts, which makes them usable as a CI regression oracle
/// (a changed counter means a changed algorithm, with none of the noise of
/// wall-clock gating).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrellisStats {
    /// Candidate nodes generated (feasible under the buffer/delay bound).
    pub nodes_expanded: u64,
    /// Survivors kept after Lemma 1 pruning (arena entries written).
    pub nodes_kept: u64,
    /// Candidates discarded by Lemma 1 pruning (`expanded − kept`).
    pub nodes_pruned: u64,
    /// Survivors discarded by the optional beam truncation.
    pub beam_dropped: u64,
    /// Mark-and-compact passes over the parent arena.
    pub compactions: u64,
    /// Dead arena entries reclaimed across all compactions.
    pub compacted_entries: u64,
    /// Slots whose rate was committed early because every live path
    /// shared it (truncated from the arena into the output prefix).
    pub committed_slots: u64,
    /// Largest arena length observed (live + garbage, before compaction).
    pub peak_arena: u64,
    /// Largest survivor-column length observed.
    pub peak_survivors: u64,
}

impl TrellisStats {
    /// Record a new arena high-water mark.
    pub(super) fn observe_arena(&mut self, len: usize) {
        self.peak_arena = self.peak_arena.max(len as u64);
    }

    /// Record a new survivor-column high-water mark.
    pub(super) fn observe_survivors(&mut self, len: usize) {
        self.peak_survivors = self.peak_survivors.max(len as u64);
    }
}
