//! The offline optimal renegotiation schedule (Section IV-A).
//!
//! Given full knowledge of the arrival sequence `x_1..x_T`, a finite rate
//! set `R`, a buffer of `B` bits (and optionally a delay bound of `D`
//! slots, eq. (5)), and prices `(α, β)`, find the service-rate sequence
//! `s_1..s_T ∈ R^T` minimizing
//!
//! ```text
//! Σ_t [ α·1{s_t ≠ s_{t−1}} + β·s_t·τ ]
//! ```
//!
//! subject to the queue `q_t = max(q_{t−1} + x_t − s_t·τ, 0)` never
//! exceeding the buffer bound. The paper solves this with a Viterbi-like
//! algorithm over a trellis of `(time, rate, buffer occupancy, weight)`
//! nodes, pruned by its Lemma 1:
//!
//! > A path through node `(t, v, q, w)` is not optimal if there exists a
//! > path through `(t, v', q', w')` with `q' ≤ q` and `w' + Δ ≤ w`, where
//! > `Δ = 0` if `v' = v` and `Δ = α` otherwise.
//!
//! The paper reports this optimizer as the bottleneck of its whole
//! evaluation: ~20 minutes at `M = 20` rate levels and "more than a day"
//! at `M = 100`. The implementation here is a data-oriented kernel
//! (see `DESIGN.md` §8) that removes the super-linear term from the inner
//! loop:
//!
//! * survivors are stored in struct-of-arrays columns ([`soa`]), kept
//!   sorted by buffer occupancy, with every per-slot buffer reused;
//! * because a fixed target rate maps a `q`-sorted survivor column to a
//!   `q`-sorted candidate stream, Lemma 1 pruning is an `M`-way linear
//!   merge plus sweep ([`exact`]) — or, with a quantized buffer axis, a
//!   per-`(rate, bucket)` reduction ([`quantized`]) — instead of a global
//!   `O(n·M·log(n·M))` sort;
//! * parent pointers for path reconstruction live in a mark-and-compacted
//!   arena ([`arena`]) whose common path prefix is committed and truncated,
//!   bounding memory by the live survivor set instead of the trace length;
//! * candidate expansion can optionally be sharded by rate band across
//!   threads with a deterministic merge barrier ([`shard`]): the output is
//!   bit-identical at any shard count.
//!
//! The straightforward implementation this kernel replaced is retained in
//! [`reference`] as the oracle for equivalence tests and the baseline for
//! `trellis_bench`; the kernel reproduces its output — schedule *and*
//! cost — bit for bit, including every floating-point tie-break.
//!
//! An optional beam width (`max_survivors`) turns the exact search into a
//! bounded-memory approximation for very fine rate grids.
//!
//! The initial rate choice at `t = 1` is part of call setup and is not
//! charged as a renegotiation; this matches [`Schedule::total_cost`].

mod arena;
mod exact;
mod kernel;
mod quantized;
#[doc(hidden)]
pub mod reference;
mod shard;
mod soa;
mod stats;

use rcbr_traffic::FrameTrace;
use serde::{Deserialize, Serialize};

use crate::cost::CostModel;
use crate::grid::RateGrid;
use crate::schedule::Schedule;

pub use stats::TrellisStats;

/// Configuration of the offline optimizer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrellisConfig {
    /// Allowed service rates.
    pub grid: RateGrid,
    /// Pricing (α per renegotiation, β per bit of allocated volume).
    pub cost: CostModel,
    /// End-system buffer size, bits.
    pub buffer: f64,
    /// Optional delay bound in slots: data entering during slot `t` must
    /// have left by the end of slot `t + D` (eq. (5)).
    pub delay_slots: Option<usize>,
    /// Optional beam width: keep at most this many lowest-weight survivors
    /// per slot. `None` is the exact algorithm.
    pub max_survivors: Option<usize>,
    /// Require the buffer to be empty at the end of the session.
    ///
    /// Experiments that multiplex circularly shifted copies of one
    /// schedule (Fig. 6's scenario (c), the Section VI call simulations)
    /// need this: a nonzero final backlog would otherwise spill over the
    /// wrap-around point of every shifted replica.
    pub drain_at_end: bool,
    /// Optional buffer-occupancy quantum: keep at most one survivor per
    /// `(rate, ⌊q/resolution⌋)` bucket (the cheapest one).
    ///
    /// The exact algorithm's survivor set — like the paper's original —
    /// can grow with the trace length when renegotiations are cheap (the
    /// paper saw 20-minute runs at M = 20 and >1 day at M = 100).
    /// Quantizing the buffer axis bounds it: with resolution `B/1000` the
    /// schedule cost is within a fraction of a percent of optimal in
    /// practice, and any returned schedule is still *exactly* feasible
    /// (occupancies along kept paths are never approximated).
    pub q_resolution: Option<f64>,
}

impl TrellisConfig {
    /// A buffer-constrained configuration (the paper's main setting).
    pub fn new(grid: RateGrid, cost: CostModel, buffer: f64) -> Self {
        assert!(
            buffer >= 0.0 && buffer.is_finite(),
            "buffer must be nonnegative"
        );
        Self {
            grid,
            cost,
            buffer,
            delay_slots: None,
            max_survivors: None,
            drain_at_end: false,
            q_resolution: None,
        }
    }

    /// Require an empty buffer at the end of the session (see the field
    /// docs for why circular-shift experiments need this).
    pub fn with_drain_at_end(mut self) -> Self {
        self.drain_at_end = true;
        self
    }

    /// Quantize the buffer axis (see the field docs); a good default is
    /// `buffer / 1000`.
    ///
    /// # Panics
    /// Panics if `resolution <= 0`.
    pub fn with_q_resolution(mut self, resolution: f64) -> Self {
        assert!(
            resolution > 0.0 && resolution.is_finite(),
            "resolution must be positive"
        );
        self.q_resolution = Some(resolution);
        self
    }

    /// Add a delay bound of `d` slots.
    pub fn with_delay_bound(mut self, d: usize) -> Self {
        self.delay_slots = Some(d);
        self
    }

    /// Bound the survivor set (beam search).
    ///
    /// # Panics
    /// Panics if `width == 0`.
    pub fn with_beam(mut self, width: usize) -> Self {
        assert!(width > 0, "beam width must be positive");
        self.max_survivors = Some(width);
        self
    }
}

/// Why no feasible schedule exists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrellisError {
    /// Even draining at the maximum grid rate, the buffer (or delay) bound
    /// is violated at this slot.
    Infeasible {
        /// First slot at which every path dies.
        slot: usize,
    },
}

impl std::fmt::Display for TrellisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrellisError::Infeasible { slot } => write!(
                f,
                "no feasible schedule: buffer/delay bound violated at slot {slot} even at the \
                 maximum rate level"
            ),
        }
    }
}

impl std::error::Error for TrellisError {}

/// The offline optimizer.
///
/// ```
/// use rcbr_schedule::{CostModel, OfflineOptimizer, RateGrid, TrellisConfig};
/// use rcbr_traffic::FrameTrace;
///
/// // A 6-slot workload with one burst, a 60-bit buffer, three rates.
/// let trace = FrameTrace::new(1.0, vec![80.0, 10.0, 10.0, 90.0, 0.0, 40.0]);
/// let grid = RateGrid::new(vec![0.0, 50.0, 100.0]);
/// let config = TrellisConfig::new(grid, CostModel::new(30.0, 1.0), 60.0);
/// let schedule = OfflineOptimizer::new(config).optimize(&trace).unwrap();
/// assert!(schedule.is_feasible(&trace, 60.0));
/// ```
#[derive(Debug, Clone)]
pub struct OfflineOptimizer {
    config: TrellisConfig,
    shards: usize,
}

impl OfflineOptimizer {
    /// Create an optimizer.
    ///
    /// # Panics
    /// Panics if the grid has more than `u16::MAX` levels (the arena packs
    /// rate indices into 16 bits).
    pub fn new(config: TrellisConfig) -> Self {
        assert!(
            config.grid.len() <= u16::MAX as usize,
            "rate grid too fine for the trellis arena"
        );
        Self { config, shards: 1 }
    }

    /// Shard candidate expansion over `shards` worker threads, partitioned
    /// by contiguous rate band with a sequential merge barrier per slot.
    ///
    /// The output — schedule, cost, and every work counter — is
    /// bit-identical at any shard count; sharding changes only which
    /// thread evaluates which target rate.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        self.shards = shards;
        self
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The configuration.
    pub fn config(&self) -> &TrellisConfig {
        &self.config
    }

    /// Compute the optimal schedule for `trace`.
    pub fn optimize(&self, trace: &FrameTrace) -> Result<Schedule, TrellisError> {
        self.optimize_with_cost(trace).map(|(s, _)| s)
    }

    /// Compute the optimal schedule and its cost.
    pub fn optimize_with_cost(&self, trace: &FrameTrace) -> Result<(Schedule, f64), TrellisError> {
        self.optimize_with_stats(trace)
            .map(|(s, cost, _)| (s, cost))
    }

    /// Compute the optimal schedule, its cost, and the kernel's
    /// deterministic work counters.
    pub fn optimize_with_stats(
        &self,
        trace: &FrameTrace,
    ) -> Result<(Schedule, f64, TrellisStats), TrellisError> {
        kernel::run(&self.config, self.shards, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Exhaustive reference: enumerate every rate sequence.
    fn brute_force(
        trace: &FrameTrace,
        grid: &RateGrid,
        cost: &CostModel,
        buffer: f64,
    ) -> Option<(Vec<f64>, f64)> {
        let m = grid.len();
        let t_len = trace.len();
        let tau = trace.frame_interval();
        let mut best: Option<(Vec<f64>, f64)> = None;
        let total = m.pow(t_len as u32);
        for code in 0..total {
            let mut c = code;
            let mut rates = Vec::with_capacity(t_len);
            for _ in 0..t_len {
                rates.push(grid.level(c % m));
                c /= m;
            }
            // Evaluate feasibility + cost.
            let mut q = 0.0;
            let mut w = 0.0;
            let mut feasible = true;
            for (t, &r) in rates.iter().enumerate() {
                q = (q + trace.bits(t) - r * tau).max(0.0);
                if q > buffer {
                    feasible = false;
                    break;
                }
                w += cost.beta * r * tau;
                if t > 0 && rates[t] != rates[t - 1] {
                    w += cost.alpha;
                }
            }
            if feasible && best.as_ref().is_none_or(|(_, bw)| w < *bw) {
                best = Some((rates, w));
            }
        }
        best
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        let grid = RateGrid::new(vec![0.0, 50.0, 100.0]);
        let cost = CostModel::new(30.0, 1.0);
        let trace = FrameTrace::new(1.0, vec![80.0, 10.0, 10.0, 90.0, 0.0, 40.0]);
        let buffer = 60.0;
        let opt = OfflineOptimizer::new(TrellisConfig::new(grid.clone(), cost, buffer));
        let (sched, w) = opt.optimize_with_cost(&trace).unwrap();
        let (_, bf_w) = brute_force(&trace, &grid, &cost, buffer).unwrap();
        assert!((w - bf_w).abs() < 1e-9, "trellis {w} vs brute force {bf_w}");
        assert!(sched.is_feasible(&trace, buffer));
        assert!((sched.total_cost(&cost) - w).abs() < 1e-9);
    }

    #[test]
    fn constant_workload_yields_constant_schedule() {
        let grid = RateGrid::new(vec![50.0, 100.0, 150.0]);
        let cost = CostModel::new(10.0, 1.0);
        let trace = FrameTrace::new(1.0, vec![100.0; 20]);
        let opt = OfflineOptimizer::new(TrellisConfig::new(grid, cost, 10.0));
        let sched = opt.optimize(&trace).unwrap();
        assert_eq!(sched.num_renegotiations(), 0);
        assert_eq!(sched.rate_at(0), 100.0);
    }

    #[test]
    fn infeasible_when_peak_exceeds_grid() {
        let grid = RateGrid::new(vec![10.0, 20.0]);
        let cost = CostModel::new(1.0, 1.0);
        // 1000 bits/slot forever: overflows any 50-bit buffer at rate 20.
        let trace = FrameTrace::new(1.0, vec![1000.0; 5]);
        let opt = OfflineOptimizer::new(TrellisConfig::new(grid, cost, 50.0));
        match opt.optimize(&trace) {
            Err(TrellisError::Infeasible { slot }) => assert_eq!(slot, 0),
            other => panic!("expected infeasibility, got {other:?}"),
        }
    }

    #[test]
    fn large_alpha_suppresses_renegotiations() {
        let grid = RateGrid::new(vec![0.0, 100.0, 200.0]);
        let trace = FrameTrace::new(1.0, vec![200.0, 0.0, 0.0, 200.0, 0.0, 0.0, 200.0, 0.0, 0.0]);
        let buffer = 150.0;
        // Cheap renegotiation: the optimum tracks the workload.
        let cheap = OfflineOptimizer::new(TrellisConfig::new(
            grid.clone(),
            CostModel::new(0.001, 1.0),
            buffer,
        ));
        let s_cheap = cheap.optimize(&trace).unwrap();
        // Expensive renegotiation: the optimum holds one rate.
        let dear =
            OfflineOptimizer::new(TrellisConfig::new(grid, CostModel::new(1e9, 1.0), buffer));
        let s_dear = dear.optimize(&trace).unwrap();
        assert!(s_cheap.num_renegotiations() > 0);
        assert_eq!(s_dear.num_renegotiations(), 0);
        assert!(s_cheap.mean_service_rate() < s_dear.mean_service_rate());
    }

    #[test]
    fn delay_bound_tightens_the_schedule() {
        let grid = RateGrid::new(vec![0.0, 50.0, 100.0, 200.0]);
        let cost = CostModel::new(1.0, 1.0);
        let trace = FrameTrace::new(1.0, vec![200.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        // Large buffer, no delay bound: can drain the burst slowly.
        let lax = OfflineOptimizer::new(TrellisConfig::new(grid.clone(), cost, 1e9));
        let s_lax = lax.optimize(&trace).unwrap();
        // Delay bound of 1 slot: burst must leave within the next slot.
        let strict = OfflineOptimizer::new(TrellisConfig::new(grid, cost, 1e9).with_delay_bound(1));
        let s_strict = strict.optimize(&trace).unwrap();
        assert!(s_strict.mean_service_rate() >= s_lax.mean_service_rate());
        // Verify the delay semantics directly: cumulative service through
        // slot t+1 covers cumulative arrivals through slot t.
        let rates = s_strict.to_rates();
        let mut served = 0.0;
        let mut q: f64 = 0.0;
        let mut cum_arr = 0.0;
        let mut arr_hist = vec![0.0];
        for (t, &r) in rates.iter().enumerate() {
            cum_arr += trace.bits(t);
            let avail = q + trace.bits(t);
            let s = avail.min(r);
            served += s;
            q = avail - s;
            arr_hist.push(cum_arr);
            if t >= 1 {
                assert!(
                    served >= arr_hist[t] - 1e-9,
                    "slot {t}: served {served} < arrivals-through-{} {}",
                    t - 1,
                    arr_hist[t]
                );
            }
        }
    }

    #[test]
    fn q_resolution_preserves_drain_at_end() {
        // A workload whose drained optimum requires surviving an exact
        // q = 0 node distinct from the rest of its bucket.
        let grid = RateGrid::uniform(10.0, 300.0, 10);
        let cost = CostModel::new(20.0, 1.0);
        let bits: Vec<f64> = (0..300)
            .map(|i| {
                if i % 31 < 7 {
                    260.0
                } else {
                    35.0 + (i % 5) as f64
                }
            })
            .collect();
        let trace = FrameTrace::new(1.0, bits);
        let buffer = 400.0;
        let opt = OfflineOptimizer::new(
            TrellisConfig::new(grid, cost, buffer)
                .with_drain_at_end()
                .with_q_resolution(buffer / 50.0),
        );
        let sched = opt.optimize(&trace).expect("drained optimum must exist");
        assert!(sched.replay(&trace, buffer).final_backlog <= 1e-9);
    }

    #[test]
    fn q_resolution_is_feasible_and_close_to_exact() {
        let grid = RateGrid::uniform(0.0, 300.0, 7);
        let cost = CostModel::new(5.0, 1.0);
        let bits: Vec<f64> = (0..200)
            .map(|i| {
                if i % 17 < 5 {
                    220.0
                } else {
                    40.0 + (i % 7) as f64
                }
            })
            .collect();
        let trace = FrameTrace::new(1.0, bits);
        let buffer = 150.0;
        let exact = OfflineOptimizer::new(TrellisConfig::new(grid.clone(), cost, buffer));
        let (_, w_exact) = exact.optimize_with_cost(&trace).unwrap();
        let quantized = OfflineOptimizer::new(
            TrellisConfig::new(grid, cost, buffer).with_q_resolution(buffer / 1000.0),
        );
        let (s_q, w_q) = quantized.optimize_with_cost(&trace).unwrap();
        assert!(s_q.is_feasible(&trace, buffer + 1e-9));
        assert!(w_q >= w_exact - 1e-9, "quantized cannot beat exact");
        assert!(
            w_q <= 1.02 * w_exact,
            "quantized {w_q} too far above exact {w_exact}"
        );
    }

    #[test]
    fn beam_search_is_feasible_and_close() {
        let grid = RateGrid::uniform(0.0, 300.0, 7);
        let cost = CostModel::new(20.0, 1.0);
        let bits: Vec<f64> = (0..40)
            .map(|i| if i % 10 < 3 { 250.0 } else { 30.0 })
            .collect();
        let trace = FrameTrace::new(1.0, bits);
        let exact = OfflineOptimizer::new(TrellisConfig::new(grid.clone(), cost, 100.0));
        let (_, w_exact) = exact.optimize_with_cost(&trace).unwrap();
        let beam = OfflineOptimizer::new(TrellisConfig::new(grid, cost, 100.0).with_beam(4));
        let (s_beam, w_beam) = beam.optimize_with_cost(&trace).unwrap();
        assert!(s_beam.is_feasible(&trace, 100.0));
        assert!(w_beam >= w_exact - 1e-9);
        assert!(w_beam <= 1.5 * w_exact, "beam {w_beam} vs exact {w_exact}");
    }

    #[test]
    fn drain_at_end_empties_the_buffer() {
        let grid = RateGrid::new(vec![10.0, 50.0, 100.0]);
        let cost = CostModel::new(5.0, 1.0);
        // Ends with a burst the lazy schedule would leave in the buffer.
        let trace = FrameTrace::new(1.0, vec![10.0, 10.0, 10.0, 90.0]);
        let lazy = OfflineOptimizer::new(TrellisConfig::new(grid.clone(), cost, 100.0));
        let (s_lazy, w_lazy) = lazy.optimize_with_cost(&trace).unwrap();
        assert!(s_lazy.replay(&trace, 100.0).final_backlog > 0.0);
        let drained =
            OfflineOptimizer::new(TrellisConfig::new(grid, cost, 100.0).with_drain_at_end());
        let (s_drained, w_drained) = drained.optimize_with_cost(&trace).unwrap();
        assert!(s_drained.replay(&trace, 100.0).final_backlog <= 1e-9);
        // Draining can only cost more.
        assert!(w_drained >= w_lazy - 1e-9);
    }

    #[test]
    fn drain_at_end_can_be_infeasible() {
        // Max rate 10 b/s cannot drain a 100-bit final burst in its slot.
        let grid = RateGrid::new(vec![0.0, 10.0]);
        let cost = CostModel::new(1.0, 1.0);
        let trace = FrameTrace::new(1.0, vec![0.0, 100.0]);
        let opt = OfflineOptimizer::new(TrellisConfig::new(grid, cost, 1000.0).with_drain_at_end());
        assert_eq!(
            opt.optimize(&trace),
            Err(TrellisError::Infeasible { slot: 2 })
        );
    }

    #[test]
    fn zero_buffer_forces_per_slot_covering() {
        let grid = RateGrid::new(vec![0.0, 100.0, 200.0]);
        let cost = CostModel::new(0.1, 1.0);
        let trace = FrameTrace::new(1.0, vec![100.0, 200.0, 100.0]);
        let opt = OfflineOptimizer::new(TrellisConfig::new(grid, cost, 0.0));
        let sched = opt.optimize(&trace).unwrap();
        assert_eq!(sched.to_rates(), vec![100.0, 200.0, 100.0]);
    }

    /// A bursty deterministic workload for the equivalence checks below.
    fn bursty_trace(len: usize) -> FrameTrace {
        let bits: Vec<f64> = (0..len)
            .map(|i| {
                if i % 13 < 4 {
                    230.0 + (i % 3) as f64 * 7.0
                } else {
                    30.0 + (i % 11) as f64
                }
            })
            .collect();
        FrameTrace::new(1.0, bits)
    }

    fn equivalence_configs() -> Vec<TrellisConfig> {
        let grid = RateGrid::uniform(0.0, 300.0, 9);
        let cost = CostModel::new(12.0, 1.0);
        let buffer = 250.0;
        let base = TrellisConfig::new(grid, cost, buffer);
        vec![
            base.clone(),
            base.clone().with_q_resolution(buffer / 200.0),
            base.clone().with_beam(6),
            base.clone().with_drain_at_end(),
            base.clone().with_delay_bound(3),
            base.with_q_resolution(buffer / 100.0).with_drain_at_end(),
        ]
    }

    #[test]
    fn kernel_is_bit_identical_to_reference() {
        let trace = bursty_trace(300);
        for cfg in equivalence_configs() {
            let got = OfflineOptimizer::new(cfg.clone()).optimize_with_cost(&trace);
            let want = reference::optimize_with_cost(&cfg, &trace);
            match (got, want) {
                (Ok((s_k, w_k)), Ok((s_r, w_r))) => {
                    assert_eq!(
                        w_k.to_bits(),
                        w_r.to_bits(),
                        "cost diverged for {cfg:?}: kernel {w_k} vs reference {w_r}"
                    );
                    assert_eq!(s_k.to_rates(), s_r.to_rates(), "schedule diverged: {cfg:?}");
                }
                (Err(e_k), Err(e_r)) => assert_eq!(e_k, e_r),
                (got, want) => panic!("feasibility diverged for {cfg:?}: {got:?} vs {want:?}"),
            }
        }
    }

    #[test]
    fn shard_count_does_not_change_output_or_counters() {
        let trace = bursty_trace(200);
        for cfg in equivalence_configs() {
            let baseline = OfflineOptimizer::new(cfg.clone()).optimize_with_stats(&trace);
            for shards in [2, 4] {
                let sharded = OfflineOptimizer::new(cfg.clone())
                    .with_shards(shards)
                    .optimize_with_stats(&trace);
                match (&baseline, &sharded) {
                    (Ok((s0, w0, st0)), Ok((s1, w1, st1))) => {
                        assert_eq!(w0.to_bits(), w1.to_bits(), "{shards} shards: {cfg:?}");
                        assert_eq!(s0.to_rates(), s1.to_rates(), "{shards} shards: {cfg:?}");
                        assert_eq!(st0, st1, "{shards} shards: {cfg:?}");
                    }
                    (Err(e0), Err(e1)) => assert_eq!(e0, e1),
                    other => panic!("feasibility diverged: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn stats_counters_are_coherent() {
        let trace = bursty_trace(400);
        let grid = RateGrid::uniform(0.0, 300.0, 12);
        let cfg = TrellisConfig::new(grid, CostModel::new(8.0, 1.0), 250.0);
        let (_, _, stats) = OfflineOptimizer::new(cfg)
            .optimize_with_stats(&trace)
            .unwrap();
        assert_eq!(stats.nodes_expanded, stats.nodes_kept + stats.nodes_pruned);
        assert!(stats.nodes_kept > 0);
        assert!(stats.peak_survivors > 0);
        assert!(stats.peak_arena >= stats.peak_survivors);
    }

    #[test]
    fn arena_compaction_bounds_memory_and_preserves_output() {
        // Long trace + fine quantization: enough survivors per slot that
        // the arena crosses its watermark many times.
        let trace = bursty_trace(6000);
        let grid = RateGrid::uniform(0.0, 300.0, 20);
        let buffer = 400.0;
        let cfg = TrellisConfig::new(grid, CostModel::new(6.0, 1.0), buffer)
            .with_q_resolution(buffer / 500.0);
        let (s_k, w_k, stats) = OfflineOptimizer::new(cfg.clone())
            .optimize_with_stats(&trace)
            .unwrap();
        let (s_r, w_r) = reference::optimize_with_cost(&cfg, &trace).unwrap();
        assert_eq!(w_k.to_bits(), w_r.to_bits());
        assert_eq!(s_k.to_rates(), s_r.to_rates());
        assert!(stats.compactions > 0, "expected compactions: {stats:?}");
        // The uncompacted arena would hold every survivor ever kept; the
        // compacted one must stay well below that.
        assert!(
            stats.peak_arena < stats.nodes_kept,
            "arena not bounded: {stats:?}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The trellis matches exhaustive search on random tiny instances.
        #[test]
        fn optimal_on_random_instances(
            bits in proptest::collection::vec(0.0..100.0f64, 2..7),
            alpha in 0.1..100.0f64,
            buffer in 0.0..150.0f64,
        ) {
            let grid = RateGrid::new(vec![0.0, 40.0, 110.0]);
            let cost = CostModel::new(alpha, 1.0);
            let trace = FrameTrace::new(1.0, bits);
            let opt = OfflineOptimizer::new(TrellisConfig::new(grid.clone(), cost, buffer));
            let got = opt.optimize_with_cost(&trace);
            let want = brute_force(&trace, &grid, &cost, buffer);
            match (got, want) {
                (Ok((sched, w)), Some((_, bw))) => {
                    prop_assert!((w - bw).abs() < 1e-6, "trellis {w} vs brute {bw}");
                    prop_assert!(sched.is_feasible(&trace, buffer + 1e-9));
                }
                (Err(_), None) => {}
                (got, want) => {
                    return Err(TestCaseError::fail(format!(
                        "feasibility disagreement: trellis {got:?} vs brute {}",
                        want.is_some()
                    )));
                }
            }
        }

        /// Feasibility and cost consistency on larger random instances.
        #[test]
        fn schedules_are_always_feasible(
            bits in proptest::collection::vec(0.0..1000.0f64, 10..80),
            buffer in 100.0..2000.0f64,
            alpha in 0.1..1000.0f64,
        ) {
            let grid = RateGrid::uniform(0.0, 1000.0, 6);
            let cost = CostModel::new(alpha, 1.0);
            let trace = FrameTrace::new(0.5, bits);
            let opt = OfflineOptimizer::new(TrellisConfig::new(grid, cost, buffer));
            // Max level 1000 b/s * 0.5 s = 500 bits/slot; arrivals can be up
            // to 1000 bits/slot, so infeasibility is possible — both
            // outcomes are valid, but a returned schedule must be coherent.
            if let Ok((sched, w)) = opt.optimize_with_cost(&trace) {
                prop_assert!(sched.is_feasible(&trace, buffer + 1e-9));
                prop_assert!((sched.total_cost(&cost) - w).abs() < 1e-6 * w.max(1.0));
            }
        }
    }
}
