//! Struct-of-arrays survivor columns.
//!
//! One trellis column is four parallel vectors instead of a `Vec<Node>`:
//! the expansion loop touches `q` for every candidate but `w`/`rate`/
//! `arena` only for the few that survive its bound checks, so splitting
//! the fields keeps the hot scan dense in cache. Columns are double-
//! buffered by the kernel and every vector is reused across slots — the
//! steady state performs no allocation.
//!
//! ## Ordering invariant
//!
//! Between slots a column is sorted by `q` (ascending, `total_cmp`), which
//! is what lets a fixed target rate generate an already-`q`-sorted
//! candidate stream. The `gen` vector remembers each survivor's rank in
//! *reference order* — the order the retained [`super::reference`]
//! implementation would have stored it (its sweep-emission order, or its
//! weight-sorted order after a beam truncation). All tie-breaks quote
//! `gen`, never the storage index, so the kernel's float-tie decisions are
//! bit-identical to the reference's stable sorts.

/// One survivor column in struct-of-arrays layout.
#[derive(Debug, Default)]
pub(super) struct Column {
    /// Buffer occupancy at the end of the slot, bits. Sorted ascending.
    pub q: Vec<f64>,
    /// Weight: cost of the best path reaching this node.
    pub w: Vec<f64>,
    /// Rate index into the grid.
    pub rate: Vec<u16>,
    /// Index into the parent arena.
    pub arena: Vec<u32>,
    /// Rank in reference order (see the module docs).
    pub gen: Vec<u32>,
}

impl Column {
    /// Number of survivors.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Drop all survivors, keeping the allocations.
    pub fn clear(&mut self) {
        self.q.clear();
        self.w.clear();
        self.rate.clear();
        self.arena.clear();
        self.gen.clear();
    }

    /// Append a survivor; `gen` is its reference-order rank.
    pub fn push(&mut self, q: f64, w: f64, rate: u16, arena: u32, gen: u32) {
        self.q.push(q);
        self.w.push(w);
        self.rate.push(rate);
        self.arena.push(arena);
        self.gen.push(gen);
    }

    /// Reorder the column by the permutation `perm` (new index `i` takes
    /// the survivor previously at `perm[i]`), using `scratch` columns to
    /// avoid allocation.
    ///
    /// # Panics
    /// Panics if `perm` is longer than the column.
    pub fn apply_permutation(&mut self, perm: &[u32], scratch: &mut Column) {
        scratch.clear();
        for &p in perm {
            let p = p as usize;
            scratch.push(
                self.q[p],
                self.w[p],
                self.rate[p],
                self.arena[p],
                self.gen[p],
            );
        }
        std::mem::swap(self, scratch);
    }

    /// Restore the ordering invariant: sort by `(q, gen)` ascending.
    ///
    /// Needed after bucket-order sweeps and beam truncations, which emit
    /// survivors out of `q` order. `perm` and `scratch` are reused
    /// scratch buffers.
    pub fn sort_by_q(&mut self, perm: &mut Vec<u32>, scratch: &mut Column) {
        perm.clear();
        perm.extend(0..self.len() as u32);
        // Fast path: already sorted (exact-mode sweeps emit in q order).
        let sorted = self.q.windows(2).all(|p| p[0].total_cmp(&p[1]).is_le());
        if sorted {
            return;
        }
        let q = &self.q;
        let gen = &self.gen;
        perm.sort_unstable_by(|&a, &b| {
            q[a as usize]
                .total_cmp(&q[b as usize])
                .then(gen[a as usize].cmp(&gen[b as usize]))
        });
        self.apply_permutation(perm, scratch);
    }
}
