//! The data-oriented trellis kernel: slot loop, Lemma 1 sweep, beam,
//! arena bookkeeping, and final path reconstruction.
//!
//! The kernel is bit-compatible with [`super::reference`]: it evaluates
//! the *same floating-point expressions* for queue evolution, weights,
//! and bounds, and reproduces the reference's stable-sort tie order via
//! each survivor's `gen` rank (see [`super::soa`]). Equivalence is
//! enforced by proptests in `tests/trellis_equivalence.rs`.

use rcbr_traffic::FrameTrace;

use super::arena::{Arena, NONE};
use super::soa::Column;
use super::stats::TrellisStats;
use super::{exact, quantized, TrellisConfig, TrellisError};
use crate::schedule::Schedule;

/// One candidate node, exact mode: a `(survivor, target rate)` pair that
/// passed the buffer bound.
#[derive(Debug, Clone, Copy)]
pub(super) struct Cand {
    /// Buffer occupancy after the slot.
    pub q: f64,
    /// Path weight.
    pub w: f64,
    /// Reference-order rank of the source survivor (tie-break key).
    pub gsi: u32,
    /// Target rate index.
    pub mi: u16,
    /// Arena index of the source survivor (`NONE` in the first slot).
    pub parent: u32,
}

/// One candidate representative, quantized mode: the cheapest candidate
/// of a `(target rate, bucket)` cell.
#[derive(Debug, Clone, Copy)]
pub(super) struct Rep {
    /// Quantization bucket of `q`.
    pub bucket: u64,
    /// Exact buffer occupancy of the chosen candidate.
    pub q: f64,
    /// Path weight of the chosen candidate.
    pub w: f64,
    /// Reference-order rank of the chosen source survivor.
    pub gsi: u32,
    /// Target rate index.
    pub mi: u16,
    /// Arena index of the chosen source survivor.
    pub parent: u32,
}

/// Per-slot constants shared by the expansion modules.
#[derive(Debug, Clone, Copy)]
pub(super) struct SlotCtx<'a> {
    /// Arrivals this slot, bits.
    pub x: f64,
    /// Buffer bound this slot, bits.
    pub b_t: f64,
    /// Per-rate service volume per slot (`rate · τ`), bits.
    pub svc: &'a [f64],
    /// Per-rate bandwidth charge per slot (`β · rate · τ`).
    pub slot_cost: &'a [f64],
    /// Renegotiation charge.
    pub alpha: f64,
}

/// The Lemma 1 sweep: consumes candidates in reference order and keeps
/// the non-dominated ones, writing survivors and arena entries.
pub(super) struct Sweep<'a> {
    per_rate_min: &'a mut [f64],
    per_rate_bucket: &'a mut [u64],
    global_min: f64,
    next: &'a mut Column,
    arena: &'a mut Arena,
    alpha: f64,
    quantize: bool,
    kept: u64,
}

impl<'a> Sweep<'a> {
    /// Start a slot: reset the frontier minima and the output column.
    pub fn begin(
        per_rate_min: &'a mut [f64],
        per_rate_bucket: &'a mut [u64],
        next: &'a mut Column,
        arena: &'a mut Arena,
        alpha: f64,
        quantize: bool,
    ) -> Self {
        per_rate_min.fill(f64::INFINITY);
        per_rate_bucket.fill(u64::MAX);
        next.clear();
        Self {
            per_rate_min,
            per_rate_bucket,
            global_min: f64::INFINITY,
            next,
            arena,
            alpha,
            quantize,
            kept: 0,
        }
    }

    /// Offer one exact-mode candidate; candidates must arrive sorted by
    /// `(q, w, gsi, mi)` — the reference's stable-sort order.
    pub fn offer(&mut self, c: &Cand) {
        let r = c.mi as usize;
        if c.w >= self.per_rate_min[r] || c.w - self.alpha >= self.global_min {
            return;
        }
        self.keep(c.q, c.w, c.mi, c.parent);
    }

    /// Offer one quantized-mode representative; reps must arrive sorted
    /// by `(bucket, w, gsi, mi)`.
    pub fn offer_rep(&mut self, rep: &Rep) {
        let r = rep.mi as usize;
        if rep.w >= self.per_rate_min[r] || rep.w - self.alpha >= self.global_min {
            return;
        }
        if self.quantize {
            // One survivor per (rate, bucket): the first (cheapest) wins.
            if self.per_rate_bucket[r] == rep.bucket {
                return;
            }
            self.per_rate_bucket[r] = rep.bucket;
        }
        self.keep(rep.q, rep.w, rep.mi, rep.parent);
    }

    /// Offer bucket-grouped reps (see `quantized::expand`): buckets in
    /// ascending order, each bucket filtered against the current frontier
    /// minima *before* ordering. A rep failing the skip check at bucket
    /// entry can never be kept — both minima only tighten as the bucket's
    /// cheaper reps are processed — so dropping it early is lossless, and
    /// the survivors (almost always zero or one) are offered through
    /// [`Sweep::offer_rep`] in the reference's `(w, gsi, mi)` order,
    /// which is unique within a bucket (one rep per rate). The result is
    /// bit-identical to sweeping the fully sorted rep list.
    pub fn offer_buckets(&mut self, reps: &[Rep], ends: &[u32], pick: &mut Vec<u32>) {
        let mut start = 0usize;
        for &end in ends {
            let end = end as usize;
            if end == start {
                continue;
            }
            let bucket = &reps[start..end];
            start = end;
            pick.clear();
            for (i, rep) in bucket.iter().enumerate() {
                if rep.w < self.per_rate_min[rep.mi as usize]
                    && rep.w - self.alpha < self.global_min
                {
                    pick.push(i as u32);
                }
            }
            match pick.len() {
                0 => {}
                1 => self.offer_rep(&bucket[pick[0] as usize]),
                _ => {
                    pick.sort_unstable_by(|&a, &b| {
                        let (a, b) = (&bucket[a as usize], &bucket[b as usize]);
                        a.w.total_cmp(&b.w)
                            .then(a.gsi.cmp(&b.gsi))
                            .then(a.mi.cmp(&b.mi))
                    });
                    for &i in pick.iter() {
                        self.offer_rep(&bucket[i as usize]);
                    }
                }
            }
        }
    }

    fn keep(&mut self, q: f64, w: f64, mi: u16, parent: u32) {
        self.per_rate_min[mi as usize] = w;
        self.global_min = self.global_min.min(w);
        let arena_idx = self.arena.push(parent, mi);
        let gen = self.next.len() as u32;
        self.next.push(q, w, mi, arena_idx, gen);
        self.kept += 1;
    }

    /// Survivors kept this slot.
    pub fn kept(&self) -> u64 {
        self.kept
    }
}

/// Reusable buffers for the whole run.
#[derive(Default)]
struct Scratch {
    cur: Column,
    next: Column,
    col_scratch: Column,
    perm: Vec<u32>,
    beam_order: Vec<u32>,
    per_rate_min: Vec<f64>,
    per_rate_bucket: Vec<u64>,
    cutoffs: Vec<usize>,
    exact: exact::Scratch,
    quant: quantized::Scratch,
    reps: Vec<Rep>,
    pick: Vec<u32>,
}

/// Run the optimizer.
pub(super) fn run(
    cfg: &TrellisConfig,
    shards: usize,
    trace: &FrameTrace,
) -> Result<(Schedule, f64, TrellisStats), TrellisError> {
    let tau = trace.frame_interval();
    let m = cfg.grid.len();
    let svc: Vec<f64> = cfg.grid.levels().iter().map(|&r| r * tau).collect();
    let slot_cost: Vec<f64> = cfg
        .grid
        .levels()
        .iter()
        .map(|&r| cfg.cost.beta * r * tau)
        .collect();
    let alpha = cfg.cost.alpha;
    let t_len = trace.len();
    let quantize = cfg.q_resolution.is_some();
    let shards = shards.min(m).max(1);

    let mut stats = TrellisStats::default();
    let mut arena = Arena::new();
    let mut s = Scratch::default();
    s.per_rate_min.resize(m, f64::INFINITY);
    s.per_rate_bucket.resize(m, u64::MAX);
    s.cutoffs.resize(m, 0);

    // Per-slot buffer bound: min(B, arrivals in the trailing delay
    // window) — see eq. (5)'s reduction in the module docs.
    let mut rolling = 0.0; // arrivals in the last D slots (window ending at t)

    for t in 0..t_len {
        let x = trace.bits(t);
        // Maintain the rolling delay window: the bound at slot t is
        // A_t − A_{t−D} = x_{t−D+1} + … + x_t, exactly D trailing slots.
        if let Some(d) = cfg.delay_slots {
            rolling += x;
            if t >= d {
                rolling -= trace.bits(t - d);
            }
        }
        let b_t = if cfg.delay_slots.is_some() {
            cfg.buffer.min(rolling)
        } else {
            cfg.buffer
        };
        let ctx = SlotCtx {
            x,
            b_t,
            svc: &svc,
            slot_cost: &slot_cost,
            alpha,
        };

        // Candidate expansion + Lemma 1 sweep. The expansion modules feed
        // the sweep in the reference's (q|bucket, w, gen, rate) order.
        let expanded = if t == 0 {
            first_slot_candidates(&ctx, quantize, cfg, &mut s.reps)
        } else {
            count_feasible(&ctx, &s.cur, &mut s.cutoffs)
        };
        stats.nodes_expanded += expanded;
        if expanded == 0 {
            return Err(TrellisError::Infeasible { slot: t });
        }

        let mut sweep = Sweep::begin(
            &mut s.per_rate_min,
            &mut s.per_rate_bucket,
            &mut s.next,
            &mut arena,
            alpha,
            quantize,
        );
        if t == 0 {
            // `first_slot_candidates` left the column's candidates in
            // `s.reps`; order and sweep them like any other slot — by
            // bucket when quantized, by exact q otherwise.
            if quantize {
                quantized::sort_reps(&mut s.reps);
                for rep in s.reps.iter() {
                    sweep.offer_rep(rep);
                }
            } else {
                s.reps.sort_unstable_by(|a, b| {
                    a.q.total_cmp(&b.q)
                        .then(a.w.total_cmp(&b.w))
                        .then(a.gsi.cmp(&b.gsi))
                        .then(a.mi.cmp(&b.mi))
                });
                for rep in s.reps.iter() {
                    sweep.offer(&Cand {
                        q: rep.q,
                        w: rep.w,
                        gsi: rep.gsi,
                        mi: rep.mi,
                        parent: rep.parent,
                    });
                }
            }
        } else if quantize {
            let res = cfg.q_resolution.expect("quantize implies resolution");
            let grouped = quantized::expand(
                &ctx,
                &s.cur,
                &s.cutoffs,
                res,
                shards,
                &mut s.reps,
                &mut s.quant,
            );
            if grouped {
                sweep.offer_buckets(&s.reps, s.quant.bucket_ends(), &mut s.pick);
            } else {
                for rep in s.reps.iter() {
                    sweep.offer_rep(rep);
                }
            }
        } else {
            exact::expand(&ctx, &s.cur, &s.cutoffs, shards, &mut s.exact, &mut sweep);
        }
        stats.nodes_kept += sweep.kept();
        stats.nodes_pruned += expanded - sweep.kept();

        // Optional beam: keep the lowest-weight survivors, in the
        // reference's weight-sorted order.
        if let Some(width) = cfg.max_survivors {
            if s.next.len() > width {
                stats.beam_dropped += (s.next.len() - width) as u64;
                beam_truncate(&mut s.next, width, &mut s.beam_order, &mut s.col_scratch);
            }
        }

        // Restore the q-sorted column invariant (bucket-order sweeps and
        // beam truncations emit out of q order; exact sweeps are already
        // sorted and skip this in O(n)).
        s.next.sort_by_q(&mut s.perm, &mut s.col_scratch);
        std::mem::swap(&mut s.cur, &mut s.next);
        stats.observe_survivors(s.cur.len());
        arena.maybe_collect(&mut s.cur.arena, &mut stats);
    }

    // Best terminal node (restricted to drained nodes when required; the
    // Lemma 1 pruning preserves the best drained path because a
    // dominating node has no larger backlog, hence drains wherever the
    // dominated one does). Ties on weight resolve to the smallest `gen` —
    // the first minimum in reference iteration order.
    let mut best: Option<usize> = None;
    for i in 0..s.cur.len() {
        if cfg.drain_at_end && s.cur.q[i] > 1e-9 {
            continue;
        }
        best = match best {
            None => Some(i),
            Some(b) => {
                let better = match s.cur.w[i].total_cmp(&s.cur.w[b]) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => s.cur.gen[i] < s.cur.gen[b],
                    std::cmp::Ordering::Greater => false,
                };
                Some(if better { i } else { b })
            }
        };
    }
    let best = best.ok_or(TrellisError::Infeasible { slot: t_len })?;

    // Reconstruct: the committed common prefix, then the arena chain.
    let mut rates: Vec<f64> = Vec::with_capacity(t_len);
    rates.extend(
        arena
            .committed()
            .iter()
            .map(|&ri| cfg.grid.level(ri as usize)),
    );
    let chain_start = rates.len();
    rates.extend(
        arena
            .walk(s.cur.arena[best])
            .map(|ri| cfg.grid.level(ri as usize)),
    );
    rates[chain_start..].reverse();
    debug_assert_eq!(rates.len(), t_len, "arena walk must span the trace");
    let cost = s.cur.w[best];
    Ok((Schedule::from_rates(tau, &rates), cost, stats))
}

/// Per-rate feasible-prefix cutoffs: stream `mi`'s candidates are the
/// survivors whose post-slot occupancy meets the bound. The predicate is
/// evaluated with the reference's exact expression, and it is monotone in
/// `q`, so the feasible set is a prefix of the q-sorted column.
fn count_feasible(ctx: &SlotCtx<'_>, cur: &Column, cutoffs: &mut [usize]) -> u64 {
    let mut total = 0u64;
    for (mi, cut) in cutoffs.iter_mut().enumerate() {
        let svc = ctx.svc[mi];
        *cut = cur
            .q
            .partition_point(|&q| (q + ctx.x - svc).max(0.0) <= ctx.b_t);
        total += *cut as u64;
    }
    total
}

/// Build the first column's candidates (the initial rate choice is free
/// of α) as reps, in the reference's generation order (`mi` ascending).
fn first_slot_candidates(
    ctx: &SlotCtx<'_>,
    quantize: bool,
    cfg: &TrellisConfig,
    reps: &mut Vec<Rep>,
) -> u64 {
    reps.clear();
    for mi in 0..ctx.svc.len() {
        let q = (ctx.x - ctx.svc[mi]).max(0.0);
        if q > ctx.b_t {
            continue;
        }
        let bucket = if quantize {
            quantized::bucket(q, cfg.q_resolution.expect("quantize implies resolution"))
        } else {
            0
        };
        reps.push(Rep {
            bucket,
            q,
            w: ctx.slot_cost[mi],
            gsi: 0,
            mi: mi as u16,
            parent: NONE,
        });
    }
    reps.len() as u64
}

/// Beam truncation in reference semantics: stable-sort survivors by
/// weight (ties keep `gen` order), truncate, and re-rank `gen` to the
/// surviving order.
fn beam_truncate(col: &mut Column, width: usize, order: &mut Vec<u32>, scratch: &mut Column) {
    order.clear();
    order.extend(0..col.len() as u32);
    let w = &col.w;
    let gen = &col.gen;
    order.sort_unstable_by(|&a, &b| {
        w[a as usize]
            .total_cmp(&w[b as usize])
            .then(gen[a as usize].cmp(&gen[b as usize]))
    });
    order.truncate(width);
    col.apply_permutation(order, scratch);
    for (i, g) in col.gen.iter_mut().enumerate() {
        *g = i as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_mode_reps_are_sorted_on_first_slot() {
        // The first slot goes through the rep path even in exact mode;
        // bucket is 0 for all, so ordering degenerates to (q is ignored —
        // bucket 0) (w, gsi, mi). With distinct rates, w = β·r·τ is
        // strictly increasing in mi, matching generation order.
        let grid = crate::grid::RateGrid::new(vec![0.0, 50.0, 100.0]);
        let cfg = TrellisConfig::new(grid, crate::cost::CostModel::new(1.0, 1.0), 100.0);
        let svc: Vec<f64> = cfg.grid.levels().to_vec();
        let slot_cost: Vec<f64> = cfg.grid.levels().to_vec();
        let ctx = SlotCtx {
            x: 60.0,
            b_t: 100.0,
            svc: &svc,
            slot_cost: &slot_cost,
            alpha: 1.0,
        };
        let mut reps = Vec::new();
        let n = first_slot_candidates(&ctx, false, &cfg, &mut reps);
        assert_eq!(n, 3);
        assert_eq!(reps[0].mi, 0);
        assert!((reps[0].q - 60.0).abs() < 1e-12);
    }
}
