//! Causal renegotiation heuristics (Section IV-B).
//!
//! Interactive sources cannot see the future, so renegotiation decisions
//! must come from a causal policy. The paper's heuristic combines:
//!
//! * an AR(1) rate estimator with a buffer-flush term (eq. (6)):
//!   `ĉ_t = a·ĉ_{t−1} + (1−a)·x_t + q_t/T`, where `x_t` is the incoming
//!   rate during the slot, `q_t` the backlog at its end, and `T` a time
//!   constant — the extra term adds "the bandwidth necessary to flush the
//!   current buffer content within T";
//! * quantization to a bandwidth granularity `Δ` (eq. (7)):
//!   `c_new = ⌈ĉ/Δ⌉·Δ`;
//! * hysteresis via buffer thresholds (eq. (8)): request `c_new` only if
//!   `q > B_h` and `c_new > c_cur` (about to overflow) or `q < B_l` and
//!   `c_new < c_cur` (holding more than needed).
//!
//! Fig. 2 uses `B_l = 10 kb`, `B_h = 150 kb`, `T = 5 frames`, and sweeps
//! `Δ` from 25 to 400 kb/s.
//!
//! [`GopAwarePolicy`] is the paper's suggested future-work refinement
//! ("the prediction quality could be improved by taking into account the
//! inherent frame structure of MPEG encoded video"): it runs the same
//! estimator on GoP-aggregated rates, which removes the deterministic
//! I/B/P oscillation from the estimator's input.

use rcbr_traffic::FrameTrace;
use serde::{Deserialize, Serialize};

use crate::schedule::Schedule;

/// A causal renegotiation policy driven one slot at a time.
///
/// The caller (a source endpoint or the [`run_online`] driver) feeds the
/// policy each completed slot and forwards its requests to the network; the
/// network's verdict comes back through [`OnlinePolicy::granted`] — which
/// may differ from the request when a renegotiation fails and the source
/// must "keep whatever bandwidth it already has" (Section III-A).
pub trait OnlinePolicy {
    /// Observe one completed slot: `arrived_bits` entered the buffer and
    /// `backlog_bits` remained at the slot's end under the currently
    /// granted rate. Returns `Some(rate)` to request a renegotiation.
    fn observe_slot(&mut self, arrived_bits: f64, backlog_bits: f64) -> Option<f64>;

    /// The network's response to a request (or the initial grant).
    fn granted(&mut self, rate: f64);

    /// The rate the policy believes is currently granted.
    fn current_rate(&self) -> f64;
}

/// Configuration of the AR(1) heuristic.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ar1Config {
    /// AR smoothing coefficient `a ∈ [0, 1)`; larger = smoother estimate.
    pub ar_coefficient: f64,
    /// Low buffer threshold `B_l`, bits.
    pub buffer_low: f64,
    /// High buffer threshold `B_h`, bits.
    pub buffer_high: f64,
    /// Flush time constant `T`, seconds.
    pub flush_time: f64,
    /// Bandwidth granularity `Δ`, bits/second.
    pub granularity: f64,
    /// Initially granted rate, bits/second.
    pub initial_rate: f64,
}

impl Ar1Config {
    /// The paper's Fig. 2 parameters for a 24 frame/s source:
    /// `B_l = 10 kb`, `B_h = 150 kb`, `T = 5 frames`, initial rate equal to
    /// the long-term mean; `Δ` is the sweep variable.
    pub fn fig2(granularity: f64, mean_rate: f64, frame_interval: f64) -> Self {
        Self {
            ar_coefficient: 0.9,
            buffer_low: 10_000.0,
            buffer_high: 150_000.0,
            flush_time: 5.0 * frame_interval,
            granularity,
            initial_rate: mean_rate,
        }
    }

    fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.ar_coefficient),
            "AR coefficient must be in [0, 1)"
        );
        assert!(
            self.buffer_low >= 0.0 && self.buffer_high > self.buffer_low,
            "thresholds must satisfy 0 <= B_l < B_h"
        );
        assert!(self.flush_time > 0.0, "flush time must be positive");
        assert!(self.granularity > 0.0, "granularity must be positive");
        assert!(self.initial_rate >= 0.0, "initial rate must be nonnegative");
    }
}

/// The paper's AR(1) + threshold policy.
#[derive(Debug, Clone)]
pub struct Ar1Policy {
    config: Ar1Config,
    slot_duration: f64,
    estimate: f64,
    current: f64,
}

impl Ar1Policy {
    /// Create the policy for a source with the given slot duration.
    ///
    /// # Panics
    /// Panics if the config is inconsistent or `slot_duration <= 0`.
    pub fn new(config: Ar1Config, slot_duration: f64) -> Self {
        config.validate();
        assert!(slot_duration > 0.0, "slot duration must be positive");
        Self {
            config,
            slot_duration,
            estimate: config.initial_rate,
            current: config.initial_rate,
        }
    }

    /// The current smoothed rate estimate `ĉ`, bits/second.
    pub fn estimate(&self) -> f64 {
        self.estimate
    }
}

impl OnlinePolicy for Ar1Policy {
    fn observe_slot(&mut self, arrived_bits: f64, backlog_bits: f64) -> Option<f64> {
        let c = &self.config;
        let x_rate = arrived_bits / self.slot_duration;
        // eq. (6): AR update; the flush term `q_t/T` is applied additively
        // at decision time. (Folding it into the recursion, as a literal
        // reading of eq. (6) would, amplifies it by 1/(1−a) in steady state
        // and contradicts its stated meaning — "the bandwidth necessary to
        // flush the current buffer content within T".)
        self.estimate = c.ar_coefficient * self.estimate + (1.0 - c.ar_coefficient) * x_rate;
        let target = self.estimate + backlog_bits / c.flush_time;
        // eq. (7): quantize up to the granularity lattice.
        let c_new = (target / c.granularity).ceil().max(0.0) * c.granularity;
        // eq. (8): threshold-gated request.
        let want_up = backlog_bits > c.buffer_high && c_new > self.current;
        let want_down = backlog_bits < c.buffer_low && c_new < self.current;
        (want_up || want_down).then_some(c_new)
    }

    fn granted(&mut self, rate: f64) {
        self.current = rate;
    }

    fn current_rate(&self) -> f64 {
        self.current
    }
}

/// Configuration of the GoP-aware variant.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GopAwareConfig {
    /// The underlying AR(1)/threshold parameters.
    pub ar1: Ar1Config,
    /// Frames per GoP (12 for `IBBPBBPBBPBB`).
    pub gop_len: usize,
}

/// The GoP-aware policy: identical decision logic, but the estimator runs
/// on GoP-aggregated arrival rates and decisions are made once per GoP.
///
/// Aggregation removes the deterministic I/B/P size oscillation from the
/// estimator's input, so for the same granularity the estimate is less
/// noisy and spurious renegotiations are rarer.
#[derive(Debug, Clone)]
pub struct GopAwarePolicy {
    inner: Ar1Policy,
    gop_len: usize,
    acc_bits: f64,
    phase: usize,
}

impl GopAwarePolicy {
    /// Create the policy for a source with the given slot duration.
    ///
    /// # Panics
    /// Panics if `gop_len == 0` or the inner config is invalid.
    pub fn new(config: GopAwareConfig, slot_duration: f64) -> Self {
        assert!(config.gop_len > 0, "GoP length must be positive");
        Self {
            inner: Ar1Policy::new(config.ar1, slot_duration * config.gop_len as f64),
            gop_len: config.gop_len,
            acc_bits: 0.0,
            phase: 0,
        }
    }
}

impl OnlinePolicy for GopAwarePolicy {
    fn observe_slot(&mut self, arrived_bits: f64, backlog_bits: f64) -> Option<f64> {
        self.acc_bits += arrived_bits;
        self.phase += 1;
        // Emergency path: a burst can overflow the buffer well within one
        // GoP, so a high-threshold breach forces an immediate decision on
        // the partial GoP, extrapolated to a full-GoP rate.
        let emergency = backlog_bits > self.inner.config.buffer_high;
        if self.phase < self.gop_len && !emergency {
            return None;
        }
        let bits = self.acc_bits * self.gop_len as f64 / self.phase as f64;
        self.acc_bits = 0.0;
        self.phase = 0;
        self.inner.observe_slot(bits, backlog_bits)
    }

    fn granted(&mut self, rate: f64) {
        self.inner.granted(rate);
    }

    fn current_rate(&self) -> f64 {
        self.inner.current_rate()
    }
}

/// Result of driving a policy over a whole trace with every request
/// granted (the Fig. 2 setting, which isolates the policy's intrinsic
/// tradeoff from network-induced failures).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OnlineRun {
    /// The granted-rate schedule actually followed.
    pub schedule: Schedule,
    /// Fraction of bits lost to end-system buffer overflow.
    pub loss_fraction: f64,
    /// Largest backlog observed, bits.
    pub peak_backlog: f64,
    /// Number of renegotiation requests (== granted, in this driver).
    pub requests: usize,
}

/// Drive `policy` over `trace` with a `buffer`-bit end-system buffer and a
/// perfectly compliant network.
///
/// ```
/// use rcbr_schedule::online::run_online;
/// use rcbr_schedule::{Ar1Config, Ar1Policy};
/// use rcbr_traffic::FrameTrace;
///
/// let trace = FrameTrace::new(1.0, vec![100.0; 50]);
/// let config = Ar1Config {
///     ar_coefficient: 0.9,
///     buffer_low: 10.0,
///     buffer_high: 500.0,
///     flush_time: 5.0,
///     granularity: 50.0,
///     initial_rate: 100.0,
/// };
/// let mut policy = Ar1Policy::new(config, 1.0);
/// let run = run_online(&trace, &mut policy, 1_000.0);
/// assert_eq!(run.loss_fraction, 0.0);
/// ```
///
/// A granted rate takes effect at the next slot (renegotiation signaling
/// proceeds in parallel with data transfer, Section III-A).
pub fn run_online(trace: &FrameTrace, policy: &mut dyn OnlinePolicy, buffer: f64) -> OnlineRun {
    let tau = trace.frame_interval();
    let mut queue = rcbr_sim::FluidQueue::new(buffer);
    let mut rates = Vec::with_capacity(trace.len());
    let mut peak: f64 = 0.0;
    let mut requests = 0;
    for t in 0..trace.len() {
        let rate = policy.current_rate();
        rates.push(rate);
        let out = queue.offer(trace.bits(t), rate * tau);
        peak = peak.max(out.backlog);
        if let Some(req) = policy.observe_slot(trace.bits(t), out.backlog) {
            requests += 1;
            policy.granted(req);
        }
    }
    OnlineRun {
        schedule: Schedule::from_rates(tau, &rates),
        loss_fraction: queue.loss_fraction(),
        peak_backlog: peak,
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcbr_sim::SimRng;
    use rcbr_traffic::SyntheticMpegSource;

    fn video_trace(n: usize) -> FrameTrace {
        let mut rng = SimRng::from_seed(42);
        SyntheticMpegSource::star_wars_like().generate(n, &mut rng)
    }

    #[test]
    fn tracks_a_rate_step() {
        // 100 b/s for 200 slots, then 1000 b/s: the policy must renegotiate
        // upward and keep the buffer bounded.
        let mut bits = vec![100.0; 200];
        bits.extend(vec![1000.0; 200]);
        let trace = FrameTrace::new(1.0, bits);
        let cfg = Ar1Config {
            ar_coefficient: 0.7,
            buffer_low: 50.0,
            buffer_high: 500.0,
            flush_time: 5.0,
            granularity: 100.0,
            initial_rate: 100.0,
        };
        let mut policy = Ar1Policy::new(cfg, 1.0);
        let run = run_online(&trace, &mut policy, 1e9);
        assert!(run.requests >= 1);
        // Final granted rate covers the new workload.
        assert!(
            run.schedule.rate_at(399) >= 1000.0,
            "{}",
            run.schedule.rate_at(399)
        );
        // Buffer drains back: final backlog must be small relative to the
        // burst size.
        assert!(run.peak_backlog < 100_000.0);
        assert_eq!(run.loss_fraction, 0.0);
    }

    #[test]
    fn steps_down_when_idle() {
        let mut bits = vec![1000.0; 100];
        bits.extend(vec![50.0; 300]);
        let trace = FrameTrace::new(1.0, bits);
        let cfg = Ar1Config {
            ar_coefficient: 0.7,
            buffer_low: 100.0,
            buffer_high: 2000.0,
            flush_time: 5.0,
            granularity: 100.0,
            initial_rate: 1000.0,
        };
        let mut policy = Ar1Policy::new(cfg, 1.0);
        let run = run_online(&trace, &mut policy, 1e9);
        let final_rate = run.schedule.rate_at(399);
        assert!(
            final_rate <= 200.0,
            "policy failed to release bandwidth: {final_rate}"
        );
    }

    #[test]
    fn hysteresis_suppresses_requests_in_band() {
        // Constant workload matching the granted rate: no requests ever.
        let trace = FrameTrace::new(1.0, vec![500.0; 500]);
        let cfg = Ar1Config {
            ar_coefficient: 0.9,
            buffer_low: 10.0,
            buffer_high: 1000.0,
            flush_time: 5.0,
            granularity: 50.0,
            initial_rate: 500.0,
        };
        let mut policy = Ar1Policy::new(cfg, 1.0);
        let run = run_online(&trace, &mut policy, 1e9);
        assert_eq!(run.requests, 0);
        assert_eq!(run.schedule.num_renegotiations(), 0);
    }

    #[test]
    fn finer_granularity_means_more_requests_and_better_efficiency() {
        let trace = video_trace(20_000);
        let tau = trace.frame_interval();
        let mean = trace.mean_rate();
        let coarse_cfg = Ar1Config::fig2(400_000.0, mean, tau);
        let fine_cfg = Ar1Config::fig2(25_000.0, mean, tau);
        let mut coarse = Ar1Policy::new(coarse_cfg, tau);
        let mut fine = Ar1Policy::new(fine_cfg, tau);
        let run_coarse = run_online(&trace, &mut coarse, 300_000.0);
        let run_fine = run_online(&trace, &mut fine, 300_000.0);
        assert!(
            run_fine.requests > run_coarse.requests,
            "fine {} vs coarse {}",
            run_fine.requests,
            run_coarse.requests
        );
        let eff_fine = run_fine.schedule.bandwidth_efficiency(&trace);
        let eff_coarse = run_coarse.schedule.bandwidth_efficiency(&trace);
        assert!(
            eff_fine > eff_coarse,
            "fine {eff_fine} vs coarse {eff_coarse}"
        );
        // The paper's ballpark: the heuristic reaches high efficiency with
        // sub-second renegotiation intervals at fine granularity.
        assert!(eff_fine > 0.85, "fine efficiency {eff_fine}");
    }

    #[test]
    fn video_buffer_stays_bounded() {
        let trace = video_trace(20_000);
        let tau = trace.frame_interval();
        let cfg = Ar1Config::fig2(100_000.0, trace.mean_rate(), tau);
        let mut policy = Ar1Policy::new(cfg, tau);
        let run = run_online(&trace, &mut policy, 300_000.0);
        // The paper: "the buffer occupancy never exceeds B = 300 kb".
        assert!(
            run.loss_fraction < 1e-3,
            "loss {} too high for the Fig. 2 setting",
            run.loss_fraction
        );
    }

    #[test]
    fn gop_aware_requests_less_often() {
        let trace = video_trace(20_000);
        let tau = trace.frame_interval();
        let ar1 = Ar1Config::fig2(50_000.0, trace.mean_rate(), tau);
        let mut frame_policy = Ar1Policy::new(ar1, tau);
        let mut gop_policy = GopAwarePolicy::new(GopAwareConfig { ar1, gop_len: 12 }, tau);
        let run_frame = run_online(&trace, &mut frame_policy, 300_000.0);
        let run_gop = run_online(&trace, &mut gop_policy, 300_000.0);
        assert!(
            run_gop.requests < run_frame.requests,
            "gop {} vs frame {}",
            run_gop.requests,
            run_frame.requests
        );
        // And it still serves the stream with modest losses.
        assert!(
            run_gop.loss_fraction < 5e-3,
            "gop loss {}",
            run_gop.loss_fraction
        );
    }

    #[test]
    fn granted_rate_differs_from_request_on_failure() {
        // Exercise the trait contract directly: deny a request and check
        // the policy keeps its old rate.
        let cfg = Ar1Config {
            ar_coefficient: 0.5,
            buffer_low: 10.0,
            buffer_high: 100.0,
            flush_time: 2.0,
            granularity: 100.0,
            initial_rate: 100.0,
        };
        let mut policy = Ar1Policy::new(cfg, 1.0);
        let req = policy.observe_slot(5000.0, 5000.0);
        assert!(req.is_some());
        // Network denies: granted stays at the old rate.
        assert_eq!(policy.current_rate(), 100.0);
    }

    #[test]
    #[should_panic(expected = "B_l < B_h")]
    fn bad_thresholds_rejected() {
        let cfg = Ar1Config {
            ar_coefficient: 0.5,
            buffer_low: 100.0,
            buffer_high: 50.0,
            flush_time: 1.0,
            granularity: 1.0,
            initial_rate: 0.0,
        };
        Ar1Policy::new(cfg, 1.0);
    }
}
