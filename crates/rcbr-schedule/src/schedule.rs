//! The piecewise-CBR renegotiation schedule and its metrics.
//!
//! A [`Schedule`] assigns one service rate to every slot of a trace. The
//! paper's figures are all computed from schedule metrics:
//!
//! * **bandwidth efficiency** — "the ratio of the original stream's average
//!   rate to the average of the piecewise constant service rate" (Fig. 2's
//!   y-axis);
//! * **mean renegotiation interval** — session duration divided by the
//!   number of renegotiations (Fig. 2's x-axis);
//! * the **empirical bandwidth distribution** — the fraction of time each
//!   level is reserved, Section VI's traffic descriptor;
//! * **feasibility** — replaying the trace through a `B`-sized buffer
//!   drained at the schedule's rates must lose nothing.

use rcbr_sim::stats::DiscreteDistribution;
use rcbr_sim::FluidQueue;
use rcbr_traffic::FrameTrace;
use serde::{Deserialize, Serialize};

use crate::cost::CostModel;

/// One constant-rate segment: rate `rate` starting at slot `start`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// First slot of the segment.
    pub start: usize,
    /// Service rate in bits/second.
    pub rate: f64,
}

/// A piecewise-CBR schedule over `num_slots` slots of `slot_duration`
/// seconds each.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    slot_duration: f64,
    num_slots: usize,
    segments: Vec<Segment>,
}

impl Schedule {
    /// Build from per-slot rates, merging equal consecutive rates into
    /// segments.
    ///
    /// # Panics
    /// Panics if `rates` is empty, any rate is negative/non-finite, or
    /// `slot_duration <= 0`.
    pub fn from_rates(slot_duration: f64, rates: &[f64]) -> Self {
        assert!(
            slot_duration > 0.0 && slot_duration.is_finite(),
            "invalid slot duration"
        );
        assert!(!rates.is_empty(), "schedule must cover at least one slot");
        assert!(
            rates.iter().all(|&r| r.is_finite() && r >= 0.0),
            "rates must be finite and nonnegative"
        );
        let mut segments = Vec::new();
        for (t, &r) in rates.iter().enumerate() {
            match segments.last() {
                Some(&Segment { rate, .. }) if rate == r => {}
                _ => segments.push(Segment { start: t, rate: r }),
            }
        }
        Self {
            slot_duration,
            num_slots: rates.len(),
            segments,
        }
    }

    /// A constant-rate (plain CBR) schedule.
    pub fn constant(slot_duration: f64, num_slots: usize, rate: f64) -> Self {
        assert!(num_slots > 0, "schedule must cover at least one slot");
        assert!(
            rate >= 0.0 && rate.is_finite(),
            "rate must be finite and nonnegative"
        );
        assert!(
            slot_duration > 0.0 && slot_duration.is_finite(),
            "invalid slot duration"
        );
        Self {
            slot_duration,
            num_slots,
            segments: vec![Segment { start: 0, rate }],
        }
    }

    /// Build directly from segments (starts strictly increasing, first at
    /// slot 0; consecutive equal rates are merged).
    ///
    /// # Panics
    /// Panics on malformed segment lists.
    pub fn from_segments(slot_duration: f64, num_slots: usize, segments: Vec<Segment>) -> Self {
        assert!(
            slot_duration > 0.0 && slot_duration.is_finite(),
            "invalid slot duration"
        );
        assert!(num_slots > 0, "schedule must cover at least one slot");
        assert!(!segments.is_empty(), "need at least one segment");
        assert_eq!(segments[0].start, 0, "first segment must start at slot 0");
        let mut merged: Vec<Segment> = Vec::with_capacity(segments.len());
        for seg in segments {
            assert!(seg.start < num_slots, "segment starts past the end");
            assert!(
                seg.rate.is_finite() && seg.rate >= 0.0,
                "invalid segment rate"
            );
            match merged.last() {
                Some(last) => {
                    assert!(
                        seg.start > last.start,
                        "segment starts must strictly increase"
                    );
                    if seg.rate != last.rate {
                        merged.push(seg);
                    }
                }
                None => merged.push(seg),
            }
        }
        Self {
            slot_duration,
            num_slots,
            segments: merged,
        }
    }

    /// Slot duration, seconds.
    pub fn slot_duration(&self) -> f64 {
        self.slot_duration
    }

    /// Number of slots covered.
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Total duration, seconds.
    pub fn duration(&self) -> f64 {
        self.num_slots as f64 * self.slot_duration
    }

    /// The segments, in order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Service rate during slot `t`, bits/second.
    ///
    /// # Panics
    /// Panics if `t >= num_slots`.
    pub fn rate_at(&self, t: usize) -> f64 {
        assert!(t < self.num_slots, "slot {t} out of range");
        let i = self.segments.partition_point(|s| s.start <= t);
        self.segments[i - 1].rate
    }

    /// Expand to one rate per slot.
    pub fn to_rates(&self) -> Vec<f64> {
        let mut rates = Vec::with_capacity(self.num_slots);
        for (i, seg) in self.segments.iter().enumerate() {
            let end = self.segments.get(i + 1).map_or(self.num_slots, |s| s.start);
            rates.extend(std::iter::repeat_n(seg.rate, end - seg.start));
        }
        rates
    }

    /// Number of renegotiations (rate changes after the initial choice).
    pub fn num_renegotiations(&self) -> usize {
        self.segments.len() - 1
    }

    /// Mean interval between renegotiations, seconds (the whole session if
    /// there are none).
    pub fn mean_renegotiation_interval(&self) -> f64 {
        let n = self.num_renegotiations();
        if n == 0 {
            self.duration()
        } else {
            self.duration() / n as f64
        }
    }

    /// Time-average of the service rate, bits/second.
    pub fn mean_service_rate(&self) -> f64 {
        let mut total = 0.0;
        for (i, seg) in self.segments.iter().enumerate() {
            let end = self.segments.get(i + 1).map_or(self.num_slots, |s| s.start);
            total += seg.rate * (end - seg.start) as f64;
        }
        total / self.num_slots as f64
    }

    /// Peak reserved rate, bits/second.
    pub fn peak_service_rate(&self) -> f64 {
        self.segments.iter().map(|s| s.rate).fold(0.0f64, f64::max)
    }

    /// Bandwidth efficiency against `trace`: trace mean rate divided by
    /// mean service rate (≤ 1 for any feasible schedule serving the whole
    /// trace).
    pub fn bandwidth_efficiency(&self, trace: &FrameTrace) -> f64 {
        trace.mean_rate() / self.mean_service_rate()
    }

    /// Total cost under `model` (eq. (1)). The initial rate choice is part
    /// of call setup and is not charged as a renegotiation.
    pub fn total_cost(&self, model: &CostModel) -> f64 {
        model.alpha * self.num_renegotiations() as f64
            + model.beta * self.mean_service_rate() * self.duration()
    }

    /// The empirical bandwidth distribution: fraction of time each distinct
    /// level is reserved (Section VI's traffic descriptor).
    pub fn empirical_distribution(&self) -> DiscreteDistribution {
        let mut acc: Vec<(f64, f64)> = Vec::new();
        for (i, seg) in self.segments.iter().enumerate() {
            let end = self.segments.get(i + 1).map_or(self.num_slots, |s| s.start);
            let w = (end - seg.start) as f64;
            match acc.iter_mut().find(|(r, _)| *r == seg.rate) {
                Some((_, wsum)) => *wsum += w,
                None => acc.push((seg.rate, w)),
            }
        }
        acc.sort_by(|a, b| a.0.total_cmp(&b.0));
        DiscreteDistribution::from_weights(&acc)
    }

    /// Replay `trace` through a buffer of `buffer` bits drained at this
    /// schedule's rates; returns the observed metrics.
    ///
    /// # Panics
    /// Panics if the trace length differs from the schedule length.
    pub fn replay(&self, trace: &FrameTrace, buffer: f64) -> ScheduleMetrics {
        assert_eq!(
            trace.len(),
            self.num_slots,
            "trace/schedule length mismatch"
        );
        let mut q = FluidQueue::new(buffer);
        let mut peak = 0.0f64;
        let rates = self.to_rates();
        for (t, &r) in rates.iter().enumerate() {
            let out = q.offer(trace.bits(t), r * self.slot_duration);
            peak = peak.max(out.backlog);
        }
        ScheduleMetrics {
            bandwidth_efficiency: self.bandwidth_efficiency(trace),
            mean_renegotiation_interval: self.mean_renegotiation_interval(),
            num_renegotiations: self.num_renegotiations(),
            loss_fraction: q.loss_fraction(),
            peak_backlog: peak,
            final_backlog: q.backlog(),
        }
    }

    /// Whether replaying `trace` through a `buffer`-bit buffer loses
    /// nothing.
    pub fn is_feasible(&self, trace: &FrameTrace, buffer: f64) -> bool {
        self.replay(trace, buffer).loss_fraction == 0.0
    }
}

/// Metrics of a schedule replayed against a trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleMetrics {
    /// Trace mean rate / mean service rate.
    pub bandwidth_efficiency: f64,
    /// Session duration / number of renegotiations, seconds.
    pub mean_renegotiation_interval: f64,
    /// Rate changes after the initial one.
    pub num_renegotiations: usize,
    /// Fraction of bits lost to buffer overflow.
    pub loss_fraction: f64,
    /// Largest backlog observed, bits.
    pub peak_backlog: f64,
    /// Backlog at the end of the session, bits.
    pub final_backlog: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_rates_merges_segments() {
        let s = Schedule::from_rates(1.0, &[5.0, 5.0, 7.0, 7.0, 7.0, 5.0]);
        assert_eq!(s.segments().len(), 3);
        assert_eq!(s.num_renegotiations(), 2);
        assert_eq!(s.rate_at(0), 5.0);
        assert_eq!(s.rate_at(4), 7.0);
        assert_eq!(s.rate_at(5), 5.0);
        assert_eq!(s.to_rates(), vec![5.0, 5.0, 7.0, 7.0, 7.0, 5.0]);
    }

    #[test]
    fn constant_schedule_has_no_renegotiations() {
        let s = Schedule::constant(0.5, 10, 100.0);
        assert_eq!(s.num_renegotiations(), 0);
        assert_eq!(s.mean_renegotiation_interval(), 5.0);
        assert_eq!(s.mean_service_rate(), 100.0);
        assert_eq!(s.peak_service_rate(), 100.0);
    }

    #[test]
    fn mean_service_rate_weights_by_time() {
        let s = Schedule::from_rates(2.0, &[10.0, 10.0, 10.0, 40.0]);
        assert_eq!(s.mean_service_rate(), 17.5);
        assert_eq!(s.duration(), 8.0);
        assert_eq!(s.mean_renegotiation_interval(), 8.0);
    }

    #[test]
    fn cost_matches_hand_computation() {
        let s = Schedule::from_rates(1.0, &[10.0, 20.0, 20.0]);
        let m = CostModel::new(5.0, 2.0);
        // 1 renegotiation * 5 + 2 * (10 + 20 + 20) = 5 + 100.
        assert_eq!(s.total_cost(&m), 105.0);
    }

    #[test]
    fn efficiency_of_exact_tracking_is_one() {
        let tr = FrameTrace::new(1.0, vec![100.0, 300.0, 200.0]);
        let rates: Vec<f64> = (0..3).map(|t| tr.rate(t)).collect();
        let s = Schedule::from_rates(1.0, &rates);
        assert!((s.bandwidth_efficiency(&tr) - 1.0).abs() < 1e-12);
        assert!(s.is_feasible(&tr, 0.0));
    }

    #[test]
    fn replay_detects_infeasibility() {
        let tr = FrameTrace::new(1.0, vec![100.0, 100.0]);
        let s = Schedule::constant(1.0, 2, 50.0);
        let m = s.replay(&tr, 30.0);
        assert!(m.loss_fraction > 0.0);
        assert!(!s.is_feasible(&tr, 30.0));
        // A big enough buffer restores feasibility.
        assert!(s.is_feasible(&tr, 100.0));
    }

    #[test]
    fn empirical_distribution_weights_time() {
        let s = Schedule::from_rates(1.0, &[10.0, 10.0, 10.0, 30.0]);
        let d = s.empirical_distribution();
        assert_eq!(d.levels(), &[10.0, 30.0]);
        assert_eq!(d.probs(), &[0.75, 0.25]);
        assert_eq!(d.mean(), 15.0);
    }

    #[test]
    fn distribution_merges_repeated_levels() {
        let s = Schedule::from_rates(1.0, &[10.0, 20.0, 10.0, 20.0]);
        let d = s.empirical_distribution();
        assert_eq!(d.levels(), &[10.0, 20.0]);
        assert_eq!(d.probs(), &[0.5, 0.5]);
        assert_eq!(s.num_renegotiations(), 3);
    }

    #[test]
    fn from_segments_merges_and_validates() {
        let s = Schedule::from_segments(
            1.0,
            6,
            vec![
                Segment {
                    start: 0,
                    rate: 5.0,
                },
                Segment {
                    start: 2,
                    rate: 5.0,
                }, // same rate: merged away
                Segment {
                    start: 4,
                    rate: 9.0,
                },
            ],
        );
        assert_eq!(s.segments().len(), 2);
        assert_eq!(s.rate_at(3), 5.0);
        assert_eq!(s.rate_at(4), 9.0);
    }

    #[test]
    #[should_panic(expected = "start at slot 0")]
    fn segments_must_start_at_zero() {
        Schedule::from_segments(
            1.0,
            4,
            vec![Segment {
                start: 1,
                rate: 1.0,
            }],
        );
    }

    proptest! {
        #[test]
        fn roundtrip_rates(
            rates in proptest::collection::vec(0.0..1e6f64, 1..100),
        ) {
            let s = Schedule::from_rates(0.25, &rates);
            prop_assert_eq!(s.to_rates(), rates);
        }

        #[test]
        fn rate_at_matches_expansion(
            rates in proptest::collection::vec(0.0..10.0f64, 1..50),
            t_frac in 0.0..1.0f64,
        ) {
            // Coarse rates so segments actually merge.
            let rates: Vec<f64> = rates.into_iter().map(|r| r.round()).collect();
            let s = Schedule::from_rates(1.0, &rates);
            let t = ((rates.len() - 1) as f64 * t_frac) as usize;
            prop_assert_eq!(s.rate_at(t), rates[t]);
        }

        #[test]
        fn empirical_distribution_mean_is_service_mean(
            rates in proptest::collection::vec(0.0..10.0f64, 1..60),
        ) {
            let rates: Vec<f64> = rates.into_iter().map(|r| r.round()).collect();
            let s = Schedule::from_rates(1.0, &rates);
            let d = s.empirical_distribution();
            prop_assert!((d.mean() - s.mean_service_rate()).abs() < 1e-9);
        }
    }
}
