//! Per-VC renegotiation driver: the online heuristic packaged as a
//! steppable state machine.
//!
//! [`run_online`](crate::online::run_online) drives a policy over a whole
//! trace against a perfectly compliant network. A signaling-plane runtime
//! needs the opposite shape: many VCs stepped one slot at a time, each
//! emitting renegotiation *requests* whose verdicts (grant, deny, or a
//! lost RM cell) come back asynchronously from the network. [`VcDriver`]
//! owns one VC's traffic source, end-system buffer, and
//! [`OnlinePolicy`], and exposes exactly that slot-by-slot interface.

use rcbr_traffic::FrameTrace;

use crate::online::OnlinePolicy;

/// One virtual channel's end-system state: trace playback position,
/// end-system buffer, and the renegotiation policy.
///
/// The trace is played back cyclically, so a driver can be stepped for
/// arbitrarily many slots regardless of trace length — a long-running load
/// generator replays the same (statistically calibrated) source material.
#[derive(Debug)]
pub struct VcDriver<P> {
    trace: FrameTrace,
    policy: P,
    queue: rcbr_sim::FluidQueue,
    slot: usize,
    /// A request is in flight; the policy must not issue another until the
    /// verdict arrives.
    pending: Option<f64>,
    requests: u64,
    /// The VC has exhausted a retry budget at least once and fell back to
    /// its last granted rate.
    degraded: bool,
}

impl<P: OnlinePolicy> VcDriver<P> {
    /// Create a driver playing `trace` cyclically through `policy`, with a
    /// `buffer`-bit end-system buffer.
    ///
    /// # Panics
    /// Panics if the trace is empty.
    pub fn new(trace: FrameTrace, policy: P, buffer: f64) -> Self {
        assert!(!trace.is_empty(), "driver needs a nonempty trace");
        Self {
            trace,
            policy,
            queue: rcbr_sim::FluidQueue::new(buffer),
            slot: 0,
            pending: None,
            requests: 0,
            degraded: false,
        }
    }

    /// Advance one slot: the next frame's bits arrive, the buffer drains at
    /// the currently granted rate, and the policy observes the outcome.
    ///
    /// Returns `Some(rate)` when the policy wants to renegotiate to `rate`
    /// and no earlier request is still in flight. The caller must
    /// eventually answer with [`on_grant`](Self::on_grant),
    /// [`on_deny`](Self::on_deny), or [`on_lost`](Self::on_lost); until
    /// then further requests are suppressed (the source has one
    /// outstanding RM cell at a time).
    pub fn step(&mut self) -> Option<f64> {
        let bits = self.trace.bits(self.slot % self.trace.len());
        self.slot += 1;
        let out = self.queue.offer(
            bits,
            self.policy.current_rate() * self.trace.frame_interval(),
        );
        let want = self.policy.observe_slot(bits, out.backlog);
        match want {
            Some(rate) if self.pending.is_none() => {
                self.pending = Some(rate);
                self.requests += 1;
                Some(rate)
            }
            _ => None,
        }
    }

    /// The network granted the outstanding request.
    pub fn on_grant(&mut self) {
        let rate = self
            .pending
            .take()
            .expect("grant without an outstanding request");
        self.policy.granted(rate);
    }

    /// The network denied the outstanding request: the source "can keep
    /// whatever bandwidth it already has" (Section III-A).
    pub fn on_deny(&mut self) {
        self.pending
            .take()
            .expect("deny without an outstanding request");
    }

    /// The RM cell was lost in flight. Indistinguishable from a denial at
    /// the source (a timeout), but the network may have partially applied
    /// the delta — which is exactly the drift that absolute resync repairs.
    pub fn on_lost(&mut self) {
        self.pending
            .take()
            .expect("loss without an outstanding request");
    }

    /// Give up on the outstanding request (retry budget exhausted): the
    /// source keeps its last granted rate and the request is abandoned.
    /// Unlike [`on_deny`](Self::on_deny) this is the *terminal* verdict of
    /// a retry loop, typically paired with
    /// [`mark_degraded`](Self::mark_degraded).
    pub fn abandon(&mut self) {
        self.pending
            .take()
            .expect("abandon without an outstanding request");
    }

    /// Record that this VC degraded (kept a stale rate after exhausting
    /// its retry budget).
    pub fn mark_degraded(&mut self) {
        self.degraded = true;
    }

    /// Whether this VC ever exhausted a retry budget.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The rate the outstanding request asks for, if one is in flight —
    /// what a retry must re-request.
    pub fn pending_rate(&self) -> Option<f64> {
        self.pending
    }

    /// The rate the source currently believes is reserved end to end.
    pub fn current_rate(&self) -> f64 {
        self.policy.current_rate()
    }

    /// Whether a request is awaiting its verdict.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Slots stepped so far.
    pub fn slots(&self) -> usize {
        self.slot
    }

    /// Renegotiation requests issued so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Fraction of arrived bits lost to end-system buffer overflow.
    pub fn loss_fraction(&self) -> f64 {
        self.queue.loss_fraction()
    }

    /// The underlying policy (for inspection).
    pub fn policy(&self) -> &P {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::{run_online, Ar1Config, Ar1Policy};

    fn step_trace() -> FrameTrace {
        let mut bits = vec![100.0; 200];
        bits.extend(vec![1000.0; 200]);
        FrameTrace::new(1.0, bits)
    }

    fn cfg() -> Ar1Config {
        Ar1Config {
            ar_coefficient: 0.7,
            buffer_low: 50.0,
            buffer_high: 500.0,
            flush_time: 5.0,
            granularity: 100.0,
            initial_rate: 100.0,
        }
    }

    #[test]
    fn all_grants_matches_run_online() {
        // With every request granted immediately, the steppable driver must
        // reproduce run_online's request count exactly.
        let trace = step_trace();
        let mut policy = Ar1Policy::new(cfg(), 1.0);
        let reference = run_online(&trace, &mut policy, 1e9);

        let mut driver = VcDriver::new(trace.clone(), Ar1Policy::new(cfg(), 1.0), 1e9);
        for _ in 0..trace.len() {
            if driver.step().is_some() {
                driver.on_grant();
            }
        }
        assert_eq!(driver.requests() as usize, reference.requests);
        assert_eq!(driver.slots(), trace.len());
    }

    #[test]
    fn pending_suppresses_further_requests() {
        let trace = step_trace();
        let mut driver = VcDriver::new(trace.clone(), Ar1Policy::new(cfg(), 1.0), 1e9);
        let mut first = None;
        for _ in 0..trace.len() {
            if let Some(rate) = driver.step() {
                first = Some(rate);
                break;
            }
        }
        let first = first.expect("the rate step must trigger a request");
        assert!(driver.has_pending());
        // Leave the request unanswered: no further requests may surface.
        for _ in 0..50 {
            assert_eq!(driver.step(), None);
        }
        // Denial keeps the old rate.
        driver.on_deny();
        assert!(!driver.has_pending());
        assert_eq!(driver.current_rate(), 100.0);
        assert!(first > 100.0);
    }

    #[test]
    fn trace_playback_is_cyclic() {
        let trace = FrameTrace::new(1.0, vec![10.0, 20.0, 30.0]);
        let mut driver = VcDriver::new(trace, Ar1Policy::new(cfg(), 1.0), 1e9);
        for _ in 0..10 {
            driver.step();
        }
        assert_eq!(driver.slots(), 10);
    }

    #[test]
    fn abandon_keeps_rate_and_marks_degradation() {
        let trace = step_trace();
        let mut driver = VcDriver::new(trace.clone(), Ar1Policy::new(cfg(), 1.0), 1e9);
        let mut asked = None;
        for _ in 0..trace.len() {
            if let Some(rate) = driver.step() {
                asked = Some(rate);
                break;
            }
        }
        let asked = asked.expect("the rate step must trigger a request");
        assert_eq!(driver.pending_rate(), Some(asked));
        // Retry budget exhausted: the source keeps what it has.
        driver.abandon();
        driver.mark_degraded();
        assert!(!driver.has_pending());
        assert_eq!(driver.pending_rate(), None);
        assert_eq!(driver.current_rate(), 100.0);
        assert!(driver.is_degraded());
        // The driver keeps running after degradation.
        for _ in 0..20 {
            if driver.step().is_some() {
                driver.on_grant();
            }
        }
    }

    #[test]
    #[should_panic(expected = "grant without an outstanding request")]
    fn grant_without_request_panics() {
        let trace = FrameTrace::new(1.0, vec![10.0]);
        let mut driver = VcDriver::new(trace, Ar1Policy::new(cfg(), 1.0), 1e9);
        driver.on_grant();
    }
}
