//! Bit-exactness of the data-oriented trellis kernel.
//!
//! The kernel (`OfflineOptimizer`) must reproduce the retained reference
//! implementation (`trellis::reference`) *bit for bit* — same `Schedule`,
//! same cost down to the last mantissa bit, same feasibility verdict — on
//! random traces, random grids, and every configuration axis: exact,
//! quantized buffer, beam, `drain_at_end`, and delay bounds. On top of
//! that, sharded expansion must produce identical output *and* identical
//! work counters at any shard count.

use proptest::prelude::*;
use rcbr_schedule::trellis::reference;
use rcbr_schedule::{CostModel, OfflineOptimizer, RateGrid, TrellisConfig};
use rcbr_traffic::FrameTrace;

/// Every config shape the optimizer supports, derived from one base.
fn config_variants(grid: RateGrid, cost: CostModel, buffer: f64) -> Vec<TrellisConfig> {
    let base = TrellisConfig::new(grid, cost, buffer);
    vec![
        base.clone(),
        base.clone().with_q_resolution((buffer / 64.0).max(1e-6)),
        base.clone().with_q_resolution((buffer / 997.0).max(1e-6)),
        base.clone().with_beam(5),
        base.clone().with_drain_at_end(),
        base.clone().with_delay_bound(2),
        base.clone()
            .with_q_resolution((buffer / 100.0).max(1e-6))
            .with_drain_at_end(),
        base.with_q_resolution((buffer / 50.0).max(1e-6))
            .with_beam(7),
    ]
}

/// Assert the kernel and the reference agree bit-for-bit on `cfg`.
fn assert_equivalent(cfg: &TrellisConfig, trace: &FrameTrace) -> Result<(), TestCaseError> {
    let got = OfflineOptimizer::new(cfg.clone()).optimize_with_cost(trace);
    let want = reference::optimize_with_cost(cfg, trace);
    match (got, want) {
        (Ok((s_k, w_k)), Ok((s_r, w_r))) => {
            prop_assert_eq!(
                w_k.to_bits(),
                w_r.to_bits(),
                "cost diverged ({} vs {}) for {:?}",
                w_k,
                w_r,
                cfg
            );
            prop_assert_eq!(
                s_k.to_rates(),
                s_r.to_rates(),
                "schedule diverged: {:?}",
                cfg
            );
        }
        (Err(e_k), Err(e_r)) => prop_assert_eq!(e_k, e_r),
        (got, want) => {
            return Err(TestCaseError::fail(format!(
                "feasibility diverged for {cfg:?}: kernel {got:?} vs reference {want:?}"
            )))
        }
    }
    Ok(())
}

/// Assert shard counts {2, 4} match the single-shard kernel exactly,
/// including the deterministic work counters.
fn assert_shard_invariant(cfg: &TrellisConfig, trace: &FrameTrace) -> Result<(), TestCaseError> {
    let baseline = OfflineOptimizer::new(cfg.clone()).optimize_with_stats(trace);
    for shards in [2usize, 4] {
        let sharded = OfflineOptimizer::new(cfg.clone())
            .with_shards(shards)
            .optimize_with_stats(trace);
        match (&baseline, &sharded) {
            (Ok((s0, w0, st0)), Ok((s1, w1, st1))) => {
                prop_assert_eq!(w0.to_bits(), w1.to_bits(), "{} shards: {:?}", shards, cfg);
                prop_assert_eq!(s0.to_rates(), s1.to_rates(), "{} shards: {:?}", shards, cfg);
                prop_assert_eq!(
                    st0,
                    st1,
                    "counters diverged at {} shards: {:?}",
                    shards,
                    cfg
                );
            }
            (Err(e0), Err(e1)) => prop_assert_eq!(e0, e1),
            other => {
                return Err(TestCaseError::fail(format!(
                    "feasibility diverged at {shards} shards for {cfg:?}: {other:?}"
                )))
            }
        }
    }
    Ok(())
}

/// Random strictly-increasing rate grid from positive step sizes.
fn build_grid(steps: &[f64], with_zero: bool) -> RateGrid {
    let mut levels: Vec<f64> = Vec::with_capacity(steps.len() + 1);
    let mut r = if with_zero { 0.0 } else { 13.0 };
    levels.push(r);
    for &s in steps {
        r += s;
        levels.push(r);
    }
    RateGrid::new(levels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kernel ≡ reference on random traces × grids × config variants.
    #[test]
    fn kernel_matches_reference_bit_for_bit(
        bits in collection::vec(0.0..500.0f64, 2..60),
        steps in collection::vec(1.0..400.0f64, 1..12),
        with_zero in any::<bool>(),
        alpha in 0.01..500.0f64,
        buffer in 0.0..800.0f64,
        tau_pick in 0usize..3,
    ) {
        let grid = build_grid(&steps, with_zero);
        let tau = [0.5f64, 1.0, 1.0 / 24.0][tau_pick];
        let trace = FrameTrace::new(tau, bits);
        let cost = CostModel::new(alpha, 1.0);
        for cfg in config_variants(grid.clone(), cost, buffer) {
            assert_equivalent(&cfg, &trace)?;
        }
    }

    /// Shard counts {1, 2, 4} agree on output and counters.
    #[test]
    fn shard_counts_agree(
        bits in collection::vec(0.0..500.0f64, 2..40),
        steps in collection::vec(1.0..400.0f64, 1..12),
        with_zero in any::<bool>(),
        alpha in 0.01..500.0f64,
        buffer in 0.0..800.0f64,
    ) {
        let grid = build_grid(&steps, with_zero);
        let trace = FrameTrace::new(1.0, bits);
        let cost = CostModel::new(alpha, 1.0);
        for cfg in config_variants(grid.clone(), cost, buffer) {
            assert_shard_invariant(&cfg, &trace)?;
        }
    }

    /// Tie-heavy workloads: integer arrivals on an integer grid generate
    /// many exactly-equal q and w values, stressing the `gen` tie order.
    #[test]
    fn kernel_matches_reference_under_heavy_ties(
        bits in collection::vec(0u32..6u32, 2..40),
        alpha_pick in 0usize..3,
        buffer in 0u32..12u32,
    ) {
        let alpha = [1.0f64, 10.0, 100.0][alpha_pick];
        let bits: Vec<f64> = bits.into_iter().map(|b| b as f64 * 10.0).collect();
        let trace = FrameTrace::new(1.0, bits);
        let grid = RateGrid::new(vec![0.0, 10.0, 20.0, 30.0, 40.0, 50.0]);
        let cost = CostModel::new(alpha, 1.0);
        let buffer = buffer as f64 * 10.0;
        for cfg in config_variants(grid.clone(), cost, buffer) {
            assert_equivalent(&cfg, &trace)?;
            assert_shard_invariant(&cfg, &trace)?;
        }
    }
}
