//! Legendre–Fenchel transforms of discrete bandwidth distributions.
//!
//! For a random rate `R` with distribution `{(r_j, p_j)}` and log-MGF
//! `Λ(s) = ln Σ p_j e^{s r_j}`, the rate function is
//!
//! ```text
//! I(a) = sup_s (s·a − Λ(s))
//! ```
//!
//! (eq. (10)'s `I*`). For `a` above the mean the supremum is attained at
//! `s ≥ 0` and `P(average of n iid copies ≥ a) ≈ e^{−n I(a)}` — Chernoff's
//! estimate, which Section V-A uses for the shared-buffer loss probability
//! and Section VI for the renegotiation-failure probability.

use rcbr_sim::stats::DiscreteDistribution;

use crate::numerics::maximize_on_ray;

/// The rate function `I(a) = sup_{s≥0} (s·a − Λ(s))` of `dist`, for
/// `a ≥ mean` (the upper-deviations branch used by every estimate in the
/// paper).
///
/// * `a <= mean` → `0` (no decay: demanding less than the mean is typical).
/// * `a > peak` → `+∞` (impossible deviation).
/// * `a == peak` → `−ln P(R = peak)` (the exact boundary value).
pub fn rate_function(dist: &DiscreteDistribution, a: f64) -> f64 {
    let mean = dist.mean();
    if a <= mean {
        return 0.0;
    }
    let peak = dist.peak();
    if a > peak {
        return f64::INFINITY;
    }
    let p_peak: f64 = dist
        .iter()
        .filter(|&(r, p)| p > 0.0 && (r - peak).abs() <= f64::EPSILON * peak.abs().max(1.0))
        .map(|(_, p)| p)
        .sum();
    if a == peak {
        return -p_peak.ln();
    }
    // Interior: concave maximization over s >= 0. Scale the initial
    // bracket to the rate magnitude so the search starts near the right
    // order of magnitude (s has units of 1/rate).
    let scale = 1.0 / peak.max(1e-300);
    let (_, val) = maximize_on_ray(|s| s * a - dist.log_mgf(s), scale, 1e-12);
    // I is nonnegative by construction (g(0) = 0) and bounded by the
    // boundary value −ln p_peak.
    val.max(0.0).min(-p_peak.ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bern(p: f64) -> DiscreteDistribution {
        DiscreteDistribution::from_weights(&[(0.0, 1.0 - p), (1.0, p)])
    }

    /// Closed-form rate function of a Bernoulli(p) variable: the binary
    /// relative entropy D(a ‖ p).
    fn bern_rate(a: f64, p: f64) -> f64 {
        a * (a / p).ln() + (1.0 - a) * ((1.0 - a) / (1.0 - p)).ln()
    }

    #[test]
    fn matches_bernoulli_closed_form() {
        let d = bern(0.3);
        for &a in &[0.35, 0.5, 0.7, 0.9, 0.99] {
            let got = rate_function(&d, a);
            let want = bern_rate(a, 0.3);
            assert!((got - want).abs() < 1e-6, "a={a}: got {got}, want {want}");
        }
    }

    #[test]
    fn below_mean_is_zero() {
        let d = bern(0.3);
        assert_eq!(rate_function(&d, 0.3), 0.0);
        assert_eq!(rate_function(&d, 0.1), 0.0);
    }

    #[test]
    fn at_peak_is_log_peak_probability() {
        let d = bern(0.3);
        let i = rate_function(&d, 1.0);
        assert!((i - (-(0.3f64).ln())).abs() < 1e-9);
    }

    #[test]
    fn above_peak_is_infinite() {
        let d = bern(0.3);
        assert_eq!(rate_function(&d, 1.01), f64::INFINITY);
    }

    #[test]
    fn realistic_rate_units_work() {
        // Levels in bits/s — s is then ~1e-6, exercising the bracket
        // scaling.
        let d = DiscreteDistribution::from_weights(&[
            (200_000.0, 0.5),
            (500_000.0, 0.4),
            (1_500_000.0, 0.1),
        ]);
        let mean = d.mean();
        let i = rate_function(&d, 1.5 * mean);
        assert!(i.is_finite() && i > 0.0, "I = {i}");
        // Sanity: bounded by the peak boundary value.
        assert!(i <= -(0.1f64).ln() + 1e-9);
    }

    #[test]
    fn degenerate_distribution() {
        let d = DiscreteDistribution::from_weights(&[(5.0, 1.0)]);
        assert_eq!(rate_function(&d, 5.0), 0.0); // a == mean
        assert_eq!(rate_function(&d, 6.0), f64::INFINITY);
    }

    proptest! {
        /// I is nondecreasing above the mean and 0 at/below it.
        #[test]
        fn monotone_above_mean(
            p1 in 0.05..0.95f64,
            lvls in proptest::collection::vec(1.0..1000.0f64, 2..5),
            a_fracs in proptest::collection::vec(0.0..1.0f64, 2),
        ) {
            let pairs: Vec<(f64, f64)> =
                lvls.iter().enumerate().map(|(i, &r)| (r, if i == 0 { p1 } else { (1.0 - p1) / (lvls.len() - 1) as f64 })).collect();
            let d = DiscreteDistribution::from_weights(&pairs);
            let mean = d.mean();
            let peak = d.peak();
            prop_assume!(peak > mean * 1.001);
            let mut a: Vec<f64> = a_fracs.iter().map(|f| mean + f * (peak - mean)).collect();
            a.sort_by(|x, y| x.total_cmp(y));
            let i0 = rate_function(&d, a[0]);
            let i1 = rate_function(&d, a[1]);
            prop_assert!(i0 >= 0.0);
            prop_assert!(i1 + 1e-9 >= i0, "I not monotone: I({})={} > I({})={}", a[0], i0, a[1], i1);
        }
    }
}
