//! Small dense matrices and the Perron root of nonnegative matrices.
//!
//! The equivalent-bandwidth computation needs exactly one linear-algebra
//! primitive: the spectral radius of the nonnegative matrix
//! `P·diag(e^{θ x_i})`. Source models have a handful of states, so a plain
//! row-major `Vec<f64>` with power iteration is both simple and fast.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix of the given shape.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn zeros(n_rows: usize, n_cols: usize) -> Self {
        assert!(
            n_rows > 0 && n_cols > 0,
            "matrix dimensions must be positive"
        );
        Self {
            n_rows,
            n_cols,
            data: vec![0.0; n_rows * n_cols],
        }
    }

    /// Build from nested rows.
    ///
    /// # Panics
    /// Panics if rows are empty or ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(
            !rows.is_empty() && !rows[0].is_empty(),
            "matrix must be nonempty"
        );
        let n_cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * n_cols);
        for row in rows {
            assert_eq!(row.len(), n_cols, "ragged rows");
            data.extend_from_slice(row);
        }
        Self {
            n_rows: rows.len(),
            n_cols,
            data,
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_cols, "dimension mismatch");
        (0..self.n_rows)
            .map(|i| {
                let row = &self.data[i * self.n_cols..(i + 1) * self.n_cols];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// Spectral radius (Perron root) of a *nonnegative* square matrix by
    /// power iteration.
    ///
    /// A uniform diagonal shift makes the iteration converge even for
    /// periodic matrices (the shift adds exactly `shift` to every
    /// eigenvalue of a nonnegative matrix's Perron root, so it is
    /// subtracted back out). For reducible matrices the method converges
    /// to the largest block's Perron root, which is the spectral radius.
    ///
    /// # Panics
    /// Panics if the matrix is not square or has a negative entry.
    pub fn perron_root(&self) -> f64 {
        assert_eq!(
            self.n_rows, self.n_cols,
            "Perron root needs a square matrix"
        );
        assert!(
            self.data.iter().all(|&x| x >= 0.0),
            "matrix must be nonnegative"
        );
        let n = self.n_rows;
        if n == 1 {
            return self.data[0];
        }
        let scale = self.data.iter().fold(0.0f64, |m, &x| m.max(x));
        if scale == 0.0 {
            return 0.0;
        }
        // Shift to guarantee aperiodicity: B = A + shift·I, ρ(B) = ρ(A) + shift.
        let shift = scale;
        let mut v = vec![1.0 / n as f64; n];
        let mut lambda = 0.0;
        for _ in 0..100_000 {
            let mut w = self.mul_vec(&v);
            for (wi, vi) in w.iter_mut().zip(&v) {
                *wi += shift * vi;
            }
            let norm: f64 = w.iter().sum();
            if norm == 0.0 {
                return 0.0;
            }
            for x in w.iter_mut() {
                *x /= norm;
            }
            let new_lambda = norm;
            let done = (new_lambda - lambda).abs() <= 1e-14 * new_lambda.abs().max(1.0);
            lambda = new_lambda;
            v = w;
            if done {
                break;
            }
        }
        lambda - shift
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.n_rows && j < self.n_cols, "index out of bounds");
        &self.data[i * self.n_cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.n_rows && j < self.n_cols, "index out of bounds");
        &mut self.data[i * self.n_cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mul_vec_works() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn perron_of_stochastic_matrix_is_one() {
        let m = Matrix::from_rows(&[vec![0.9, 0.1], vec![0.4, 0.6]]);
        assert!((m.perron_root() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn perron_of_diagonal_is_max_entry() {
        let m = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 5.0]]);
        assert!((m.perron_root() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn perron_of_periodic_matrix_converges() {
        // [[0,1],[1,0]] has eigenvalues ±1; plain power iteration
        // oscillates, the shifted iteration must return 1.
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert!((m.perron_root() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn perron_of_known_2x2() {
        // [[2,1],[1,2]]: eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        assert!((m.perron_root() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn perron_of_zero_matrix() {
        let m = Matrix::zeros(3, 3);
        assert_eq!(m.perron_root(), 0.0);
    }

    #[test]
    fn identity_and_indexing() {
        let mut m = Matrix::identity(2);
        m[(0, 1)] = 7.0;
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(0, 1)], 7.0);
        assert!((m.perron_root() - 1.0).abs() < 2.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    proptest! {
        /// ρ(A) of a row-substochastic nonnegative matrix lies between the
        /// min and max row sums.
        #[test]
        fn perron_bounded_by_row_sums(
            rows in proptest::collection::vec(
                proptest::collection::vec(0.0..1.0f64, 3), 3),
        ) {
            let m = Matrix::from_rows(&rows);
            let sums: Vec<f64> = rows.iter().map(|r| r.iter().sum()).collect();
            let lo = sums.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = sums.iter().cloned().fold(0.0, f64::max);
            let rho = m.perron_root();
            prop_assert!(rho >= lo - 1e-6, "rho {rho} below min row sum {lo}");
            prop_assert!(rho <= hi + 1e-6, "rho {rho} above max row sum {hi}");
        }
    }
}
