//! Scalar numerics: bisection root finding and golden-section maximization.
//!
//! Everything the large-deviations computations need, implemented plainly.
//! Functions are assumed continuous on the given bracket; the large-
//! deviations objects (log-MGFs and their derivatives) are smooth and
//! convex, which makes these simple methods robust.

/// Find a root of `f` on `[lo, hi]` by bisection.
///
/// Requires `f(lo)` and `f(hi)` to have opposite signs (a zero endpoint is
/// returned immediately). Runs until the bracket is narrower than `tol`.
///
/// # Panics
/// Panics if `lo > hi`, `tol <= 0`, or the bracket does not straddle a sign
/// change.
pub fn bisect(mut f: impl FnMut(f64) -> f64, lo: f64, hi: f64, tol: f64) -> f64 {
    assert!(lo <= hi, "bisection bracket reversed: [{lo}, {hi}]");
    assert!(tol > 0.0, "tolerance must be positive");
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    if fa == 0.0 {
        return a;
    }
    let fb = f(b);
    if fb == 0.0 {
        return b;
    }
    assert!(
        fa.signum() != fb.signum(),
        "bisection bracket does not straddle a root: f({a})={fa}, f({b})={fb}"
    );
    while b - a > tol {
        let m = 0.5 * (a + b);
        let fm = f(m);
        if fm == 0.0 {
            return m;
        }
        if fm.signum() == fa.signum() {
            a = m;
            fa = fm;
        } else {
            b = m;
        }
    }
    0.5 * (a + b)
}

/// Maximize a concave function `g` on `[lo, hi]` by golden-section search.
/// Returns `(argmax, max)`.
///
/// # Panics
/// Panics if `lo > hi` or `tol <= 0`.
pub fn golden_max(mut g: impl FnMut(f64) -> f64, lo: f64, hi: f64, tol: f64) -> (f64, f64) {
    assert!(lo <= hi, "bracket reversed: [{lo}, {hi}]");
    assert!(tol > 0.0, "tolerance must be positive");
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut a = lo;
    let mut b = hi;
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut gc = g(c);
    let mut gd = g(d);
    while b - a > tol {
        if gc >= gd {
            b = d;
            d = c;
            gd = gc;
            c = b - INV_PHI * (b - a);
            gc = g(c);
        } else {
            a = c;
            c = d;
            gc = gd;
            d = a + INV_PHI * (b - a);
            gd = g(d);
        }
    }
    let x = 0.5 * (a + b);
    (x, g(x))
}

/// Maximize a concave function over `[0, ∞)` by doubling the bracket until
/// the maximum is interior (or a growth cap is reached), then golden-
/// section. Returns `(argmax, max)`.
///
/// Intended for Chernoff exponents `g(s) = s·a − Λ(s)`: concave, `g(0)=0`,
/// and either attains an interior maximum or increases without bound (the
/// caller screens out the unbounded case, e.g. `a > peak`).
pub fn maximize_on_ray(mut g: impl FnMut(f64) -> f64, initial: f64, tol: f64) -> (f64, f64) {
    assert!(initial > 0.0, "initial bracket must be positive");
    let mut hi = initial;
    // Expand until g starts decreasing past the maximum: concavity means
    // once g(2h) < g(h), the max lies in [0, 2h].
    for _ in 0..200 {
        if g(2.0 * hi) < g(hi) {
            return golden_max(g, 0.0, 2.0 * hi, tol * hi.max(1.0));
        }
        hi *= 2.0;
    }
    // Never turned over within the cap: effectively unbounded growth.
    (hi, g(hi))
}

/// Numerical first derivative by central differences with a
/// magnitude-scaled step.
pub fn derivative(mut f: impl FnMut(f64) -> f64, x: f64) -> f64 {
    let h = 1e-6 * x.abs().max(1.0);
    (f(x + h) - f(x - h)) / (2.0 * h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12);
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
    }

    #[test]
    fn bisect_returns_exact_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-9), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-9), 1.0);
    }

    #[test]
    #[should_panic(expected = "straddle")]
    fn bisect_rejects_bad_bracket() {
        bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9);
    }

    #[test]
    fn golden_finds_parabola_peak() {
        let (x, v) = golden_max(|x| -(x - 3.0) * (x - 3.0) + 7.0, 0.0, 10.0, 1e-10);
        assert!((x - 3.0).abs() < 1e-6);
        assert!((v - 7.0).abs() < 1e-10);
    }

    #[test]
    fn golden_handles_boundary_maximum() {
        let (x, _) = golden_max(|x| x, 0.0, 5.0, 1e-10);
        assert!((x - 5.0).abs() < 1e-6);
    }

    #[test]
    fn ray_maximization_expands_bracket() {
        // Max at s = 100, far beyond the initial bracket of 1.
        let (x, v) = maximize_on_ray(|s| -(s - 100.0) * (s - 100.0) + 4.0, 1.0, 1e-9);
        assert!((x - 100.0).abs() < 1e-3, "argmax {x}");
        assert!((v - 4.0).abs() < 1e-6);
    }

    #[test]
    fn derivative_of_square() {
        let d = derivative(|x| x * x, 3.0);
        assert!((d - 6.0).abs() < 1e-5);
    }
}
