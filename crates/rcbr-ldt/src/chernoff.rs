//! Chernoff estimates for bufferless multiplexing — eqs. (10)–(12).
//!
//! When `n` independent sources with marginal rate distribution
//! `{(r_j, p_j)}` share a link of capacity `C`, the probability that their
//! total demand exceeds `C` is estimated by
//!
//! ```text
//! P(Σ R_i > C) ≈ exp(−n·I(C/n)),   I(a) = sup_s (s·a − Λ(s))
//! ```
//!
//! This single formula is used three ways in the paper:
//!
//! * the **shared-buffer loss probability** (eq. (10), with `R` the
//!   subchain *mean* rates),
//! * the **RCBR renegotiation-failure probability** (eq. (11), with `R`
//!   the per-subchain *equivalent bandwidths* — larger, since RCBR does not
//!   share buffers),
//! * the **admission-control test** (eq. (12), with `R` the empirical
//!   bandwidth-level distribution of a call). The admissible-call count
//!   [`max_admissible_calls`] is the knob the Section VI controllers turn.

use rcbr_sim::stats::DiscreteDistribution;

use crate::legendre::rate_function;
use crate::numerics::bisect;

/// Eqs. (10)–(12): `exp(−n·I(C/n))`, clamped to `[0, 1]`.
///
/// Degenerate regimes follow the Chernoff bound's own semantics: if the
/// per-source capacity is at or below the mean the bound is vacuous (`1`);
/// if it is at or above the peak the demand can never exceed capacity
/// except exactly at the boundary atom.
///
/// # Panics
/// Panics if `n == 0` or `capacity < 0`.
pub fn chernoff_failure_probability(dist: &DiscreteDistribution, n: usize, capacity: f64) -> f64 {
    assert!(n > 0, "need at least one call");
    assert!(capacity >= 0.0, "capacity must be nonnegative");
    let per_source = capacity / n as f64;
    let i = rate_function(dist, per_source);
    (-(n as f64) * i).exp().clamp(0.0, 1.0)
}

/// Eq. (12) as an admission test: the largest number of calls `n` such
/// that `chernoff_failure_probability(dist, n, capacity) <= target`.
///
/// ```
/// use rcbr_ldt::max_admissible_calls;
/// use rcbr_sim::stats::DiscreteDistribution;
///
/// // On/off calls: 1 Mb/s for 30% of the time.
/// let call = DiscreteDistribution::from_weights(&[(0.0, 0.7), (1e6, 0.3)]);
/// let n = max_admissible_calls(&call, 20e6, 1e-3);
/// // Statistical multiplexing admits more than peak-rate allocation (20).
/// assert!(n > 20);
/// ```
///
/// Returns 0 if even one call violates the target. Note the paper's
/// observation: the system "will deny new calls even when there is
/// available capacity" — `n_max · mean` is typically well below `capacity`.
///
/// # Panics
/// Panics unless `capacity > 0` and `0 < target < 1`.
pub fn max_admissible_calls(dist: &DiscreteDistribution, capacity: f64, target: f64) -> usize {
    assert!(capacity > 0.0, "capacity must be positive");
    assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
    let mean = dist.mean();
    if mean <= 0.0 {
        // Zero-rate calls can never cause failure; the link fits unboundedly
        // many. Return the largest count that is still meaningful.
        return usize::MAX;
    }
    // Failure probability is increasing in n (per-source capacity shrinks
    // and the exponent weakens), so binary search the threshold. Upper
    // bracket: n where per-source capacity hits the mean (always failing
    // the target beyond it).
    let n_hi = (capacity / mean).ceil() as usize + 1;
    let ok = |n: usize| n == 0 || chernoff_failure_probability(dist, n, capacity) <= target;
    if !ok(1) {
        return 0;
    }
    let (mut lo, mut hi) = (1usize, n_hi);
    // Invariant: ok(lo), !ok(hi) — make the upper end genuinely failing.
    while ok(hi) {
        lo = hi;
        hi *= 2;
        if hi > 1 << 40 {
            return hi; // pathological flat distribution; effectively unbounded
        }
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if ok(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The smallest per-source capacity `c` such that `n` calls meet the
/// failure target: solves `exp(−n·I(c)) = target` for `c ∈ [mean, peak]`.
///
/// This is the theoretical curve behind Fig. 6's scenario (b)/(c): capacity
/// per stream as a function of the number of multiplexed streams.
///
/// # Panics
/// Panics unless `n > 0` and `0 < target < 1`.
pub fn min_capacity_per_source(dist: &DiscreteDistribution, n: usize, target: f64) -> f64 {
    assert!(n > 0, "need at least one call");
    assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
    let mean = dist.mean();
    let peak = dist.peak();
    let needed_i = -(target.ln()) / n as f64;
    // I(mean) = 0 < needed; if even I(peak) < needed the target is
    // unattainable below the peak — allocate the peak.
    if rate_function(dist, peak) < needed_i {
        return peak;
    }
    if peak <= mean {
        return peak;
    }
    bisect(
        |c| rate_function(dist, c) - needed_i,
        mean,
        peak,
        1e-9 * peak.max(1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn onoff_dist() -> DiscreteDistribution {
        // Rate 0 with prob 0.7, rate 1 Mb/s with prob 0.3.
        DiscreteDistribution::from_weights(&[(0.0, 0.7), (1_000_000.0, 0.3)])
    }

    #[test]
    fn exact_binomial_comparison() {
        // For Bernoulli rates the Chernoff estimate must upper-bound the
        // exact binomial tail and be within a poly factor of it.
        let d = onoff_dist();
        let n = 20;
        let capacity = 10.0 * 1_000_000.0; // 10 of 20 sources on
        let est = chernoff_failure_probability(&d, n, capacity);
        // Exact P(Bin(20, 0.3) > 10) = sum_{k=11}^{20} C(20,k) .3^k .7^(20-k)
        let mut exact = 0.0;
        for k in 11..=20 {
            exact += binom(20, k) * 0.3f64.powi(k as i32) * 0.7f64.powi((20 - k) as i32);
        }
        // The bound applies at the demanded level >= capacity; our I is at
        // a = C/n = 0.5 so P(Bin >= 10) >= exact.
        let exact_ge = exact + binom(20, 10) * 0.3f64.powi(10) * 0.7f64.powi(10);
        assert!(
            est >= exact && est < 300.0 * exact_ge.max(1e-12),
            "estimate {est} vs exact {exact} / {exact_ge}"
        );
    }

    fn binom(n: u64, k: u64) -> f64 {
        let mut r = 1.0;
        for i in 0..k {
            r *= (n - i) as f64 / (i + 1) as f64;
        }
        r
    }

    #[test]
    fn failure_increases_with_n_at_fixed_capacity() {
        let d = onoff_dist();
        let capacity = 5_000_000.0;
        let p5 = chernoff_failure_probability(&d, 5, capacity);
        let p10 = chernoff_failure_probability(&d, 10, capacity);
        let p14 = chernoff_failure_probability(&d, 14, capacity);
        assert!(p5 <= p10 && p10 <= p14, "{p5} {p10} {p14}");
    }

    #[test]
    fn vacuous_bound_below_mean() {
        let d = onoff_dist(); // mean 300 kb/s
        let p = chernoff_failure_probability(&d, 10, 10.0 * 250_000.0);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn admissible_calls_threshold() {
        let d = onoff_dist();
        let capacity = 20_000_000.0; // 20 Mb/s
        let target = 1e-3;
        let n = max_admissible_calls(&d, capacity, target);
        assert!(n > 0);
        assert!(chernoff_failure_probability(&d, n, capacity) <= target);
        assert!(chernoff_failure_probability(&d, n + 1, capacity) > target);
        // Leaves slack: admitted mean load is below capacity, and peak
        // allocation would admit exactly 20.
        assert!(n as f64 * d.mean() < capacity);
        assert!(
            n > 20,
            "statistical gain should beat peak allocation, n={n}"
        );
    }

    #[test]
    fn zero_call_capacity() {
        let d = onoff_dist();
        // Tiny link: even one call fails the target (capacity below mean).
        let n = max_admissible_calls(&d, 100_000.0, 1e-3);
        assert_eq!(n, 0);
    }

    #[test]
    fn min_capacity_brackets() {
        let d = onoff_dist();
        for &n in &[1usize, 10, 100, 1000] {
            let c = min_capacity_per_source(&d, n, 1e-6);
            assert!(c >= d.mean() - 1e-9 && c <= d.peak() + 1e-9, "n={n}: c={c}");
        }
        // More multiplexing => less capacity per source.
        let c10 = min_capacity_per_source(&d, 10, 1e-6);
        let c1000 = min_capacity_per_source(&d, 1000, 1e-6);
        assert!(c1000 < c10, "{c1000} vs {c10}");
        // Huge n approaches the mean.
        let c_big = min_capacity_per_source(&d, 1_000_000, 1e-6);
        assert!((c_big - d.mean()) / d.mean() < 0.01, "c_big {c_big}");
    }

    #[test]
    fn min_capacity_is_consistent_with_failure_probability() {
        let d = onoff_dist();
        let n = 50;
        let target = 1e-4;
        let c = min_capacity_per_source(&d, n, target);
        let p = chernoff_failure_probability(&d, n, n as f64 * c * 1.0001);
        assert!(p <= target * 1.1, "p {p} target {target}");
    }

    #[test]
    fn single_call_needs_peak_for_strict_targets() {
        let d = onoff_dist();
        // One call, target below P(R = peak) = 0.3: only the peak works.
        let c = min_capacity_per_source(&d, 1, 0.01);
        assert!((c - d.peak()).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn admission_count_monotone_in_capacity(
            cap1 in 1e6..5e7f64,
            extra in 0.0..5e7f64,
        ) {
            let d = onoff_dist();
            let n1 = max_admissible_calls(&d, cap1, 1e-3);
            let n2 = max_admissible_calls(&d, cap1 + extra, 1e-3);
            prop_assert!(n2 >= n1);
        }
    }
}
