//! Equivalent bandwidth of Markov-modulated sources.
//!
//! For a discrete-time source emitting `x_i` bits per slot in state `i` of
//! a Markov chain `P`, the scaled log-MGF of the arrival process is
//!
//! ```text
//! Λ(θ) = ln ρ( P · diag(e^{θ x_i}) )
//! ```
//!
//! (per slot, with `θ` in 1/bits), and the large-buffer asymptotic
//! `P(overflow of buffer B) ≈ e^{−θ B}` holds when the drain rate per slot
//! equals the *equivalent bandwidth* `Λ(θ)/θ`. Inverting the QoS target
//! `ε = e^{−θ* B}` gives `θ* = ln(1/ε)/B` and
//!
//! ```text
//! EB(B, ε) = Λ(θ*) / θ*   (bits per slot; divide by the slot length for b/s)
//! ```
//!
//! The equivalent bandwidth always lies between the source's mean and peak
//! rates and decreases as the buffer grows — it "measures the amount of
//! smoothing of the stream by buffering" (Section V-A).
//!
//! For a multiple-time-scale source, eq. (9) of the paper: in the joint
//! regime where the buffer absorbs fast fluctuations but rare transitions
//! are slower still, the equivalent bandwidth of the whole stream is
//! `max_k EB_k`, the maximum over the subchains considered in isolation.

use rcbr_traffic::markov::MarkovModulatedSource;
use rcbr_traffic::mts::MtsModel;
use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// A buffer-overflow QoS target: `P(overflow of buffer B) <= epsilon`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosTarget {
    /// Buffer size in bits.
    pub buffer: f64,
    /// Overflow/loss probability bound.
    pub epsilon: f64,
}

impl QosTarget {
    /// Create a target.
    ///
    /// # Panics
    /// Panics unless `buffer > 0` and `0 < epsilon < 1`.
    pub fn new(buffer: f64, epsilon: f64) -> Self {
        assert!(
            buffer > 0.0 && buffer.is_finite(),
            "buffer must be positive"
        );
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        Self { buffer, epsilon }
    }

    /// The large-deviations space parameter `θ* = ln(1/ε)/B`, 1/bits.
    pub fn theta(&self) -> f64 {
        (1.0 / self.epsilon).ln() / self.buffer
    }
}

/// The scaled log-MGF `Λ(θ) = ln ρ(P·diag(e^{θ x_i}))` of a
/// Markov-modulated source, per slot, with `θ` in 1/bits.
///
/// Computed with the peak emission factored out so the matrix entries stay
/// in `[0, 1]` and no overflow occurs even for large `θ`.
pub fn log_spectral_mgf(source: &MarkovModulatedSource, theta: f64) -> f64 {
    let chain = source.chain();
    let n = chain.num_states();
    let peak = source.emissions().iter().fold(0.0f64, |m, &x| m.max(x));
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            // A[i][j] = P[i][j] * e^{θ (x_j - peak)}; ρ(A(θ)) = ρ(true) e^{-θ peak}.
            a[(i, j)] = chain.prob(i, j) * (theta * (source.emission(j) - peak)).exp();
        }
    }
    theta * peak + a.perron_root().ln()
}

/// Equivalent bandwidth of a Markov-modulated source for the given QoS
/// target, in **bits/second**.
///
/// ```
/// use rcbr_ldt::{equivalent_bandwidth, QosTarget};
/// use rcbr_traffic::OnOffSource;
///
/// // 1 Mb/s peak, on half the time => mean 500 kb/s.
/// let source = OnOffSource::new(0.2, 0.2, 1_000_000.0, 0.04).as_source();
/// let eb = equivalent_bandwidth(&source, QosTarget::new(100_000.0, 1e-6));
/// assert!(eb > source.mean_rate() && eb < source.peak_rate());
/// ```
///
/// As `B → ∞` this tends to the mean rate; as `B → 0` to the peak rate.
/// The result is clamped to `[mean, peak]` to absorb numerical round-off
/// at the extremes.
pub fn equivalent_bandwidth(source: &MarkovModulatedSource, qos: QosTarget) -> f64 {
    let theta = qos.theta();
    let eb_bits_per_slot = log_spectral_mgf(source, theta) / theta;
    let eb = eb_bits_per_slot / source.slot();
    eb.clamp(source.mean_rate(), source.peak_rate())
}

/// Eq. (9): the equivalent bandwidth of a multiple-time-scale source is
/// the maximum over its subchains, each considered in isolation, in
/// bits/second. Also returns the index of the dominating subchain.
pub fn mts_equivalent_bandwidth(model: &MtsModel, qos: QosTarget) -> (f64, usize) {
    let slot = model.slot();
    model
        .subchains()
        .iter()
        .enumerate()
        .map(|(k, sub)| (equivalent_bandwidth(&sub.as_source(slot), qos), k))
        .max_by(|a, b| a.0.total_cmp(&b.0))
        .expect("MTS models have at least two subchains")
}

/// A memo for [`equivalent_bandwidth`].
///
/// The EB of a Markov-modulated source costs a spectral-radius power
/// iteration per call; admission sweeps and validation harnesses evaluate
/// the same handful of `(source, QoS)` pairs thousands of times. The memo
/// key is **exact**: the bit patterns of the transition matrix, the
/// per-state emissions, the slot length, and the QoS target — no hashing,
/// no collisions, so a hit returns the bit-identical `f64` the direct
/// computation would produce.
///
/// ```
/// use rcbr_ldt::{equivalent_bandwidth, EbCache, QosTarget};
/// use rcbr_traffic::OnOffSource;
///
/// let source = OnOffSource::new(0.2, 0.2, 1_000_000.0, 0.04).as_source();
/// let qos = QosTarget::new(100_000.0, 1e-6);
/// let mut cache = EbCache::new();
/// let eb = cache.equivalent_bandwidth(&source, qos);
/// assert_eq!(eb.to_bits(), equivalent_bandwidth(&source, qos).to_bits());
/// assert_eq!(cache.hits(), 0);
/// cache.equivalent_bandwidth(&source, qos);
/// assert_eq!(cache.hits(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct EbCache {
    map: std::collections::BTreeMap<Vec<u64>, f64>,
    hits: u64,
    misses: u64,
}

/// A point-in-time snapshot of an [`EbCache`]'s hit/miss accounting, for
/// run reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EbCacheStats {
    /// Lookups answered from the memo.
    pub hits: u64,
    /// Lookups that had to run the power iteration.
    pub misses: u64,
    /// Distinct `(source, QoS)` pairs memoized.
    pub entries: u64,
}

impl EbCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct `(source, QoS)` pairs memoized.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups answered from the memo.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to run the power iteration.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Snapshot the cache's accounting.
    pub fn stats(&self) -> EbCacheStats {
        EbCacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len() as u64,
        }
    }

    /// [`equivalent_bandwidth`], memoized.
    pub fn equivalent_bandwidth(&mut self, source: &MarkovModulatedSource, qos: QosTarget) -> f64 {
        let key = Self::key(source, qos);
        if let Some(&eb) = self.map.get(&key) {
            self.hits += 1;
            return eb;
        }
        self.misses += 1;
        let eb = equivalent_bandwidth(source, qos);
        self.map.insert(key, eb);
        eb
    }

    /// [`mts_equivalent_bandwidth`], memoized per subchain: repeated calls
    /// for the same model — or for sources sharing its subchains — reuse
    /// the per-subchain entries.
    pub fn mts_equivalent_bandwidth(&mut self, model: &MtsModel, qos: QosTarget) -> (f64, usize) {
        let slot = model.slot();
        model
            .subchains()
            .iter()
            .enumerate()
            .map(|(k, sub)| (self.equivalent_bandwidth(&sub.as_source(slot), qos), k))
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .expect("MTS models have at least two subchains")
    }

    /// The exact memo key: every float that enters the computation, as raw
    /// bits, plus the state count to delimit the matrix rows.
    fn key(source: &MarkovModulatedSource, qos: QosTarget) -> Vec<u64> {
        let chain = source.chain();
        let n = chain.num_states();
        let mut key = Vec::with_capacity(n * n + n + 4);
        key.push(n as u64);
        key.push(source.slot().to_bits());
        key.push(qos.buffer.to_bits());
        key.push(qos.epsilon.to_bits());
        for i in 0..n {
            for j in 0..n {
                key.push(chain.prob(i, j).to_bits());
            }
        }
        key.extend(source.emissions().iter().map(|x| x.to_bits()));
        key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcbr_traffic::markov::MarkovChain;
    use rcbr_traffic::onoff::OnOffSource;

    fn onoff() -> MarkovModulatedSource {
        // 1000 b/s peak, on half the time, 1 s slots.
        OnOffSource::new(0.2, 0.2, 1000.0, 1.0).as_source()
    }

    #[test]
    fn lambda_zero_is_zero() {
        let s = onoff();
        assert!(log_spectral_mgf(&s, 0.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_slope_brackets_mean_and_peak() {
        // Λ(θ)/θ increases from the mean rate (θ→0) to the peak (θ→∞).
        let s = onoff();
        let small = log_spectral_mgf(&s, 1e-9) / 1e-9;
        let large = log_spectral_mgf(&s, 1.0) / 1.0;
        assert!((small - 500.0).abs() < 1.0, "small-θ slope {small}");
        assert!(
            large > 900.0 && large <= 1000.0 + 1e-9,
            "large-θ slope {large}"
        );
    }

    #[test]
    fn no_overflow_at_extreme_theta() {
        let s = onoff();
        let v = log_spectral_mgf(&s, 10.0); // e^{10*1000} would overflow naively
        assert!(v.is_finite());
        assert!((v / 10.0 - 1000.0).abs() < 1.0);
    }

    #[test]
    fn eb_decreases_with_buffer() {
        let s = onoff();
        let eb_small = equivalent_bandwidth(&s, QosTarget::new(10.0, 1e-6));
        let eb_big = equivalent_bandwidth(&s, QosTarget::new(100_000.0, 1e-6));
        assert!(eb_small > eb_big, "{eb_small} vs {eb_big}");
        assert!(eb_small <= 1000.0 + 1e-9);
        assert!(eb_big >= 500.0 - 1e-9);
        // Huge buffer: essentially the mean.
        let eb_huge = equivalent_bandwidth(&s, QosTarget::new(3_000_000.0, 1e-6));
        assert!((eb_huge - 500.0) / 500.0 < 0.05, "eb_huge {eb_huge}");
    }

    #[test]
    fn eb_increases_with_stricter_epsilon() {
        let s = onoff();
        let loose = equivalent_bandwidth(&s, QosTarget::new(1000.0, 1e-2));
        let strict = equivalent_bandwidth(&s, QosTarget::new(1000.0, 1e-9));
        assert!(strict >= loose, "{strict} vs {loose}");
    }

    #[test]
    fn cbr_source_eb_is_its_rate() {
        let chain = MarkovChain::new(vec![vec![1.0]]);
        let s = MarkovModulatedSource::new(chain, vec![700.0], 1.0);
        let eb = equivalent_bandwidth(&s, QosTarget::new(100.0, 1e-6));
        assert!((eb - 700.0).abs() < 1e-9);
    }

    #[test]
    fn mts_eb_is_dominated_by_burstiest_subchain() {
        let m = MtsModel::fig4_example(1e-4, 1.0 / 24.0);
        let qos = QosTarget::new(300_000.0, 1e-6);
        let (eb, k) = mts_equivalent_bandwidth(&m, qos);
        // The high-action subchain (index 2, mean 1.5 Mb/s) dominates.
        assert_eq!(k, 2);
        assert!(eb >= m.subchain_mean_rate(2) - 1e-6);
        assert!(eb <= m.peak_rate() + 1e-6);
        // And it is far above the whole-stream mean: the "wasteful static
        // allocation" the paper derives.
        assert!(eb > 2.0 * m.mean_rate());
    }

    #[test]
    fn mts_eb_exceeds_max_subchain_mean() {
        // eq. (9) discussion: the drain rate needed is greater than
        // max_k m_k.
        let m = MtsModel::fig4_example(1e-4, 1.0 / 24.0);
        let qos = QosTarget::new(50_000.0, 1e-6);
        let (eb, _) = mts_equivalent_bandwidth(&m, qos);
        let max_mean = (0..3)
            .map(|k| m.subchain_mean_rate(k))
            .fold(0.0f64, f64::max);
        assert!(eb > max_mean, "eb {eb} <= max subchain mean {max_mean}");
    }

    #[test]
    fn theta_matches_definition() {
        let q = QosTarget::new(300_000.0, 1e-6);
        assert!((q.theta() - (1e6f64).ln() / 300_000.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn bad_epsilon_rejected() {
        QosTarget::new(1.0, 1.5);
    }

    #[test]
    fn cache_returns_bit_identical_results() {
        let s = onoff();
        let mut cache = EbCache::new();
        for qos in [
            QosTarget::new(10.0, 1e-6),
            QosTarget::new(1000.0, 1e-2),
            QosTarget::new(100_000.0, 1e-9),
        ] {
            let direct = equivalent_bandwidth(&s, qos);
            let miss = cache.equivalent_bandwidth(&s, qos);
            let hit = cache.equivalent_bandwidth(&s, qos);
            assert_eq!(direct.to_bits(), miss.to_bits());
            assert_eq!(direct.to_bits(), hit.to_bits());
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 3);
    }

    #[test]
    fn cache_distinguishes_sources_and_targets() {
        let a = onoff();
        // Same shape, different emission: must not share an entry.
        let b = OnOffSource::new(0.2, 0.2, 1001.0, 1.0).as_source();
        let qos = QosTarget::new(1000.0, 1e-6);
        let mut cache = EbCache::new();
        let eb_a = cache.equivalent_bandwidth(&a, qos);
        let eb_b = cache.equivalent_bandwidth(&b, qos);
        assert_eq!(cache.misses(), 2);
        assert_ne!(eb_a.to_bits(), eb_b.to_bits());
        // Different epsilon on the same source: a third entry.
        cache.equivalent_bandwidth(&a, QosTarget::new(1000.0, 1e-7));
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn cached_mts_eb_matches_uncached() {
        let m = MtsModel::fig4_example(1e-4, 1.0 / 24.0);
        let qos = QosTarget::new(300_000.0, 1e-6);
        let (want_eb, want_k) = mts_equivalent_bandwidth(&m, qos);
        let mut cache = EbCache::new();
        let (got_eb, got_k) = cache.mts_equivalent_bandwidth(&m, qos);
        assert_eq!(want_eb.to_bits(), got_eb.to_bits());
        assert_eq!(want_k, got_k);
        assert_eq!(cache.misses() as usize, m.subchains().len());
        // A second evaluation is pure hits.
        cache.mts_equivalent_bandwidth(&m, qos);
        assert_eq!(cache.misses() as usize, m.subchains().len());
        assert_eq!(cache.hits() as usize, m.subchains().len());
    }
}
