#![warn(missing_docs)]

//! # rcbr-ldt — the large-deviations toolkit of Section V-A
//!
//! The paper's analysis rests on three objects, all implemented here:
//!
//! * **Equivalent bandwidth** ([`eb`]) — the minimum constant drain rate a
//!   Markov-modulated source needs so that a buffer of size `B` overflows
//!   with probability at most `ε`: `EB = Λ(θ*)/θ*` with `θ* = ln(1/ε)/B`,
//!   where `Λ(θ)` is the log spectral radius of `P·diag(e^{θ x_i})`
//!   (Elwalid–Mitra / Kesidis–Walrand–Chang). For multiple-time-scale
//!   sources, eq. (9): the equivalent bandwidth of the whole stream is the
//!   *maximum over subchains* of the per-subchain equivalent bandwidths.
//! * **Legendre–Fenchel transforms** ([`legendre`]) — the rate function
//!   `I(a) = sup_s (s·a − Λ(s))` of a discrete bandwidth distribution.
//! * **Chernoff estimates** ([`chernoff`]) — eqs. (10)–(12): the
//!   probability that `n` independent sources with marginal distribution
//!   `{(r_j, p_j)}` jointly demand more than the link capacity, the basis
//!   of both the shared-buffer loss estimate and the RCBR
//!   renegotiation-failure estimate, and of the admission-control tests of
//!   Section VI.
//!
//! Supporting numerics — bracketed bisection, concave maximization, and the
//! power iteration for Perron roots of nonnegative matrices — are in
//! [`numerics`] and [`matrix`].

pub mod chernoff;
pub mod eb;
pub mod empirical;
pub mod legendre;
pub mod matrix;
pub mod numerics;

pub use chernoff::{chernoff_failure_probability, max_admissible_calls, min_capacity_per_source};
pub use eb::{
    equivalent_bandwidth, log_spectral_mgf, mts_equivalent_bandwidth, EbCache, EbCacheStats,
    QosTarget,
};
pub use empirical::{empirical_log_mgf, trace_equivalent_bandwidth};
pub use legendre::rate_function;
pub use matrix::Matrix;
