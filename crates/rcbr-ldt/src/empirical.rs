//! Empirical effective bandwidth, estimated directly from a trace.
//!
//! The model-based equivalent bandwidth of [`crate::eb`] needs a Markov
//! model; real deployments only have measurements. The standard estimator
//! replaces the scaled log-MGF with its empirical counterpart over blocks
//! of `m` slots:
//!
//! ```text
//! Λ̂(θ) = (1/m) · ln( (1/K) Σ_k exp(θ · X_k) )
//! ```
//!
//! where `X_k` is the number of bits arriving in block `k`. For `m` large
//! relative to the source's mixing time, `Λ̂ → Λ` and the empirical
//! equivalent bandwidth `Λ̂(θ*)/θ*` converges to the model value. This is
//! the measurement half of the MBAC story: the same quantity a switch
//! could estimate online.

use rcbr_traffic::FrameTrace;

/// The empirical scaled log-MGF `Λ̂(θ)` of `trace` over blocks of
/// `block_slots` slots, per slot, with `θ` in 1/bits.
///
/// Computed with the peak block factored out (log-sum-exp) so large `θ`
/// cannot overflow.
///
/// # Panics
/// Panics if `block_slots == 0` or the trace is shorter than one block.
pub fn empirical_log_mgf(trace: &FrameTrace, theta: f64, block_slots: usize) -> f64 {
    assert!(block_slots > 0, "block length must be positive");
    let blocks = trace.len() / block_slots;
    assert!(blocks > 0, "trace shorter than one block");
    let sums: Vec<f64> = (0..blocks)
        .map(|k| {
            (0..block_slots)
                .map(|i| trace.bits(k * block_slots + i))
                .sum()
        })
        .collect();
    let peak = sums
        .iter()
        .fold(f64::NEG_INFINITY, |m, &x| m.max(theta * x));
    if !peak.is_finite() {
        return peak;
    }
    let mean_exp: f64 = sums.iter().map(|&x| (theta * x - peak).exp()).sum::<f64>() / blocks as f64;
    (peak + mean_exp.ln()) / block_slots as f64
}

/// Empirical equivalent bandwidth of `trace` for a buffer-overflow QoS
/// target, in bits/second: `Λ̂(θ*)/θ*` with `θ* = ln(1/ε)/B`, clamped to
/// `[mean, peak]`.
pub fn trace_equivalent_bandwidth(
    trace: &FrameTrace,
    qos: crate::eb::QosTarget,
    block_slots: usize,
) -> f64 {
    let theta = qos.theta();
    let eb_bits_per_slot = empirical_log_mgf(trace, theta, block_slots) / theta;
    let eb = eb_bits_per_slot / trace.frame_interval();
    eb.clamp(trace.mean_rate(), trace.peak_rate())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eb::{equivalent_bandwidth, QosTarget};
    use rcbr_sim::SimRng;
    use rcbr_traffic::OnOffSource;

    #[test]
    fn log_mgf_is_zero_at_origin_like_object() {
        // Λ̂(0) = ln(1)/m = 0 exactly.
        let trace = FrameTrace::new(1.0, vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(empirical_log_mgf(&trace, 0.0, 2), 0.0);
    }

    #[test]
    fn small_theta_slope_is_the_mean() {
        let trace = FrameTrace::new(1.0, vec![100.0, 300.0, 200.0, 400.0]);
        let theta = 1e-9;
        let slope = empirical_log_mgf(&trace, theta, 1) / theta;
        assert!((slope - 250.0).abs() < 0.1, "slope {slope}");
    }

    #[test]
    fn large_theta_slope_is_the_block_peak() {
        let trace = FrameTrace::new(1.0, vec![100.0, 300.0, 200.0, 400.0]);
        let theta = 1.0; // e^{400} dominates up to the ln(1/K) = ln(1/4) term
        let slope = empirical_log_mgf(&trace, theta, 1) / theta;
        assert!((slope - (400.0 - 4.0f64.ln())).abs() < 0.1, "slope {slope}");
        assert!(slope.is_finite());
    }

    #[test]
    fn matches_model_equivalent_bandwidth_for_onoff() {
        // Generate a long on/off trace and compare the empirical EB with
        // the analytic one at a moderate buffer.
        let src = OnOffSource::new(0.2, 0.2, 1000.0, 1.0);
        let mms = src.as_source();
        let mut rng = SimRng::from_seed(21);
        let trace = mms.generate(300_000, &mut rng);
        let qos = QosTarget::new(2_000.0, 1e-3);
        let analytic = equivalent_bandwidth(&mms, qos);
        let empirical = trace_equivalent_bandwidth(&trace, qos, 50);
        let rel = (empirical - analytic).abs() / analytic;
        assert!(
            rel < 0.1,
            "empirical {empirical} vs analytic {analytic} ({rel:.3})"
        );
    }

    #[test]
    fn eb_is_bracketed_by_mean_and_peak() {
        let src = OnOffSource::new(0.1, 0.3, 1_000_000.0, 0.04).as_source();
        let mut rng = SimRng::from_seed(4);
        let trace = src.generate(100_000, &mut rng);
        for &(buffer, eps) in &[(1_000.0, 1e-6), (100_000.0, 1e-3), (10_000_000.0, 1e-2)] {
            let eb = trace_equivalent_bandwidth(&trace, QosTarget::new(buffer, eps), 25);
            assert!(eb >= trace.mean_rate() - 1e-9);
            assert!(eb <= trace.peak_rate() + 1e-9);
        }
    }

    #[test]
    fn bigger_buffer_smaller_empirical_eb() {
        let src = OnOffSource::new(0.05, 0.15, 1000.0, 1.0).as_source();
        let mut rng = SimRng::from_seed(6);
        let trace = src.generate(200_000, &mut rng);
        let small = trace_equivalent_bandwidth(&trace, QosTarget::new(500.0, 1e-6), 50);
        let large = trace_equivalent_bandwidth(&trace, QosTarget::new(50_000.0, 1e-6), 50);
        assert!(small >= large, "{small} vs {large}");
    }

    #[test]
    #[should_panic(expected = "shorter than one block")]
    fn oversized_block_rejected() {
        let trace = FrameTrace::new(1.0, vec![1.0; 5]);
        empirical_log_mgf(&trace, 0.1, 10);
    }
}
