//! Criterion benches for the equivalent-bandwidth computation.
//!
//! The EB of a Markov-modulated source costs one spectral-radius power
//! iteration per call; `EbCache` memoizes it. The benches time the cold
//! computation at two chain sizes and the memoized hit path, so both a
//! numerical-kernel regression and a cache regression are visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcbr_ldt::{equivalent_bandwidth, EbCache, QosTarget};
use rcbr_traffic::markov::{MarkovChain, MarkovModulatedSource};
use rcbr_traffic::OnOffSource;

/// A deterministic n-state birth–death chain with ramped emissions.
fn ramp_source(n: usize) -> MarkovModulatedSource {
    let mut p = vec![vec![0.0f64; n]; n];
    for (i, row) in p.iter_mut().enumerate() {
        if i > 0 {
            row[i - 1] = 0.05;
        }
        if i + 1 < n {
            row[i + 1] = 0.05;
        }
        let off: f64 = row.iter().sum();
        row[i] = 1.0 - off;
    }
    let emissions: Vec<f64> = (0..n).map(|i| 50_000.0 * (i + 1) as f64).collect();
    MarkovModulatedSource::new(MarkovChain::new(p), emissions, 1.0 / 24.0)
}

fn bench_eb(c: &mut Criterion) {
    let qos = QosTarget::new(300_000.0, 1e-6);

    let mut group = c.benchmark_group("equivalent_bandwidth");
    group.sample_size(20);
    group.bench_function("onoff_2state", |b| {
        let src = OnOffSource::new(0.2, 0.2, 1_000_000.0, 0.04).as_source();
        b.iter(|| equivalent_bandwidth(&src, qos))
    });
    for n in [8usize, 32] {
        let src = ramp_source(n);
        group.bench_with_input(BenchmarkId::new("ramp", n), &src, |b, src| {
            b.iter(|| equivalent_bandwidth(src, qos))
        });
    }
    group.bench_function("memo_hit_32state", |b| {
        let src = ramp_source(32);
        let mut cache = EbCache::new();
        cache.equivalent_bandwidth(&src, qos); // warm the entry
        b.iter(|| cache.equivalent_bandwidth(&src, qos))
    });
    group.finish();
}

criterion_group!(benches, bench_eb);
criterion_main!(benches);
