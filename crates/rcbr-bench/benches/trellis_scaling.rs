//! The Section IV-A runtime claim: the trellis optimization "very much
//! depends on ... above all, the number of bandwidth levels M"; the paper
//! measured 20 minutes at M = 20 and more than a day at M = 100 (on 1996
//! hardware, full-movie traces).
//!
//! This bench measures our implementation's scaling in both M (exact
//! algorithm) and trace length, plus the quantized variant that makes
//! M = 100 tractable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rcbr_bench::{paper_trace, PAPER_BUFFER};
use rcbr_schedule::{CostModel, OfflineOptimizer, RateGrid, TrellisConfig};

fn bench_scaling(c: &mut Criterion) {
    let buffer = PAPER_BUFFER;

    // Scaling with the number of rate levels M, exact algorithm.
    {
        let trace = paper_trace(1200, 1); // 50 s
        let mut group = c.benchmark_group("trellis_vs_levels_exact");
        group.sample_size(10);
        for m in [5usize, 10, 20, 50] {
            group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
                let grid = RateGrid::uniform(48_000.0, 2_400_000.0, m);
                let opt = OfflineOptimizer::new(TrellisConfig::new(
                    grid,
                    CostModel::from_ratio(1e6),
                    buffer,
                ));
                b.iter(|| opt.optimize(&trace).expect("feasible"))
            });
        }
        group.finish();
    }

    // The same M sweep with the quantized buffer axis — including the
    // M = 100 point the paper found intractable.
    {
        let trace = paper_trace(1200, 1);
        let mut group = c.benchmark_group("trellis_vs_levels_quantized");
        group.sample_size(10);
        for m in [20usize, 50, 100] {
            group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
                let grid = RateGrid::uniform(48_000.0, 2_400_000.0, m);
                let opt = OfflineOptimizer::new(
                    TrellisConfig::new(grid, CostModel::from_ratio(1e6), buffer)
                        .with_q_resolution(buffer / 1000.0),
                );
                b.iter(|| opt.optimize(&trace).expect("feasible"))
            });
        }
        group.finish();
    }

    // Scaling with trace length at M = 20 (quantized).
    {
        let mut group = c.benchmark_group("trellis_vs_length_m20");
        group.sample_size(10);
        for frames in [600usize, 1200, 2400, 4800] {
            let trace = paper_trace(frames, 2);
            group.bench_with_input(BenchmarkId::from_parameter(frames), &frames, |b, _| {
                let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 20);
                let opt = OfflineOptimizer::new(
                    TrellisConfig::new(grid, CostModel::from_ratio(1e6), buffer)
                        .with_q_resolution(buffer / 1000.0),
                );
                b.iter(|| opt.optimize(&trace).expect("feasible"))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
