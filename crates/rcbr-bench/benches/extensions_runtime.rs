//! Runtime of the extension modules: optimal smoothing, MTS model
//! fitting, the empirical effective bandwidth, and the frame-granularity
//! full-system simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use rcbr::system::{SystemConfig, SystemSim};
use rcbr_admission::Memoryless;
use rcbr_bench::paper_trace;
use rcbr_ldt::{trace_equivalent_bandwidth, QosTarget};
use rcbr_schedule::{optimal_smoothing, Ar1Config};
use rcbr_traffic::fit::{fit_mts, MtsFitConfig};

fn bench_extensions(c: &mut Criterion) {
    let trace = paper_trace(14_400, 1); // 10 minutes

    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);

    group.bench_function("optimal_smoothing_14400", |b| {
        b.iter(|| optimal_smoothing(&trace, 300_000.0))
    });

    group.bench_function("fit_mts_14400", |b| {
        b.iter(|| fit_mts(&trace, MtsFitConfig::default()))
    });

    group.bench_function("empirical_eb_14400", |b| {
        let qos = QosTarget::new(1_000_000.0, 1e-4);
        b.iter(|| trace_equivalent_bandwidth(&trace, qos, 96))
    });

    group.bench_function("system_sim_60s", |b| {
        let movie = paper_trace(2400, 2);
        let tau = movie.frame_interval();
        let cfg = SystemConfig {
            capacity: 20.0 * movie.mean_rate(),
            buffer: 300_000.0,
            arrival_rate: 0.3,
            hold_time: 30.0,
            policy: Ar1Config::fig2(64_000.0, movie.mean_rate(), tau),
            seed: 5,
        };
        b.iter(|| {
            let mut ctl = Memoryless::new(1e-3);
            SystemSim::new(&movie, cfg.clone()).run(&mut ctl, 60.0)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
