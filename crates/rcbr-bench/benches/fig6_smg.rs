//! Criterion wrapper for the Fig. 6 pipeline: one replication of each
//! scenario simulator at N = 20 sources, plus one full capacity search at
//! reduced accuracy.

use criterion::{criterion_group, criterion_main, Criterion};
use rcbr::{
    search_capacity, ScenarioBConfig, ScenarioCConfig, SearchConfig, SharedBufferSim,
    StepwiseCbrMuxSim,
};
use rcbr_bench::{paper_schedule, paper_trace, PAPER_BUFFER};
use rcbr_sim::SimRng;

fn bench_fig6(c: &mut Criterion) {
    let trace = paper_trace(7200, 1); // 5 minutes
    let schedule = paper_schedule(&trace, PAPER_BUFFER);
    let n = 20;

    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);

    let sim_b = SharedBufferSim::new(
        &trace,
        ScenarioBConfig {
            num_sources: n,
            buffer_per_source: PAPER_BUFFER,
        },
    );
    group.bench_function("scenario_b_replication_n20", |b| {
        let mut rng = SimRng::from_seed(7);
        b.iter(|| sim_b.loss_with_random_phasing(500_000.0, &mut rng))
    });

    let sim_c = StepwiseCbrMuxSim::new(
        &trace,
        &schedule,
        ScenarioCConfig {
            num_sources: n,
            buffer_per_source: PAPER_BUFFER,
        },
    );
    group.bench_function("scenario_c_replication_n20", |b| {
        let mut rng = SimRng::from_seed(7);
        b.iter(|| sim_c.run_with_random_phasing(500_000.0, &mut rng))
    });

    group.bench_function("capacity_search_c_n20", |b| {
        let search = SearchConfig {
            target_loss: 1e-4,
            relative_precision: 0.3,
            min_replications: 2,
            max_replications: 4,
            rate_tolerance: 0.1,
        };
        b.iter(|| {
            search_capacity(
                trace.mean_rate(),
                schedule.peak_service_rate(),
                &search,
                |rate, rep| {
                    let mut rng = SimRng::from_seed(100 + rep);
                    sim_c.run_with_random_phasing(rate, &mut rng).loss_fraction
                },
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
