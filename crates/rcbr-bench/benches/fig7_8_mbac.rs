//! Criterion wrapper for the Figs. 7–8 pipeline: one bounded call-level
//! simulation per controller.

use criterion::{criterion_group, criterion_main, Criterion};
use rcbr_admission::{CallSim, CallSimConfig, Memoryless, PerfectKnowledge, WithMemory};
use rcbr_bench::{paper_schedule, paper_trace, PAPER_BUFFER, PAPER_FAILURE_TARGET};

fn bench_mbac(c: &mut Criterion) {
    let trace = paper_trace(1440, 1); // 60 s calls
    let schedule = paper_schedule(&trace, PAPER_BUFFER);
    let dist = schedule.empirical_distribution();
    let capacity = 20.0 * dist.mean();
    let arrival = 1.5 * capacity / dist.mean() / schedule.duration();

    let mut group = c.benchmark_group("fig7_8");
    group.sample_size(10);

    group.bench_function("memoryless_10_windows", |b| {
        b.iter(|| {
            let cfg =
                CallSimConfig::new(capacity, arrival, PAPER_FAILURE_TARGET, 5).with_max_windows(10);
            let mut ctl = Memoryless::new(PAPER_FAILURE_TARGET);
            CallSim::new(&schedule, cfg).run(&mut ctl)
        })
    });

    group.bench_function("perfect_10_windows", |b| {
        b.iter(|| {
            let cfg =
                CallSimConfig::new(capacity, arrival, PAPER_FAILURE_TARGET, 5).with_max_windows(10);
            let mut ctl = PerfectKnowledge::new(dist.clone(), PAPER_FAILURE_TARGET);
            CallSim::new(&schedule, cfg).run(&mut ctl)
        })
    });

    group.bench_function("with_memory_10_windows", |b| {
        b.iter(|| {
            let cfg =
                CallSimConfig::new(capacity, arrival, PAPER_FAILURE_TARGET, 5).with_max_windows(10);
            let mut ctl = WithMemory::new(PAPER_FAILURE_TARGET, 10.0 * schedule.duration());
            CallSim::new(&schedule, cfg).run(&mut ctl)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_mbac);
criterion_main!(benches);
