//! Criterion wrapper for the Fig. 2 pipelines: the offline trellis
//! optimization and the online AR(1) pass at reduced trace length, so
//! algorithmic runtime regressions are caught by `cargo bench`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rcbr_bench::{paper_trace, PAPER_BUFFER};
use rcbr_schedule::online::run_online;
use rcbr_schedule::{Ar1Config, Ar1Policy, CostModel, OfflineOptimizer, RateGrid, TrellisConfig};

fn bench_fig2(c: &mut Criterion) {
    let trace = paper_trace(2400, 1); // 100 s of video
    let buffer = PAPER_BUFFER;
    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 20);

    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);

    group.bench_function("offline_opt_2400_frames", |b| {
        let opt = OfflineOptimizer::new(
            TrellisConfig::new(grid.clone(), CostModel::from_ratio(1e6), buffer)
                .with_q_resolution(buffer / 1000.0),
        );
        b.iter(|| opt.optimize(&trace).expect("feasible"))
    });

    group.bench_function("online_ar1_2400_frames", |b| {
        let cfg = Ar1Config::fig2(100_000.0, trace.mean_rate(), trace.frame_interval());
        b.iter_batched(
            || Ar1Policy::new(cfg, trace.frame_interval()),
            |mut policy| run_online(&trace, &mut policy, buffer),
            BatchSize::SmallInput,
        )
    });

    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
