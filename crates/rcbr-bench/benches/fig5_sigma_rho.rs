//! Criterion wrapper for the Fig. 5 pipeline: one (σ, ρ) point — a full
//! bisection of the steady-state loss curve — at two buffer scales.

use criterion::{criterion_group, criterion_main, Criterion};
use rcbr::min_rate_for_buffer;
use rcbr_bench::{paper_trace, PAPER_LOSS_TARGET};

fn bench_fig5(c: &mut Criterion) {
    let trace = paper_trace(14_400, 1); // 10 minutes

    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);

    for (label, sigma) in [("sigma_300kb", 300e3), ("sigma_10mb", 10e6)] {
        group.bench_function(label, |b| {
            b.iter(|| min_rate_for_buffer(&trace, sigma, PAPER_LOSS_TARGET))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
