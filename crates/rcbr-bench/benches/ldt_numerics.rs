//! Runtime of the large-deviations primitives: these sit inside admission
//! decisions (eq. (12) runs on every call arrival in an MBAC), so their
//! cost matters operationally, not just scientifically.

use criterion::{criterion_group, criterion_main, Criterion};
use rcbr_ldt::{
    chernoff_failure_probability, equivalent_bandwidth, max_admissible_calls,
    mts_equivalent_bandwidth, rate_function, QosTarget,
};
use rcbr_sim::stats::DiscreteDistribution;
use rcbr_traffic::MtsModel;

fn bench_ldt(c: &mut Criterion) {
    let slot = 1.0 / 24.0;
    let model = MtsModel::fig4_example(1e-3, slot);
    let qos = QosTarget::new(300_000.0, 1e-6);
    let dist = DiscreteDistribution::from_weights(&[
        (48_000.0, 0.05),
        (171_789.0, 0.22),
        (295_579.0, 0.39),
        (419_368.0, 0.22),
        (914_526.0, 0.09),
        (1_781_000.0, 0.03),
    ]);

    let mut group = c.benchmark_group("ldt");

    group.bench_function("equivalent_bandwidth_2state", |b| {
        let src = model.subchains()[0].as_source(slot);
        b.iter(|| equivalent_bandwidth(&src, qos))
    });

    group.bench_function("mts_equivalent_bandwidth_eq9", |b| {
        b.iter(|| mts_equivalent_bandwidth(&model, qos))
    });

    group.bench_function("rate_function_6levels", |b| {
        let a = 1.2 * dist.mean();
        b.iter(|| rate_function(&dist, a))
    });

    group.bench_function("chernoff_probability_n100", |b| {
        let capacity = 100.0 * dist.mean() * 1.2;
        b.iter(|| chernoff_failure_probability(&dist, 100, capacity))
    });

    group.bench_function("max_admissible_calls_oc3", |b| {
        // An OC-3's worth of capacity: the per-arrival admission test.
        b.iter(|| max_admissible_calls(&dist, 155_000_000.0, 1e-3))
    });

    group.finish();
}

criterion_group!(benches, bench_ldt);
criterion_main!(benches);
