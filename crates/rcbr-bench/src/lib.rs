//! # rcbr-bench — the experiment harness
//!
//! One binary per figure of the paper's evaluation (see `DESIGN.md` for
//! the experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig2` | efficiency vs. renegotiation interval (OPT + AR(1) heuristic) |
//! | `fig5` | the (σ, ρ) curve at 10⁻⁶ loss |
//! | `fig6` | per-stream capacity c(N) for the three Fig. 3 scenarios |
//! | `fig7_8` | memoryless MBAC failure probability and normalized utilization |
//! | `headline` | the §I claim: 300 kb + ~12 s renegotiations vs. ~100 Mb static |
//! | `theory_validation` | eqs. (9)–(12) against simulation |
//!
//! Every binary accepts `--frames <n>` and `--seed <s>` to trade accuracy
//! for runtime, prints the figure's rows to stdout, and writes a JSON
//! record next to its text output when `--out <dir>` is given.
//!
//! The Criterion benches (`cargo bench`) wrap reduced instances of the
//! same pipelines so regressions in the algorithms' *runtime* are caught;
//! the binaries are the scientific harness.

use rcbr_net::{CrashSpec, FaultConfig, KillSpec, LinkDownSpec, StallSpec};
use rcbr_runtime::{AdmissionPolicy, RuntimeConfig};
use rcbr_schedule::{CostModel, OfflineOptimizer, RateGrid, Schedule, TrellisConfig};
use rcbr_sim::SimRng;
use rcbr_traffic::{FrameTrace, SyntheticMpegSource};
use serde::Serialize;
use std::path::PathBuf;

/// The paper's buffer size: 300 kb.
pub const PAPER_BUFFER: f64 = 300_000.0;
/// The paper's loss target for Figs. 5 and 6.
pub const PAPER_LOSS_TARGET: f64 = 1e-6;
/// The paper's MBAC QoS target (Section VI).
pub const PAPER_FAILURE_TARGET: f64 = 1e-3;

/// Minimal CLI parsing shared by the figure binaries: `--key value` pairs
/// plus bare boolean flags (`--smoke`), which parse as `true`.
#[derive(Debug, Clone)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parse the process arguments. A `--key` followed by another `--key`
    /// (or by nothing) is a bare flag and gets the value `"true"`.
    pub fn parse() -> Self {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut it = raw.into_iter().peekable();
        while let Some(k) = it.next() {
            let k = k.strip_prefix("--").unwrap_or(&k).to_string();
            let v = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().expect("peeked"),
                _ => "true".to_string(),
            };
            pairs.push((k, v));
        }
        Self { pairs }
    }

    /// Whether a bare flag (or explicit `--key true`) is set.
    pub fn flag(&self, key: &str) -> bool {
        self.get(key, false)
    }

    /// Look up a typed value with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.parse().unwrap_or_else(|e| panic!("bad --{key}: {e:?}")))
            .unwrap_or(default)
    }

    /// Optional output directory (`--out`).
    pub fn out_dir(&self) -> Option<PathBuf> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == "out")
            .map(|(_, v)| PathBuf::from(v))
    }
}

/// The standard workload: a Star-Wars-like synthetic trace.
pub fn paper_trace(frames: usize, seed: u64) -> FrameTrace {
    let mut rng = SimRng::from_seed(seed);
    SyntheticMpegSource::star_wars_like().generate(frames, &mut rng)
}

/// The standard offline schedule: the paper's Fig. 6 configuration —
/// 300 kb buffer, drain-at-end (required for circular shifting), a cost
/// ratio giving roughly one renegotiation every ~12 s, quantized buffer
/// axis for tractability.
pub fn paper_schedule(trace: &FrameTrace, buffer: f64) -> Schedule {
    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 20);
    OfflineOptimizer::new(
        TrellisConfig::new(grid, CostModel::from_ratio(1e6), buffer)
            .with_drain_at_end()
            .with_q_resolution(buffer / 1000.0),
    )
    .optimize(trace)
    .expect("the 2.4 Mb/s grid covers the synthetic trace")
}

/// Fault-plane seed salt used by the chaos sweep and the survivability
/// soak: `cfg.fault.seed = cfg.seed ^ CHAOS_FAULT_SEED_SALT`.
pub const CHAOS_FAULT_SEED_SALT: u64 = 0xc4a05;
/// Fault-plane seed salt used by the admission frontier sweep.
pub const ADMISSION_FAULT_SEED_SALT: u64 = 0xad315;
/// Fault-plane seed salt used by the deterministic chaos fuzzer.
pub const FUZZ_FAULT_SEED_SALT: u64 = 0xf0cc5;
/// Fault-plane seed salt used by the flash-crowd storm sweep.
pub const STORM_FAULT_SEED_SALT: u64 = 0x5706d;

pub mod fuzz;

/// The one shared way benchmark binaries, parity tests, and the fuzzer
/// assemble a runtime scenario.
///
/// Every consumer used to hand-roll the same fragments — seed the fault
/// plane from the master seed xor a harness salt, size ports against the
/// mean admission load, split a fault intensity across the four cell
/// modes — and a re-typed copy that drifted by one expression would
/// silently change which committed baseline a test reproduces. The
/// builder owns those fragments; `build()` hands back a validated
/// [`RuntimeConfig`].
///
/// The capacity and intensity arithmetic is kept byte-for-byte identical
/// to the historical `sweep_cfg` / `frontier_cfg` expressions: the
/// committed CI baselines (`results/admission_frontier_smoke_baseline.json`,
/// `results/chaos_survivability_smoke.json`) gate on exact counters, so
/// even a float-expression re-association here would read as drift.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    cfg: RuntimeConfig,
    /// Applied at `build()` as `fault.seed = seed ^ salt`, so the call
    /// order of [`seed`](Self::seed) and the fault methods never matters.
    fault_seed_salt: Option<u64>,
}

impl ScenarioBuilder {
    /// Start from [`RuntimeConfig::balanced`].
    pub fn balanced(num_shards: usize, num_vcs: usize) -> Self {
        Self {
            cfg: RuntimeConfig::balanced(num_shards, num_vcs),
            fault_seed_salt: None,
        }
    }

    /// Set the master seed (traffic, policy jitter, and — via the salt —
    /// the fault plane).
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Stop after this many completed signaling requests.
    pub fn target_requests(mut self, target: u64) -> Self {
        self.cfg.target_requests = target;
        self
    }

    /// Hard cap on rounds. The fuzzer lowers this from the `balanced()`
    /// default so a schedule that strands its whole VC population (and
    /// therefore never reaches `target_requests`) terminates in bounded
    /// time instead of spinning out a million idle rounds.
    pub fn max_rounds(mut self, max_rounds: u64) -> Self {
        self.cfg.max_rounds = max_rounds;
        self
    }

    /// Replace the fault scenario with [`FaultConfig::transparent`]:
    /// no random cell faults, no scheduled outages.
    pub fn transparent_faults(mut self) -> Self {
        self.cfg.fault = FaultConfig::transparent();
        self
    }

    /// Derive the fault-plane seed from the master seed at `build()`:
    /// `fault.seed = seed ^ salt`. The salt decorrelates fault coin flips
    /// from the traffic streams while keeping the whole run a pure
    /// function of one master seed.
    pub fn fault_seed_salt(mut self, salt: u64) -> Self {
        self.fault_seed_salt = Some(salt);
        self
    }

    /// Split a total per-traversal fault probability (basis points)
    /// across the four cell-fault modes: 40% drop, 30% delay (up to 3
    /// supersteps), 15% duplicate, 15% corrupt — the chaos sweep's
    /// canonical mix.
    pub fn intensity_bp(mut self, intensity_bp: u32) -> Self {
        self.cfg.fault.drop_bp = intensity_bp * 40 / 100;
        self.cfg.fault.delay_bp = intensity_bp * 30 / 100;
        self.cfg.fault.max_delay = 3;
        self.cfg.fault.dup_bp = intensity_bp * 15 / 100;
        self.cfg.fault.corrupt_bp = intensity_bp * 15 / 100;
        self
    }

    /// Size ports at `headroom` times the *mean* per-switch initial
    /// admission load (`num_vcs * hops_per_vc / num_switches` flows at
    /// `initial_rate`). Contrast with [`RuntimeConfig::balanced`], which
    /// sizes against the most-loaded port; the sweeps want the mean so
    /// `headroom` maps directly onto contention.
    pub fn mean_flow_capacity(mut self, headroom: f64) -> Self {
        let flows_per_switch =
            (self.cfg.num_vcs * self.cfg.hops_per_vc) as f64 / self.cfg.num_switches as f64;
        self.cfg.port_capacity = flows_per_switch * self.cfg.initial_rate * headroom;
        self
    }

    /// Multiply whatever port capacity is currently configured.
    pub fn capacity_scale(mut self, factor: f64) -> Self {
        self.cfg.port_capacity *= factor;
        self
    }

    /// Run the periodic invariant auditor every `rounds` rounds.
    pub fn audit_interval(mut self, rounds: u64) -> Self {
        self.cfg.audit_interval = rounds;
        self
    }

    /// Select the admission policy and its measurement-window cadence.
    pub fn admission(mut self, policy: AdmissionPolicy, window_supersteps: u64) -> Self {
        self.cfg.admission = policy;
        self.cfg.measurement_window_supersteps = window_supersteps;
        self
    }

    /// Arm use-it-or-lose-it per-hop leases (0 disables).
    pub fn lease_supersteps(mut self, lease_supersteps: u64) -> Self {
        self.cfg.lease_supersteps = lease_supersteps;
        self
    }

    /// Add duplex chords on top of the ring substrate.
    pub fn extra_links(mut self, links: Vec<(usize, usize)>) -> Self {
        self.cfg.extra_links = links;
        self
    }

    /// Override the per-request verdict timeout.
    pub fn timeout_supersteps(mut self, timeout_supersteps: u64) -> Self {
        self.cfg.timeout_supersteps = timeout_supersteps;
        self
    }

    /// Set the recovery knobs the chaos sweep tunes: resync cadence,
    /// retry budget, and base backoff.
    pub fn recovery(mut self, resync_interval: u64, retry_budget: u32, backoff_base: u64) -> Self {
        self.cfg.resync_interval = resync_interval;
        self.cfg.retry_budget = retry_budget;
        self.cfg.backoff_base = backoff_base;
        self
    }

    /// Schedule a permanent switch kill.
    pub fn kill(mut self, switch: usize, at_superstep: u64) -> Self {
        self.cfg.fault.kills.push(KillSpec {
            switch,
            at_superstep,
        });
        self
    }

    /// Schedule a transient switch crash/restart window.
    pub fn crash(mut self, switch: usize, at_superstep: u64, down_supersteps: u64) -> Self {
        self.cfg.fault.crashes.push(CrashSpec {
            switch,
            at_superstep,
            down_supersteps,
        });
        self
    }

    /// Schedule one link-down window.
    pub fn link_down(
        mut self,
        a: usize,
        b: usize,
        at_superstep: u64,
        down_supersteps: u64,
    ) -> Self {
        self.cfg.fault.link_downs.push(LinkDownSpec {
            a,
            b,
            at_superstep,
            down_supersteps,
        });
        self
    }

    /// Schedule a shard-group stall.
    pub fn stall(mut self, spec: StallSpec) -> Self {
        self.cfg.fault.stall = Some(spec);
        self
    }

    /// Resolve the deferred fault seed and return the validated
    /// configuration.
    pub fn build(self) -> RuntimeConfig {
        let mut cfg = self.cfg;
        if let Some(salt) = self.fault_seed_salt {
            cfg.fault.seed = cfg.seed ^ salt;
        }
        cfg.validate();
        cfg
    }
}

/// The survivability soak scenario (see `chaos --survivability`): which
/// switch dies, which links flap, and the full runtime configuration.
#[derive(Debug, Clone)]
pub struct SurvivabilityScenario {
    /// The runtime configuration the soak runs.
    pub cfg: RuntimeConfig,
    /// The permanently killed switch.
    pub killed_switch: usize,
    /// The two links that flap (two down windows each).
    pub flapped_links: Vec<(usize, usize)>,
}

/// The committed survivability scenario: a chorded 8-ring under one
/// permanent switch kill and two flapping links, with per-hop leases
/// armed and no random cell faults. This is the configuration behind
/// `results/chaos_survivability_smoke.json`, shared between the chaos
/// binary and the admission parity tests so "reproduces the committed
/// counters" means the *same* scenario, not a re-typed copy.
pub fn survivability_scenario(seed: u64, smoke: bool) -> SurvivabilityScenario {
    let killed = 3usize;
    let flapped = vec![(5usize, 6usize), (6usize, 7usize)];
    let mut builder = ScenarioBuilder::balanced(4, 64) // 8 switches, 4-hop paths
        .seed(seed)
        .target_requests(if smoke { 5_000 } else { 100_000 })
        .transparent_faults()
        .fault_seed_salt(CHAOS_FAULT_SEED_SALT)
        // Chord (2, 4) routes around the killed switch; chord (5, 7)
        // routes around both flapping links.
        .extra_links(vec![(2, 4), (5, 7)])
        .lease_supersteps(200)
        // Headroom for make-before-break double occupancy while half the
        // population reroutes onto the chords at once.
        .capacity_scale(4.0)
        .kill(killed, 200);
    // Two windows per link, staggered so the two flapping links are never
    // down at once: simultaneous outages would isolate the switch between
    // them, and the soak is about VCs that *do* have an alternate path.
    for (&(a, b), windows) in flapped.iter().zip([[350u64, 1_800], [500, 2_200]]) {
        for at in windows {
            builder = builder.link_down(a, b, at, 120);
        }
    }
    SurvivabilityScenario {
        cfg: builder.build(),
        killed_switch: killed,
        flapped_links: flapped,
    }
}

/// Write `value` as pretty JSON to `dir/name` when a directory was given.
pub fn write_json<T: Serialize>(dir: &Option<PathBuf>, name: &str, value: &T) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create output dir");
        let path = dir.join(name);
        std::fs::write(
            &path,
            serde_json::to_string_pretty(value).expect("serialize"),
        )
        .expect("write JSON");
        eprintln!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_trace_is_calibrated() {
        let tr = paper_trace(2400, 1);
        assert!((tr.mean_rate() - 374_000.0).abs() < 1.0);
    }

    #[test]
    fn paper_schedule_is_feasible() {
        let tr = paper_trace(2400, 2);
        let s = paper_schedule(&tr, PAPER_BUFFER);
        assert!(s.is_feasible(&tr, PAPER_BUFFER));
        assert!(s.replay(&tr, PAPER_BUFFER).final_backlog <= 1e-9);
    }
}
