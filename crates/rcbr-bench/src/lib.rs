//! # rcbr-bench — the experiment harness
//!
//! One binary per figure of the paper's evaluation (see `DESIGN.md` for
//! the experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig2` | efficiency vs. renegotiation interval (OPT + AR(1) heuristic) |
//! | `fig5` | the (σ, ρ) curve at 10⁻⁶ loss |
//! | `fig6` | per-stream capacity c(N) for the three Fig. 3 scenarios |
//! | `fig7_8` | memoryless MBAC failure probability and normalized utilization |
//! | `headline` | the §I claim: 300 kb + ~12 s renegotiations vs. ~100 Mb static |
//! | `theory_validation` | eqs. (9)–(12) against simulation |
//!
//! Every binary accepts `--frames <n>` and `--seed <s>` to trade accuracy
//! for runtime, prints the figure's rows to stdout, and writes a JSON
//! record next to its text output when `--out <dir>` is given.
//!
//! The Criterion benches (`cargo bench`) wrap reduced instances of the
//! same pipelines so regressions in the algorithms' *runtime* are caught;
//! the binaries are the scientific harness.

use rcbr_net::{FaultConfig, KillSpec, LinkDownSpec};
use rcbr_runtime::RuntimeConfig;
use rcbr_schedule::{CostModel, OfflineOptimizer, RateGrid, Schedule, TrellisConfig};
use rcbr_sim::SimRng;
use rcbr_traffic::{FrameTrace, SyntheticMpegSource};
use serde::Serialize;
use std::path::PathBuf;

/// The paper's buffer size: 300 kb.
pub const PAPER_BUFFER: f64 = 300_000.0;
/// The paper's loss target for Figs. 5 and 6.
pub const PAPER_LOSS_TARGET: f64 = 1e-6;
/// The paper's MBAC QoS target (Section VI).
pub const PAPER_FAILURE_TARGET: f64 = 1e-3;

/// Minimal CLI parsing shared by the figure binaries: `--key value` pairs
/// plus bare boolean flags (`--smoke`), which parse as `true`.
#[derive(Debug, Clone)]
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parse the process arguments. A `--key` followed by another `--key`
    /// (or by nothing) is a bare flag and gets the value `"true"`.
    pub fn parse() -> Self {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut it = raw.into_iter().peekable();
        while let Some(k) = it.next() {
            let k = k.strip_prefix("--").unwrap_or(&k).to_string();
            let v = match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().expect("peeked"),
                _ => "true".to_string(),
            };
            pairs.push((k, v));
        }
        Self { pairs }
    }

    /// Whether a bare flag (or explicit `--key true`) is set.
    pub fn flag(&self, key: &str) -> bool {
        self.get(key, false)
    }

    /// Look up a typed value with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.parse().unwrap_or_else(|e| panic!("bad --{key}: {e:?}")))
            .unwrap_or(default)
    }

    /// Optional output directory (`--out`).
    pub fn out_dir(&self) -> Option<PathBuf> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == "out")
            .map(|(_, v)| PathBuf::from(v))
    }
}

/// The standard workload: a Star-Wars-like synthetic trace.
pub fn paper_trace(frames: usize, seed: u64) -> FrameTrace {
    let mut rng = SimRng::from_seed(seed);
    SyntheticMpegSource::star_wars_like().generate(frames, &mut rng)
}

/// The standard offline schedule: the paper's Fig. 6 configuration —
/// 300 kb buffer, drain-at-end (required for circular shifting), a cost
/// ratio giving roughly one renegotiation every ~12 s, quantized buffer
/// axis for tractability.
pub fn paper_schedule(trace: &FrameTrace, buffer: f64) -> Schedule {
    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 20);
    OfflineOptimizer::new(
        TrellisConfig::new(grid, CostModel::from_ratio(1e6), buffer)
            .with_drain_at_end()
            .with_q_resolution(buffer / 1000.0),
    )
    .optimize(trace)
    .expect("the 2.4 Mb/s grid covers the synthetic trace")
}

/// The survivability soak scenario (see `chaos --survivability`): which
/// switch dies, which links flap, and the full runtime configuration.
#[derive(Debug, Clone)]
pub struct SurvivabilityScenario {
    /// The runtime configuration the soak runs.
    pub cfg: RuntimeConfig,
    /// The permanently killed switch.
    pub killed_switch: usize,
    /// The two links that flap (two down windows each).
    pub flapped_links: Vec<(usize, usize)>,
}

/// The committed survivability scenario: a chorded 8-ring under one
/// permanent switch kill and two flapping links, with per-hop leases
/// armed and no random cell faults. This is the configuration behind
/// `results/chaos_survivability_smoke.json`, shared between the chaos
/// binary and the admission parity tests so "reproduces the committed
/// counters" means the *same* scenario, not a re-typed copy.
pub fn survivability_scenario(seed: u64, smoke: bool) -> SurvivabilityScenario {
    let killed = 3usize;
    let flapped = vec![(5usize, 6usize), (6usize, 7usize)];
    let mut cfg = RuntimeConfig::balanced(4, 64); // 8 switches, 4-hop paths
    cfg.target_requests = if smoke { 5_000 } else { 100_000 };
    cfg.seed = seed;
    cfg.fault = FaultConfig::transparent();
    cfg.fault.seed = seed ^ 0xc4a05;
    // Chord (2, 4) routes around the killed switch; chord (5, 7) routes
    // around both flapping links.
    cfg.extra_links = vec![(2, 4), (5, 7)];
    cfg.lease_supersteps = 200;
    // Headroom for make-before-break double occupancy while half the
    // population reroutes onto the chords at once.
    cfg.port_capacity *= 4.0;
    cfg.fault.kills = vec![KillSpec {
        switch: killed,
        at_superstep: 200,
    }];
    // Two windows per link, staggered so the two flapping links are never
    // down at once: simultaneous outages would isolate the switch between
    // them, and the soak is about VCs that *do* have an alternate path.
    cfg.fault.link_downs = flapped
        .iter()
        .zip([[350u64, 1_800], [500, 2_200]])
        .flat_map(|(&(a, b), windows)| {
            windows.into_iter().map(move |at| LinkDownSpec {
                a,
                b,
                at_superstep: at,
                down_supersteps: 120,
            })
        })
        .collect();
    SurvivabilityScenario {
        cfg,
        killed_switch: killed,
        flapped_links: flapped,
    }
}

/// Write `value` as pretty JSON to `dir/name` when a directory was given.
pub fn write_json<T: Serialize>(dir: &Option<PathBuf>, name: &str, value: &T) {
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir).expect("create output dir");
        let path = dir.join(name);
        std::fs::write(
            &path,
            serde_json::to_string_pretty(value).expect("serialize"),
        )
        .expect("write JSON");
        eprintln!("wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_trace_is_calibrated() {
        let tr = paper_trace(2400, 1);
        assert!((tr.mean_rate() - 374_000.0).abs() < 1.0);
    }

    #[test]
    fn paper_schedule_is_feasible() {
        let tr = paper_trace(2400, 2);
        let s = paper_schedule(&tr, PAPER_BUFFER);
        assert!(s.is_feasible(&tr, PAPER_BUFFER));
        assert!(s.replay(&tr, PAPER_BUFFER).final_backlog <= 1e-9);
    }
}
