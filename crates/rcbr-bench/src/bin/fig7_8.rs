//! Figs. 7 & 8 — the memoryless MBAC under dynamic call arrivals:
//! renegotiation failure probability (Fig. 7) and utilization normalized
//! to the perfect-knowledge controller (Fig. 8), across link capacities
//! and offered loads. The memory-based controller of Section VI's remedy
//! is included as a third series.
//!
//! The paper's shape: at small capacities the memoryless scheme misses
//! the 10⁻³ target by 3–4 orders of magnitude while its normalized
//! utilization exceeds 1 (it over-admits); both improve with system size
//! and worsen with offered load.
//!
//! Usage: `fig7_8 [--frames 2880] [--seed 1] [--windows 60] [--out results/]`

use rcbr_admission::{CallSim, CallSimConfig, Memoryless, PerfectKnowledge, WithMemory};
use rcbr_bench::{
    paper_schedule, paper_trace, write_json, Args, PAPER_BUFFER, PAPER_FAILURE_TARGET,
};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    capacity_x_mean: f64,
    offered_load: f64,
    scheme: &'static str,
    failure_probability: f64,
    utilization: f64,
    normalized_utilization: f64,
    blocking_probability: f64,
}

fn main() {
    let args = Args::parse();
    // A 2-minute call keeps the dynamic simulation cheap; the schedule's
    // *shape* (multi-level, scene-scale segments) is what matters.
    let frames: usize = args.get("frames", 2880);
    let seed: u64 = args.get("seed", 1);
    let windows: u64 = args.get("windows", 60);
    let target = PAPER_FAILURE_TARGET;

    let trace = paper_trace(frames, seed);
    let schedule = paper_schedule(&trace, PAPER_BUFFER);
    let dist = schedule.empirical_distribution();
    let mean = dist.mean();

    println!("# Figs. 7-8 — MBAC failure probability and normalized utilization");
    println!(
        "# call: {:.0} s, mean {:.0} kb/s, peak {:.0} kb/s, {} levels; target {target:.0e}",
        schedule.duration(),
        mean / 1e3,
        dist.peak() / 1e3,
        dist.len()
    );
    println!(
        "{:>10} {:>8} {:<14} {:>12} {:>12} {:>10} {:>10}",
        "cap/mean", "load", "scheme", "failure", "norm util", "util", "blocking"
    );

    let mut rows = Vec::new();
    for &cap_x in &[10.0, 50.0, 100.0, 500.0] {
        let capacity = cap_x * mean;
        for &load in &[0.4, 0.8, 1.2, 1.6, 2.0] {
            let arrival = load * capacity / mean / schedule.duration();
            let run = |scheme: &mut dyn rcbr_admission::AdmissionController| {
                let cfg = CallSimConfig::new(capacity, arrival, target, seed * 7 + 13)
                    .with_max_windows(windows);
                CallSim::new(&schedule, cfg).run(scheme)
            };
            let mut perfect = PerfectKnowledge::new(dist.clone(), target);
            let r_pk = run(&mut perfect);
            let mut memoryless = Memoryless::new(target);
            let r_ml = run(&mut memoryless);
            let mut memory = WithMemory::new(target, 10.0 * schedule.duration());
            let r_wm = run(&mut memory);

            for (scheme, r) in [
                ("perfect", &r_pk),
                ("memoryless", &r_ml),
                ("with-memory", &r_wm),
            ] {
                let norm = if r_pk.utilization > 0.0 {
                    r.utilization / r_pk.utilization
                } else {
                    0.0
                };
                println!(
                    "{:>10.0} {:>8.1} {:<14} {:>12.3e} {:>12.2} {:>9.1}% {:>9.1}%",
                    cap_x,
                    load,
                    scheme,
                    r.failure_probability,
                    norm,
                    100.0 * r.utilization,
                    100.0 * r.blocking_probability
                );
                rows.push(Row {
                    capacity_x_mean: cap_x,
                    offered_load: load,
                    scheme,
                    failure_probability: r.failure_probability,
                    utilization: r.utilization,
                    normalized_utilization: norm,
                    blocking_probability: r.blocking_probability,
                });
            }
        }
    }

    println!("#\n# Expected shape (paper): memoryless failure 10^2-10^4 x target at cap/mean=10,");
    println!("# approaching target as capacity grows; normalized utilization > 1 where it");
    println!("# over-admits; failures rise with offered load; memory restores the target.");
    write_json(&args.out_dir(), "fig7_8.json", &rows);
}
