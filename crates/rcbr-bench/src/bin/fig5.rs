//! Fig. 5 — "The (σ, ρ)-curve of the video trace for 10⁻⁶ loss."
//!
//! For each buffer size σ, the minimum drain rate ρ such that the
//! fraction of bits lost is below 10⁻⁶. The paper's anchors: at the codec
//! buffer (300 kb) ρ ≈ 4.06x the mean rate; to run at 1.05x the mean the
//! buffer must grow to ~100 Mb.
//!
//! Usage: `fig5 [--frames 171000] [--seed 1] [--out results/]`

use rcbr::sigma_rho::min_rate_for_buffer;
use rcbr_bench::{paper_trace, write_json, Args, PAPER_LOSS_TARGET};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    sigma_bits: f64,
    rho_bps: f64,
    rho_over_mean: f64,
}

fn main() {
    let args = Args::parse();
    let frames: usize = args.get("frames", 171_000); // the full-movie scale
    let seed: u64 = args.get("seed", 1);
    let trace = paper_trace(frames, seed);
    let mean = trace.mean_rate();

    println!("# Fig. 5 — (sigma, rho) curve at 1e-6 bit loss");
    println!(
        "# trace: {} frames ({:.0} s), mean {:.0} kb/s, peak {:.0} kb/s",
        frames,
        trace.duration(),
        mean / 1e3,
        trace.peak_rate() / 1e3
    );
    println!("{:>14} {:>14} {:>12}", "sigma", "rho (kb/s)", "rho/mean");

    let sigmas: Vec<f64> = [10e3, 30e3, 100e3, 300e3, 1e6, 3e6, 10e6, 30e6, 100e6, 300e6].to_vec();
    let mut rows = Vec::new();
    for &sigma in &sigmas {
        let rho = min_rate_for_buffer(&trace, sigma, PAPER_LOSS_TARGET);
        let row = Row {
            sigma_bits: sigma,
            rho_bps: rho,
            rho_over_mean: rho / mean,
        };
        println!(
            "{:>14} {:>14.1} {:>12.2}",
            rcbr_sim::units::fmt_bits(sigma),
            rho / 1e3,
            row.rho_over_mean
        );
        rows.push(row);
    }

    let codec = min_rate_for_buffer(&trace, 300e3, PAPER_LOSS_TARGET);
    println!(
        "#\n# Anchors: rho(300 kb) = {:.2}x mean (paper: 4.06x).",
        codec / mean
    );
    write_json(&args.out_dir(), "fig5.json", &rows);
}
