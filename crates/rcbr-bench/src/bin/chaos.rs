//! Chaos sweep — recovery behavior vs. fault intensity.
//!
//! Sweeps the deterministic fault plane's intensity against the recovery
//! knobs (resync cadence, retry budget, backoff base) and records, per
//! cell, what the signaling plane did about it: grants, denials, retries,
//! timeouts, degraded VCs, and drift detected/repaired. A determinism
//! probe then arms *every* fault mode at once — drop + delay + duplicate +
//! corrupt + a switch crash/restart + a shard-group stall — and checks
//! that 1/2/4-shard runs and the sequential replay still produce
//! bit-identical counters with zero residual drift.
//!
//! A second mode, `--survivability`, soaks the *survivable* signaling
//! plane instead: one permanent switch kill plus two flapping links over
//! a chorded ring, leases enabled, no random cell faults. It asserts the
//! headline survivability contract — VCs with a surviving alternate path
//! end non-degraded on valid live routes, no-path VCs end cleanly
//! degraded (torn down, never deadlocked), the end-of-run audit closes at
//! zero drift, and the counters stay bit-identical across shard counts
//! {1, 2, 4} and the sequential replay — and writes
//! `chaos_survivability.json` (`chaos_survivability_smoke.json` under
//! `--smoke`).
//!
//! Usage: `chaos [--smoke] [--survivability] [--seed 7] [--out results/]`.
//! The full sweep writes `chaos_sweep.json`; `--smoke` runs a <60 s
//! subset (for CI) and writes `chaos_smoke.json`.

use rcbr_bench::{write_json, Args, ScenarioBuilder, CHAOS_FAULT_SEED_SALT};
use rcbr_net::StallSpec;
use rcbr_runtime::{run, run_sequential, RunReport, RuntimeConfig};
use serde::Serialize;
use std::path::PathBuf;

/// One (fault intensity x recovery parameters) sweep cell.
#[derive(Debug, Serialize)]
struct Cell {
    /// Total fault probability in basis points, split 40% drop / 30%
    /// delay / 15% duplicate / 15% corrupt.
    intensity_bp: u32,
    resync_interval: u64,
    retry_budget: u32,
    backoff_base: u64,
    completed: u64,
    accepted: u64,
    denied: u64,
    retries: u64,
    timeouts: u64,
    exhausted: u64,
    degraded_vcs: u64,
    cells_dropped: u64,
    cells_delayed: u64,
    cells_duplicated: u64,
    cells_corrupted: u64,
    resync_repairs: u64,
    audit_drift: u64,
    drift_repaired: u64,
    final_drift: u64,
    mean_source_loss: f64,
    wall_seconds: f64,
}

/// The all-modes-at-once determinism check.
#[derive(Debug, Serialize)]
struct Probe {
    shard_counts: Vec<usize>,
    counters_identical_with_sequential: bool,
    final_drift_zero: bool,
    completed: u64,
}

#[derive(Debug, Serialize)]
struct Report {
    smoke: bool,
    seed: u64,
    requests_per_cell: u64,
    total_requests: u64,
    cells: Vec<Cell>,
    probe: Probe,
}

/// (resync_interval, retry_budget, backoff_base).
type Recovery = (u64, u32, u64);

fn sweep_cfg(seed: u64, target: u64, intensity_bp: u32) -> RuntimeConfig {
    // Capacity tight enough that contention and fault recovery interact,
    // loose enough that grants stay common.
    ScenarioBuilder::balanced(2, 64)
        .seed(seed)
        .target_requests(target)
        .mean_flow_capacity(2.0)
        .audit_interval(32)
        .fault_seed_salt(CHAOS_FAULT_SEED_SALT)
        .intensity_bp(intensity_bp)
        .build()
}

fn cell(cfg: &RuntimeConfig, intensity_bp: u32) -> Cell {
    let report = run(cfg);
    let c = &report.counters;
    assert_eq!(
        c.completed,
        c.accepted + c.exhausted,
        "fate accounting broken: {c:?}"
    );
    assert_eq!(
        report.audit.final_drift, 0,
        "recovery left residual drift: {:?}",
        report.audit
    );
    Cell {
        intensity_bp,
        resync_interval: cfg.resync_interval,
        retry_budget: cfg.retry_budget,
        backoff_base: cfg.backoff_base,
        completed: c.completed,
        accepted: c.accepted,
        denied: c.denied,
        retries: c.retries,
        timeouts: c.timeouts,
        exhausted: c.exhausted,
        degraded_vcs: report.degraded_vcs,
        cells_dropped: c.cells_dropped,
        cells_delayed: c.cells_delayed,
        cells_duplicated: c.cells_duplicated,
        cells_corrupted: c.cells_corrupted,
        resync_repairs: c.resync_repairs,
        audit_drift: c.audit_drift,
        drift_repaired: report.audit.drift_repaired,
        final_drift: report.audit.final_drift,
        mean_source_loss: report.mean_source_loss,
        wall_seconds: report.wall_seconds,
    }
}

/// Arm every fault mode at once and compare 1/2/4 shards + sequential.
fn probe(seed: u64, target: u64) -> Probe {
    let cfg = ScenarioBuilder::balanced(2, 64)
        .seed(seed)
        .target_requests(target)
        .mean_flow_capacity(2.0)
        .audit_interval(32)
        .fault_seed_salt(CHAOS_FAULT_SEED_SALT)
        .intensity_bp(500)
        .timeout_supersteps(24)
        .crash(1, 40, 30)
        .stall(StallSpec {
            groups: 3,
            group: 1,
            at_superstep: 25,
            supersteps: 12,
        })
        .build();

    let reference = run_sequential(&cfg);
    let shard_counts = vec![1usize, 2, 4];
    let mut identical = true;
    let mut drift_zero = reference.audit.final_drift == 0;
    for &shards in &shard_counts {
        let mut scfg = cfg.clone();
        scfg.num_shards = shards;
        let report: RunReport = run(&scfg);
        if report.counters != reference.counters {
            identical = false;
            eprintln!("!! {shards}-shard counters diverge from the sequential replay");
        }
        if report.audit.final_drift != 0 {
            drift_zero = false;
            eprintln!("!! {shards}-shard run left residual drift");
        }
    }
    Probe {
        shard_counts,
        counters_identical_with_sequential: identical,
        final_drift_zero: drift_zero,
        completed: reference.counters.completed,
    }
}

/// What the survivability soak measured and asserted.
#[derive(Debug, Serialize)]
struct SurvivabilityReport {
    smoke: bool,
    seed: u64,
    target_requests: u64,
    killed_switch: usize,
    flapped_links: Vec<(usize, usize)>,
    supersteps: u64,
    completed: u64,
    reroutes: u64,
    reroutes_committed: u64,
    reroutes_denied: u64,
    teardown_cells: u64,
    leases_expired: u64,
    cells_link_killed: u64,
    crash_killed: u64,
    stranded_events: u64,
    unstranded_events: u64,
    degraded_vcs: u64,
    surviving_vcs: u64,
    final_drift: u64,
    off_route_residue: u64,
    counters_identical_with_sequential: bool,
    wall_seconds: f64,
}

/// The survivability soak: a chorded 8-ring under one permanent kill and
/// two flapping links, with per-hop leases armed. Every departure from
/// the survivability contract is a panic, so CI fails loudly.
fn survivability(seed: u64, smoke: bool) -> SurvivabilityReport {
    // The scenario lives in the library so the admission parity tests can
    // replay the exact committed configuration.
    let scenario = rcbr_bench::survivability_scenario(seed, smoke);
    let (cfg, killed, flapped) = (scenario.cfg, scenario.killed_switch, scenario.flapped_links);

    let reference = run_sequential(&cfg);
    let mut identical = true;
    for shards in [1usize, 2, 4] {
        let mut scfg = cfg.clone();
        scfg.num_shards = shards;
        let r = run(&scfg);
        if r.counters != reference.counters || r.audit != reference.audit || r.vcs != reference.vcs
        {
            identical = false;
            eprintln!("!! {shards}-shard survivability run diverges from the sequential replay");
        }
    }
    assert!(
        identical,
        "survivability soak must be shard-count invariant"
    );
    assert_eq!(reference.audit.final_drift, 0, "audit must close at zero");
    assert_eq!(
        reference.audit.off_route_residue, 0,
        "torn-down VCs must leave no bandwidth behind"
    );
    assert!(reference.counters.reroutes_committed > 0, "nobody rerouted");
    assert!(reference.counters.stranded_events > 0, "nobody stranded");

    // Per-VC contract: a VC whose endpoint died has no alternate path and
    // must end cleanly degraded holding nothing; everyone else must end
    // non-degraded on a valid, live route.
    let topo = cfg.topology();
    let mut surviving = 0u64;
    for vc in &reference.vcs {
        let endpoint_killed =
            vc.vci as usize % 8 == killed || (vc.vci as usize + cfg.hops_per_vc - 1) % 8 == killed;
        if endpoint_killed {
            assert!(vc.degraded, "VC {} lost an endpoint, must degrade", vc.vci);
            assert_eq!(vc.believed, 0.0, "a stranded VC holds nothing");
            assert!(vc.route.is_empty());
        } else {
            assert!(!vc.degraded, "VC {} had an alternate path", vc.vci);
            assert!(vc.believed > 0.0);
            assert!(
                !vc.route.contains(&killed),
                "VC {} routes over the kill",
                vc.vci
            );
            assert!(
                vc.route
                    .windows(2)
                    .all(|w| topo.links(w[0]).iter().any(|l| l.to == w[1])),
                "VC {} ended on a non-route {:?}",
                vc.vci,
                vc.route
            );
        }
        if !vc.degraded {
            surviving += 1;
        }
    }

    let c = &reference.counters;
    SurvivabilityReport {
        smoke,
        seed,
        target_requests: cfg.target_requests,
        killed_switch: killed,
        flapped_links: flapped,
        supersteps: reference.supersteps,
        completed: c.completed,
        reroutes: c.reroutes,
        reroutes_committed: c.reroutes_committed,
        reroutes_denied: c.reroutes_denied,
        teardown_cells: c.teardown_cells,
        leases_expired: c.leases_expired,
        cells_link_killed: c.cells_link_killed,
        crash_killed: c.crash_killed,
        stranded_events: c.stranded_events,
        unstranded_events: c.unstranded_events,
        degraded_vcs: reference.degraded_vcs,
        surviving_vcs: surviving,
        final_drift: reference.audit.final_drift,
        off_route_residue: reference.audit.off_route_residue,
        counters_identical_with_sequential: identical,
        wall_seconds: reference.wall_seconds,
    }
}

fn main() {
    let args = Args::parse();
    let smoke = args.flag("smoke");
    let seed: u64 = args.get("seed", 7);
    let out = args.out_dir().or_else(|| Some(PathBuf::from("results")));

    if args.flag("survivability") {
        let report = survivability(seed, smoke);
        println!(
            "# survivability soak: {} requests, {} reroutes committed, {} stranded, \
             {} surviving VCs, final drift {}, shard-identical {}",
            report.completed,
            report.reroutes_committed,
            report.stranded_events,
            report.surviving_vcs,
            report.final_drift,
            report.counters_identical_with_sequential
        );
        let name = if smoke {
            "chaos_survivability_smoke.json"
        } else {
            "chaos_survivability.json"
        };
        write_json(&out, name, &report);
        return;
    }

    let (intensities, recoveries, target, probe_target): (&[u32], &[Recovery], u64, u64) = if smoke
    {
        (&[0, 400], &[(8, 3, 4)], 1_500, 800)
    } else {
        (
            &[0, 150, 400, 800],
            &[(8, 3, 4), (2, 3, 4), (8, 1, 4), (8, 5, 1)],
            12_000,
            4_000,
        )
    };

    println!("# Chaos sweep — fault intensity x recovery parameters, seed {seed}");
    println!(
        "{:>9} {:>6} {:>6} {:>7} {:>9} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "intensity",
        "resync",
        "budget",
        "backoff",
        "accepted",
        "denied",
        "retries",
        "timeouts",
        "degraded",
        "repaired",
        "drift_end"
    );

    let mut cells = Vec::new();
    for &bp in intensities {
        for &(resync_interval, retry_budget, backoff_base) in recoveries {
            let mut cfg = sweep_cfg(seed, target, bp);
            cfg.resync_interval = resync_interval;
            cfg.retry_budget = retry_budget;
            cfg.backoff_base = backoff_base;
            let c = cell(&cfg, bp);
            println!(
                "{:>9} {:>6} {:>6} {:>7} {:>9} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}",
                c.intensity_bp,
                c.resync_interval,
                c.retry_budget,
                c.backoff_base,
                c.accepted,
                c.denied,
                c.retries,
                c.timeouts,
                c.degraded_vcs,
                c.drift_repaired,
                c.final_drift
            );
            cells.push(c);
        }
    }

    let probe = probe(seed, probe_target);
    println!(
        "# all-modes probe over shards {:?}: counters identical = {}, final drift zero = {}",
        probe.shard_counts, probe.counters_identical_with_sequential, probe.final_drift_zero
    );
    assert!(probe.counters_identical_with_sequential);
    assert!(probe.final_drift_zero);

    let total: u64 = cells.iter().map(|c| c.completed).sum::<u64>() + probe.completed;
    println!("# total requests swept: {total}");

    let report = Report {
        smoke,
        seed,
        requests_per_cell: target,
        total_requests: total,
        cells,
        probe,
    };
    let name = if smoke {
        "chaos_smoke.json"
    } else {
        "chaos_sweep.json"
    };
    write_json(&out, name, &report);
}
