//! Fig. 6 — "SMG achievable for 10⁻⁶ loss probability": the per-stream
//! capacity c(N) needed by the three Fig. 3 scenarios as the number of
//! multiplexed streams N grows.
//!
//! * (a) static CBR: c is the (σ, ρ) value at the 300 kb buffer,
//!   independent of N (paper: ≈ 4.06x the mean);
//! * (b) unrestricted sharing into an N·B buffer: the SMG upper bound;
//! * (c) RCBR: offline schedules multiplexed bufferlessly; asymptotically
//!   c approaches the inverse bandwidth efficiency of the schedule.
//!
//! The paper's headline: at N = 100, RCBR needs less than a third of the
//! static-CBR bandwidth.
//!
//! Usage: `fig6 [--frames 43200] [--seed 1] [--loss 1e-6] [--out results/]`

use rcbr::{
    min_rate_for_buffer, search_capacity, ScenarioBConfig, ScenarioCConfig, SearchConfig,
    SharedBufferSim, StepwiseCbrMuxSim,
};
use rcbr_bench::{paper_schedule, paper_trace, write_json, Args, PAPER_BUFFER};
use rcbr_sim::SimRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    n: usize,
    c_a_bps: f64,
    c_b_bps: f64,
    c_c_bps: f64,
    rcbr_over_cbr: f64,
    evaluations_b: u64,
    evaluations_c: u64,
}

fn main() {
    let args = Args::parse();
    let frames: usize = args.get("frames", 43_200);
    let seed: u64 = args.get("seed", 1);
    let loss: f64 = args.get("loss", 1e-6);
    let trace = paper_trace(frames, seed);
    let buffer = PAPER_BUFFER;
    let mean = trace.mean_rate();

    // Scenario (a): one number for all N.
    let c_a = min_rate_for_buffer(&trace, buffer, loss);

    // The base schedule for scenario (c).
    eprintln!("computing the offline schedule…");
    let schedule = paper_schedule(&trace, buffer);
    eprintln!(
        "schedule: {} renegotiations, mean interval {:.1} s, efficiency {:.1}%",
        schedule.num_renegotiations(),
        schedule.mean_renegotiation_interval(),
        100.0 * schedule.bandwidth_efficiency(&trace)
    );

    let search = SearchConfig::paper(loss);
    println!("# Fig. 6 — per-stream capacity c(N) for loss <= {loss:.0e}");
    println!(
        "# trace: {} frames, mean {:.0} kb/s; c_a = {:.0} kb/s ({:.2}x mean)",
        frames,
        mean / 1e3,
        c_a / 1e3,
        c_a / mean
    );
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>12}",
        "N", "c_a (kb/s)", "c_b (kb/s)", "c_c (kb/s)", "c_c/c_a"
    );

    let mut rows = Vec::new();
    for &n in &[1usize, 2, 5, 10, 20, 50, 100] {
        let sim_b = SharedBufferSim::new(
            &trace,
            ScenarioBConfig {
                num_sources: n,
                buffer_per_source: buffer,
            },
        );
        let point_b = search_capacity(
            mean,
            c_a.max(trace.peak_rate() / n as f64),
            &search,
            |rate, rep| {
                let mut rng = SimRng::from_seed(seed * 10_000 + n as u64 * 100 + rep);
                sim_b.loss_with_random_phasing(rate, &mut rng)
            },
        );

        let sim_c = StepwiseCbrMuxSim::new(
            &trace,
            &schedule,
            ScenarioCConfig {
                num_sources: n,
                buffer_per_source: buffer,
            },
        );
        let hi_c = schedule.peak_service_rate();
        let point_c = search_capacity(mean, hi_c, &search, |rate, rep| {
            let mut rng = SimRng::from_seed(seed * 20_000 + n as u64 * 100 + rep);
            sim_c.run_with_random_phasing(rate, &mut rng).loss_fraction
        });

        let row = Row {
            n,
            c_a_bps: c_a,
            c_b_bps: point_b.rate,
            c_c_bps: point_c.rate,
            rcbr_over_cbr: point_c.rate / c_a,
            evaluations_b: point_b.evaluations,
            evaluations_c: point_c.evaluations,
        };
        println!(
            "{:>5} {:>12.0} {:>12.0} {:>12.0} {:>12.2}",
            n,
            c_a / 1e3,
            point_b.rate / 1e3,
            point_c.rate / 1e3,
            row.rcbr_over_cbr
        );
        rows.push(row);
    }

    println!("#\n# Expected shape (paper): c_b <= c_c <= c_a for every N; both fall with N;");
    println!("# at N = 100 RCBR needs < 1/3 of static CBR; c_c approaches the schedule's");
    println!(
        "# mean reserved rate ({:.0} kb/s) asymptotically.",
        schedule.mean_service_rate() / 1e3
    );
    write_json(&args.out_dir(), "fig6.json", &rows);
}
