//! Ablation of the offline optimizer's design choices (DESIGN.md §5).
//!
//! The exact trellis — like the paper's original — slows dramatically when
//! renegotiations are cheap, because the survivor frontier grows with the
//! trace. Two bounded modes trade optimality for tractability: a quantized
//! buffer axis and a beam. This table measures both sides of the trade on
//! one workload, against the optimal-smoothing baseline (minimum peak
//! rate, but no pricing objective).
//!
//! Usage: `ablation [--frames 7200] [--seed 1] [--ratio 1e5] [--out results/]`

use rcbr_bench::{paper_trace, write_json, Args, PAPER_BUFFER};
use rcbr_schedule::{
    optimal_smoothing, CostModel, OfflineOptimizer, RateGrid, Schedule, TrellisConfig,
};
use rcbr_traffic::FrameTrace;
use serde::Serialize;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct Row {
    variant: String,
    runtime_ms: f64,
    cost: f64,
    cost_vs_exact_percent: f64,
    bandwidth_efficiency: f64,
    renegotiations: usize,
    peak_rate_bps: f64,
}

fn measure(
    name: String,
    trace: &FrameTrace,
    cost_model: &CostModel,
    build: impl FnOnce() -> Schedule,
) -> Row {
    let t0 = Instant::now();
    let schedule = build();
    let runtime_ms = t0.elapsed().as_secs_f64() * 1e3;
    Row {
        variant: name,
        runtime_ms,
        cost: schedule.total_cost(cost_model),
        cost_vs_exact_percent: f64::NAN, // filled in afterwards
        bandwidth_efficiency: schedule.bandwidth_efficiency(trace),
        renegotiations: schedule.num_renegotiations(),
        peak_rate_bps: schedule.peak_service_rate(),
    }
}

fn main() {
    let args = Args::parse();
    let frames: usize = args.get("frames", 2400); // 100 s (the exact variant is slow by design)
    let seed: u64 = args.get("seed", 1);
    let ratio: f64 = args.get("ratio", 1e5); // cheap renegotiations: the hard regime
    let trace = paper_trace(frames, seed);
    let buffer = PAPER_BUFFER;
    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 20);
    let cost_model = CostModel::from_ratio(ratio);

    let base = TrellisConfig::new(grid.clone(), cost_model, buffer);
    let mut rows = vec![measure("exact".into(), &trace, &cost_model, || {
        OfflineOptimizer::new(base.clone())
            .optimize(&trace)
            .expect("feasible")
    })];
    for res_div in [100.0, 1000.0, 10_000.0] {
        rows.push(measure(
            format!("quantized B/{res_div}"),
            &trace,
            &cost_model,
            || {
                OfflineOptimizer::new(base.clone().with_q_resolution(buffer / res_div))
                    .optimize(&trace)
                    .expect("feasible")
            },
        ));
    }
    for beam in [64usize, 512] {
        rows.push(measure(format!("beam {beam}"), &trace, &cost_model, || {
            OfflineOptimizer::new(base.clone().with_beam(beam))
                .optimize(&trace)
                .expect("feasible")
        }));
    }
    rows.push(measure(
        "smoothing (baseline)".into(),
        &trace,
        &cost_model,
        || optimal_smoothing(&trace, buffer),
    ));

    let exact_cost = rows[0].cost;
    for r in rows.iter_mut() {
        r.cost_vs_exact_percent = 100.0 * (r.cost / exact_cost - 1.0);
    }

    println!("# Trellis ablation (alpha/beta = {ratio:.0}, {frames} frames, B = 300 kb)");
    println!(
        "{:<22} {:>12} {:>14} {:>10} {:>12} {:>8} {:>12}",
        "variant", "runtime ms", "cost vs exact", "efficiency", "renegs", "", "peak rate"
    );
    for r in &rows {
        println!(
            "{:<22} {:>12.1} {:>+13.3}% {:>9.1}% {:>12} {:>8} {:>12}",
            r.variant,
            r.runtime_ms,
            r.cost_vs_exact_percent,
            100.0 * r.bandwidth_efficiency,
            r.renegotiations,
            "",
            rcbr_sim::units::fmt_rate(r.peak_rate_bps)
        );
    }
    println!("#\n# Reading: quantization at B/1000 should be within a fraction of a percent of");
    println!("# exact at a fraction of the runtime; the smoother has the lowest peak rate but");
    println!("# (being price-blind) not the lowest cost.");
    write_json(&args.out_dir(), "ablation.json", &rows);
}
