//! Flash-crowd storm sweep — overload protection under renegotiation storms.
//!
//! Sweeps storm intensity x signaling budget x priority-class mix and
//! records, per point, how the bounded signaling queues coped: cells
//! shed per class, brownout traffic, pressure rounds, and whether the
//! run still settled every non-shed VC (`final_drift == 0`). The faults
//! are transparent, so every shed is the storm's doing: a `burst x`
//! storm window multiplies every VC's renegotiation traffic for two
//! rounds, and the per-switch budget decides who gets through —
//! deterministically, by `(priority_class, seq, salt)`, never by
//! arrival order.
//!
//! Two modes:
//!
//! * default — the full sweep; rows to stdout, points to
//!   `--out <dir>/storm_sweep.json`;
//! * `--smoke` — a calm and a `x10`-storm instance on a small fixed
//!   configuration. Each first proves shard-count invariance (counters
//!   and per-VC outcomes bit-identical at shard counts {1, 2, 4} vs.
//!   the sequential replay — the shed plans are pure functions of the
//!   meeting sets, so shedding must not break this), then the
//!   deterministic counters are compared against the committed baseline
//!   (`results/storm_smoke_baseline.json`); any drift is a non-zero
//!   exit. Use `--update-baseline` after an *intentional* change to the
//!   overload-protection plane.
//!
//! Usage: `storm [--seed 7] [--out results/]`
//!        `storm --smoke [--update-baseline]`

use rcbr_bench::{write_json, Args, ScenarioBuilder, STORM_FAULT_SEED_SALT};
use rcbr_runtime::{run, run_sequential, RunReport, RuntimeConfig, StormSpec};
use serde::{Deserialize, Serialize};

/// The swept storm intensities (`1` = no storm window at all).
const BURSTS: [u64; 3] = [1, 3, 10];
/// The swept per-switch signaling budgets (`0` = unbounded, the legacy
/// behavior — the control row every budgeted column is read against).
const BUDGETS: [u64; 4] = [0, 2, 4, 8];
/// The swept `(gold_pct, silver_pct)` class mixes: all best-effort,
/// the balanced default, and a gold-heavy plane.
const MIXES: [(u32, u32); 3] = [(0, 0), (25, 25), (50, 30)];

/// One storm configuration: transparent faults and modest headroom, so
/// the signaling budget (not the fault plane or port capacity) is the
/// binding constraint during the storm window.
fn storm_cfg(burst: u64, budget: u64, gold_pct: u32, silver_pct: u32, seed: u64) -> RuntimeConfig {
    let mut cfg = ScenarioBuilder::balanced(2, 64)
        .seed(seed)
        .target_requests(2_000)
        .transparent_faults()
        .fault_seed_salt(STORM_FAULT_SEED_SALT)
        .mean_flow_capacity(2.5)
        .audit_interval(32)
        .build();
    cfg.signaling_budget_per_round = budget;
    cfg.gold_pct = gold_pct;
    cfg.silver_pct = silver_pct;
    if burst > 1 {
        cfg.storm = Some(StormSpec {
            at_round: 2,
            rounds: 2,
            burst,
        });
    }
    cfg.validate();
    cfg
}

/// One storm sweep point.
#[derive(Debug, Serialize)]
struct StormPoint {
    burst: u64,
    signaling_budget_per_round: u64,
    gold_pct: u32,
    silver_pct: u32,
    supersteps: u64,
    completed: u64,
    accepted: u64,
    denied: u64,
    exhausted: u64,
    cells_shed: u64,
    sheds_gold: u64,
    sheds_silver: u64,
    sheds_best_effort: u64,
    brownout_entries: u64,
    brownout_exits: u64,
    brownout_vcs: u64,
    pressure_rounds: u64,
    retries: u64,
    degraded_vcs: u64,
    final_drift: u64,
    mean_source_loss: f64,
    max_source_loss: f64,
    wall_seconds: f64,
}

fn point(cfg: &RuntimeConfig, burst: u64, report: &RunReport) -> StormPoint {
    let c = &report.counters;
    StormPoint {
        burst,
        signaling_budget_per_round: cfg.signaling_budget_per_round,
        gold_pct: cfg.gold_pct,
        silver_pct: cfg.silver_pct,
        supersteps: report.supersteps,
        completed: c.completed,
        accepted: c.accepted,
        denied: c.denied,
        exhausted: c.exhausted,
        cells_shed: c.cells_shed,
        sheds_gold: c.sheds_gold,
        sheds_silver: c.sheds_silver,
        sheds_best_effort: c.sheds_best_effort,
        brownout_entries: c.brownout_entries,
        brownout_exits: c.brownout_exits,
        brownout_vcs: report.brownout_vcs,
        pressure_rounds: c.pressure_rounds,
        retries: c.retries,
        degraded_vcs: report.degraded_vcs,
        final_drift: report.audit.final_drift,
        mean_source_loss: report.mean_source_loss,
        max_source_loss: report.max_source_loss,
        wall_seconds: report.wall_seconds,
    }
}

/// A smoke instance's deterministic counters — no wall-clock fields, so
/// CI gates on exact equality with the committed baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SmokeRecord {
    burst: u64,
    signaling_budget_per_round: u64,
    gold_pct: u32,
    silver_pct: u32,
    seed: u64,
    supersteps: u64,
    completed: u64,
    accepted: u64,
    denied: u64,
    exhausted: u64,
    cells_shed: u64,
    sheds_gold: u64,
    sheds_silver: u64,
    sheds_best_effort: u64,
    brownout_entries: u64,
    brownout_exits: u64,
    brownout_vcs: u64,
    pressure_rounds: u64,
    degraded_vcs: u64,
    final_drift: u64,
}

/// Prove one configuration shard-count invariant and return the
/// sequential reference. Shedding is the new code under test here: the
/// shed plans must be pure functions of the per-switch meeting sets, so
/// every counter — including the shed and brownout families — must come
/// out bit-identical at every shard count.
fn assert_shard_identity(cfg: &RuntimeConfig, label: &str) -> RunReport {
    let reference = run_sequential(cfg);
    for shards in [1usize, 2, 4] {
        let mut scfg = cfg.clone();
        scfg.num_shards = shards;
        let r = run(&scfg);
        assert_eq!(
            r.counters, reference.counters,
            "[{label}] {shards}-shard counters diverge from the sequential replay"
        );
        assert_eq!(
            r.vcs, reference.vcs,
            "[{label}] {shards}-shard per-VC outcomes diverge"
        );
        assert_eq!(
            r.brownout_vcs, reference.brownout_vcs,
            "[{label}] {shards}-shard brownout census diverges"
        );
    }
    reference
}

fn smoke_record(cfg: &RuntimeConfig, burst: u64, seed: u64, r: &RunReport) -> SmokeRecord {
    let c = &r.counters;
    SmokeRecord {
        burst,
        signaling_budget_per_round: cfg.signaling_budget_per_round,
        gold_pct: cfg.gold_pct,
        silver_pct: cfg.silver_pct,
        seed,
        supersteps: r.supersteps,
        completed: c.completed,
        accepted: c.accepted,
        denied: c.denied,
        exhausted: c.exhausted,
        cells_shed: c.cells_shed,
        sheds_gold: c.sheds_gold,
        sheds_silver: c.sheds_silver,
        sheds_best_effort: c.sheds_best_effort,
        brownout_entries: c.brownout_entries,
        brownout_exits: c.brownout_exits,
        brownout_vcs: r.brownout_vcs,
        pressure_rounds: c.pressure_rounds,
        degraded_vcs: r.degraded_vcs,
        final_drift: r.audit.final_drift,
    }
}

fn run_smoke(args: &Args) -> i32 {
    let baseline_path: String =
        args.get("baseline", "results/storm_smoke_baseline.json".to_string());
    let seed: u64 = args.get("seed", 7);
    // Three instances: a calm legacy run, a x10 storm against unbounded
    // queues (sheds nothing — heavier traffic alone must not change the
    // shed counters), and the headline x10 storm against a budget of 4.
    let instances: [(u64, u64); 3] = [(1, 0), (10, 0), (10, 4)];
    let mut records = Vec::new();
    for (burst, budget) in instances {
        let cfg = storm_cfg(burst, budget, 25, 25, seed);
        let label = format!("burst={burst} budget={budget}");
        let reference = assert_shard_identity(&cfg, &label);
        assert_eq!(
            reference.audit.final_drift, 0,
            "[{label}] the storm left unrepaired drift behind"
        );
        if budget == 0 {
            assert_eq!(
                reference.counters.cells_shed, 0,
                "[{label}] an unbounded queue shed cells"
            );
        } else {
            assert!(
                reference.counters.cells_shed > 0,
                "[{label}] a x{burst} storm against budget {budget} never shed"
            );
            assert!(
                reference.counters.completed > 0,
                "[{label}] the engine went dead under the storm"
            );
        }
        records.push(smoke_record(&cfg, burst, seed, &reference));
    }

    if args.flag("update-baseline") {
        if let Some(dir) = std::path::Path::new(&baseline_path).parent() {
            std::fs::create_dir_all(dir).expect("create baseline dir");
        }
        std::fs::write(
            &baseline_path,
            serde_json::to_string_pretty(&records).expect("serialize"),
        )
        .expect("write baseline");
        eprintln!("wrote {baseline_path}");
        return 0;
    }

    let committed = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        panic!("cannot read {baseline_path}: {e}; run with --update-baseline first")
    });
    let want: Vec<SmokeRecord> = serde_json::from_str(&committed).expect("parse baseline");
    if want == records {
        println!(
            "storm smoke: {} instances shard-identical and matching the baseline",
            records.len()
        );
        return 0;
    }
    eprintln!("storm smoke: counters drifted from {baseline_path}");
    for (w, g) in want.iter().zip(records.iter()) {
        if w != g {
            eprintln!("  baseline: {w:?}");
            eprintln!("  got:      {g:?}");
        }
    }
    if want.len() != records.len() {
        eprintln!(
            "  instance count changed: baseline {}, got {}",
            want.len(),
            records.len()
        );
    }
    eprintln!(
        "if the overload-protection change is intentional, rerun with --update-baseline and commit"
    );
    1
}

fn main() {
    let args = Args::parse();
    if args.flag("smoke") {
        std::process::exit(run_smoke(&args));
    }

    let seed: u64 = args.get("seed", 7);
    println!("# storm — flash-crowd survival, burst x budget x class mix");
    println!(
        "{:>6} {:>7} {:>7} {:>10} {:>9} {:>9} {:>7} {:>7} {:>9} {:>9} {:>9} {:>6}",
        "burst",
        "budget",
        "mix",
        "completed",
        "accepted",
        "shed",
        "gold",
        "silver",
        "besteff",
        "brownout",
        "pressure",
        "drift"
    );

    let mut points = Vec::new();
    for &burst in &BURSTS {
        for &budget in &BUDGETS {
            for &(gold, silver) in &MIXES {
                let cfg = storm_cfg(burst, budget, gold, silver, seed);
                let report = run(&cfg);
                let p = point(&cfg, burst, &report);
                println!(
                    "{:>6} {:>7} {:>3}/{:<3} {:>10} {:>9} {:>9} {:>7} {:>7} {:>9} {:>4}/{:<4} {:>9} {:>6}",
                    p.burst,
                    p.signaling_budget_per_round,
                    p.gold_pct,
                    p.silver_pct,
                    p.completed,
                    p.accepted,
                    p.cells_shed,
                    p.sheds_gold,
                    p.sheds_silver,
                    p.sheds_best_effort,
                    p.brownout_entries,
                    p.brownout_exits,
                    p.pressure_rounds,
                    p.final_drift
                );
                assert_eq!(
                    p.final_drift, 0,
                    "burst {burst} budget {budget} left drift behind"
                );
                points.push(p);
            }
        }
    }

    println!("#\n# Shedding is deterministic: counters are bit-identical at every shard");
    println!("# count and against the sequential replay (asserted in --smoke and in the");
    println!("# runtime's storm tests); only the timings vary between reruns.");
    write_json(&args.out_dir(), "storm_sweep.json", &points);
}
