//! Trellis kernel performance harness.
//!
//! Sweeps the offline optimizer over rate-grid sizes `M ∈ {10, 20, 50,
//! 100}` and trace lengths, timing the data-oriented kernel against the
//! retained pre-optimization reference **in the same run, on the same
//! instances**, and recording the kernel's deterministic work counters
//! and peak arena size. The paper reports this optimization as its
//! evaluation's bottleneck: ~20 minutes at `M = 20` and "more than a day"
//! at `M = 100` (1996 hardware, full-movie traces).
//!
//! Two modes:
//!
//! * default — the full sweep; rows to stdout, JSON (with both timings,
//!   the speedup, and the counters) to `--out <dir>/trellis_bench.json`;
//! * `--smoke` — a small fixed instance whose deterministic work counters
//!   are compared against the committed baseline
//!   (`results/trellis_smoke_baseline.json`); any drift is a non-zero
//!   exit. Counters are pure functions of the algorithm and the instance
//!   — no wall-clock noise — so CI can gate on exact equality. Use
//!   `--update-baseline` after an *intentional* algorithm change.
//!
//! Usage: `trellis_bench [--frames 20000] [--seed 1] [--out results/]`
//!        `trellis_bench --smoke [--update-baseline]`

use std::time::Instant;

use rcbr_bench::{write_json, Args, PAPER_BUFFER};
use rcbr_schedule::trellis::reference;
use rcbr_schedule::{CostModel, OfflineOptimizer, RateGrid, TrellisConfig, TrellisStats};
use rcbr_traffic::FrameTrace;
use serde::{Deserialize, Serialize};

/// One benchmark instance: the paper's Fig. 6 configuration at a given
/// grid size (quantized buffer axis, drain at end).
fn paper_config(m: usize, buffer: f64) -> TrellisConfig {
    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, m);
    TrellisConfig::new(grid, CostModel::from_ratio(1e6), buffer)
        .with_drain_at_end()
        .with_q_resolution(buffer / 1000.0)
}

#[derive(Debug, Serialize)]
struct SweepRow {
    m: usize,
    frames: usize,
    kernel_ms: f64,
    reference_ms: f64,
    speedup: f64,
    /// Kernel cost as raw bits — must equal the reference's exactly.
    cost_bits: u64,
    renegotiations: usize,
    stats: TrellisStats,
}

/// A smoke instance and its expected counters. The instance parameters
/// are committed alongside the counters so drift in either is visible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct SmokeRecord {
    m: usize,
    frames: usize,
    seed: u64,
    quantized: bool,
    cost_bits: u64,
    stats: TrellisStats,
}

fn smoke_config(m: usize, quantized: bool, buffer: f64) -> TrellisConfig {
    let cfg = paper_config(m, buffer);
    if quantized {
        cfg
    } else {
        TrellisConfig {
            q_resolution: None,
            ..cfg
        }
    }
}

/// The fixed smoke instances: one quantized paper-shaped run, one exact
/// run, both small enough for CI.
const SMOKE_CASES: [(usize, usize, u64, bool); 3] =
    [(20, 1500, 1, true), (50, 600, 2, true), (10, 400, 3, false)];

fn run_smoke(args: &Args) -> i32 {
    let baseline_path: String = args.get(
        "baseline",
        "results/trellis_smoke_baseline.json".to_string(),
    );
    let mut records = Vec::new();
    for (m, frames, seed, quantized) in SMOKE_CASES {
        let trace = rcbr_bench::paper_trace(frames, seed);
        let cfg = smoke_config(m, quantized, PAPER_BUFFER);
        let (_, cost, stats) = OfflineOptimizer::new(cfg.clone())
            .optimize_with_stats(&trace)
            .expect("smoke instance must be feasible");
        // Sharded expansion must not change the counters (or anything).
        let (_, cost2, stats2) = OfflineOptimizer::new(cfg)
            .with_shards(2)
            .optimize_with_stats(&trace)
            .expect("smoke instance must be feasible");
        assert_eq!(cost.to_bits(), cost2.to_bits(), "shards changed the cost");
        assert_eq!(stats, stats2, "shards changed the work counters");
        records.push(SmokeRecord {
            m,
            frames,
            seed,
            quantized,
            cost_bits: cost.to_bits(),
            stats,
        });
    }

    if args.flag("update-baseline") {
        if let Some(dir) = std::path::Path::new(&baseline_path).parent() {
            std::fs::create_dir_all(dir).expect("create baseline dir");
        }
        std::fs::write(
            &baseline_path,
            serde_json::to_string_pretty(&records).expect("serialize"),
        )
        .expect("write baseline");
        eprintln!("wrote {baseline_path}");
        return 0;
    }

    let committed = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        panic!("cannot read {baseline_path}: {e}; run with --update-baseline first")
    });
    let want: Vec<SmokeRecord> = serde_json::from_str(&committed).expect("parse baseline");
    if want == records {
        println!(
            "trellis smoke: {} instances match the baseline",
            records.len()
        );
        return 0;
    }
    eprintln!("trellis smoke: work counters drifted from {baseline_path}");
    for (w, g) in want.iter().zip(records.iter()) {
        if w != g {
            eprintln!("  baseline: {w:?}");
            eprintln!("  got:      {g:?}");
        }
    }
    if want.len() != records.len() {
        eprintln!(
            "  instance count changed: baseline {}, got {}",
            want.len(),
            records.len()
        );
    }
    eprintln!("if the algorithm change is intentional, rerun with --update-baseline and commit");
    1
}

fn time_kernel(
    cfg: &TrellisConfig,
    trace: &FrameTrace,
) -> (f64, rcbr_schedule::Schedule, f64, TrellisStats) {
    let opt = OfflineOptimizer::new(cfg.clone());
    let start = Instant::now();
    let (schedule, cost, stats) = opt
        .optimize_with_stats(trace)
        .expect("bench instance must be feasible");
    (start.elapsed().as_secs_f64() * 1e3, schedule, cost, stats)
}

fn time_reference(cfg: &TrellisConfig, trace: &FrameTrace) -> (f64, f64) {
    let start = Instant::now();
    let (_, cost) =
        reference::optimize_with_cost(cfg, trace).expect("bench instance must be feasible");
    (start.elapsed().as_secs_f64() * 1e3, cost)
}

fn main() {
    let args = Args::parse();
    if args.flag("smoke") {
        std::process::exit(run_smoke(&args));
    }

    let frames: usize = args.get("frames", 20_000);
    let seed: u64 = args.get("seed", 1);
    let lengths = [frames / 4, frames];
    let grid_sizes = [10usize, 20, 50, 100];

    println!("# trellis_bench — kernel vs. reference, paper config (quantized, drain-at-end)");
    println!(
        "{:>5} {:>8} {:>12} {:>12} {:>8} {:>10} {:>12}",
        "M", "frames", "kernel (ms)", "ref (ms)", "speedup", "peak arena", "nodes kept"
    );

    let mut rows = Vec::new();
    for &n in &lengths {
        let trace = rcbr_bench::paper_trace(n, seed);
        for &m in &grid_sizes {
            let cfg = paper_config(m, PAPER_BUFFER);
            eprintln!("running M = {m}, frames = {n}…");
            let (kernel_ms, schedule, cost, stats) = time_kernel(&cfg, &trace);
            let (reference_ms, ref_cost) = time_reference(&cfg, &trace);
            assert_eq!(
                cost.to_bits(),
                ref_cost.to_bits(),
                "kernel and reference disagree at M = {m}, frames = {n}"
            );
            let row = SweepRow {
                m,
                frames: n,
                kernel_ms,
                reference_ms,
                speedup: reference_ms / kernel_ms,
                cost_bits: cost.to_bits(),
                renegotiations: schedule.num_renegotiations(),
                stats,
            };
            println!(
                "{:>5} {:>8} {:>12.1} {:>12.1} {:>7.1}x {:>10} {:>12}",
                m, n, kernel_ms, reference_ms, row.speedup, stats.peak_arena, stats.nodes_kept
            );
            rows.push(row);
        }
    }

    println!("#\n# Counters are deterministic: reruns and any shard count reproduce them");
    println!("# exactly; only the timings vary. cost_bits is identical between kernel");
    println!("# and reference on every row (asserted).");
    write_json(&args.out_dir(), "trellis_bench.json", &rows);
}
