//! Renegotiation-latency sensitivity — results for the question the paper
//! leaves open (Section III-C: "We do not yet have analytical expressions
//! or simulation results studying the effect of renegotiation delay on
//! RCBR performance").
//!
//! Sweeps the signaling round-trip for an online AR(1) source (one
//! outstanding request at a time) and shows the two compensations the
//! paper predicts: more end-system buffer, or more rate headroom
//! (a coarser granularity that over-reserves). Offline sources anticipate
//! and are delay-insensitive.
//!
//! Usage: `latency [--frames 28800] [--seed 1] [--out results/]`

use rcbr::latency::{offline_with_latency, online_with_latency};
use rcbr_bench::{paper_schedule, paper_trace, write_json, Args, PAPER_BUFFER};
use rcbr_schedule::{Ar1Config, Ar1Policy};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    mode: &'static str,
    delay_s: f64,
    buffer_bits: f64,
    granularity_bps: f64,
    loss_fraction: f64,
    bandwidth_efficiency: f64,
    requests: u64,
}

fn main() {
    let args = Args::parse();
    let frames: usize = args.get("frames", 28_800); // 20 minutes
    let seed: u64 = args.get("seed", 1);
    let trace = paper_trace(frames, seed);
    let tau = trace.frame_interval();
    let mean = trace.mean_rate();
    let mut rows = Vec::new();

    println!("# Renegotiation-latency sensitivity (extension experiment)");
    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "mode", "RTT (s)", "buffer", "delta", "loss", "efficiency", "reqs"
    );

    let mut emit = |row: Row| {
        println!(
            "{:<22} {:>8.2} {:>10} {:>10} {:>10.2e} {:>9.1}% {:>8}",
            row.mode,
            row.delay_s,
            rcbr_sim::units::fmt_bits(row.buffer_bits),
            rcbr_sim::units::fmt_rate(row.granularity_bps),
            row.loss_fraction,
            100.0 * row.bandwidth_efficiency,
            row.requests
        );
        rows.push(row);
    };

    // 1. Baseline sweep: delay grows, everything else fixed.
    for delay in [0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut policy = Ar1Policy::new(Ar1Config::fig2(64_000.0, mean, tau), tau);
        let out = online_with_latency(&trace, &mut policy, PAPER_BUFFER, delay);
        emit(Row {
            mode: "online",
            delay_s: delay,
            buffer_bits: PAPER_BUFFER,
            granularity_bps: 64_000.0,
            loss_fraction: out.loss_fraction,
            bandwidth_efficiency: out.bandwidth_efficiency,
            requests: out.requests,
        });
    }

    // 2. Compensation by buffer at a fixed 2 s RTT.
    for buffer in [PAPER_BUFFER, 3.0 * PAPER_BUFFER, 10.0 * PAPER_BUFFER] {
        let mut policy = Ar1Policy::new(Ar1Config::fig2(64_000.0, mean, tau), tau);
        let out = online_with_latency(&trace, &mut policy, buffer, 2.0);
        emit(Row {
            mode: "online+buffer",
            delay_s: 2.0,
            buffer_bits: buffer,
            granularity_bps: 64_000.0,
            loss_fraction: out.loss_fraction,
            bandwidth_efficiency: out.bandwidth_efficiency,
            requests: out.requests,
        });
    }

    // 3. Compensation by rate headroom (coarser granularity over-reserves).
    for delta in [64_000.0, 200_000.0, 400_000.0] {
        let mut policy = Ar1Policy::new(Ar1Config::fig2(delta, mean, tau), tau);
        let out = online_with_latency(&trace, &mut policy, PAPER_BUFFER, 2.0);
        emit(Row {
            mode: "online+headroom",
            delay_s: 2.0,
            buffer_bits: PAPER_BUFFER,
            granularity_bps: delta,
            loss_fraction: out.loss_fraction,
            bandwidth_efficiency: out.bandwidth_efficiency,
            requests: out.requests,
        });
    }

    // 4. Offline anticipation: delay-insensitive by construction.
    let schedule = paper_schedule(&trace, PAPER_BUFFER);
    for delay in [0.0, 4.0] {
        let out = offline_with_latency(&trace, &schedule, PAPER_BUFFER, delay);
        emit(Row {
            mode: "offline",
            delay_s: delay,
            buffer_bits: PAPER_BUFFER,
            granularity_bps: 0.0,
            loss_fraction: out.loss_fraction,
            bandwidth_efficiency: out.bandwidth_efficiency,
            requests: out.requests,
        });
    }

    println!("#\n# Expected shape: online loss grows with RTT; buying buffer or headroom");
    println!("# restores it (at delay x rate worth of either); offline rows are identical.");
    write_json(&args.out_dir(), "latency.json", &rows);
}
