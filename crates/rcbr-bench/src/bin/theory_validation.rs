//! Section V-A theory vs. simulation, for the Fig. 4 three-subchain
//! multiple-time-scale source:
//!
//! 1. eq. (9): the whole-stream equivalent bandwidth equals the maximum
//!    subchain equivalent bandwidth, and simulation confirms that rates
//!    between `max_k m_k` and `max_k EB_k` under-provision the stream;
//! 2. eqs. (10)/(11): Chernoff estimates of the bufferless-multiplexing
//!    exceedance probability vs. a direct Monte-Carlo estimate;
//! 3. the decomposition claim: the shared-buffer capacity (slow-scale
//!    means) lower-bounds the RCBR capacity (subchain EBs), with the gap
//!    shrinking as the fast-time-scale fluctuation shrinks.
//!
//! Usage: `theory_validation [--seed 1] [--out results/]`

use rcbr_bench::{write_json, Args};
use rcbr_ldt::{min_capacity_per_source, EbCache, QosTarget};
use rcbr_sim::stats::DiscreteDistribution;
use rcbr_sim::{FluidQueue, SimRng};
use rcbr_traffic::MtsModel;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Validation {
    subchain_means_bps: Vec<f64>,
    subchain_ebs_bps: Vec<f64>,
    stream_eb_bps: f64,
    overflow_at_eb: f64,
    overflow_at_max_mean: f64,
    chernoff_estimate: f64,
    simulated_exceedance: f64,
    capacity_shared_bps: f64,
    capacity_rcbr_bps: f64,
}

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 1);
    let slot = 1.0 / 24.0;
    let model = MtsModel::fig4_example(2e-3, slot);
    let buffer = 100_000.0;
    let qos = QosTarget::new(buffer, 1e-2);

    // 1. eq. (9). The memo makes the stream-EB call below reuse the three
    // per-subchain power iterations already done here.
    let mut eb_cache = EbCache::new();
    let probs = model.subchain_probs();
    let means: Vec<f64> = (0..3).map(|k| model.subchain_mean_rate(k)).collect();
    let ebs: Vec<f64> = model
        .subchains()
        .iter()
        .map(|s| eb_cache.equivalent_bandwidth(&s.as_source(slot), qos))
        .collect();
    let (stream_eb, k_dom) = eb_cache.mts_equivalent_bandwidth(&model, qos);
    debug_assert_eq!(eb_cache.hits(), 3, "stream EB should be fully memoized");
    println!("# Theory validation — Fig. 4 source, B = 100 kb, eps = 1e-2");
    println!(
        "{:>10} {:>12} {:>12} {:>10}",
        "subchain", "mean (kb/s)", "EB (kb/s)", "p_k"
    );
    for k in 0..3 {
        println!(
            "{:>10} {:>12.0} {:>12.0} {:>10.3}",
            k,
            means[k] / 1e3,
            ebs[k] / 1e3,
            probs[k]
        );
    }
    println!(
        "eq. (9): stream EB = {:.0} kb/s (subchain {k_dom})",
        stream_eb / 1e3
    );

    // Simulate the flattened stream at two rates.
    let flat = model.flatten();
    let mut rng = SimRng::from_seed(seed);
    let trace = flat.generate(1_000_000, &mut rng);
    let overflow = |rate: f64| {
        let mut q = FluidQueue::unbounded();
        let mut over = 0u64;
        for t in 0..trace.len() {
            if q.offer(trace.bits(t), rate * slot).backlog > buffer {
                over += 1;
            }
        }
        over as f64 / trace.len() as f64
    };
    let max_mean = means.iter().cloned().fold(0.0f64, f64::max);
    let p_starved = overflow(1.02 * max_mean);
    let p_eb = overflow(stream_eb);
    println!(
        "overflow frequency: at 1.02 x max subchain mean = {p_starved:.2e}; at stream EB = {p_eb:.2e}"
    );

    // 2. Chernoff vs. Monte Carlo for the slow-scale marginal.
    let marginal = model.slow_scale_distribution();
    let n = 50;
    let c = min_capacity_per_source(&marginal, n, 1e-3);
    let capacity = c * n as f64;
    let estimate = rcbr_ldt::chernoff_failure_probability(&marginal, n, capacity * 1.0001);
    let mut exceed = 0u64;
    let epochs = 300_000;
    let levels = marginal.levels().to_vec();
    let ps = marginal.probs().to_vec();
    for _ in 0..epochs {
        let mut total = 0.0;
        for _ in 0..n {
            total += levels[rng.discrete(&ps)];
        }
        if total > capacity {
            exceed += 1;
        }
    }
    let p_sim = exceed as f64 / epochs as f64;
    println!(
        "Chernoff (n = {n}): estimate {estimate:.2e} vs Monte-Carlo {p_sim:.2e} (bound holds: {})",
        p_sim <= estimate * 1.2
    );

    // 3. eq. (10) vs. (11): capacity per stream.
    let eb_marginal = DiscreteDistribution::from_weights(
        &ebs.iter()
            .zip(&probs)
            .map(|(&e, &p)| (e, p))
            .collect::<Vec<_>>(),
    );
    let c_shared = min_capacity_per_source(&marginal, n, 1e-3);
    let c_rcbr = min_capacity_per_source(&eb_marginal, n, 1e-3);
    println!(
        "capacity per stream (n = {n}): shared buffer {:.0} kb/s <= RCBR {:.0} kb/s (gap {:.1}%)",
        c_shared / 1e3,
        c_rcbr / 1e3,
        100.0 * (c_rcbr / c_shared - 1.0)
    );

    let result = Validation {
        subchain_means_bps: means,
        subchain_ebs_bps: ebs,
        stream_eb_bps: stream_eb,
        overflow_at_eb: p_eb,
        overflow_at_max_mean: p_starved,
        chernoff_estimate: estimate,
        simulated_exceedance: p_sim,
        capacity_shared_bps: c_shared,
        capacity_rcbr_bps: c_rcbr,
    };
    write_json(&args.out_dir(), "theory_validation.json", &result);

    assert!(p_starved > 10.0 * p_eb, "eq. (9) separation not visible");
    assert!(p_sim <= estimate * 1.2, "Chernoff bound violated");
    assert!(c_rcbr >= c_shared, "eq. (11) must dominate eq. (10)");
    println!("# all theory checks passed");
}
