//! Admission frontier sweep — utilization vs. loss per policy.
//!
//! Sweeps the live admission subsystem over policy x measurement window
//! x population size and records, per point, the mean port utilization
//! the policy sustained against the end-system loss it induced. The
//! faults are transparent and the ports tight, so every difference
//! between points is the admission policy's doing: `peak-rate` books
//! against raw capacity (the legacy static check), `memoryless` and
//! `chernoff-eb` move per-port booking ceilings at each measurement
//! window roll and trade a little loss for utilization — the paper's
//! Section VI frontier, measured live in the signaling plane.
//!
//! Two modes:
//!
//! * default — the full sweep; rows to stdout, frontier points to
//!   `--out <dir>/admission_frontier.json`;
//! * `--smoke` — all three policies on a small fixed instance. Each
//!   policy first proves shard-count invariance (counters, per-VC
//!   outcomes, and the admission report bit-identical at shard counts
//!   {1, 2, 4} vs. the sequential replay), then its deterministic
//!   counters are compared against the committed baseline
//!   (`results/admission_frontier_smoke_baseline.json`); any drift is a
//!   non-zero exit. Use `--update-baseline` after an *intentional*
//!   admission change.
//!
//! Usage: `admission_frontier [--seed 7] [--out results/]`
//!        `admission_frontier --smoke [--update-baseline]`

use rcbr_bench::{
    write_json, Args, ScenarioBuilder, ADMISSION_FAULT_SEED_SALT, PAPER_FAILURE_TARGET,
    PAPER_LOSS_TARGET,
};
use rcbr_runtime::{
    run, run_sequential, AdmissionPolicy, AdmissionReport, RunReport, RuntimeConfig,
};
use serde::{Deserialize, Serialize};

/// The swept policies: the legacy static check plus both
/// measurement-based policies at the paper's QoS targets.
const POLICIES: [AdmissionPolicy; 3] = [
    AdmissionPolicy::PeakRate,
    AdmissionPolicy::Memoryless {
        target: PAPER_FAILURE_TARGET,
    },
    AdmissionPolicy::ChernoffEb {
        epsilon: PAPER_LOSS_TARGET,
    },
];

/// One frontier configuration: transparent faults (loss is the policy's
/// doing, not the fault plane's) and `headroom`x capacity over the mean
/// initial admission load, so the booking ceilings decide who gets
/// capacity. Sweeping `headroom` traces each policy's frontier from
/// starvation (1.05) to mild contention (1.5).
fn frontier_cfg(
    policy: AdmissionPolicy,
    window_supersteps: u64,
    num_vcs: usize,
    target_requests: u64,
    headroom: f64,
    seed: u64,
) -> RuntimeConfig {
    ScenarioBuilder::balanced(2, num_vcs)
        .seed(seed)
        .target_requests(target_requests)
        .transparent_faults()
        .fault_seed_salt(ADMISSION_FAULT_SEED_SALT)
        .mean_flow_capacity(headroom)
        .audit_interval(32)
        .admission(policy, window_supersteps)
        .build()
}

/// One utilization-vs-loss frontier point.
#[derive(Debug, Serialize)]
struct FrontierPoint {
    policy: String,
    window_supersteps: u64,
    num_vcs: usize,
    headroom: f64,
    target_requests: u64,
    supersteps: u64,
    completed: u64,
    accepted: u64,
    denied: u64,
    degraded_vcs: u64,
    mean_port_utilization: f64,
    overbooked_samples: u64,
    mean_source_loss: f64,
    max_source_loss: f64,
    admission: AdmissionReport,
    wall_seconds: f64,
}

fn point(cfg: &RuntimeConfig, headroom: f64, report: &RunReport) -> FrontierPoint {
    let c = &report.counters;
    FrontierPoint {
        policy: report.admission.policy.clone(),
        window_supersteps: cfg.measurement_window_supersteps,
        num_vcs: cfg.num_vcs,
        headroom,
        target_requests: cfg.target_requests,
        supersteps: report.supersteps,
        completed: c.completed,
        accepted: c.accepted,
        denied: c.denied,
        degraded_vcs: report.degraded_vcs,
        mean_port_utilization: report.admission.mean_port_utilization,
        overbooked_samples: report.admission.overbooked_samples,
        mean_source_loss: report.mean_source_loss,
        max_source_loss: report.max_source_loss,
        admission: report.admission.clone(),
        wall_seconds: report.wall_seconds,
    }
}

/// A smoke instance's deterministic counters. Everything here is a pure
/// function of the configuration — no wall-clock fields — so CI gates on
/// exact equality with the committed baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SmokeRecord {
    policy: String,
    window_supersteps: u64,
    num_vcs: usize,
    seed: u64,
    supersteps: u64,
    completed: u64,
    accepted: u64,
    denied: u64,
    degraded_vcs: u64,
    final_drift: u64,
    admission: AdmissionReport,
}

/// Prove one configuration shard-count invariant and return the
/// sequential reference.
fn assert_shard_identity(cfg: &RuntimeConfig) -> RunReport {
    let reference = run_sequential(cfg);
    for shards in [1usize, 2, 4] {
        let mut scfg = cfg.clone();
        scfg.num_shards = shards;
        let r = run(&scfg);
        assert_eq!(
            r.counters,
            reference.counters,
            "[{}] {shards}-shard counters diverge from the sequential replay",
            cfg.admission.name()
        );
        assert_eq!(
            r.vcs,
            reference.vcs,
            "[{}] {shards}-shard per-VC outcomes diverge",
            cfg.admission.name()
        );
        assert_eq!(
            r.admission,
            reference.admission,
            "[{}] {shards}-shard admission report diverges",
            cfg.admission.name()
        );
    }
    reference
}

fn run_smoke(args: &Args) -> i32 {
    let baseline_path: String = args.get(
        "baseline",
        "results/admission_frontier_smoke_baseline.json".to_string(),
    );
    let seed: u64 = args.get("seed", 7);
    let mut records = Vec::new();
    for policy in POLICIES {
        let cfg = frontier_cfg(policy, 16, 64, 2_000, 1.05, seed);
        let reference = assert_shard_identity(&cfg);
        if policy.measures() {
            assert!(
                reference.admission.rolls > 0,
                "[{}] smoke instance never rolled a window",
                policy.name()
            );
        }
        records.push(SmokeRecord {
            policy: reference.admission.policy.clone(),
            window_supersteps: cfg.measurement_window_supersteps,
            num_vcs: cfg.num_vcs,
            seed,
            supersteps: reference.supersteps,
            completed: reference.counters.completed,
            accepted: reference.counters.accepted,
            denied: reference.counters.denied,
            degraded_vcs: reference.degraded_vcs,
            final_drift: reference.audit.final_drift,
            admission: reference.admission.clone(),
        });
    }

    if args.flag("update-baseline") {
        if let Some(dir) = std::path::Path::new(&baseline_path).parent() {
            std::fs::create_dir_all(dir).expect("create baseline dir");
        }
        std::fs::write(
            &baseline_path,
            serde_json::to_string_pretty(&records).expect("serialize"),
        )
        .expect("write baseline");
        eprintln!("wrote {baseline_path}");
        return 0;
    }

    let committed = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
        panic!("cannot read {baseline_path}: {e}; run with --update-baseline first")
    });
    let want: Vec<SmokeRecord> = serde_json::from_str(&committed).expect("parse baseline");
    if want == records {
        println!(
            "admission smoke: {} policies shard-identical and matching the baseline",
            records.len()
        );
        return 0;
    }
    eprintln!("admission smoke: counters drifted from {baseline_path}");
    for (w, g) in want.iter().zip(records.iter()) {
        if w != g {
            eprintln!("  baseline: {w:?}");
            eprintln!("  got:      {g:?}");
        }
    }
    if want.len() != records.len() {
        eprintln!(
            "  policy count changed: baseline {}, got {}",
            want.len(),
            records.len()
        );
    }
    eprintln!("if the admission change is intentional, rerun with --update-baseline and commit");
    1
}

fn main() {
    let args = Args::parse();
    if args.flag("smoke") {
        std::process::exit(run_smoke(&args));
    }

    let seed: u64 = args.get("seed", 7);
    let populations = [2_000usize, 10_000];
    let headrooms = [1.05f64, 1.25, 1.5];

    println!("# admission_frontier — utilization vs. loss, policy x window x population x load");
    println!(
        "{:>12} {:>7} {:>7} {:>5} {:>10} {:>9} {:>11} {:>12} {:>12} {:>8}",
        "policy",
        "window",
        "vcs",
        "load",
        "accepted",
        "denied",
        "util",
        "mean_loss",
        "max_loss",
        "rolls"
    );

    let mut points = Vec::new();
    for &num_vcs in &populations {
        // Enough requests per VC that the run spans many measurement
        // windows; the loss numbers are steady-state, not warm-up.
        let target = num_vcs as u64 * 20;
        let mut cases = vec![(AdmissionPolicy::PeakRate, 64u64)];
        for policy in &POLICIES[1..] {
            for window_supersteps in [16u64, 64] {
                cases.push((*policy, window_supersteps));
            }
        }
        for &headroom in &headrooms {
            for &(policy, window_supersteps) in &cases {
                let cfg = frontier_cfg(policy, window_supersteps, num_vcs, target, headroom, seed);
                let report = run(&cfg);
                let p = point(&cfg, headroom, &report);
                println!(
                    "{:>12} {:>7} {:>7} {:>5.2} {:>10} {:>9} {:>11.4} {:>12.3e} {:>12.3e} {:>8}",
                    p.policy,
                    p.window_supersteps,
                    p.num_vcs,
                    p.headroom,
                    p.accepted,
                    p.denied,
                    p.mean_port_utilization,
                    p.mean_source_loss,
                    p.max_source_loss,
                    p.admission.rolls
                );
                points.push(p);
            }
        }
    }

    println!("#\n# Counters and per-VC outcomes are deterministic at every shard count");
    println!("# (asserted continuously in --smoke and in the runtime's admission tests);");
    println!("# only the timings vary between reruns.");
    write_json(&args.out_dir(), "admission_frontier.json", &points);
}
