//! The §I headline claim: "if the average service rate over the lifetime
//! of the connection is 5% above the average source rate of 374 kb/s,
//! then 300 kb worth of buffering at the end-system and an average
//! renegotiation interval of about 12 s are sufficient for RCBR. In
//! contrast, a nonrenegotiated service with the same service rate would
//! require about 100 Mb of buffering."
//!
//! Usage: `headline [--frames 171000] [--seed 1] [--out results/]`

use rcbr::sigma_rho::loss_fraction;
use rcbr_bench::{paper_trace, write_json, Args, PAPER_BUFFER, PAPER_LOSS_TARGET};
use rcbr_schedule::{CostModel, OfflineOptimizer, RateGrid, TrellisConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Headline {
    mean_rate_bps: f64,
    rcbr_buffer_bits: f64,
    rcbr_mean_interval_s: f64,
    rcbr_overhead_percent: f64,
    static_buffer_needed_bits: f64,
    buffer_ratio: f64,
}

fn main() {
    let args = Args::parse();
    let frames: usize = args.get("frames", 171_000);
    let seed: u64 = args.get("seed", 1);
    let trace = paper_trace(frames, seed);
    let mean = trace.mean_rate();
    let buffer = PAPER_BUFFER;

    // RCBR side: find a cost ratio whose schedule lands near 5% overhead,
    // then report its renegotiation interval.
    println!("# Headline claim (Section I)");
    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 20);
    let mut best: Option<(f64, f64, f64)> = None; // (overhead, interval, ratio)
    for ratio in [3e4, 1e5, 3e5, 1e6] {
        let cfg = TrellisConfig::new(grid.clone(), CostModel::from_ratio(ratio), buffer)
            .with_q_resolution(buffer / 1000.0);
        let s = OfflineOptimizer::new(cfg)
            .optimize(&trace)
            .expect("feasible");
        let overhead = s.mean_service_rate() / mean - 1.0;
        let interval = s.mean_renegotiation_interval();
        eprintln!(
            "ratio {ratio:>8.0}: overhead {:.1}%, interval {:.1} s",
            100.0 * overhead,
            interval
        );
        let better = match best {
            None => true,
            Some((o, _, _)) => (overhead - 0.05).abs() < (o - 0.05).abs(),
        };
        if better {
            best = Some((overhead, interval, ratio));
        }
    }
    let (overhead, interval, ratio) = best.expect("at least one ratio evaluated");

    // Static side: at the same mean service rate (1.05x mean), how much
    // buffering does a non-renegotiated service need for 1e-6 loss?
    let static_rate = (1.0 + overhead.max(0.05)) * mean;
    let mut static_buffer = f64::NAN;
    for &sigma in &[1e6, 3e6, 1e7, 3e7, 1e8, 3e8, 1e9] {
        if loss_fraction(&trace, sigma, static_rate) <= PAPER_LOSS_TARGET {
            static_buffer = sigma;
            break;
        }
    }

    let result = Headline {
        mean_rate_bps: mean,
        rcbr_buffer_bits: buffer,
        rcbr_mean_interval_s: interval,
        rcbr_overhead_percent: 100.0 * overhead,
        static_buffer_needed_bits: static_buffer,
        buffer_ratio: static_buffer / buffer,
    };

    println!(
        "mean source rate              : {:.0} kb/s (paper: 374 kb/s)",
        mean / 1e3
    );
    println!(
        "RCBR @ {:.1}% rate overhead     : buffer {} + one renegotiation every {:.1} s (ratio {ratio:.0})",
        100.0 * overhead,
        rcbr_sim::units::fmt_bits(buffer),
        interval
    );
    println!(
        "static service, same rate     : needs {} of buffering (paper: ~100 Mb)",
        rcbr_sim::units::fmt_bits(static_buffer)
    );
    println!(
        "buffer ratio (static / RCBR)  : {:.0}x",
        result.buffer_ratio
    );
    write_json(&args.out_dir(), "headline.json", &result);
}
