//! Fig. 2 — "The tradeoff between bandwidth efficiency and renegotiation
//! frequency for the AR(1)-based heuristic, compared to the optimum."
//!
//! OPT sweeps the cost ratio α/β; the heuristic sweeps the bandwidth
//! granularity Δ from 25 to 400 kb/s with the paper's parameters
//! (B_l = 10 kb, B_h = 150 kb, T = 5 frames), all with the buffer
//! occupancy capped at B = 300 kb.
//!
//! Usage: `fig2 [--frames 43200] [--seed 1] [--out results/]`

use rcbr_bench::{paper_trace, write_json, Args, PAPER_BUFFER};
use rcbr_schedule::online::run_online;
use rcbr_schedule::{Ar1Config, Ar1Policy, CostModel, OfflineOptimizer, RateGrid, TrellisConfig};
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Point {
    series: &'static str,
    parameter: f64,
    mean_renegotiation_interval_s: f64,
    bandwidth_efficiency: f64,
    renegotiations: usize,
    loss_fraction: f64,
}

fn main() {
    let args = Args::parse();
    let frames: usize = args.get("frames", 43_200); // 30 minutes
    let seed: u64 = args.get("seed", 1);
    let trace = paper_trace(frames, seed);
    let tau = trace.frame_interval();
    let buffer = PAPER_BUFFER;
    let mut points = Vec::new();

    println!("# Fig. 2 — bandwidth efficiency vs. mean renegotiation interval");
    println!(
        "# trace: {} frames ({:.0} s), mean {:.0} kb/s",
        frames,
        trace.duration(),
        trace.mean_rate() / 1e3
    );
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>8} {:>10}",
        "series", "param", "interval (s)", "efficiency", "renegs", "loss"
    );

    // OPT: the offline optimum across cost ratios.
    let grid = RateGrid::uniform(48_000.0, 2_400_000.0, 20);
    for ratio in [1e4, 3e4, 1e5, 3e5, 1e6, 3e6, 1e7] {
        let cfg = TrellisConfig::new(grid.clone(), CostModel::from_ratio(ratio), buffer)
            .with_drain_at_end() // else unserved final backlog shows as >100% efficiency
            .with_q_resolution(buffer / 1000.0);
        let schedule = OfflineOptimizer::new(cfg)
            .optimize(&trace)
            .expect("feasible");
        let p = Point {
            series: "OPT",
            parameter: ratio,
            mean_renegotiation_interval_s: schedule.mean_renegotiation_interval(),
            bandwidth_efficiency: schedule.bandwidth_efficiency(&trace),
            renegotiations: schedule.num_renegotiations(),
            loss_fraction: 0.0,
        };
        println!(
            "{:<10} {:>12.0} {:>14.2} {:>11.1}% {:>8} {:>10.1e}",
            p.series,
            p.parameter,
            p.mean_renegotiation_interval_s,
            100.0 * p.bandwidth_efficiency,
            p.renegotiations,
            p.loss_fraction
        );
        points.push(p);
    }

    // Heuristic: the paper's AR(1) policy across granularities.
    for delta_kb in [25.0, 50.0, 100.0, 200.0, 400.0] {
        let delta = delta_kb * 1000.0;
        let mut policy = Ar1Policy::new(Ar1Config::fig2(delta, trace.mean_rate(), tau), tau);
        let run = run_online(&trace, &mut policy, buffer);
        let p = Point {
            series: "AR1",
            parameter: delta,
            mean_renegotiation_interval_s: run.schedule.mean_renegotiation_interval(),
            bandwidth_efficiency: run.schedule.bandwidth_efficiency(&trace),
            renegotiations: run.requests,
            loss_fraction: run.loss_fraction,
        };
        println!(
            "{:<10} {:>12.0} {:>14.2} {:>11.1}% {:>8} {:>10.1e}",
            p.series,
            p.parameter,
            p.mean_renegotiation_interval_s,
            100.0 * p.bandwidth_efficiency,
            p.renegotiations,
            p.loss_fraction
        );
        points.push(p);
    }

    println!("#\n# Expected shape (paper): OPT reaches >99% efficiency at ~7 s intervals;");
    println!("# the heuristic needs ~1 renegotiation/s for ~95% — a visible gap below OPT.");
    write_json(&args.out_dir(), "fig2.json", &points);
}
