//! Signaling-plane throughput — renegotiations per second vs. shard count.
//!
//! The paper's claim is that RCBR renegotiation is cheap enough to run in
//! a switch's signaling processor (two table lookups on the fast path).
//! This harness measures the sharded runtime's sustained renegotiation
//! throughput across a shard-count × VC-count sweep, and double-checks the
//! engine's two invariants on the way:
//!
//! * the accept/deny/rollback counters are bit-identical at every shard
//!   count (the workload is fixed by the seed, not by the partition);
//! * re-running the same configuration is bit-identical.
//!
//! Usage: `signaling_throughput [--target 1000000] [--vcs 768] [--seed 7]
//! [--out results/]` (the report defaults to `results/`).

use rcbr_bench::{write_json, Args};
use rcbr_runtime::{run, CounterSnapshot, RunReport, RuntimeConfig};
use serde::Serialize;
use std::path::PathBuf;

#[derive(Debug, Serialize)]
struct Cell {
    num_shards: usize,
    num_vcs: usize,
    completed: u64,
    wall_seconds: f64,
    throughput_per_sec: f64,
    speedup_vs_one_shard: f64,
    report: RunReport,
}

#[derive(Debug, Serialize)]
struct Report {
    target_requests: u64,
    seed: u64,
    /// Cores available to this process. Sharding can only raise wall-clock
    /// throughput when this exceeds 1; on a single-core host the sweep
    /// still validates determinism but every shard count time-slices the
    /// same CPU.
    available_parallelism: usize,
    counters_identical_across_shard_counts: bool,
    rerun_bit_identical: bool,
    cells: Vec<Cell>,
}

fn config(shards: usize, vcs: usize, target: u64, seed: u64) -> RuntimeConfig {
    let mut cfg = RuntimeConfig::balanced(shards, vcs);
    cfg.target_requests = target;
    cfg.seed = seed;
    cfg
}

fn main() {
    let args = Args::parse();
    let target: u64 = args.get("target", 1_000_000);
    let vc_counts: Vec<usize> = vec![args.get("vcs", 768)];
    let seed: u64 = args.get("seed", 7);
    let out = args.out_dir().or_else(|| Some(PathBuf::from("results")));
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("# Signaling-plane throughput — {target} renegotiations per cell, seed {seed}");
    println!("# available cores: {cores} (sharding needs >1 to beat the 1-shard wall clock)");
    println!(
        "{:>6} {:>6} {:>12} {:>10} {:>14} {:>9}",
        "shards", "vcs", "completed", "wall (s)", "renegs/s", "speedup"
    );

    let mut cells: Vec<Cell> = Vec::new();
    let mut counters_identical = true;
    for &vcs in &vc_counts {
        let mut baseline: Option<(f64, CounterSnapshot)> = None;
        for shards in [1usize, 2, 4, 8] {
            let report = run(&config(shards, vcs, target, seed));
            let (base_tput, base_counters) =
                *baseline.get_or_insert((report.throughput_per_sec, report.counters));
            if report.counters != base_counters {
                counters_identical = false;
                eprintln!("!! {shards}-shard counters diverge from the 1-shard run");
            }
            let speedup = report.throughput_per_sec / base_tput;
            println!(
                "{:>6} {:>6} {:>12} {:>10.2} {:>14.0} {:>8.2}x",
                shards,
                vcs,
                report.counters.completed,
                report.wall_seconds,
                report.throughput_per_sec,
                speedup
            );
            cells.push(Cell {
                num_shards: shards,
                num_vcs: vcs,
                completed: report.counters.completed,
                wall_seconds: report.wall_seconds,
                throughput_per_sec: report.throughput_per_sec,
                speedup_vs_one_shard: speedup,
                report,
            });
        }
    }

    // Same seed, same config, run twice: the counters must be bit-identical.
    let probe = config(4, vc_counts[0], target.min(100_000), seed);
    let rerun_identical = run(&probe).counters == run(&probe).counters;
    println!("# counters identical across shard counts: {counters_identical}");
    println!("# same-seed rerun bit-identical: {rerun_identical}");

    let report = Report {
        target_requests: target,
        seed,
        available_parallelism: cores,
        counters_identical_across_shard_counts: counters_identical,
        rerun_bit_identical: rerun_identical,
        cells,
    };
    write_json(&out, "signaling_throughput.json", &report);
}
