//! Deterministic chaos fuzzer for the signaling plane.
//!
//! Draws whole runtime scenarios from the seeded schedule space
//! (`rcbr_bench::fuzz::space`), executes each on the sequential replay
//! and the sharded engine at shard counts {1, 2, 4}, and checks the
//! full invariant oracle suite (`rcbr_bench::fuzz::oracle`). A failing
//! schedule is minimized by the delta-debugging shrinker into the
//! smallest configuration that still fails the *same* oracle and
//! persisted to the corpus as a self-contained JSON repro.
//!
//! Every report this binary writes is a pure function of the base seed:
//! no timestamps, no wall-clock fields, no iteration-order hazards —
//! rerunning the same mode twice must produce byte-identical JSON.
//!
//! Modes:
//!
//! * `--campaign [--count N] [--base-seed S]` — explore N seeded
//!   schedules (default 200), write `<out>/fuzz_campaign.json`, shrink
//!   any failures into `<out>/fuzz_corpus/`. Non-zero exit on failure.
//! * `--smoke` — a fixed-seed bounded campaign (12 schedules), written
//!   to `<out>/fuzz_smoke.json`. The CI gate reruns it and compares
//!   bytes against the committed report.
//! * `--anchor [--count N]` — draw N schedules, require them clean, and
//!   write them to `<out>/fuzz_corpus/` as `expect: "clean"` regression
//!   anchors (replayed by `tests/fuzz_corpus_replay.rs`).
//! * `--replay <path.json>` — re-check one corpus entry against its
//!   recorded expectation.
//!
//! Usage: `fuzz --smoke [--out results/]`
//!        `fuzz --campaign --count 200 [--base-seed 2026] [--out results/]`
//!        `fuzz --replay results/fuzz_corpus/clean_0001.json`

use std::path::{Path, PathBuf};

use rcbr_bench::fuzz::{
    draw_schedule, execute, fault_window_count, run_oracles, shrink, space::seed_stream, FuzzRepro,
    FuzzSchedule, OracleFailure, REPRO_FORMAT,
};
use rcbr_bench::{write_json, Args};
use serde::Serialize;

/// Version tag of the campaign/smoke report format.
const CAMPAIGN_FORMAT: &str = "rcbr-fuzz-campaign-v1";

/// Base seed of the CI smoke campaign. Fixed forever: the committed
/// `results/fuzz_smoke.json` is the byte-exact expected output.
const SMOKE_BASE_SEED: u64 = 0x5acade;

/// Predicate-evaluation budget per shrink (each evaluation is four full
/// engine runs, so this bounds a shrink to a few minutes worst-case).
const SHRINK_BUDGET: usize = 600;

/// How a campaign covered the fault dimensions, counted over drawn
/// schedules (not over shrunk repros).
#[derive(Debug, Default, Serialize)]
struct Coverage {
    kills: usize,
    crashes: usize,
    link_flaps: usize,
    stalls: usize,
    chords: usize,
    cell_faults: usize,
    leases: usize,
    peak_rate: usize,
    memoryless: usize,
    chernoff_eb: usize,
}

impl Coverage {
    fn absorb(&mut self, s: &FuzzSchedule) {
        let cfg = &s.cfg;
        self.kills += usize::from(!cfg.fault.kills.is_empty());
        self.crashes += usize::from(!cfg.fault.crashes.is_empty());
        self.link_flaps += usize::from(!cfg.fault.link_downs.is_empty());
        self.stalls += usize::from(cfg.fault.stall.is_some());
        self.chords += usize::from(!cfg.extra_links.is_empty());
        self.cell_faults += usize::from(cfg.fault.drop_bp > 0);
        self.leases += usize::from(cfg.lease_supersteps > 0);
        match cfg.admission.name() {
            "peak-rate" => self.peak_rate += 1,
            "memoryless" => self.memoryless += 1,
            _ => self.chernoff_eb += 1,
        }
    }
}

/// One schedule's deterministic result line in the campaign report.
#[derive(Debug, Serialize)]
struct ScheduleRecord {
    schedule_seed: u64,
    num_vcs: usize,
    num_switches: usize,
    policy: String,
    fault_windows: usize,
    supersteps: u64,
    completed: u64,
    accepted: u64,
    exhausted: u64,
    reroutes: u64,
    stranded_events: u64,
    degraded_vcs: u64,
    unsettled_vcs: u64,
    failures: Vec<OracleFailure>,
}

#[derive(Debug, Serialize)]
struct CampaignReport {
    format: String,
    base_seed: u64,
    schedules: usize,
    clean: usize,
    failed: usize,
    coverage: Coverage,
    records: Vec<ScheduleRecord>,
}

/// Execute one schedule and run the oracle suite over it.
fn check(s: &FuzzSchedule) -> ScheduleRecord {
    let ex = execute(&s.cfg);
    let failures = run_oracles(&s.cfg, &ex);
    let r = &ex.sequential;
    ScheduleRecord {
        schedule_seed: s.schedule_seed,
        num_vcs: s.cfg.num_vcs,
        num_switches: s.cfg.num_switches,
        policy: s.cfg.admission.name().to_string(),
        fault_windows: fault_window_count(&s.cfg),
        supersteps: r.supersteps,
        completed: r.counters.completed,
        accepted: r.counters.accepted,
        exhausted: r.counters.exhausted,
        reroutes: r.counters.reroutes,
        stranded_events: r.counters.stranded_events,
        degraded_vcs: r.degraded_vcs,
        unsettled_vcs: r.unsettled_vcs,
        failures,
    }
}

/// Write one corpus entry under `dir`.
fn write_repro(dir: &Path, name: &str, repro: &FuzzRepro) {
    std::fs::create_dir_all(dir).expect("create corpus dir");
    let path = dir.join(name);
    std::fs::write(
        &path,
        serde_json::to_string_pretty(repro).expect("serialize repro"),
    )
    .expect("write repro");
    eprintln!("wrote {}", path.display());
}

/// Shrink a failing schedule down to the smallest config that still
/// fails the same oracle, and persist the minimized repro.
fn shrink_and_persist(s: &FuzzSchedule, first: &OracleFailure, corpus: &Path) {
    let oracle = first.oracle.clone();
    let (min, outcome) = shrink(
        s,
        |cfg| {
            let ex = execute(cfg);
            run_oracles(cfg, &ex).iter().any(|f| f.oracle == oracle)
        },
        SHRINK_BUDGET,
    );
    println!(
        "  shrunk seed {:#x}: {} accepted steps in {} evals, {} fault windows remain",
        s.schedule_seed,
        outcome.steps.len(),
        outcome.evals,
        fault_window_count(&min.cfg)
    );
    let repro = FuzzRepro {
        format: REPRO_FORMAT.to_string(),
        schedule_seed: s.schedule_seed,
        oracle: oracle.clone(),
        expect: "fail".to_string(),
        cfg: min.cfg,
    };
    write_repro(
        corpus,
        &format!("fail_{}_{:016x}.json", oracle, s.schedule_seed),
        &repro,
    );
}

/// Run `count` schedules from `base_seed` and assemble the report.
fn campaign(base_seed: u64, count: usize, corpus: &Path, shrink_failures: bool) -> CampaignReport {
    let mut coverage = Coverage::default();
    let mut records = Vec::with_capacity(count);
    let mut failed = 0usize;
    for (i, seed) in seed_stream(base_seed, count).into_iter().enumerate() {
        let s = draw_schedule(seed);
        coverage.absorb(&s);
        let record = check(&s);
        if !record.failures.is_empty() {
            failed += 1;
            println!(
                "[{}/{}] seed {seed:#018x} FAILED: {}",
                i + 1,
                count,
                record.failures[0].detail
            );
            if shrink_failures {
                shrink_and_persist(&s, &record.failures[0], corpus);
            }
        } else if (i + 1) % 25 == 0 {
            println!("[{}/{}] clean so far", i + 1, count);
        }
        records.push(record);
    }
    CampaignReport {
        format: CAMPAIGN_FORMAT.to_string(),
        base_seed,
        schedules: count,
        clean: count - failed,
        failed,
        coverage,
        records,
    }
}

/// Replay one corpus entry and check its recorded expectation.
fn replay(path: &Path) -> bool {
    let raw = std::fs::read_to_string(path).expect("read repro");
    let repro: FuzzRepro = serde_json::from_str(&raw).expect("parse repro");
    assert_eq!(repro.format, REPRO_FORMAT, "unknown repro format");
    repro.cfg.validate();
    let ex = execute(&repro.cfg);
    let failures = run_oracles(&repro.cfg, &ex);
    let ok = match repro.expect.as_str() {
        "clean" => failures.is_empty(),
        "fail" => failures.iter().any(|f| f.oracle == repro.oracle),
        other => panic!("unknown expectation {other:?}"),
    };
    let verdict = if ok { "ok" } else { "MISMATCH" };
    println!(
        "{}: expect {} on {} -> {verdict} ({} failures)",
        path.display(),
        repro.expect,
        repro.oracle,
        failures.len()
    );
    for f in &failures {
        println!("  {}: {}", f.oracle, f.detail);
    }
    ok
}

fn main() {
    let args = Args::parse();
    let out = args.out_dir().or_else(|| Some(PathBuf::from("results")));
    let out_dir = out.clone().expect("out dir");
    let corpus = out_dir.join("fuzz_corpus");

    if args.flag("smoke") {
        // Fixed seed, bounded budget: the report must be byte-identical
        // across reruns (CI compares against the committed copy).
        let report = campaign(SMOKE_BASE_SEED, 12, &corpus, false);
        write_json(&out, "fuzz_smoke.json", &report);
        println!(
            "fuzz smoke: {}/{} schedules clean",
            report.clean, report.schedules
        );
        if report.failed > 0 {
            std::process::exit(1);
        }
        return;
    }

    let replay_path: String = args.get("replay", String::new());
    if !replay_path.is_empty() {
        if !replay(Path::new(&replay_path)) {
            std::process::exit(1);
        }
        return;
    }

    if args.flag("anchor") {
        // Clean regression anchors for the committed corpus: the first
        // N smoke-stream schedules, verified clean, written as
        // `expect: "clean"` repros.
        let count: usize = args.get("count", 4);
        for seed in seed_stream(SMOKE_BASE_SEED, count) {
            let s = draw_schedule(seed);
            let record = check(&s);
            assert!(
                record.failures.is_empty(),
                "anchor seed {seed:#x} is not clean: {:?}",
                record.failures
            );
            let repro = FuzzRepro {
                format: REPRO_FORMAT.to_string(),
                schedule_seed: seed,
                oracle: "all".to_string(),
                expect: "clean".to_string(),
                cfg: s.cfg,
            };
            write_repro(&corpus, &format!("clean_{seed:016x}.json"), &repro);
        }
        // Plus one storm anchor: the first smoke-stream schedule whose
        // draw landed both a flash-crowd window and a bounded signaling
        // budget, verified clean, so the corpus replay permanently
        // covers the overload-protection plane.
        let seed = seed_stream(SMOKE_BASE_SEED, 256)
            .into_iter()
            .find(|&seed| {
                let cfg = &draw_schedule(seed).cfg;
                cfg.storm.is_some() && cfg.signaling_budget_per_round > 0
            })
            .expect("256 draws must reach the storm x budget corner");
        let s = draw_schedule(seed);
        let record = check(&s);
        assert!(
            record.failures.is_empty(),
            "storm anchor seed {seed:#x} is not clean: {:?}",
            record.failures
        );
        let repro = FuzzRepro {
            format: REPRO_FORMAT.to_string(),
            schedule_seed: seed,
            oracle: "all".to_string(),
            expect: "clean".to_string(),
            cfg: s.cfg,
        };
        write_repro(&corpus, &format!("clean_storm_{seed:016x}.json"), &repro);
        return;
    }

    // Default: full campaign.
    let count: usize = args.get("count", 200);
    let base_seed: u64 = args.get("base-seed", 2026);
    let report = campaign(base_seed, count, &corpus, true);
    write_json(&out, "fuzz_campaign.json", &report);
    println!(
        "fuzz campaign: {}/{} schedules clean (base seed {base_seed})",
        report.clean, report.schedules
    );
    if report.failed > 0 {
        std::process::exit(1);
    }
}
