//! # rcbr-fuzz — deterministic chaos fuzzing for the signaling plane
//!
//! FoundationDB-style simulation testing: a whole runtime scenario — VC
//! population, topology, fault intensity, crash/restart and
//! permanent-kill windows, link flaps, leases, retry budgets, admission
//! policy — is a *typed schedule* drawn from a seeded parameter space
//! ([`space`]), every run is a pure function of `(schedule_seed, cfg)`,
//! and an oracle suite ([`oracle`]) checks each schedule sharded
//! {1, 2, 4} against the sequential replay plus every invariant the
//! repo has established so far. A failing schedule is minimized by a
//! delta-debugging shrinker ([`shrink`]) into the smallest
//! still-failing configuration, committed to `results/fuzz_corpus/` as
//! a self-contained JSON repro that replays as an ordinary test.
//!
//! The `fuzz` binary drives three modes: `--campaign N` (explore N
//! seeded schedules, write `fuzz_campaign.json`, shrink and persist any
//! failures), `--smoke` (a fixed-seed bounded campaign whose JSON
//! report must be byte-identical across reruns — the CI gate), and
//! `--replay <repro.json>` (re-check one corpus entry).

pub mod oracle;
pub mod shrink;
pub mod space;

pub use oracle::{execute, run_oracles, Execution, OracleFailure};
pub use shrink::{candidates, fault_window_count, shrink};
pub use space::{draw_schedule, FuzzSchedule};

use rcbr_runtime::RuntimeConfig;
use serde::{Deserialize, Serialize};

/// Version tag of the committed corpus format.
pub const REPRO_FORMAT: &str = "rcbr-fuzz-repro-v1";

/// A self-contained corpus entry: everything needed to re-run one
/// schedule and check its expected verdict, with no dependency on the
/// generator that produced it (the embedded `cfg` is authoritative;
/// `schedule_seed` is provenance only).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FuzzRepro {
    /// Always [`REPRO_FORMAT`].
    pub format: String,
    /// The seed the schedule was originally drawn from (before any
    /// shrinking), for provenance.
    pub schedule_seed: u64,
    /// The oracle this repro exercises.
    pub oracle: String,
    /// `"clean"` (all oracles must pass — a regression anchor) or
    /// `"fail"` (the named oracle must still fail — a minimized bug
    /// repro kept alongside its fix).
    pub expect: String,
    /// The full runtime configuration to execute.
    pub cfg: RuntimeConfig,
}
