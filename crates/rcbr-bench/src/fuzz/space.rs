//! The typed schedule space: a seeded generator that draws whole
//! runtime scenarios — population, topology, fault intensity, outage
//! windows, recovery knobs, admission policy — as validated
//! [`RuntimeConfig`]s.
//!
//! Every draw is a pure function of the schedule seed, and the drawn
//! config's master `seed` *is* the schedule seed (with the fault plane
//! salted via [`FUZZ_FAULT_SEED_SALT`](crate::FUZZ_FAULT_SEED_SALT)),
//! so one `u64` reproduces the entire run. The generator respects every
//! `RuntimeConfig::validate` / `FaultConfig::validate` constraint by
//! construction: VC counts are multiples of the derived switch count
//! (so the mean-flow port sizing admits the initial population at any
//! headroom > 1), chords never duplicate ring links, crash/kill
//! switches are distinct, and `max_rounds` is capped low enough that a
//! schedule which strands its whole population still terminates fast.

use rcbr_net::StallSpec;
use rcbr_runtime::{AdmissionPolicy, RuntimeConfig};
use rcbr_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::{ScenarioBuilder, FUZZ_FAULT_SEED_SALT};

/// RNG substream label separating schedule draws from every other
/// consumer of the master seed.
const DRAW_STREAM: u64 = 0x5c4ed;

/// Hard cap on rounds for fuzz schedules. A schedule that strands every
/// VC never reaches `target_requests`; this bounds such runs to roughly
/// a second instead of the `balanced()` default of a million rounds.
const FUZZ_MAX_ROUNDS: u64 = 1_024;

/// One drawn scenario: the seed it came from and the full (validated)
/// runtime configuration. The config is authoritative — the shrinker
/// mutates it directly and the seed stays behind as provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FuzzSchedule {
    /// The seed [`draw_schedule`] consumed.
    pub schedule_seed: u64,
    /// The scenario to execute.
    pub cfg: RuntimeConfig,
}

/// Draw the schedule for `schedule_seed`. Total function: every seed
/// yields a valid scenario.
pub fn draw_schedule(schedule_seed: u64) -> FuzzSchedule {
    let mut rng = SimRng::from_seed(schedule_seed).substream(DRAW_STREAM);

    // Population: multiples of 8 keep `balanced()`'s derived switch
    // count a divisor of the VC count, so per-switch flow loads are
    // exactly balanced and `mean_flow_capacity(headroom)` admits the
    // initial population for any headroom > 1.
    let num_vcs = [16, 24, 32, 48, 64, 96, 128][rng.index(7)];
    let target_requests = 200 + 100 * rng.index(9) as u64;
    let headroom = rng.uniform_in(1.1, 3.5);
    let intensity_bp = [0, 50, 150, 300, 500, 800][rng.index(6)];

    let policy = match rng.index(3) {
        0 => AdmissionPolicy::PeakRate,
        1 => AdmissionPolicy::Memoryless {
            target: rng.uniform_in(1e-4, 0.1),
        },
        _ => AdmissionPolicy::ChernoffEb {
            epsilon: rng.uniform_in(1e-6, 1e-2),
        },
    };
    let window_supersteps = [16, 32, 64, 128][rng.index(4)];

    let mut builder = ScenarioBuilder::balanced(2, num_vcs)
        .seed(schedule_seed)
        .fault_seed_salt(FUZZ_FAULT_SEED_SALT)
        .target_requests(target_requests)
        .max_rounds(FUZZ_MAX_ROUNDS)
        .transparent_faults()
        .intensity_bp(intensity_bp)
        .mean_flow_capacity(headroom)
        .admission(policy, window_supersteps)
        .lease_supersteps([0, 0, 64, 200][rng.index(4)])
        .timeout_supersteps([8, 16, 32][rng.index(3)])
        .recovery(
            [0, 4, 8, 16][rng.index(4)],
            1 + rng.index(4) as u32,
            1 + rng.index(6) as u64,
        )
        .audit_interval([0, 16, 64][rng.index(3)]);

    // Topology: up to two chords that are neither self-links, ring
    // links, nor duplicates. `n >= 8` always, so valid chords exist.
    let n = (num_vcs / 8).max(8);
    let mut chords: Vec<(usize, usize)> = Vec::new();
    for _ in 0..rng.index(3) {
        let a = rng.index(n);
        let b = (a + 2 + rng.index(n - 3)) % n;
        let ring = (a + 1) % n == b || (b + 1) % n == a;
        let dup = chords
            .iter()
            .any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a));
        if a != b && !ring && !dup {
            chords.push((a, b));
        }
    }
    builder = builder.extra_links(chords);

    // Outage windows. Crash and kill switches must be distinct (at most
    // one window per switch, crashes disjoint from kills).
    let mut used: Vec<usize> = Vec::new();
    for _ in 0..rng.index(3) {
        let switch = rng.index(n);
        if used.contains(&switch) {
            continue;
        }
        used.push(switch);
        builder = builder.crash(switch, 1 + rng.index(300) as u64, 5 + rng.index(46) as u64);
    }
    if rng.chance(0.4) {
        let switch = rng.index(n);
        if !used.contains(&switch) {
            used.push(switch);
            builder = builder.kill(switch, 40 + rng.index(260) as u64);
        }
    }
    // Link flaps on ring links (always-present edges, so every window
    // is a real outage on some VC's default path).
    for _ in 0..rng.index(4) {
        let a = rng.index(n);
        let b = (a + 1) % n;
        builder = builder.link_down(a, b, 1 + rng.index(400) as u64, 5 + rng.index(76) as u64);
    }
    if rng.chance(0.25) {
        let groups = 2 + rng.index(3);
        builder = builder.stall(StallSpec {
            groups,
            group: rng.index(groups),
            at_superstep: 1 + rng.index(200) as u64,
            supersteps: 4 + rng.index(21) as u64,
        });
    }

    let mut cfg = builder.build();
    // Knobs the builder does not expose; re-validate after poking them.
    cfg.backoff_jitter = rng.index(5) as u64;
    cfg.reroute_k = 2 + rng.index(3);
    // Overload-protection dimension: bounded signaling queues, class
    // mixes, and flash-crowd storm windows. Budget 0 (the legacy
    // unbounded default) stays the most likely draw so the pre-shedding
    // interaction space keeps getting explored.
    cfg.signaling_budget_per_round = [0, 0, 2, 4, 8][rng.index(5)];
    cfg.gold_pct = [0, 25, 40][rng.index(3)];
    cfg.silver_pct = [0, 25, 30][rng.index(3)];
    cfg.shed_budget = 1 + rng.index(4) as u32;
    cfg.pressure_hold_supersteps = [4, 8, 16][rng.index(3)];
    cfg.brownout_hold_supersteps = [16, 64, 128][rng.index(3)];
    if rng.chance(0.35) {
        cfg.storm = Some(rcbr_runtime::StormSpec {
            at_round: 1 + rng.index(8) as u64,
            rounds: 1 + rng.index(3) as u64,
            burst: [3, 10][rng.index(2)] as u64,
        });
    }
    cfg.validate();

    FuzzSchedule { schedule_seed, cfg }
}

/// The deterministic seed stream for a campaign: `count` schedule seeds
/// derived from `base_seed`.
pub fn seed_stream(base_seed: u64, count: usize) -> Vec<u64> {
    let mut rng = SimRng::from_seed(base_seed).substream(DRAW_STREAM ^ 1);
    (0..count).map(|_| rng.next_u64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_draws_a_valid_schedule() {
        for seed in 0..64u64 {
            let s = draw_schedule(seed);
            s.cfg.validate();
            assert_eq!(s.cfg.seed, seed);
            assert_eq!(s.cfg.fault.seed, seed ^ FUZZ_FAULT_SEED_SALT);
            assert!(s.cfg.max_rounds <= FUZZ_MAX_ROUNDS);
        }
    }

    #[test]
    fn draws_are_deterministic() {
        let a = serde_json::to_string(&draw_schedule(42)).unwrap();
        let b = serde_json::to_string(&draw_schedule(42)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn the_space_reaches_every_fault_dimension() {
        let mut kills = 0;
        let mut crashes = 0;
        let mut flaps = 0;
        let mut stalls = 0;
        let mut measured = 0;
        let mut budgeted = 0;
        let mut storms = 0;
        for seed in 0..128u64 {
            let cfg = draw_schedule(seed).cfg;
            kills += usize::from(!cfg.fault.kills.is_empty());
            crashes += usize::from(!cfg.fault.crashes.is_empty());
            flaps += usize::from(!cfg.fault.link_downs.is_empty());
            stalls += usize::from(cfg.fault.stall.is_some());
            measured += usize::from(cfg.admission.measures());
            budgeted += usize::from(cfg.signaling_budget_per_round > 0);
            storms += usize::from(cfg.storm.is_some());
        }
        for (name, hit) in [
            ("kills", kills),
            ("crashes", crashes),
            ("flaps", flaps),
            ("stalls", stalls),
            ("measured policies", measured),
            ("bounded signaling budgets", budgeted),
            ("storm windows", storms),
        ] {
            assert!(hit > 8, "{name} barely explored: {hit}/128");
        }
    }
}
