//! The invariant oracle suite.
//!
//! [`execute`] runs one configuration through the sequential replay and
//! the sharded engine at shard counts {1, 2, 4}; [`run_oracles`] then
//! checks every invariant the repo has established:
//!
//! - **shard-identity** — counters, per-VC outcomes, admission, audit,
//!   latency, and the superstep clock are bit-identical at every shard
//!   count and against the sequential replay (wall-clock fields
//!   excluded; they are the one sanctioned nondeterminism).
//! - **final-drift-zero** — the end-of-run audit closes at zero drift.
//! - **quiescent-residue** — when no VC ended mid-reroute
//!   (`unsettled_vcs == 0`), torn-down VCs left no bandwidth behind.
//! - **port-consistency** — reserved equals granted at quiescence: the
//!   auditor found no port whose book disagrees with its entries.
//! - **fate-accounting** — every completed request was accepted or
//!   exhausted, exactly.
//! - **denial-loss-split** — admission's loss split is exhaustive:
//!   fault losses are exactly the four fault-plane kill modes, and the
//!   admission cells match the counters they were derived from.
//! - **counter-order** — subset counters never exceed their supersets
//!   (committed/denied reroutes vs. attempts, unstranded vs. stranded).
//! - **peak-rate-passivity** — under the legacy `PeakRate` policy the
//!   measurement pipeline never runs: no rolls, no observations, no
//!   cache traffic.
//! - **vc-outcome-sanity** — per-VC loss fractions are in [0, 1] and
//!   believed rates are finite and nonnegative.
//! - **shed-accounting** — overload shedding is exhaustive and gated:
//!   per-class shed counters sum to `cells_shed`, brownout exits never
//!   exceed entries, brownouts only happen after sheds, and a zero
//!   signaling budget (the legacy default) sheds nothing and counts no
//!   pressure.
//!
//! Oracles are pure functions of [`Execution`]; a failure names the
//! oracle and carries a human-readable detail line, which is what the
//! shrinker keys on ("still fails the *same* oracle").

use rcbr_runtime::{run, run_sequential, AdmissionPolicy, RunReport, RuntimeConfig};
use serde::{Deserialize, Serialize};

/// Shard counts every schedule is executed at (plus the sequential
/// replay, which is its own engine, not `run` at one shard).
pub const FUZZ_SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// One oracle violation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OracleFailure {
    /// Which oracle tripped (one of the `ORACLE_*` ids).
    pub oracle: String,
    /// Human-readable description of the violation.
    pub detail: String,
}

pub const ORACLE_SHARD_IDENTITY: &str = "shard-identity";
pub const ORACLE_FINAL_DRIFT: &str = "final-drift-zero";
pub const ORACLE_QUIESCENT_RESIDUE: &str = "quiescent-residue";
pub const ORACLE_PORT_CONSISTENCY: &str = "port-consistency";
pub const ORACLE_FATE_ACCOUNTING: &str = "fate-accounting";
pub const ORACLE_DENIAL_LOSS_SPLIT: &str = "denial-loss-split";
pub const ORACLE_COUNTER_ORDER: &str = "counter-order";
pub const ORACLE_PEAK_RATE_PASSIVITY: &str = "peak-rate-passivity";
pub const ORACLE_VC_SANITY: &str = "vc-outcome-sanity";
pub const ORACLE_SHED_ACCOUNTING: &str = "shed-accounting";
/// Test-only: trips whenever the fault plane killed a cell on a downed
/// link. Not a real invariant — it exists so the shrinker's soundness
/// and 1-minimality properties have a deterministic, cheap-to-evaluate
/// violation to minimize (see `tests/fuzz_shrink.rs`).
pub const ORACLE_SYNTHETIC_LINK_KILL: &str = "synthetic-link-kill";

/// One schedule's full execution: the sequential reference plus the
/// sharded engine at [`FUZZ_SHARD_COUNTS`].
pub struct Execution {
    /// The `run_sequential` reference report.
    pub sequential: RunReport,
    /// `run` at shard counts 1, 2, 4 (in [`FUZZ_SHARD_COUNTS`] order).
    pub sharded: Vec<RunReport>,
}

/// Execute `cfg` on every engine the oracles compare.
pub fn execute(cfg: &RuntimeConfig) -> Execution {
    let sequential = run_sequential(cfg);
    let sharded = FUZZ_SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let mut c = cfg.clone();
            c.num_shards = shards;
            run(&c)
        })
        .collect();
    Execution {
        sequential,
        sharded,
    }
}

/// The deterministic subset of a [`RunReport`]: everything except the
/// wall-clock fields (`wall_seconds`, `throughput_per_sec`), the
/// per-shard pipeline metrics (batch sizes legitimately depend on the
/// partition), and `num_shards` itself. Serialized to canonical JSON,
/// two reports are bit-identical iff these strings are equal — the
/// vendored serde shim round-trips every `f64` exactly.
#[derive(Serialize)]
struct ComparableReport {
    rounds: u64,
    supersteps: u64,
    counters: rcbr_runtime::CounterSnapshot,
    audit: rcbr_runtime::AuditReport,
    admission: rcbr_runtime::AdmissionReport,
    degraded_vcs: u64,
    unsettled_vcs: u64,
    brownout_vcs: u64,
    mean_source_loss: f64,
    max_source_loss: f64,
    vcs: Vec<rcbr_runtime::VcOutcome>,
    latency: rcbr_runtime::LatencySummary,
}

/// Canonical JSON of the deterministic subset of `report`.
pub fn comparable_json(report: &RunReport) -> String {
    let c = ComparableReport {
        rounds: report.rounds,
        supersteps: report.supersteps,
        counters: report.counters,
        audit: report.audit,
        admission: report.admission.clone(),
        degraded_vcs: report.degraded_vcs,
        unsettled_vcs: report.unsettled_vcs,
        brownout_vcs: report.brownout_vcs,
        mean_source_loss: report.mean_source_loss,
        max_source_loss: report.max_source_loss,
        vcs: report.vcs.clone(),
        latency: report.latency,
    };
    serde_json::to_string_pretty(&c).expect("report serializes")
}

/// First line on which two canonical JSON reports differ.
fn first_divergence(a: &str, b: &str) -> String {
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("line {}: `{}` vs `{}`", i + 1, la.trim(), lb.trim());
        }
    }
    format!(
        "lengths differ: {} vs {} lines",
        a.lines().count(),
        b.lines().count()
    )
}

/// Run the full oracle suite over one execution. Returns every
/// violation found (empty = the schedule is clean).
pub fn run_oracles(cfg: &RuntimeConfig, ex: &Execution) -> Vec<OracleFailure> {
    let mut failures = Vec::new();
    let fail = |failures: &mut Vec<OracleFailure>, oracle: &str, detail: String| {
        failures.push(OracleFailure {
            oracle: oracle.to_string(),
            detail,
        });
    };

    let reference = comparable_json(&ex.sequential);
    for (i, report) in ex.sharded.iter().enumerate() {
        let shards = FUZZ_SHARD_COUNTS[i];
        let got = comparable_json(report);
        if got != reference {
            fail(
                &mut failures,
                ORACLE_SHARD_IDENTITY,
                format!(
                    "shards={shards} diverges from sequential: {}",
                    first_divergence(&reference, &got)
                ),
            );
        }
    }

    let labeled: Vec<(String, &RunReport)> = std::iter::once(("seq".to_string(), &ex.sequential))
        .chain(
            ex.sharded
                .iter()
                .enumerate()
                .map(|(i, r)| (format!("shards={}", FUZZ_SHARD_COUNTS[i]), r)),
        )
        .collect();

    for (label, r) in &labeled {
        let c = &r.counters;
        if r.audit.final_drift != 0 {
            fail(
                &mut failures,
                ORACLE_FINAL_DRIFT,
                format!("[{label}] final_drift = {}", r.audit.final_drift),
            );
        }
        if r.unsettled_vcs == 0 && r.audit.off_route_residue != 0 {
            fail(
                &mut failures,
                ORACLE_QUIESCENT_RESIDUE,
                format!(
                    "[{label}] every VC settled yet off_route_residue = {}",
                    r.audit.off_route_residue
                ),
            );
        }
        if r.audit.port_inconsistencies != 0 {
            fail(
                &mut failures,
                ORACLE_PORT_CONSISTENCY,
                format!(
                    "[{label}] port_inconsistencies = {}",
                    r.audit.port_inconsistencies
                ),
            );
        }
        if c.completed != c.accepted + c.exhausted {
            fail(
                &mut failures,
                ORACLE_FATE_ACCOUNTING,
                format!(
                    "[{label}] completed {} != accepted {} + exhausted {}",
                    c.completed, c.accepted, c.exhausted
                ),
            );
        }
        let a = &r.admission;
        let fault_lost = c.cells_dropped + c.cells_corrupted + c.crash_killed + c.cells_link_killed;
        if a.fault_lost_cells != fault_lost
            || a.admitted_cells != c.admission_grants
            || a.denied_cells != c.admission_denials
        {
            fail(
                &mut failures,
                ORACLE_DENIAL_LOSS_SPLIT,
                format!(
                    "[{label}] admission split drifted from counters: \
                     fault_lost {} vs {}, admitted {} vs {}, denied {} vs {}",
                    a.fault_lost_cells,
                    fault_lost,
                    a.admitted_cells,
                    c.admission_grants,
                    a.denied_cells,
                    c.admission_denials
                ),
            );
        }
        // Note `resync_repairs` has no subset relation to `resyncs`:
        // repairs are per *hop*, injections per *cell*, and one resync
        // cell can repair every drifted hop it crosses.
        for (name, sub, sup) in [
            (
                "reroutes_committed+denied vs reroutes",
                c.reroutes_committed + c.reroutes_denied,
                c.reroutes,
            ),
            (
                "unstranded vs stranded",
                c.unstranded_events,
                c.stranded_events,
            ),
        ] {
            if sub > sup {
                fail(
                    &mut failures,
                    ORACLE_COUNTER_ORDER,
                    format!("[{label}] {name}: {sub} > {sup}"),
                );
            }
        }
        if matches!(cfg.admission, AdmissionPolicy::PeakRate)
            && (a.rolls != 0
                || a.estimator_observations != 0
                || a.eb_cache_hits != 0
                || a.eb_cache_misses != 0
                || a.policy != "peak-rate")
        {
            fail(
                &mut failures,
                ORACLE_PEAK_RATE_PASSIVITY,
                format!(
                    "[{label}] measurement pipeline ran under PeakRate: \
                     rolls {} observations {} cache {}/{} policy {:?}",
                    a.rolls, a.estimator_observations, a.eb_cache_hits, a.eb_cache_misses, a.policy
                ),
            );
        }
        let class_sheds = c.sheds_gold + c.sheds_silver + c.sheds_best_effort;
        if class_sheds != c.cells_shed {
            fail(
                &mut failures,
                ORACLE_SHED_ACCOUNTING,
                format!(
                    "[{label}] per-class sheds {} (gold {} + silver {} + best-effort {}) \
                     != cells_shed {}",
                    class_sheds, c.sheds_gold, c.sheds_silver, c.sheds_best_effort, c.cells_shed
                ),
            );
        }
        if c.brownout_exits > c.brownout_entries {
            fail(
                &mut failures,
                ORACLE_SHED_ACCOUNTING,
                format!(
                    "[{label}] brownout_exits {} > brownout_entries {}",
                    c.brownout_exits, c.brownout_entries
                ),
            );
        }
        if c.brownout_entries > 0 && c.cells_shed == 0 {
            fail(
                &mut failures,
                ORACLE_SHED_ACCOUNTING,
                format!(
                    "[{label}] {} brownout entries without a single shed",
                    c.brownout_entries
                ),
            );
        }
        if cfg.signaling_budget_per_round == 0
            && (c.cells_shed != 0
                || c.brownout_entries != 0
                || c.brownout_exits != 0
                || c.pressure_rounds != 0)
        {
            fail(
                &mut failures,
                ORACLE_SHED_ACCOUNTING,
                format!(
                    "[{label}] zero signaling budget yet shed machinery ran: \
                     cells_shed {} brownout {}/{} pressure_rounds {}",
                    c.cells_shed, c.brownout_entries, c.brownout_exits, c.pressure_rounds
                ),
            );
        }
        for vc in &r.vcs {
            let bad_loss = !(0.0..=1.0).contains(&vc.loss) || !vc.loss.is_finite();
            let bad_rate = !vc.believed.is_finite() || vc.believed < 0.0;
            if bad_loss || bad_rate {
                fail(
                    &mut failures,
                    ORACLE_VC_SANITY,
                    format!(
                        "[{label}] VC {} ended with loss {} believed {}",
                        vc.vci, vc.loss, vc.believed
                    ),
                );
            }
        }
    }

    failures
}

/// The test-only synthetic oracle (see [`ORACLE_SYNTHETIC_LINK_KILL`]):
/// needs only the sequential report, so shrinker properties stay cheap.
pub fn synthetic_link_kill(report: &RunReport) -> Option<OracleFailure> {
    (report.counters.cells_link_killed >= 1).then(|| OracleFailure {
        oracle: ORACLE_SYNTHETIC_LINK_KILL.to_string(),
        detail: format!("cells_link_killed = {}", report.counters.cells_link_killed),
    })
}
