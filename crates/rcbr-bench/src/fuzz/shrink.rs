//! Delta-debugging shrinker: minimize a failing schedule while it keeps
//! failing the *same* oracle.
//!
//! Greedy first-improvement descent over a fixed transform catalog:
//! each pass enumerates every single-step reduction of the current
//! configuration — drop one fault window (or a whole category), drop a
//! chord, halve a population / budget / duration knob, collapse the
//! admission policy to `PeakRate` — and takes the first candidate the
//! caller's predicate still rejects. The scan restarts from the reduced
//! config; the loop ends at a fixpoint, which is exactly 1-minimality
//! with respect to the catalog: removing any remaining fault window or
//! halving any remaining knob makes the failure disappear (or change
//! oracle — the predicate encodes "same oracle").
//!
//! Every candidate is valid by construction (floors keep
//! `RuntimeConfig::validate` happy), so the predicate never sees a
//! config that panics in validation.

use rcbr_runtime::{AdmissionPolicy, RuntimeConfig};

use super::space::FuzzSchedule;

/// Scheduled outage windows in `cfg`: kills + crashes + link-down
/// windows + the stall (the shrink demo's "fault window" count).
pub fn fault_window_count(cfg: &RuntimeConfig) -> usize {
    cfg.fault.kills.len()
        + cfg.fault.crashes.len()
        + cfg.fault.link_downs.len()
        + usize::from(cfg.fault.stall.is_some())
}

/// Halve toward a floor; `None` when already there.
fn halved(value: u64, floor: u64) -> Option<u64> {
    let next = (value / 2).max(floor);
    (next < value).then_some(next)
}

/// Every single-step reduction of `cfg`, as `(description, candidate)`
/// pairs. Public so the 1-minimality property can re-verify the
/// fixpoint the shrinker claims.
pub fn candidates(cfg: &RuntimeConfig) -> Vec<(String, RuntimeConfig)> {
    let mut out: Vec<(String, RuntimeConfig)> = Vec::new();
    let mut push = |desc: String, cand: RuntimeConfig| out.push((desc, cand));

    // Structural drops first: whole categories, then single windows.
    if !cfg.fault.kills.is_empty() {
        let mut c = cfg.clone();
        c.fault.kills.clear();
        push("drop all kills".into(), c);
    }
    if !cfg.fault.crashes.is_empty() {
        let mut c = cfg.clone();
        c.fault.crashes.clear();
        push("drop all crashes".into(), c);
    }
    if !cfg.fault.link_downs.is_empty() {
        let mut c = cfg.clone();
        c.fault.link_downs.clear();
        push("drop all link windows".into(), c);
    }
    for i in 0..cfg.fault.kills.len() {
        let mut c = cfg.clone();
        c.fault.kills.remove(i);
        push(format!("drop kill #{i}"), c);
    }
    for i in 0..cfg.fault.crashes.len() {
        let mut c = cfg.clone();
        c.fault.crashes.remove(i);
        push(format!("drop crash #{i}"), c);
    }
    for i in 0..cfg.fault.link_downs.len() {
        let mut c = cfg.clone();
        c.fault.link_downs.remove(i);
        push(format!("drop link window #{i}"), c);
    }
    if cfg.fault.stall.is_some() {
        let mut c = cfg.clone();
        c.fault.stall = None;
        push("drop stall".into(), c);
    }
    for i in 0..cfg.extra_links.len() {
        let mut c = cfg.clone();
        c.extra_links.remove(i);
        push(format!("drop chord #{i}"), c);
    }

    // Random cell-fault intensity, toward transparent.
    for (name, get) in [
        ("drop_bp", 0usize),
        ("delay_bp", 1),
        ("dup_bp", 2),
        ("corrupt_bp", 3),
    ] {
        let value = match get {
            0 => cfg.fault.drop_bp,
            1 => cfg.fault.delay_bp,
            2 => cfg.fault.dup_bp,
            _ => cfg.fault.corrupt_bp,
        };
        if value > 0 {
            let mut c = cfg.clone();
            match get {
                0 => c.fault.drop_bp = value / 2,
                1 => c.fault.delay_bp = value / 2,
                2 => c.fault.dup_bp = value / 2,
                _ => c.fault.corrupt_bp = value / 2,
            }
            push(format!("halve {name}"), c);
        }
    }

    // Population and run length.
    if let Some(v) = halved(cfg.num_vcs as u64, 8) {
        let mut c = cfg.clone();
        c.num_vcs = v as usize;
        push("halve num_vcs".into(), c);
    }
    if let Some(v) = halved(cfg.target_requests, 50) {
        let mut c = cfg.clone();
        c.target_requests = v;
        push("halve target_requests".into(), c);
    }
    if let Some(v) = halved(cfg.max_rounds, 64) {
        let mut c = cfg.clone();
        c.max_rounds = v;
        push("halve max_rounds".into(), c);
    }

    // Recovery and signaling knobs.
    if let Some(v) = halved(cfg.lease_supersteps, 0) {
        let mut c = cfg.clone();
        c.lease_supersteps = v;
        push("halve lease_supersteps".into(), c);
    }
    if let Some(v) = halved(cfg.timeout_supersteps, 1) {
        let mut c = cfg.clone();
        c.timeout_supersteps = v;
        push("halve timeout_supersteps".into(), c);
    }
    if let Some(v) = halved(cfg.retry_budget as u64, 0) {
        let mut c = cfg.clone();
        c.retry_budget = v as u32;
        push("halve retry_budget".into(), c);
    }
    if let Some(v) = halved(cfg.backoff_base, 1) {
        let mut c = cfg.clone();
        c.backoff_base = v;
        push("halve backoff_base".into(), c);
    }
    if let Some(v) = halved(cfg.backoff_jitter, 0) {
        let mut c = cfg.clone();
        c.backoff_jitter = v;
        push("halve backoff_jitter".into(), c);
    }
    // Overload-protection knobs: unbound the signaling queue entirely
    // (the legacy behavior), or keep shedding but gentler; calm the
    // storm before dropping it.
    if cfg.signaling_budget_per_round > 0 {
        let mut c = cfg.clone();
        c.signaling_budget_per_round = 0;
        push("unbound the signaling queues".into(), c);
        if let Some(v) = halved(cfg.signaling_budget_per_round, 1) {
            let mut c = cfg.clone();
            c.signaling_budget_per_round = v;
            push("halve signaling budget".into(), c);
        }
    }
    if let Some(storm) = cfg.storm {
        let mut c = cfg.clone();
        c.storm = None;
        push("drop storm".into(), c);
        if let Some(v) = halved(storm.burst, 1) {
            let mut c = cfg.clone();
            c.storm = Some(rcbr_runtime::StormSpec { burst: v, ..storm });
            push("halve storm burst".into(), c);
        }
        if let Some(v) = halved(storm.rounds, 1) {
            let mut c = cfg.clone();
            c.storm = Some(rcbr_runtime::StormSpec { rounds: v, ..storm });
            push("shorten storm".into(), c);
        }
    }
    if cfg.resync_interval != 0 {
        let mut c = cfg.clone();
        c.resync_interval = 0;
        push("disable resync".into(), c);
    }
    if cfg.audit_interval != 0 {
        let mut c = cfg.clone();
        c.audit_interval = 0;
        push("disable periodic audits".into(), c);
    }
    if cfg.admission.measures() {
        let mut c = cfg.clone();
        c.admission = AdmissionPolicy::PeakRate;
        push("collapse policy to peak-rate".into(), c);
        if let Some(v) = halved(cfg.measurement_window_supersteps, 1) {
            let mut c = cfg.clone();
            c.measurement_window_supersteps = v;
            push("halve measurement window".into(), c);
        }
    }

    // Shorten and advance the remaining windows.
    for i in 0..cfg.fault.kills.len() {
        if let Some(v) = halved(cfg.fault.kills[i].at_superstep, 1) {
            let mut c = cfg.clone();
            c.fault.kills[i].at_superstep = v;
            push(format!("advance kill #{i}"), c);
        }
    }
    for i in 0..cfg.fault.crashes.len() {
        if let Some(v) = halved(cfg.fault.crashes[i].down_supersteps, 1) {
            let mut c = cfg.clone();
            c.fault.crashes[i].down_supersteps = v;
            push(format!("shorten crash #{i}"), c);
        }
        if let Some(v) = halved(cfg.fault.crashes[i].at_superstep, 1) {
            let mut c = cfg.clone();
            c.fault.crashes[i].at_superstep = v;
            push(format!("advance crash #{i}"), c);
        }
    }
    for i in 0..cfg.fault.link_downs.len() {
        if let Some(v) = halved(cfg.fault.link_downs[i].down_supersteps, 1) {
            let mut c = cfg.clone();
            c.fault.link_downs[i].down_supersteps = v;
            push(format!("shorten link window #{i}"), c);
        }
        if let Some(v) = halved(cfg.fault.link_downs[i].at_superstep, 1) {
            let mut c = cfg.clone();
            c.fault.link_downs[i].at_superstep = v;
            push(format!("advance link window #{i}"), c);
        }
    }
    if let Some(stall) = cfg.fault.stall {
        if let Some(v) = halved(stall.supersteps, 1) {
            let mut c = cfg.clone();
            c.fault.stall = Some(rcbr_net::StallSpec {
                supersteps: v,
                ..stall
            });
            push("shorten stall".into(), c);
        }
    }

    out
}

/// What one shrink run did.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// Predicate evaluations spent.
    pub evals: usize,
    /// Reductions accepted, in order (`desc` of each accepted step).
    pub steps: Vec<String>,
}

/// Minimize `schedule` while `still_fails` keeps rejecting it. The
/// predicate must encode "fails the same oracle as the original"; it is
/// only ever called on valid configurations. `budget` caps predicate
/// evaluations (the returned schedule is whatever fixpoint — or partial
/// descent — the budget allowed).
pub fn shrink<F>(
    schedule: &FuzzSchedule,
    mut still_fails: F,
    budget: usize,
) -> (FuzzSchedule, ShrinkOutcome)
where
    F: FnMut(&RuntimeConfig) -> bool,
{
    let mut current = schedule.clone();
    let mut outcome = ShrinkOutcome {
        evals: 0,
        steps: Vec::new(),
    };
    'descend: loop {
        for (desc, cand) in candidates(&current.cfg) {
            if outcome.evals >= budget {
                break 'descend;
            }
            outcome.evals += 1;
            if still_fails(&cand) {
                current.cfg = cand;
                outcome.steps.push(desc);
                continue 'descend;
            }
        }
        break;
    }
    (current, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::space::draw_schedule;

    #[test]
    fn candidates_are_all_valid() {
        for seed in 0..32u64 {
            let s = draw_schedule(seed);
            for (desc, cand) in candidates(&s.cfg) {
                // validate() panics on an inconsistent config; the
                // catalog must never produce one.
                cand.validate();
                assert!(!desc.is_empty());
            }
        }
    }

    #[test]
    fn shrink_reaches_a_fixpoint_under_an_always_failing_predicate() {
        // With a predicate that accepts every reduction, the fixpoint
        // is the catalog's floor: no fault windows, no chords, minimal
        // knobs — and no candidate remains.
        let s = draw_schedule(3);
        let (min, outcome) = shrink(&s, |_| true, 10_000);
        assert_eq!(fault_window_count(&min.cfg), 0);
        assert!(min.cfg.extra_links.is_empty());
        assert_eq!(min.cfg.num_vcs, 8);
        assert_eq!(min.cfg.max_rounds, 64);
        assert!(candidates(&min.cfg).is_empty(), "fixpoint must be bare");
        assert!(outcome.evals >= outcome.steps.len());
        min.cfg.validate();
    }
}
