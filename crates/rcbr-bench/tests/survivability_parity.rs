//! Satellite: the `PeakRate` default reproduces the committed PR 5
//! survivability counters bit for bit.
//!
//! The live admission subsystem threads a booking ceiling through every
//! port check and an observation hook through every delivered RM cell.
//! Under the default `PeakRate` policy both must be exact no-ops: this
//! test replays the *committed* survivability scenario (the one behind
//! `results/chaos_survivability_smoke.json`, shared via
//! [`rcbr_bench::survivability_scenario`]) and compares every counter in
//! the committed artifact against a fresh run. Any drift means the
//! admission plumbing changed legacy behavior.

use rcbr_bench::survivability_scenario;
use rcbr_runtime::{run_sequential, AdmissionPolicy};
use serde::Value;

/// A `u64` field of the committed report.
fn committed_u64(v: &Value, key: &str) -> u64 {
    match v.get(key) {
        Some(Value::UInt(n)) => *n,
        Some(Value::Int(n)) if *n >= 0 => *n as u64,
        other => panic!("committed field `{key}` is not a u64: {other:?}"),
    }
}

#[test]
fn peak_rate_default_reproduces_committed_survivability_counters() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/chaos_survivability_smoke.json"
    );
    let committed = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing committed artifact {path}: {e}"));
    let want: Value = serde_json::from_str(&committed).expect("committed artifact parses");

    let scenario = survivability_scenario(committed_u64(&want, "seed"), true);
    assert_eq!(
        scenario.cfg.admission,
        AdmissionPolicy::PeakRate,
        "the committed scenario runs the legacy default policy"
    );
    assert_eq!(
        scenario.cfg.target_requests,
        committed_u64(&want, "target_requests")
    );
    assert_eq!(
        scenario.killed_switch as u64,
        committed_u64(&want, "killed_switch")
    );

    let report = run_sequential(&scenario.cfg);
    let c = &report.counters;
    for (name, got) in [
        ("supersteps", report.supersteps),
        ("completed", c.completed),
        ("reroutes", c.reroutes),
        ("reroutes_committed", c.reroutes_committed),
        ("reroutes_denied", c.reroutes_denied),
        ("teardown_cells", c.teardown_cells),
        ("leases_expired", c.leases_expired),
        ("cells_link_killed", c.cells_link_killed),
        ("crash_killed", c.crash_killed),
        ("stranded_events", c.stranded_events),
        ("unstranded_events", c.unstranded_events),
        ("degraded_vcs", report.degraded_vcs),
        ("final_drift", report.audit.final_drift),
        ("off_route_residue", report.audit.off_route_residue),
    ] {
        assert_eq!(
            got,
            committed_u64(&want, name),
            "`{name}` drifted from the committed survivability run — \
             the admission plumbing is not a no-op under PeakRate"
        );
    }

    // And the admission subsystem itself must report pure passivity.
    let a = &report.admission;
    assert_eq!(a.policy, "peak-rate");
    assert_eq!(a.rolls, 0, "peak-rate must never roll a measurement window");
    assert_eq!(a.estimator_observations, 0);
    assert_eq!(a.eb_cache_misses, 0);
    assert_eq!(
        a.admitted_cells + a.denied_cells,
        c.admission_grants + c.admission_denials
    );
}
