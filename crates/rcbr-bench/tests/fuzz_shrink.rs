//! Shrinker soundness and 1-minimality, as properties.
//!
//! The subject under test is the delta-debugging loop itself, so the
//! oracle must be *known-failing by construction*: we draw an arbitrary
//! schedule, inject early long-lived ring-link outages (the test-only
//! hook), and use the synthetic link-kill oracle — "the fault plane
//! killed at least one cell on a downed link" — which those outages
//! trip deterministically. The properties:
//!
//! - **soundness** — the shrunk schedule still fails the same oracle;
//! - **aggressiveness** — the injected violation minimizes to at most 2
//!   fault windows and at most 1/4 of the original run-length budget
//!   (`max_rounds`, the superstep budget), with the executed run no
//!   longer than the original;
//! - **1-minimality** — the shrinker stopped at a fixpoint: every
//!   single-step reduction of the shrunk config (removing a remaining
//!   fault window, halving a remaining knob) makes the oracle pass.

use proptest::prelude::*;
use rcbr_bench::fuzz::{
    candidates, draw_schedule, fault_window_count, oracle::synthetic_link_kill, shrink,
    FuzzSchedule,
};
use rcbr_net::LinkDownSpec;
use rcbr_runtime::{run_sequential, RuntimeConfig};

/// The synthetic oracle, evaluated on the sequential engine only (the
/// shrinker makes hundreds of predicate calls; shard-identity is not
/// what these properties are about).
fn fails(cfg: &RuntimeConfig) -> bool {
    synthetic_link_kill(&run_sequential(cfg)).is_some()
}

/// Draw a schedule and inject the violation: two ring links go down
/// early and stay down long enough that signaling cells are killed
/// crossing them, regardless of what the seed drew.
fn schedule_with_violation(seed: u64) -> FuzzSchedule {
    let mut s = draw_schedule(seed);
    let n = s.cfg.num_switches;
    s.cfg.fault.link_downs = vec![
        LinkDownSpec {
            a: 0,
            b: 1,
            at_superstep: 2,
            down_supersteps: 200,
        },
        LinkDownSpec {
            a: n / 2,
            b: n / 2 + 1,
            at_superstep: 4,
            down_supersteps: 200,
        },
        LinkDownSpec {
            a: n - 2,
            b: n - 1,
            at_superstep: 6,
            down_supersteps: 200,
        },
    ];
    s.cfg.validate();
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn shrinking_is_sound_aggressive_and_one_minimal(seed in 0u64..1_000) {
        let start = schedule_with_violation(seed);
        // The injection must actually trip the oracle for the property
        // to be meaningful (a schedule whose routes somehow avoid all
        // three links is conceivable; skip it rather than vacuously
        // pass).
        prop_assume!(fails(&start.cfg));
        let original_supersteps = run_sequential(&start.cfg).supersteps;

        let (min, outcome) = shrink(&start, fails, 5_000);
        prop_assert!(
            outcome.evals < 5_000,
            "budget exhausted before fixpoint ({} evals)",
            outcome.evals
        );

        // Soundness: the minimized schedule still fails the same oracle.
        prop_assert!(fails(&min.cfg), "shrunk schedule no longer fails");

        // Aggressiveness: the repro is small. One downed ring link is
        // enough to kill a cell, and the run-length budget collapses to
        // its floor, far below the generator's 1024-round cap.
        prop_assert!(
            fault_window_count(&min.cfg) <= 2,
            "still {} fault windows",
            fault_window_count(&min.cfg)
        );
        prop_assert!(
            min.cfg.max_rounds * 4 <= start.cfg.max_rounds,
            "max_rounds only shrank from {} to {}",
            start.cfg.max_rounds,
            min.cfg.max_rounds
        );
        let shrunk_supersteps = run_sequential(&min.cfg).supersteps;
        prop_assert!(
            shrunk_supersteps <= original_supersteps,
            "supersteps grew from {original_supersteps} to {shrunk_supersteps}"
        );

        // 1-minimality: the fixpoint means every single-step reduction
        // of the shrunk config makes the oracle pass.
        for (desc, cand) in candidates(&min.cfg) {
            prop_assert!(
                !fails(&cand),
                "shrunk schedule is not 1-minimal: `{desc}` still fails"
            );
        }
    }
}
