//! Replay the committed fuzz corpus as ordinary tests.
//!
//! Every entry under `results/fuzz_corpus/` is a self-contained
//! [`FuzzRepro`]: a full runtime configuration plus the verdict it must
//! produce. `clean` entries are regression anchors — diverse schedules
//! (and minimized repros of fixed bugs, like the reroute/teardown
//! same-round race) that must keep passing the whole oracle suite.
//! `fail` entries are minimized repros of *open* bugs and must keep
//! failing their named oracle until the fix lands.

use std::path::PathBuf;

use rcbr_bench::fuzz::{execute, run_oracles, FuzzRepro, REPRO_FORMAT};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/fuzz_corpus")
        .canonicalize()
        .expect("corpus dir exists")
}

#[test]
fn every_corpus_entry_replays_to_its_recorded_verdict() {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(corpus_dir())
        .expect("read corpus dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "committed corpus must not be empty");

    for path in entries {
        let raw = std::fs::read_to_string(&path).expect("read repro");
        let repro: FuzzRepro = serde_json::from_str(&raw).expect("parse repro");
        assert_eq!(
            repro.format,
            REPRO_FORMAT,
            "{}: unknown format",
            path.display()
        );
        repro.cfg.validate();
        let ex = execute(&repro.cfg);
        let failures = run_oracles(&repro.cfg, &ex);
        match repro.expect.as_str() {
            "clean" => assert!(
                failures.is_empty(),
                "{}: expected clean, got {failures:?}",
                path.display()
            ),
            "fail" => assert!(
                failures.iter().any(|f| f.oracle == repro.oracle),
                "{}: expected {} to fail, got {failures:?}",
                path.display(),
                repro.oracle
            ),
            other => panic!("{}: unknown expectation {other:?}", path.display()),
        }
    }
}
