//! # serde_derive (offline stand-in)
//!
//! Companion to the in-tree `serde` crate: implements
//! `#[derive(Serialize)]` and `#[derive(Deserialize)]` by parsing the
//! input token stream by hand (the container has no `syn`/`quote`), then
//! emitting impls of the in-tree `serde::Serialize`/`serde::Deserialize`
//! traits as generated source text.
//!
//! Supported shapes — exactly what this workspace uses:
//!
//! * non-generic structs with named fields;
//! * non-generic enums whose variants are unit, tuple, or struct-like.
//!
//! Anything else (generics, tuple structs, unions) panics at expansion
//! time with a clear message, which is the desired failure mode: it means
//! the workspace grew a shape this stand-in must learn about.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;
use std::iter::Peekable;

/// Derive `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derive `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    /// Named fields, in declaration order.
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    /// Number of positional fields.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

type TokenIter = Peekable<proc_macro::token_stream::IntoIter>;

/// Skip any number of `#[...]` attributes (including doc comments, which
/// arrive pre-desugared as attributes).
fn skip_attributes(iter: &mut TokenIter) {
    while matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        iter.next();
        iter.next(); // the [...] group
    }
}

/// Skip `pub`, `pub(crate)`, `pub(super)`, etc.
fn skip_visibility(iter: &mut TokenIter) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    skip_attributes(&mut iter);
    skip_visibility(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (offline stand-in): generic type `{name}` is not supported");
    }
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive (offline stand-in): `{name}` must have a braced body \
             (tuple structs are not supported), got {other:?}"
        ),
    };
    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body)),
        "enum" => Kind::Enum(parse_variants(body)),
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    };
    Item { name, kind }
}

/// Parse `field: Type, ...` capturing field names. Commas nested inside
/// angle brackets (e.g. `HashMap<u32, f64>`) are not separators; groups
/// (parens/brackets/braces) arrive as single tokens so they need no
/// tracking.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attributes(&mut iter);
        skip_visibility(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected field name, got {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Consume the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        skip_attributes(&mut iter);
        let name = match iter.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected variant name, got {other:?}"),
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_fields(g.stream());
                iter.next();
                VariantFields::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                iter.next();
                VariantFields::Named(named)
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name, fields });
        // Consume the separating comma, if any (discriminants unsupported).
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            other => panic!("serde_derive: expected `,` between variants, got {other:?}"),
        }
    }
    variants
}

/// Count comma-separated fields of a tuple variant at top level.
fn count_top_level_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut count = 0usize;
    let mut saw_token = false;
    let mut last_was_sep = false;
    for tt in body {
        saw_token = true;
        last_was_sep = false;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                last_was_sep = true;
            }
            _ => {}
        }
    }
    match (saw_token, last_was_sep) {
        (false, _) => 0,
        (true, true) => count,      // trailing comma
        (true, false) => count + 1, // no trailing comma
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
         fn to_json_value(&self) -> ::serde::Value {{ "
    );
    match &item.kind {
        Kind::Struct(fields) => {
            let _ = write!(out, "::serde::Value::Object(::std::vec![");
            for f in fields {
                let _ = write!(
                    out,
                    "(::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::to_json_value(&self.{f})),"
                );
            }
            let _ = write!(out, "])");
        }
        Kind::Enum(variants) => {
            let _ = write!(out, "match self {{");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {
                        let _ = write!(
                            out,
                            "{name}::{vn} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        );
                    }
                    VariantFields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let _ = write!(out, "{name}::{vn}({}) => ", binders.join(", "));
                        if *n == 1 {
                            let _ = write!(
                                out,
                                "::serde::variant_obj(\"{vn}\", \
                                 ::serde::Serialize::to_json_value(__f0)),"
                            );
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            let _ = write!(
                                out,
                                "::serde::variant_obj(\"{vn}\", \
                                 ::serde::Value::Array(::std::vec![{}])),",
                                items.join(", ")
                            );
                        }
                    }
                    VariantFields::Named(fields) => {
                        let _ = write!(out, "{name}::{vn} {{ {} }} => ", fields.join(", "));
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_json_value({f}))"
                                )
                            })
                            .collect();
                        let _ = write!(
                            out,
                            "::serde::variant_obj(\"{vn}\", \
                             ::serde::Value::Object(::std::vec![{}])),",
                            entries.join(", ")
                        );
                    }
                }
            }
            let _ = write!(out, "}}");
        }
    }
    let _ = write!(out, " }} }}");
    out
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let mut out = String::new();
    let _ = write!(
        out,
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
         fn from_json_value(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::DeError> {{ "
    );
    match &item.kind {
        Kind::Struct(fields) => {
            let _ = write!(out, "::std::result::Result::Ok({name} {{");
            for f in fields {
                let _ = write!(out, "{f}: ::serde::from_field(__v, \"{f}\")?,");
            }
            let _ = write!(out, "}})");
        }
        Kind::Enum(variants) => {
            let _ = write!(out, "match __v {{");
            // Unit variants arrive as bare strings.
            let _ = write!(out, "::serde::Value::Str(__s) => match __s.as_str() {{");
            for v in variants {
                if matches!(v.fields, VariantFields::Unit) {
                    let vn = &v.name;
                    let _ = write!(out, "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),");
                }
            }
            let _ = write!(
                out,
                "__other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown {name} variant `{{__other}}`\"))), }},"
            );
            // Data-carrying variants arrive as single-entry objects.
            let _ = write!(
                out,
                "::serde::Value::Object(__entries) if __entries.len() == 1 => {{ \
                 let (__tag, __inner) = &__entries[0]; let _ = __inner; \
                 match __tag.as_str() {{"
            );
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => {}
                    VariantFields::Tuple(1) => {
                        let _ = write!(
                            out,
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_json_value(__inner)?)),"
                        );
                    }
                    VariantFields::Tuple(n) => {
                        let _ = write!(
                            out,
                            "\"{vn}\" => {{ \
                             let __items = __inner.as_array().ok_or_else(|| \
                             ::serde::DeError::expected(\"array\"))?; \
                             if __items.len() != {n} {{ return ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"array of length {n}\")); }} \
                             ::std::result::Result::Ok({name}::{vn}("
                        );
                        for i in 0..*n {
                            let _ = write!(
                                out,
                                "::serde::Deserialize::from_json_value(&__items[{i}])?,"
                            );
                        }
                        let _ = write!(out, ")) }},");
                    }
                    VariantFields::Named(fields) => {
                        let _ =
                            write!(out, "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{");
                        for f in fields {
                            let _ = write!(out, "{f}: ::serde::from_field(__inner, \"{f}\")?,");
                        }
                        let _ = write!(out, "}}),");
                    }
                }
            }
            let _ = write!(
                out,
                "__other => ::std::result::Result::Err(::serde::DeError::new(\
                 ::std::format!(\"unknown {name} variant `{{__other}}`\"))), }} }},"
            );
            let _ = write!(
                out,
                "_ => ::std::result::Result::Err(::serde::DeError::expected(\
                 \"{name} variant\")), }}"
            );
        }
    }
    let _ = write!(out, " }} }}");
    out
}
