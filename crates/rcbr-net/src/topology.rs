//! Network topology: wiring switches into a graph and routing over it.
//!
//! Section III-C discusses RCBR at network scale — hop counts, alternate
//! routes, and call-level load balancing. [`Topology`] provides the
//! minimal substrate for those experiments: a graph over switches with
//! per-link output-port assignment, shortest-path routing (BFS), and
//! least-loaded route selection among equal-length alternatives.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::path::Path;
use crate::switch::Switch;

/// A directed link from one switch to a neighbor, leaving through a
/// specific output port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Link {
    /// Destination switch index.
    pub to: usize,
    /// Output port on the source switch carrying this link.
    pub port: usize,
}

/// A switch-level topology.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    adjacency: Vec<Vec<Link>>,
    hop_latency: f64,
}

impl Topology {
    /// Create a topology over `n` switches with the given one-way per-hop
    /// latency in seconds.
    ///
    /// # Panics
    /// Panics if `n == 0` or the latency is negative.
    pub fn new(n: usize, hop_latency: f64) -> Self {
        assert!(n > 0, "topology needs at least one switch");
        assert!(
            hop_latency >= 0.0 && hop_latency.is_finite(),
            "invalid hop latency"
        );
        Self {
            adjacency: vec![Vec::new(); n],
            hop_latency,
        }
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.adjacency.len()
    }

    /// Add a unidirectional link `from -> to` via `port` on `from`.
    ///
    /// # Panics
    /// Panics on out-of-range switch indices or a duplicate link.
    pub fn add_link(&mut self, from: usize, to: usize, port: usize) {
        let n = self.num_switches();
        assert!(from < n && to < n, "switch index out of range");
        assert!(from != to, "self-links are not allowed");
        assert!(
            !self.adjacency[from].iter().any(|l| l.to == to),
            "duplicate link {from} -> {to}"
        );
        self.adjacency[from].push(Link { to, port });
    }

    /// Add a bidirectional link using `port` on both ends.
    pub fn add_duplex(&mut self, a: usize, b: usize, port: usize) {
        self.add_link(a, b, port);
        self.add_link(b, a, port);
    }

    /// Neighbors of a switch.
    pub fn links(&self, from: usize) -> &[Link] {
        &self.adjacency[from]
    }

    /// Shortest route (fewest hops) from `src` to `dst` as the list of
    /// traversed switches (including both endpoints), or `None` if
    /// unreachable.
    pub fn shortest_route(&self, src: usize, dst: usize) -> Option<Vec<usize>> {
        let n = self.num_switches();
        assert!(src < n && dst < n, "switch index out of range");
        if src == dst {
            return Some(vec![src]);
        }
        let mut prev = vec![usize::MAX; n];
        let mut queue = VecDeque::from([src]);
        prev[src] = src;
        while let Some(u) = queue.pop_front() {
            for l in &self.adjacency[u] {
                if prev[l.to] == usize::MAX {
                    prev[l.to] = u;
                    if l.to == dst {
                        let mut route = vec![dst];
                        let mut cur = dst;
                        while cur != src {
                            cur = prev[cur];
                            route.push(cur);
                        }
                        route.reverse();
                        return Some(route);
                    }
                    queue.push_back(l.to);
                }
            }
        }
        None
    }

    /// Turn a switch route into a signaling [`Path`] (the hops a
    /// renegotiation must clear: every switch along the route).
    pub fn route_to_path(&self, route: &[usize]) -> Path {
        assert!(!route.is_empty(), "route must be nonempty");
        Path::new(route.to_vec(), self.hop_latency)
    }

    /// Up to `k` simple routes from `src` to `dst` of at most `max_len`
    /// switches, restricted to live elements: a route may only visit
    /// switches for which `alive_switch` holds and cross links for which
    /// `alive_link` holds (queried in traversal direction). Routes are
    /// returned sorted by `(length, lexicographic hop sequence)` — a total
    /// order over routes — so the selection is a pure function of the
    /// topology and the predicates, independent of caller iteration order:
    /// the property the survivable signaling plane's determinism contract
    /// rests on.
    ///
    /// The enumeration is a bounded DFS over simple paths; the substrate
    /// topologies here (rings plus a few chords) keep that cheap, and
    /// `max_len` caps the blowup on denser graphs.
    pub fn alive_routes(
        &self,
        src: usize,
        dst: usize,
        k: usize,
        max_len: usize,
        alive_switch: &dyn Fn(usize) -> bool,
        alive_link: &dyn Fn(usize, usize) -> bool,
    ) -> Vec<Vec<usize>> {
        let n = self.num_switches();
        assert!(src < n && dst < n, "switch index out of range");
        if k == 0 || max_len == 0 || !alive_switch(src) {
            return Vec::new();
        }
        if src == dst {
            return vec![vec![src]];
        }
        let mut found: Vec<Vec<usize>> = Vec::new();
        let mut route = vec![src];
        self.dfs_routes(
            dst,
            max_len,
            alive_switch,
            alive_link,
            &mut route,
            &mut found,
        );
        found.sort();
        found.sort_by_key(|r| r.len());
        found.truncate(k);
        found
    }

    fn dfs_routes(
        &self,
        dst: usize,
        max_len: usize,
        alive_switch: &dyn Fn(usize) -> bool,
        alive_link: &dyn Fn(usize, usize) -> bool,
        route: &mut Vec<usize>,
        found: &mut Vec<Vec<usize>>,
    ) {
        let u = *route.last().expect("route starts nonempty");
        if route.len() == max_len {
            return;
        }
        for l in &self.adjacency[u] {
            if route.contains(&l.to) || !alive_switch(l.to) || !alive_link(u, l.to) {
                continue;
            }
            route.push(l.to);
            if l.to == dst {
                found.push(route.clone());
            } else {
                self.dfs_routes(dst, max_len, alive_switch, alive_link, route, found);
            }
            route.pop();
        }
    }

    /// Among all fewest-hop routes from `src` to `dst`, pick the one whose
    /// bottleneck (most-utilized port along the route) is least utilized —
    /// the call-level load balancing Section III-C hopes for. Returns the
    /// route, or `None` if unreachable.
    pub fn least_loaded_route(
        &self,
        switches: &[Switch],
        src: usize,
        dst: usize,
    ) -> Option<Vec<usize>> {
        let shortest = self.shortest_route(src, dst)?;
        let target_len = shortest.len();
        // Enumerate all routes of the shortest length with a bounded DFS.
        // Routes are ranked by (bottleneck utilization, total utilization):
        // the sum tie-breaks routes whose bottleneck is a shared endpoint.
        let mut best: Option<((f64, f64), Vec<usize>)> = None;
        let mut stack = vec![(vec![src], src)];
        while let Some((route, u)) = stack.pop() {
            if route.len() == target_len {
                if u == dst {
                    let utils: Vec<f64> = route
                        .iter()
                        .map(|&s| switches[s].port(0).map(|p| p.utilization()).unwrap_or(1.0))
                        .collect();
                    let key = (
                        utils.iter().cloned().fold(0.0f64, f64::max),
                        utils.iter().sum::<f64>(),
                    );
                    if best.as_ref().is_none_or(|(b, _)| key < *b) {
                        best = Some((key, route));
                    }
                }
                continue;
            }
            for l in &self.adjacency[u] {
                if !route.contains(&l.to) {
                    let mut next = route.clone();
                    next.push(l.to);
                    stack.push((next, l.to));
                }
            }
        }
        best.map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 2x2 grid: 0-1 / 2-3 with vertical links 0-2 and 1-3.
    fn grid() -> Topology {
        let mut t = Topology::new(4, 0.001);
        t.add_duplex(0, 1, 0);
        t.add_duplex(2, 3, 0);
        t.add_duplex(0, 2, 0);
        t.add_duplex(1, 3, 0);
        t
    }

    #[test]
    fn bfs_finds_shortest() {
        let t = grid();
        let r = t.shortest_route(0, 3).unwrap();
        assert_eq!(r.len(), 3);
        assert_eq!(r[0], 0);
        assert_eq!(r[2], 3);
        assert_eq!(t.shortest_route(1, 1).unwrap(), vec![1]);
    }

    #[test]
    fn unreachable_is_none() {
        let mut t = Topology::new(3, 0.0);
        t.add_link(0, 1, 0);
        assert!(t.shortest_route(0, 2).is_none());
        assert!(t.shortest_route(2, 0).is_none());
    }

    #[test]
    fn route_to_path_has_right_latency() {
        let t = grid();
        let r = t.shortest_route(0, 3).unwrap();
        let p = t.route_to_path(&r);
        assert_eq!(p.len(), 3);
        assert!((p.one_way_latency() - 0.003).abs() < 1e-12);
    }

    #[test]
    fn load_balancing_avoids_the_hot_route() {
        let t = grid();
        let mut switches: Vec<Switch> = (0..4).map(|_| Switch::new(&[1000.0])).collect();
        // Congest switch 1: routes 0-1-3 become unattractive vs 0-2-3.
        switches[1].setup(9, 0, 900.0).unwrap();
        let r = t.least_loaded_route(&switches, 0, 3).unwrap();
        assert_eq!(r, vec![0, 2, 3], "should route around the hot switch");
        // Congest switch 2 more: flips back.
        switches[2].setup(8, 0, 950.0).unwrap();
        let r = t.least_loaded_route(&switches, 0, 3).unwrap();
        assert_eq!(r, vec![0, 1, 3]);
    }

    #[test]
    fn end_to_end_setup_over_routed_path() {
        let t = grid();
        let mut switches: Vec<Switch> = (0..4).map(|_| Switch::new(&[1000.0])).collect();
        let route = t.shortest_route(0, 3).unwrap();
        let path = t.route_to_path(&route);
        assert_eq!(path.setup(&mut switches, 5, 0, 400.0).unwrap(), Ok(()));
        for &s in &route {
            assert_eq!(switches[s].vci_rate(5), Some(400.0));
        }
    }

    /// A 6-ring with one chord 0-3.
    fn ring6() -> Topology {
        let mut t = Topology::new(6, 0.001);
        for i in 0..6 {
            t.add_duplex(i, (i + 1) % 6, 0);
        }
        t.add_duplex(0, 3, 0);
        t
    }

    #[test]
    fn alive_routes_are_sorted_and_bounded() {
        let t = ring6();
        let all = |_: usize| true;
        let link_ok = |_: usize, _: usize| true;
        let routes = t.alive_routes(0, 3, 8, 6, &all, &link_ok);
        assert!(!routes.is_empty());
        // Shortest first: the 0-3 chord.
        assert_eq!(routes[0], vec![0, 3]);
        // Sorted by (len, lex): ties in length break lexicographically.
        for w in routes.windows(2) {
            assert!(
                w[0].len() < w[1].len() || (w[0].len() == w[1].len() && w[0] < w[1]),
                "route order violated: {:?} before {:?}",
                w[0],
                w[1]
            );
        }
        // k truncates.
        assert_eq!(t.alive_routes(0, 3, 1, 6, &all, &link_ok).len(), 1);
        // max_len bounds the enumeration (only the chord is <= 2 switches).
        assert_eq!(t.alive_routes(0, 3, 8, 2, &all, &link_ok), vec![vec![0, 3]]);
    }

    #[test]
    fn alive_routes_respect_dead_elements() {
        let t = ring6();
        let link_ok = |_: usize, _: usize| true;
        // Kill switch 3 (the destination): nothing survives.
        let no3 = |s: usize| s != 3;
        assert!(t.alive_routes(0, 3, 8, 6, &no3, &link_ok).is_empty());
        // Kill switch 1: routes must detour around it.
        let no1 = |s: usize| s != 1;
        let routes = t.alive_routes(0, 2, 8, 6, &no1, &link_ok);
        assert!(!routes.is_empty());
        for r in &routes {
            assert!(!r.contains(&1), "dead switch on route {r:?}");
        }
        assert_eq!(routes[0], vec![0, 3, 2], "chord detour is shortest");
        // Down link 0-3 removes the chord in both directions.
        let all = |_: usize| true;
        let no_chord = |a: usize, b: usize| !(a.min(b) == 0 && a.max(b) == 3);
        let routes = t.alive_routes(0, 3, 8, 6, &all, &no_chord);
        assert_eq!(routes[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn alive_routes_selection_is_a_pure_function() {
        let t = ring6();
        let all = |_: usize| true;
        let link_ok = |_: usize, _: usize| true;
        let a = t.alive_routes(4, 1, 8, 6, &all, &link_ok);
        let b = t.alive_routes(4, 1, 8, 6, &all, &link_ok);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_links_rejected() {
        let mut t = Topology::new(2, 0.0);
        t.add_link(0, 1, 0);
        t.add_link(0, 1, 1);
    }
}
