//! Switches: a VCI table plus output ports.
//!
//! Processing an RM cell is the two-lookup fast path of Section III-B:
//! "a switch-controller ... determines the output port of the VCI in one
//! lookup, and the utilization and capacity of the output port in a second
//! lookup" — then the check-and-update lives in [`OutputPort`]. A denial is
//! signalled by setting the cell's `denied` flag (the paper's "the
//! controller modifies the ER field to deny the request").

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::port::OutputPort;
use crate::rm::{RateField, RmCell};
use crate::rsvp::LeaseTable;

/// Errors from switch management operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchError {
    /// The VCI is not in the routing table.
    UnknownVci(u32),
    /// The port index does not exist.
    UnknownPort(usize),
    /// The VCI is already routed.
    VciInUse(u32),
}

impl std::fmt::Display for SwitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwitchError::UnknownVci(v) => write!(f, "unknown VCI {v}"),
            SwitchError::UnknownPort(p) => write!(f, "unknown port {p}"),
            SwitchError::VciInUse(v) => write!(f, "VCI {v} already routed"),
        }
    }
}

impl std::error::Error for SwitchError {}

/// An ATM switch with RCBR renegotiation support.
///
/// ```
/// use rcbr_net::{RmCell, Switch};
///
/// let mut switch = Switch::new(&[1_000_000.0]);
/// switch.setup(1, 0, 300_000.0).unwrap();
/// // Fast-path renegotiation: +200 kb/s fits.
/// let cell = switch.process_rm(RmCell::delta(1, 200_000.0)).unwrap();
/// assert!(!cell.denied);
/// assert_eq!(switch.vci_rate(1), Some(500_000.0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Switch {
    ports: Vec<OutputPort>,
    vci_table: BTreeMap<u32, usize>,
    /// Per-VCI lease bookkeeping: the superstep of the last RM cell that
    /// touched each VCI, for use-it-or-lose-it reclamation.
    lease: LeaseTable,
}

impl Switch {
    /// Create a switch with one port per capacity entry (bits/second).
    ///
    /// # Panics
    /// Panics if `port_capacities` is empty or contains an invalid
    /// capacity.
    pub fn new(port_capacities: &[f64]) -> Self {
        assert!(
            !port_capacities.is_empty(),
            "switch needs at least one port"
        );
        Self {
            ports: port_capacities
                .iter()
                .map(|&c| OutputPort::new(c))
                .collect(),
            vci_table: BTreeMap::new(),
            lease: LeaseTable::new(),
        }
    }

    /// Number of ports.
    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// Inspect a port.
    pub fn port(&self, idx: usize) -> Option<&OutputPort> {
        self.ports.get(idx)
    }

    /// Route `vci` to `port` with an initial reservation of `rate` b/s —
    /// the call-setup step, which unlike renegotiation *does* allocate a
    /// connection identifier and housekeeping records.
    ///
    /// Fails (without side effects) if the VCI is taken, the port does not
    /// exist, or the rate does not fit.
    pub fn setup(&mut self, vci: u32, port: usize, rate: f64) -> Result<bool, SwitchError> {
        if self.vci_table.contains_key(&vci) {
            return Err(SwitchError::VciInUse(vci));
        }
        let p = self
            .ports
            .get_mut(port)
            .ok_or(SwitchError::UnknownPort(port))?;
        if !p.try_reserve_delta(vci, rate) {
            return Ok(false);
        }
        self.vci_table.insert(vci, port);
        Ok(true)
    }

    /// Tear down `vci`, releasing its reservation. Returns the rate
    /// released.
    pub fn teardown(&mut self, vci: u32) -> Result<f64, SwitchError> {
        let port = self
            .vci_table
            .remove(&vci)
            .ok_or(SwitchError::UnknownVci(vci))?;
        self.lease.forget(vci);
        Ok(self.ports[port].release(vci))
    }

    /// Idempotent teardown: release `vci`'s reservation and drop its table
    /// entry, returning the released rate — or `None` if the VCI was not
    /// routed here (already torn down, or never installed). The reroute
    /// machinery's teardown cells use this: a teardown can legitimately
    /// arrive twice when an earlier one was killed mid-path.
    pub fn uninstall(&mut self, vci: u32) -> Option<f64> {
        let port = self.vci_table.remove(&vci)?;
        self.lease.forget(vci);
        Some(self.ports[port].release(vci))
    }

    /// Route `vci` to `port` *without* reserving anything — the rerouting
    /// slow path: the table entry is created here and the reservation
    /// arrives via the absolute-rate cell that follows. No-op if the VCI
    /// is already routed.
    ///
    /// # Panics
    /// Panics on an unknown port.
    pub fn install(&mut self, vci: u32, port: usize) {
        assert!(port < self.ports.len(), "unknown port {port}");
        self.vci_table.entry(vci).or_insert(port);
    }

    /// Record that an RM cell for `vci` was processed at superstep `now`,
    /// refreshing its lease.
    pub fn touch_lease(&mut self, vci: u32, now: u64) {
        self.lease.touch(vci, now);
    }

    /// The superstep `vci`'s lease was last refreshed at.
    pub fn lease_refreshed_at(&self, vci: u32) -> u64 {
        self.lease.last_refresh(vci)
    }

    /// Use-it-or-lose-it reclamation: release the reservation of every
    /// routed VCI whose lease lapsed at `now` (no RM cell for strictly
    /// more than `lease_supersteps` supersteps). The routing-table entry
    /// survives — like a crash wipe, expiry reclaims *soft* state only, so
    /// a late source can rebuild its rate with an absolute resync. Expired
    /// VCIs get a fresh grace period so one lapse is reclaimed (and
    /// counted) once. Returns how many VCIs actually had bandwidth
    /// reclaimed.
    pub fn expire_leases(&mut self, now: u64, lease_supersteps: u64) -> u64 {
        let routed = self.vcis();
        let mut reclaimed = 0;
        for vci in self.lease.expired(&routed, now, lease_supersteps) {
            self.lease.touch(vci, now);
            let port = self.vci_table[&vci];
            if self.ports[port].release(vci) > 0.0 {
                reclaimed += 1;
            }
        }
        reclaimed
    }

    /// Process a renegotiation RM cell: the fast path. Returns the cell,
    /// with `denied` set if this switch (or an upstream one) denied it.
    ///
    /// A cell already marked denied passes through untouched — downstream
    /// switches must not reserve for a request that has already failed.
    pub fn process_rm(&mut self, mut cell: RmCell) -> Result<RmCell, SwitchError> {
        if cell.denied {
            return Ok(cell);
        }
        let port = *self
            .vci_table
            .get(&cell.vci)
            .ok_or(SwitchError::UnknownVci(cell.vci))?;
        let ok = match cell.rate {
            RateField::Delta(d) => self.ports[port].try_reserve_delta(cell.vci, d),
            RateField::Absolute(r) => self.ports[port].try_set_absolute(cell.vci, r),
        };
        cell.denied = !ok;
        Ok(cell)
    }

    /// Undo a previously applied delta (used by multi-hop rollback when a
    /// downstream switch denies).
    pub fn rollback_delta(&mut self, vci: u32, delta: f64) -> Result<(), SwitchError> {
        let ok = self.try_rollback_delta(vci, delta)?;
        debug_assert!(ok, "rollback of a granted delta must succeed");
        Ok(())
    }

    /// Best-effort undo of a previously applied delta. Returns whether
    /// the reverse actually fit — it can fail when the grant being
    /// unwound was wiped by a crash-restart in between, or when drift let
    /// another cell consume the headroom a negative delta released.
    pub fn try_rollback_delta(&mut self, vci: u32, delta: f64) -> Result<bool, SwitchError> {
        let port = *self
            .vci_table
            .get(&vci)
            .ok_or(SwitchError::UnknownVci(vci))?;
        Ok(self.ports[port].try_reserve_delta(vci, -delta))
    }

    /// Set port `port`'s admission booking ceiling (bits/second) — the
    /// runtime's live admission policy publishes its per-window decision
    /// here; [`OutputPort::try_reserve_delta`] and
    /// [`OutputPort::try_set_absolute`] compare against it.
    ///
    /// # Panics
    /// Panics on an unknown port or a non-positive ceiling.
    pub fn set_admit_ceiling(&mut self, port: usize, ceiling: f64) {
        assert!(port < self.ports.len(), "unknown port {port}");
        self.ports[port].set_admit_ceiling(ceiling);
    }

    /// Reset every port's booking ceiling to its capacity — the legacy
    /// static check. The end-of-run audit does this before repairing:
    /// recovery reconciles state against the true capacity, not against
    /// whatever ceiling the live policy last published.
    pub fn reset_admit_ceilings(&mut self) {
        for p in &mut self.ports {
            let cap = p.capacity();
            p.set_admit_ceiling(cap);
        }
    }

    /// Administrative absolute-rate set for `vci`, bypassing the booking
    /// ceiling (see [`OutputPort::set_unchecked`]). The end-of-run
    /// audit's floor repair uses this; it is never on the live path.
    pub fn force_set(&mut self, vci: u32, rate: f64) -> Result<(), SwitchError> {
        let port = *self
            .vci_table
            .get(&vci)
            .ok_or(SwitchError::UnknownVci(vci))?;
        self.ports[port].set_unchecked(vci, rate);
        Ok(())
    }

    /// The reservation this switch holds for `vci`.
    pub fn vci_rate(&self, vci: u32) -> Option<f64> {
        let port = *self.vci_table.get(&vci)?;
        Some(self.ports[port].vci_rate(vci))
    }

    /// Crash-restart: wipe every port's *soft* reservation state. The VCI
    /// routing table is hard (signalled) state and survives; the
    /// reservations it pointed to are gone until absolute-rate resync
    /// cells rebuild them.
    pub fn wipe_soft_state(&mut self) {
        for p in &mut self.ports {
            p.wipe();
        }
        // Lease history is soft state too: a restarted switch has no idea
        // when it last heard from anyone.
        self.lease = LeaseTable::new();
    }

    /// The routed VCIs, ascending (the map is ordered, so iteration is
    /// deterministic for audits).
    pub fn vcis(&self) -> Vec<u32> {
        self.vci_table.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_port_switch(cap: f64) -> Switch {
        Switch::new(&[cap])
    }

    #[test]
    fn setup_process_teardown() {
        let mut sw = one_port_switch(1000.0);
        assert_eq!(sw.setup(1, 0, 300.0), Ok(true));
        let cell = sw.process_rm(RmCell::delta(1, 200.0)).unwrap();
        assert!(!cell.denied);
        assert_eq!(sw.vci_rate(1), Some(500.0));
        assert_eq!(sw.teardown(1), Ok(500.0));
        assert_eq!(sw.port(0).unwrap().reserved(), 0.0);
    }

    #[test]
    fn denial_sets_flag_and_keeps_state() {
        let mut sw = one_port_switch(1000.0);
        sw.setup(1, 0, 900.0).unwrap();
        let cell = sw.process_rm(RmCell::delta(1, 200.0)).unwrap();
        assert!(cell.denied);
        // "Even if the renegotiation fails, the source can keep whatever
        // bandwidth it already has."
        assert_eq!(sw.vci_rate(1), Some(900.0));
    }

    #[test]
    fn already_denied_cells_pass_through() {
        let mut sw = one_port_switch(1000.0);
        sw.setup(1, 0, 100.0).unwrap();
        let mut cell = RmCell::delta(1, 200.0);
        cell.denied = true;
        let out = sw.process_rm(cell).unwrap();
        assert!(out.denied);
        assert_eq!(sw.vci_rate(1), Some(100.0)); // nothing reserved
    }

    #[test]
    fn unknown_vci_is_an_error() {
        let mut sw = one_port_switch(10.0);
        assert_eq!(
            sw.process_rm(RmCell::delta(9, 1.0)),
            Err(SwitchError::UnknownVci(9))
        );
        assert_eq!(sw.teardown(9), Err(SwitchError::UnknownVci(9)));
    }

    #[test]
    fn setup_conflicts() {
        let mut sw = one_port_switch(100.0);
        assert_eq!(sw.setup(1, 0, 10.0), Ok(true));
        assert_eq!(sw.setup(1, 0, 10.0), Err(SwitchError::VciInUse(1)));
        assert_eq!(sw.setup(2, 5, 10.0), Err(SwitchError::UnknownPort(5)));
        assert_eq!(sw.setup(3, 0, 1000.0), Ok(false)); // doesn't fit
    }

    #[test]
    fn resync_cell_is_processed_on_slow_path() {
        let mut sw = one_port_switch(1000.0);
        sw.setup(1, 0, 300.0).unwrap();
        let out = sw.process_rm(RmCell::resync(1, 450.0)).unwrap();
        assert!(!out.denied);
        assert_eq!(sw.vci_rate(1), Some(450.0));
    }

    #[test]
    fn crash_wipe_loses_soft_state_and_resync_rebuilds_it() {
        let mut sw = one_port_switch(1000.0);
        sw.setup(1, 0, 300.0).unwrap();
        sw.setup(2, 0, 200.0).unwrap();
        sw.wipe_soft_state();
        // Reservations are gone, the routing table survives.
        assert_eq!(sw.vci_rate(1), Some(0.0));
        assert_eq!(sw.port(0).unwrap().reserved(), 0.0);
        assert_eq!(sw.vcis(), vec![1, 2]);
        // Absolute-rate resync rebuilds the reservations exactly.
        let out = sw.process_rm(RmCell::resync(1, 300.0)).unwrap();
        assert!(!out.denied);
        assert_eq!(sw.vci_rate(1), Some(300.0));
        assert!(sw.port(0).unwrap().is_consistent());
    }

    #[test]
    fn lease_expiry_reclaims_soft_state_but_keeps_the_route() {
        let mut sw = one_port_switch(1000.0);
        sw.setup(1, 0, 300.0).unwrap();
        sw.setup(2, 0, 200.0).unwrap();
        // VCI 1 keeps refreshing; VCI 2 goes quiet after setup (refresh 0).
        sw.touch_lease(1, 50);
        assert_eq!(sw.expire_leases(60, 30), 1, "only VCI 2 lapses");
        assert_eq!(sw.vci_rate(2), Some(0.0), "bandwidth reclaimed");
        assert_eq!(sw.vci_rate(1), Some(300.0), "refreshed lease survives");
        assert_eq!(sw.vcis(), vec![1, 2], "routing entries survive expiry");
        assert_eq!(sw.port(0).unwrap().reserved(), 300.0);
        // The lapse is counted once: the expired VCI got a grace period.
        assert_eq!(sw.expire_leases(61, 30), 0);
        // A late absolute resync rebuilds the reclaimed reservation.
        let out = sw.process_rm(RmCell::resync(2, 200.0)).unwrap();
        assert!(!out.denied);
        assert_eq!(sw.vci_rate(2), Some(200.0));
        assert!(sw.port(0).unwrap().is_consistent());
    }

    #[test]
    fn install_and_uninstall_are_idempotent() {
        let mut sw = one_port_switch(1000.0);
        sw.install(7, 0);
        sw.install(7, 0); // no-op
        assert_eq!(sw.vci_rate(7), Some(0.0), "installed but unreserved");
        let out = sw.process_rm(RmCell::resync(7, 400.0)).unwrap();
        assert!(!out.denied);
        assert_eq!(sw.uninstall(7), Some(400.0));
        assert_eq!(sw.uninstall(7), None, "second teardown is a no-op");
        assert_eq!(sw.vci_rate(7), None);
        assert_eq!(sw.port(0).unwrap().reserved(), 0.0);
    }

    #[test]
    fn ceiling_pass_through_and_force_set() {
        let mut sw = one_port_switch(1000.0);
        sw.setup(1, 0, 300.0).unwrap();
        sw.set_admit_ceiling(0, 400.0);
        let cell = sw.process_rm(RmCell::delta(1, 200.0)).unwrap();
        assert!(cell.denied, "tightened ceiling denies the increase");
        sw.set_admit_ceiling(0, 2000.0);
        let cell = sw.process_rm(RmCell::delta(1, 1200.0)).unwrap();
        assert!(!cell.denied, "overbooked ceiling admits past capacity");
        assert_eq!(sw.vci_rate(1), Some(1500.0));
        // Administrative repair applies even while overbooked.
        sw.set_admit_ceiling(0, 400.0);
        sw.force_set(1, 900.0).unwrap();
        assert_eq!(sw.vci_rate(1), Some(900.0));
        assert_eq!(
            sw.force_set(9, 1.0),
            Err(SwitchError::UnknownVci(9)),
            "force_set still requires a routing entry"
        );
        sw.reset_admit_ceilings();
        assert_eq!(sw.port(0).unwrap().admit_ceiling(), 1000.0);
    }

    #[test]
    fn rollback_restores_reservation() {
        let mut sw = one_port_switch(1000.0);
        sw.setup(1, 0, 300.0).unwrap();
        sw.process_rm(RmCell::delta(1, 200.0)).unwrap();
        sw.rollback_delta(1, 200.0).unwrap();
        assert_eq!(sw.vci_rate(1), Some(300.0));
    }
}
