//! The deterministic fault plane.
//!
//! Footnote 2 of the paper: delta-encoded ER fields suffer "parameter
//! drift in case of RM cell loss", repaired by periodic absolute-rate
//! resync. A credible evaluation of that repair loop needs a richer — and
//! *replayable* — failure model than a coin flip per cell. [`FaultPlane`]
//! is that model: a stateless, seeded decision function over the identity
//! of each cell-hop traversal, plus a schedule of switch crashes and
//! shard stalls.
//!
//! ## Why stateless hashing instead of an RNG stream
//!
//! The sharded runtime's headline invariant is that counters are
//! bit-identical at any shard count. A stateful RNG would have to be
//! consumed in a globally agreed order — exactly the coordination the
//! engine avoids. Instead every decision is a pure hash of
//! `(seed, seq, hop, salt, lane)`: any shard (or the sequential replay)
//! asks about the same traversal and gets the same answer, in any order,
//! any number of times.
//!
//! ## Fault taxonomy
//!
//! * **Drop** — the cell vanishes mid-path; upstream hops keep the
//!   half-applied delta (drift), the source times out.
//! * **Delay** — the cell is held at the hop for `1..=max_delay`
//!   supersteps, then processed normally (reordering against later cells).
//! * **Duplicate** — a ghost copy of the cell re-traverses the path from
//!   the current hop one superstep later, double-applying its effect
//!   (over-reservation drift that resync repairs).
//! * **Corrupt** — 1–2 bits of the 16-byte wire image are flipped; the
//!   RM-cell checksum detects this and the cell is discarded (equivalent
//!   to a drop, but counted separately).
//! * **Crash** — a switch goes down for a window of supersteps, killing
//!   every cell that arrives, and loses its *soft* reservation state on
//!   restart (the VCI routing table is hard state); recovery must come
//!   from absolute-rate resync cells.
//! * **Stall** — a group of switches stops processing for a bounded
//!   window; cells destined to them are held by their owners until the
//!   window passes (pure latency, no loss).

use serde::{Deserialize, Serialize};

/// Basis-point denominator: probabilities are expressed in 1/10000ths.
pub const FAULT_BP_SCALE: u32 = 10_000;

/// The fate of one cell-hop traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Process the cell normally.
    Deliver,
    /// The cell vanishes.
    Drop,
    /// Hold the cell for this many supersteps, then process it.
    Delay(u64),
    /// Process the cell *and* spawn a ghost copy one superstep later.
    Duplicate,
    /// Flip bits in the wire image; the checksum catches it and the cell
    /// is discarded.
    Corrupt,
}

/// One scheduled switch crash: down for `[at_superstep, at_superstep +
/// down_supersteps)`, soft state wiped at restart.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrashSpec {
    /// Global index of the switch that crashes.
    pub switch: usize,
    /// First superstep of the outage.
    pub at_superstep: u64,
    /// Outage length in supersteps (>= 1).
    pub down_supersteps: u64,
}

/// One scheduled link outage: the undirected link `a <-> b` is down for
/// `[at_superstep, at_superstep + down_supersteps)`. Cells crossing the
/// link inside the window die without a verdict. Several windows may name
/// the same link (a flapping link is a sequence of outages).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDownSpec {
    /// One endpoint switch of the link.
    pub a: usize,
    /// The other endpoint switch.
    pub b: usize,
    /// First superstep of the outage.
    pub at_superstep: u64,
    /// Outage length in supersteps (>= 1).
    pub down_supersteps: u64,
}

/// One permanent switch kill: from `at_superstep` on, the switch is gone
/// for good — unlike a [`CrashSpec`] it never restarts, so its VCs must
/// reroute around it (or degrade if no alternate path survives).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KillSpec {
    /// Global index of the switch that dies.
    pub switch: usize,
    /// First superstep of the permanent outage.
    pub at_superstep: u64,
}

/// One scheduled stall: switches whose global index satisfies
/// `switch % groups == group` stop processing for the window. Keyed by a
/// *virtual* group rather than a physical shard id so the same spec means
/// the same thing at every shard count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StallSpec {
    /// Number of virtual groups the switch population is divided into.
    pub groups: usize,
    /// The stalled group (`< groups`).
    pub group: usize,
    /// First superstep of the stall.
    pub at_superstep: u64,
    /// Stall length in supersteps (>= 1).
    pub supersteps: u64,
}

/// The complete, serializable description of a fault scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for the per-traversal decision hash (independent of the
    /// workload seed, so the same traffic can be replayed under different
    /// fault patterns).
    pub seed: u64,
    /// Per-traversal drop probability, basis points (1/10000).
    pub drop_bp: u32,
    /// Per-traversal delay probability, basis points.
    pub delay_bp: u32,
    /// Maximum delay in supersteps (each delay draws `1..=max_delay`).
    pub max_delay: u64,
    /// Per-traversal duplication probability, basis points.
    pub dup_bp: u32,
    /// Per-traversal bit-corruption probability, basis points.
    pub corrupt_bp: u32,
    /// Scheduled switch crashes (at most one per switch).
    pub crashes: Vec<CrashSpec>,
    /// Scheduled link outages (several windows per link = flapping).
    pub link_downs: Vec<LinkDownSpec>,
    /// Permanent switch kills (at most one per switch; a killed switch
    /// must not also have a transient crash scheduled).
    pub kills: Vec<KillSpec>,
    /// Optional scheduled stall.
    pub stall: Option<StallSpec>,
}

impl FaultConfig {
    /// No faults at all.
    pub fn transparent() -> Self {
        Self {
            seed: 0,
            drop_bp: 0,
            delay_bp: 0,
            max_delay: 1,
            dup_bp: 0,
            corrupt_bp: 0,
            crashes: Vec::new(),
            link_downs: Vec::new(),
            kills: Vec::new(),
            stall: None,
        }
    }

    /// Drops only, at `drop_probability ∈ [0, 1]` (rounded to basis
    /// points) — the old `FaultInjector` shape.
    ///
    /// # Panics
    /// Panics unless `drop_probability ∈ [0, 1]`.
    pub fn drop_only(drop_probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "drop probability must be in [0, 1]"
        );
        Self {
            seed,
            drop_bp: (drop_probability * FAULT_BP_SCALE as f64).round() as u32,
            ..Self::transparent()
        }
    }

    /// Whether no fault can ever fire.
    pub fn is_transparent(&self) -> bool {
        self.drop_bp == 0
            && self.delay_bp == 0
            && self.dup_bp == 0
            && self.corrupt_bp == 0
            && self.crashes.is_empty()
            && self.link_downs.is_empty()
            && self.kills.is_empty()
            && self.stall.is_none()
    }

    /// Panic on an inconsistent configuration.
    pub fn validate(&self) {
        assert!(
            self.drop_bp + self.delay_bp + self.dup_bp + self.corrupt_bp <= FAULT_BP_SCALE,
            "fault probabilities exceed 100%"
        );
        assert!(self.max_delay >= 1, "max_delay must be >= 1");
        for (i, c) in self.crashes.iter().enumerate() {
            assert!(
                c.down_supersteps >= 1,
                "crash outage must last >= 1 superstep"
            );
            assert!(c.at_superstep >= 1, "crashes start at superstep >= 1");
            assert!(
                !self.crashes[..i].iter().any(|o| o.switch == c.switch),
                "at most one crash per switch"
            );
        }
        for l in &self.link_downs {
            assert!(l.a != l.b, "a link joins two distinct switches");
            assert!(
                l.down_supersteps >= 1,
                "link outage must last >= 1 superstep"
            );
            assert!(l.at_superstep >= 1, "link outages start at superstep >= 1");
        }
        for (i, k) in self.kills.iter().enumerate() {
            assert!(k.at_superstep >= 1, "kills start at superstep >= 1");
            assert!(
                !self.kills[..i].iter().any(|o| o.switch == k.switch),
                "at most one kill per switch"
            );
            assert!(
                !self.crashes.iter().any(|c| c.switch == k.switch),
                "a killed switch cannot also have a transient crash"
            );
        }
        if let Some(s) = &self.stall {
            assert!(s.groups >= 1 && s.group < s.groups, "bad stall group");
            assert!(s.supersteps >= 1, "stall must last >= 1 superstep");
        }
    }
}

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash step.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The seeded, stateless fault decision plane.
///
/// Cheap to share by reference across threads (decisions are pure
/// functions), and `transparent()` short-circuits to `Deliver` so the
/// fault-free fast path costs one branch.
#[derive(Debug, Clone)]
pub struct FaultPlane {
    cfg: FaultConfig,
    transparent: bool,
}

impl FaultPlane {
    /// Build the plane for `cfg`.
    ///
    /// # Panics
    /// Panics if the configuration is inconsistent (see
    /// [`FaultConfig::validate`]).
    pub fn new(cfg: FaultConfig) -> Self {
        cfg.validate();
        let transparent = cfg.is_transparent();
        Self { cfg, transparent }
    }

    /// A plane that never injects anything.
    pub fn transparent() -> Self {
        Self::new(FaultConfig::transparent())
    }

    /// The configuration this plane decides from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether no fault can ever fire.
    pub fn is_transparent(&self) -> bool {
        self.transparent
    }

    fn hash(&self, seq: u64, hop: usize, salt: u8, lane: u64) -> u64 {
        mix(self.cfg.seed.wrapping_add(0x9e37_79b9_7f4a_7c15)
            ^ mix(seq ^ ((hop as u64) << 48) ^ ((salt as u64) << 40) ^ lane))
    }

    /// The fate of forward cell `seq` (with duplicate-`salt`) at `hop`.
    ///
    /// Pure in its arguments: every shard count and the sequential replay
    /// agree on every traversal's fate.
    pub fn decide(&self, seq: u64, hop: usize, salt: u8) -> FaultAction {
        if self.transparent {
            return FaultAction::Deliver;
        }
        let h = self.hash(seq, hop, salt, 0);
        let r = (h % FAULT_BP_SCALE as u64) as u32;
        let c = &self.cfg;
        if r < c.drop_bp {
            FaultAction::Drop
        } else if r < c.drop_bp + c.corrupt_bp {
            FaultAction::Corrupt
        } else if r < c.drop_bp + c.corrupt_bp + c.delay_bp {
            FaultAction::Delay(1 + (h >> 32) % c.max_delay)
        } else if r < c.drop_bp + c.corrupt_bp + c.delay_bp + c.dup_bp
            && salt == crate::SALT_PRIMARY
        {
            // Ghosts never spawn further ghosts: at most one copy per cell.
            FaultAction::Duplicate
        } else {
            FaultAction::Deliver
        }
    }

    /// The fate of a rollback cell. Rollback cells only suffer drops
    /// (leaving upstream reservations stranded — drift): delaying or
    /// duplicating an *undo* would let it unwind state twice.
    pub fn decide_rollback(&self, seq: u64, hop: usize, salt: u8) -> FaultAction {
        if self.transparent {
            return FaultAction::Deliver;
        }
        let h = self.hash(seq, hop, salt, 1);
        if (h % FAULT_BP_SCALE as u64) < self.cfg.drop_bp as u64 {
            FaultAction::Drop
        } else {
            FaultAction::Deliver
        }
    }

    /// Whether `switch` is down — transiently crashed *or* permanently
    /// killed — at `superstep`.
    pub fn switch_down(&self, switch: usize, superstep: u64) -> bool {
        self.switch_killed(switch, superstep)
            || self.cfg.crashes.iter().any(|c| {
                c.switch == switch
                    && superstep >= c.at_superstep
                    && superstep < c.at_superstep + c.down_supersteps
            })
    }

    /// Whether `switch` is permanently killed at `superstep`. Kills never
    /// end: recovery must come from rerouting, not from waiting.
    pub fn switch_killed(&self, switch: usize, superstep: u64) -> bool {
        self.cfg
            .kills
            .iter()
            .any(|k| k.switch == switch && superstep >= k.at_superstep)
    }

    /// Whether the undirected link `a <-> b` is inside a scheduled outage
    /// window at `superstep`.
    pub fn link_down(&self, a: usize, b: usize, superstep: u64) -> bool {
        self.cfg.link_downs.iter().any(|l| {
            ((l.a == a && l.b == b) || (l.a == b && l.b == a))
                && superstep >= l.at_superstep
                && superstep < l.at_superstep + l.down_supersteps
        })
    }

    /// The superstep at which `switch` restarts (and its soft state must
    /// be wiped), if it is scheduled to crash. Permanently killed switches
    /// never restart, so they report `None`.
    pub fn restart_superstep(&self, switch: usize) -> Option<u64> {
        self.cfg
            .crashes
            .iter()
            .find(|c| c.switch == switch)
            .map(|c| c.at_superstep + c.down_supersteps)
    }

    /// Whether `switch` is stalled (holding, not processing) at
    /// `superstep`.
    pub fn stalled(&self, switch: usize, superstep: u64) -> bool {
        match &self.cfg.stall {
            Some(s) => {
                switch % s.groups == s.group
                    && superstep >= s.at_superstep
                    && superstep < s.at_superstep + s.supersteps
            }
            None => false,
        }
    }

    /// Flip 1–2 distinct bits of `wire`, deterministically in
    /// `(seed, seq, hop)`. The RM-cell checksum detects any such flip.
    ///
    /// # Panics
    /// Panics on an empty buffer.
    pub fn corrupt_wire(&self, wire: &mut [u8], seq: u64, hop: usize) {
        assert!(!wire.is_empty(), "cannot corrupt an empty buffer");
        let bits = wire.len() as u64 * 8;
        let h = self.hash(seq, hop, 0, 2);
        let first = h % bits;
        wire[(first / 8) as usize] ^= 1 << (first % 8);
        if h & (1 << 63) != 0 && bits > 1 {
            // A second, guaranteed-distinct bit.
            let second = (first + 1 + (h >> 32) % (bits - 1)) % bits;
            wire[(second / 8) as usize] ^= 1 << (second % 8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rm::RmCell;
    use crate::switch::Switch;

    fn lossy(drop_bp: u32) -> FaultPlane {
        FaultPlane::new(FaultConfig {
            seed: 9,
            drop_bp,
            ..FaultConfig::transparent()
        })
    }

    #[test]
    fn transparent_never_faults() {
        let p = FaultPlane::transparent();
        for seq in 0..1000 {
            assert_eq!(p.decide(seq, 0, 0), FaultAction::Deliver);
            assert_eq!(p.decide_rollback(seq, 2, 0), FaultAction::Deliver);
            assert!(!p.switch_down(3, seq));
            assert!(!p.stalled(3, seq));
        }
        assert!(p.is_transparent());
    }

    #[test]
    fn decisions_are_pure_and_seed_dependent() {
        let a = lossy(2_500);
        let b = lossy(2_500);
        let other = FaultPlane::new(FaultConfig {
            seed: 10,
            drop_bp: 2_500,
            ..FaultConfig::transparent()
        });
        let mut diverged = false;
        for seq in 0..2_000u64 {
            for hop in 0..4 {
                assert_eq!(a.decide(seq, hop, 0), b.decide(seq, hop, 0));
                if a.decide(seq, hop, 0) != other.decide(seq, hop, 0) {
                    diverged = true;
                }
            }
        }
        assert!(diverged, "different seeds must change the pattern");
    }

    #[test]
    fn drop_rate_is_respected() {
        let p = lossy(2_500); // 25%
        let drops = (0..20_000u64)
            .filter(|&seq| p.decide(seq, 0, 0) == FaultAction::Drop)
            .count();
        let frac = drops as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "drop fraction {frac}");
    }

    #[test]
    fn all_actions_fire_and_delay_is_bounded() {
        let p = FaultPlane::new(FaultConfig {
            seed: 3,
            drop_bp: 1_000,
            delay_bp: 1_000,
            max_delay: 4,
            dup_bp: 1_000,
            corrupt_bp: 1_000,
            ..FaultConfig::transparent()
        });
        let mut seen = [false; 5];
        for seq in 0..10_000u64 {
            match p.decide(seq, seq as usize % 4, 0) {
                FaultAction::Deliver => seen[0] = true,
                FaultAction::Drop => seen[1] = true,
                FaultAction::Delay(d) => {
                    assert!((1..=4).contains(&d), "delay {d} out of range");
                    seen[2] = true;
                }
                FaultAction::Duplicate => seen[3] = true,
                FaultAction::Corrupt => seen[4] = true,
            }
        }
        assert_eq!(seen, [true; 5], "every action must be reachable");
        // Ghost copies never duplicate again.
        for seq in 0..10_000u64 {
            assert_ne!(p.decide(seq, 1, 1), FaultAction::Duplicate);
        }
    }

    #[test]
    fn crash_and_stall_windows() {
        let p = FaultPlane::new(FaultConfig {
            seed: 0,
            crashes: vec![CrashSpec {
                switch: 2,
                at_superstep: 10,
                down_supersteps: 5,
            }],
            stall: Some(StallSpec {
                groups: 3,
                group: 1,
                at_superstep: 20,
                supersteps: 4,
            }),
            ..FaultConfig::transparent()
        });
        assert!(!p.switch_down(2, 9));
        assert!(p.switch_down(2, 10));
        assert!(p.switch_down(2, 14));
        assert!(!p.switch_down(2, 15));
        assert!(!p.switch_down(3, 12));
        assert_eq!(p.restart_superstep(2), Some(15));
        assert_eq!(p.restart_superstep(0), None);
        // Group 1 of 3: switches 1, 4, 7, ...
        assert!(p.stalled(4, 21));
        assert!(!p.stalled(4, 24));
        assert!(!p.stalled(3, 21));
    }

    #[test]
    fn kills_are_permanent_and_never_restart() {
        let p = FaultPlane::new(FaultConfig {
            kills: vec![KillSpec {
                switch: 3,
                at_superstep: 50,
            }],
            ..FaultConfig::transparent()
        });
        assert!(!p.switch_down(3, 49));
        assert!(!p.switch_killed(3, 49));
        assert!(p.switch_down(3, 50));
        assert!(p.switch_killed(3, 50));
        assert!(p.switch_down(3, 1_000_000), "kills never end");
        assert_eq!(
            p.restart_superstep(3),
            None,
            "killed switches never restart"
        );
        assert!(!p.switch_killed(2, 60));
        assert!(!p.is_transparent());
    }

    #[test]
    fn link_windows_are_undirected_and_can_flap() {
        let p = FaultPlane::new(FaultConfig {
            link_downs: vec![
                LinkDownSpec {
                    a: 1,
                    b: 2,
                    at_superstep: 10,
                    down_supersteps: 5,
                },
                LinkDownSpec {
                    a: 2,
                    b: 1,
                    at_superstep: 30,
                    down_supersteps: 4,
                },
            ],
            ..FaultConfig::transparent()
        });
        assert!(!p.link_down(1, 2, 9));
        assert!(p.link_down(1, 2, 10));
        assert!(p.link_down(2, 1, 14), "links are undirected");
        assert!(!p.link_down(1, 2, 15), "first window ends");
        assert!(p.link_down(1, 2, 31), "second flap window");
        assert!(!p.link_down(1, 2, 34));
        assert!(!p.link_down(1, 3, 12), "other links unaffected");
        assert!(!p.is_transparent());
    }

    #[test]
    #[should_panic(expected = "cannot also have a transient crash")]
    fn kill_plus_crash_on_one_switch_rejected() {
        FaultPlane::new(FaultConfig {
            crashes: vec![CrashSpec {
                switch: 1,
                at_superstep: 5,
                down_supersteps: 2,
            }],
            kills: vec![KillSpec {
                switch: 1,
                at_superstep: 50,
            }],
            ..FaultConfig::transparent()
        });
    }

    #[test]
    fn corruption_is_always_detected_by_the_checksum() {
        let p = lossy(1);
        for seq in 0..500u64 {
            for hop in 0..4 {
                let cell = RmCell::delta(seq as u32, 12_345.0 + seq as f64);
                let mut wire = cell.encode();
                p.corrupt_wire(&mut wire, seq, hop);
                assert_ne!(wire, cell.encode(), "corruption must change the bytes");
                assert!(
                    RmCell::decode(&wire).is_none(),
                    "checksum must catch 1-2 flipped bits (seq {seq} hop {hop})"
                );
            }
        }
    }

    #[test]
    fn drift_and_resync_scenario() {
        // A source sends +delta cells through a lossy plane; the switch's
        // view drifts below the source's, then a resync repairs it exactly.
        let mut sw = Switch::new(&[1_000_000.0]);
        sw.setup(1, 0, 100_000.0).unwrap();
        let plane = lossy(5_000); // 50%
        let mut source_view = 100_000.0;
        let mut dropped = 0;
        for seq in 0..20u64 {
            let delta = 10_000.0;
            source_view += delta; // source assumes success optimistically
            if plane.decide(seq, 0, 0) == FaultAction::Deliver {
                sw.process_rm(RmCell::delta(1, delta)).unwrap();
            } else {
                dropped += 1;
            }
        }
        let switch_view = sw.vci_rate(1).unwrap();
        assert!(dropped > 0, "seed should drop something");
        assert!(
            switch_view < source_view,
            "drift expected: switch {switch_view} vs source {source_view}"
        );
        // Resync with the true rate repairs the drift.
        sw.process_rm(RmCell::resync(1, source_view)).unwrap();
        assert_eq!(sw.vci_rate(1), Some(source_view));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        FaultConfig::drop_only(1.5, 0);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn overfull_buckets_rejected() {
        FaultPlane::new(FaultConfig {
            drop_bp: 6_000,
            corrupt_bp: 6_000,
            ..FaultConfig::transparent()
        });
    }
}
