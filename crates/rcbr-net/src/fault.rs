//! Signaling fault injection.
//!
//! Footnote 2 of the paper: delta-encoded ER fields suffer "parameter
//! drift in case of RM cell loss", repaired by periodic absolute-rate
//! resync. [`FaultInjector`] drops signaling messages with a configured
//! probability so tests and examples can demonstrate the drift and its
//! repair (in the spirit of smoltcp's `--drop-chance` example option).

use rcbr_sim::SimRng;

/// Drops messages with a fixed probability.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    drop_probability: f64,
    rng: SimRng,
    dropped: u64,
    passed: u64,
}

impl FaultInjector {
    /// Create an injector.
    ///
    /// # Panics
    /// Panics unless `drop_probability ∈ [0, 1]`.
    pub fn new(drop_probability: f64, rng: SimRng) -> Self {
        assert!(
            (0.0..=1.0).contains(&drop_probability),
            "drop probability must be in [0, 1]"
        );
        Self {
            drop_probability,
            rng,
            dropped: 0,
            passed: 0,
        }
    }

    /// A pass-through injector (never drops).
    pub fn transparent() -> Self {
        Self::new(0.0, SimRng::from_seed(0))
    }

    /// Decide the fate of one message: `true` = delivered.
    pub fn deliver(&mut self) -> bool {
        if self.rng.chance(self.drop_probability) {
            self.dropped += 1;
            false
        } else {
            self.passed += 1;
            true
        }
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Messages delivered so far.
    pub fn passed(&self) -> u64 {
        self.passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rm::RmCell;
    use crate::switch::Switch;

    #[test]
    fn transparent_never_drops() {
        let mut f = FaultInjector::transparent();
        for _ in 0..1000 {
            assert!(f.deliver());
        }
        assert_eq!(f.dropped(), 0);
        assert_eq!(f.passed(), 1000);
    }

    #[test]
    fn drop_rate_is_respected() {
        let mut f = FaultInjector::new(0.25, SimRng::from_seed(9));
        for _ in 0..20_000 {
            f.deliver();
        }
        let frac = f.dropped() as f64 / 20_000.0;
        assert!((frac - 0.25).abs() < 0.02, "drop fraction {frac}");
    }

    #[test]
    fn drift_and_resync_scenario() {
        // A source sends +delta cells through a lossy channel; the switch's
        // view drifts below the source's, then a resync repairs it exactly.
        let mut sw = Switch::new(&[1_000_000.0]);
        sw.setup(1, 0, 100_000.0).unwrap();
        let mut faults = FaultInjector::new(0.5, SimRng::from_seed(3));
        let mut source_view = 100_000.0;
        for _ in 0..20 {
            let delta = 10_000.0;
            source_view += delta; // source assumes success optimistically
            if faults.deliver() {
                sw.process_rm(RmCell::delta(1, delta)).unwrap();
            }
        }
        let switch_view = sw.vci_rate(1).unwrap();
        assert!(faults.dropped() > 0, "seed should drop something");
        assert!(
            switch_view < source_view,
            "drift expected: switch {switch_view} vs source {source_view}"
        );
        // Resync with the true rate repairs the drift.
        sw.process_rm(RmCell::resync(1, source_view)).unwrap();
        assert_eq!(sw.vci_rate(1), Some(source_view));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        FaultInjector::new(1.5, SimRng::from_seed(0));
    }
}
