//! Switch output ports.
//!
//! The RCBR fast path at a port is two lookups and one comparison
//! (Section III-B): "it checks if the current port utilization plus the
//! rate difference is less than the port capacity. If this is true, then
//! the renegotiation request succeeds, and the VCI and port statistics are
//! updated."
//!
//! The port also keeps per-VCI reservations. The paper notes the fast path
//! does not *need* them ("RCBR support does not require per-VCI state");
//! here they serve the slow path — absolute-rate resync cells and
//! connection teardown — and let tests audit that the aggregate never
//! drifts from the sum of its parts.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// One output port of a switch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OutputPort {
    capacity: f64,
    /// The booking ceiling the fast-path check compares against. Equal to
    /// `capacity` by default (the legacy peak-rate check); a live
    /// measurement-based admission policy may move it below the capacity
    /// (conservative) or above it (statistical overbooking).
    ceiling: f64,
    reserved: f64,
    per_vci: BTreeMap<u32, f64>,
}

impl OutputPort {
    /// Create a port with the given capacity in bits/second.
    ///
    /// # Panics
    /// Panics unless `capacity > 0` and finite.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "port capacity must be positive"
        );
        Self {
            capacity,
            ceiling: capacity,
            reserved: 0.0,
            per_vci: BTreeMap::new(),
        }
    }

    /// Port capacity, bits/second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// The admission booking ceiling, bits/second.
    pub fn admit_ceiling(&self) -> f64 {
        self.ceiling
    }

    /// Set the admission booking ceiling (bits/second). With the default
    /// `ceiling == capacity` the port behaves exactly like the legacy
    /// static peak-rate check; a measurement-based policy overbooks
    /// (`ceiling > capacity`) or tightens (`ceiling < capacity`).
    ///
    /// # Panics
    /// Panics unless `ceiling > 0` and finite.
    pub fn set_admit_ceiling(&mut self, ceiling: f64) {
        assert!(
            ceiling > 0.0 && ceiling.is_finite(),
            "admission ceiling must be positive"
        );
        self.ceiling = ceiling;
    }

    /// Aggregate reserved bandwidth, bits/second.
    pub fn reserved(&self) -> f64 {
        self.reserved
    }

    /// Utilization fraction `reserved / capacity`.
    pub fn utilization(&self) -> f64 {
        self.reserved / self.capacity
    }

    /// Unreserved headroom, bits/second.
    pub fn headroom(&self) -> f64 {
        (self.capacity - self.reserved).max(0.0)
    }

    /// Current reservation of a VCI (0 if unknown).
    pub fn vci_rate(&self, vci: u32) -> f64 {
        self.per_vci.get(&vci).copied().unwrap_or(0.0)
    }

    /// Number of VCIs with a nonzero reservation record.
    pub fn active_vcis(&self) -> usize {
        self.per_vci.len()
    }

    /// The nonzero per-VCI reservations, ascending by VCI (the map is
    /// ordered) — the auditor's view for cross-checking that torn-down and
    /// rerouted-away VCs left nothing behind.
    pub fn vci_entries(&self) -> Vec<(u32, f64)> {
        self.per_vci.iter().map(|(&v, &r)| (v, r)).collect()
    }

    /// The fast-path check-and-update: apply a rate `delta` for `vci`.
    ///
    /// Succeeds iff the new aggregate fits the capacity and the VCI's own
    /// reservation stays nonnegative (a stale negative delta after drift
    /// must not push a reservation below zero). Rate decreases always
    /// succeed at the aggregate level.
    pub fn try_reserve_delta(&mut self, vci: u32, delta: f64) -> bool {
        assert!(delta.is_finite(), "rate delta must be finite");
        let old = self.vci_rate(vci);
        let new = old + delta;
        if new < -1e-9 {
            return false;
        }
        let new = new.max(0.0);
        if delta > 0.0 && self.reserved + delta > self.ceiling + 1e-9 {
            return false;
        }
        self.apply(vci, old, new);
        true
    }

    /// The slow path: set `vci`'s reservation to an absolute rate
    /// (resync). Succeeds iff the resulting aggregate fits.
    pub fn try_set_absolute(&mut self, vci: u32, rate: f64) -> bool {
        assert!(
            rate >= 0.0 && rate.is_finite(),
            "absolute rate must be nonnegative"
        );
        let old = self.vci_rate(vci);
        if self.reserved - old + rate > self.ceiling + 1e-9 {
            return false;
        }
        self.apply(vci, old, rate);
        true
    }

    /// Administrative absolute-rate set that bypasses the booking ceiling.
    /// Only the end-of-run audit uses this, for its use-it-or-lose-it
    /// floor repair: at a port a live policy overbooked past its ceiling,
    /// even a rate *reduction* would fail the checked path, yet recovery
    /// must still reconcile the reservation. Never part of the live
    /// signaling path.
    pub fn set_unchecked(&mut self, vci: u32, rate: f64) {
        assert!(
            rate >= 0.0 && rate.is_finite(),
            "absolute rate must be nonnegative"
        );
        let old = self.vci_rate(vci);
        self.apply(vci, old, rate);
    }

    /// Release everything reserved by `vci` (teardown). Returns the rate
    /// released.
    pub fn release(&mut self, vci: u32) -> f64 {
        let old = self.vci_rate(vci);
        self.apply(vci, old, 0.0);
        old
    }

    fn apply(&mut self, vci: u32, old: f64, new: f64) {
        self.reserved = (self.reserved - old + new).max(0.0);
        if new == 0.0 {
            self.per_vci.remove(&vci);
        } else {
            self.per_vci.insert(vci, new);
        }
    }

    /// Crash-wipe: forget every reservation. Models the loss of *soft*
    /// state when a switch restarts — recovery must come from the
    /// sources' absolute-rate resync cells.
    pub fn wipe(&mut self) {
        self.reserved = 0.0;
        self.per_vci.clear();
        // The booking ceiling is policy soft state too: a restarted switch
        // starts back at the legacy peak-rate check until the admission
        // estimator's next window closes.
        self.ceiling = self.capacity;
    }

    /// Audit: aggregate equals the sum of per-VCI reservations (used by
    /// tests and debug assertions to catch drift bugs in the switch).
    pub fn is_consistent(&self) -> bool {
        let sum: f64 = self.per_vci.values().sum();
        (self.reserved - sum).abs() <= 1e-6 * self.reserved.abs().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reserve_and_release() {
        let mut p = OutputPort::new(1000.0);
        assert!(p.try_reserve_delta(1, 400.0));
        assert!(p.try_reserve_delta(2, 500.0));
        assert_eq!(p.reserved(), 900.0);
        assert!((p.utilization() - 0.9).abs() < 1e-12);
        assert!(!p.try_reserve_delta(3, 200.0)); // would exceed capacity
        assert_eq!(p.release(1), 400.0);
        assert!(p.try_reserve_delta(3, 200.0));
        assert!(p.is_consistent());
    }

    #[test]
    fn decreases_always_fit() {
        let mut p = OutputPort::new(100.0);
        assert!(p.try_reserve_delta(1, 100.0));
        assert!(p.try_reserve_delta(1, -40.0));
        assert_eq!(p.vci_rate(1), 60.0);
        assert_eq!(p.headroom(), 40.0);
    }

    #[test]
    fn vci_cannot_go_negative() {
        let mut p = OutputPort::new(100.0);
        assert!(p.try_reserve_delta(1, 30.0));
        assert!(!p.try_reserve_delta(1, -50.0));
        assert_eq!(p.vci_rate(1), 30.0);
    }

    #[test]
    fn absolute_resync_repairs_state() {
        let mut p = OutputPort::new(1000.0);
        assert!(p.try_reserve_delta(1, 300.0));
        // Drift: suppose the source believes 500 (a +200 delta was lost).
        assert!(p.try_set_absolute(1, 500.0));
        assert_eq!(p.vci_rate(1), 500.0);
        assert_eq!(p.reserved(), 500.0);
        assert!(p.is_consistent());
    }

    #[test]
    fn absolute_resync_respects_capacity() {
        let mut p = OutputPort::new(1000.0);
        assert!(p.try_reserve_delta(1, 600.0));
        assert!(p.try_reserve_delta(2, 300.0));
        assert!(!p.try_set_absolute(2, 500.0)); // 600 + 500 > 1000
        assert_eq!(p.vci_rate(2), 300.0);
    }

    #[test]
    fn ceiling_defaults_to_capacity_and_gates_bookings() {
        let mut p = OutputPort::new(1000.0);
        assert_eq!(p.admit_ceiling(), 1000.0);
        // Overbooked ceiling: bookings past the capacity are admitted.
        p.set_admit_ceiling(1500.0);
        assert!(p.try_reserve_delta(1, 1200.0));
        assert!(p.reserved() > p.capacity());
        // Tightened ceiling: even a within-capacity increase is denied,
        // but decreases still fit (delta path) and the checked absolute
        // path denies while the total stays above the ceiling.
        p.set_admit_ceiling(800.0);
        assert!(!p.try_reserve_delta(2, 100.0));
        assert!(p.try_reserve_delta(1, -600.0));
        assert!(!p.try_set_absolute(1, 900.0));
        assert!(p.try_set_absolute(1, 700.0));
        assert!(p.is_consistent());
    }

    #[test]
    fn wipe_resets_ceiling_and_unchecked_set_bypasses_it() {
        let mut p = OutputPort::new(1000.0);
        p.set_admit_ceiling(2000.0);
        assert!(p.try_reserve_delta(1, 1800.0));
        p.set_admit_ceiling(500.0);
        // Checked reduction fails while the aggregate stays overbooked;
        // the administrative path applies it regardless.
        assert!(!p.try_set_absolute(1, 1700.0));
        p.set_unchecked(1, 1700.0);
        assert_eq!(p.vci_rate(1), 1700.0);
        assert!(p.is_consistent());
        p.wipe();
        assert_eq!(p.admit_ceiling(), p.capacity());
    }

    #[test]
    fn release_unknown_vci_is_noop() {
        let mut p = OutputPort::new(10.0);
        assert_eq!(p.release(99), 0.0);
        assert!(p.is_consistent());
    }

    proptest! {
        /// Random operation sequences keep the port consistent and within
        /// capacity.
        #[test]
        fn port_invariants_hold(
            ops in proptest::collection::vec(
                (0u32..5, -500.0..500.0f64, any::<bool>()), 1..200),
        ) {
            let mut p = OutputPort::new(1000.0);
            for (vci, rate, absolute) in ops {
                if absolute {
                    p.try_set_absolute(vci, rate.abs());
                } else {
                    p.try_reserve_delta(vci, rate);
                }
                prop_assert!(p.is_consistent());
                prop_assert!(p.reserved() <= p.capacity() + 1e-6);
                prop_assert!(p.reserved() >= -1e-9);
            }
        }
    }
}
