//! Advance reservations — Section III-A2.
//!
//! "If all systems in the network share a common time base, advance
//! reservations could be done for some or all of the data stream." A
//! stored-video source knows its whole renegotiation schedule before the
//! first bit is sent, so instead of renegotiating on the fly (and risking
//! failures), it can *book* the entire piecewise-CBR profile ahead of
//! time. [`AdvanceBook`] is that per-port booking ledger: a timeline of
//! future reservations, admission-checked against the port capacity at
//! every instant.

use serde::{Deserialize, Serialize};

/// One booked interval: `[start, end)` at `rate` for `vci`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Booking {
    vci: u32,
    start: f64,
    end: f64,
    rate: f64,
}

/// A port's advance-reservation ledger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdvanceBook {
    capacity: f64,
    bookings: Vec<Booking>,
}

/// Outcome of a booking attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BookingOutcome {
    /// The whole profile fits; it is now booked.
    Booked,
    /// The profile would exceed capacity; nothing was booked. Carries the
    /// earliest time at which it conflicts.
    Conflict {
        /// First instant at which the residual capacity is insufficient.
        at: f64,
    },
}

impl AdvanceBook {
    /// Create a ledger for a port of the given capacity (bits/second).
    ///
    /// # Panics
    /// Panics unless `capacity > 0`.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "capacity must be positive"
        );
        Self {
            capacity,
            bookings: Vec::new(),
        }
    }

    /// Port capacity, bits/second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Total booked rate at time `t`.
    pub fn booked_at(&self, t: f64) -> f64 {
        self.bookings
            .iter()
            .filter(|b| b.start <= t && t < b.end)
            .map(|b| b.rate)
            .sum()
    }

    /// The peak booked rate within `[start, end)`.
    pub fn peak_booked(&self, start: f64, end: f64) -> f64 {
        // Evaluate at every breakpoint inside the window plus the start.
        let mut peak = self.booked_at(start);
        for b in &self.bookings {
            for &edge in &[b.start, b.end] {
                if edge > start && edge < end {
                    peak = peak.max(self.booked_at(edge));
                }
            }
        }
        peak
    }

    /// Try to book a piecewise-constant profile for `vci` starting at
    /// `start`: `segments` are `(duration_seconds, rate)` pairs played
    /// back to back. All-or-nothing.
    ///
    /// # Panics
    /// Panics on empty or malformed profiles.
    pub fn book_profile(
        &mut self,
        vci: u32,
        start: f64,
        segments: &[(f64, f64)],
    ) -> BookingOutcome {
        assert!(!segments.is_empty(), "profile must be nonempty");
        assert!(
            segments
                .iter()
                .all(|&(d, r)| d > 0.0 && r >= 0.0 && d.is_finite() && r.is_finite()),
            "profile durations must be positive and rates nonnegative"
        );
        // Feasibility check against every breakpoint the profile spans.
        let mut t = start;
        for &(dur, rate) in segments {
            let end = t + dur;
            if rate > 0.0 {
                let available = self.capacity - self.peak_booked(t, end);
                if rate > available + 1e-9 {
                    // Locate the earliest conflicting instant for the error.
                    let mut at = t;
                    let mut probe = self.booked_at(t);
                    if rate <= self.capacity - probe + 1e-9 {
                        for b in &self.bookings {
                            for &edge in &[b.start, b.end] {
                                if edge > t && edge < end {
                                    probe = self.booked_at(edge);
                                    if rate > self.capacity - probe + 1e-9 {
                                        at = edge;
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    return BookingOutcome::Conflict { at };
                }
            }
            t = end;
        }
        // Commit.
        let mut t = start;
        for &(dur, rate) in segments {
            if rate > 0.0 {
                self.bookings.push(Booking {
                    vci,
                    start: t,
                    end: t + dur,
                    rate,
                });
            }
            t += dur;
        }
        BookingOutcome::Booked
    }

    /// Cancel every booking of `vci`; returns how many intervals were
    /// released.
    pub fn cancel(&mut self, vci: u32) -> usize {
        let before = self.bookings.len();
        self.bookings.retain(|b| b.vci != vci);
        before - self.bookings.len()
    }

    /// Drop bookings that ended at or before `now` (ledger hygiene).
    pub fn expire(&mut self, now: f64) {
        self.bookings.retain(|b| b.end > now);
    }

    /// Number of live booked intervals.
    pub fn len(&self) -> usize {
        self.bookings.len()
    }

    /// Whether the ledger is empty.
    pub fn is_empty(&self) -> bool {
        self.bookings.is_empty()
    }
}

/// Convert a [`rcbr_schedule::Schedule`]-like segment list (as produced by
/// `Schedule::segments()` with its slot duration) into the
/// `(duration, rate)` profile [`AdvanceBook::book_profile`] takes.
pub fn profile_from_segments(
    segments: &[(usize, f64)],
    num_slots: usize,
    slot_duration: f64,
) -> Vec<(f64, f64)> {
    assert!(!segments.is_empty(), "need at least one segment");
    let mut out = Vec::with_capacity(segments.len());
    for (i, &(start, rate)) in segments.iter().enumerate() {
        let end = segments.get(i + 1).map_or(num_slots, |&(s, _)| s);
        out.push(((end - start) as f64 * slot_duration, rate));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn booking_and_queries() {
        let mut book = AdvanceBook::new(1000.0);
        assert_eq!(
            book.book_profile(1, 10.0, &[(5.0, 300.0), (5.0, 600.0)]),
            BookingOutcome::Booked
        );
        assert_eq!(book.booked_at(0.0), 0.0);
        assert_eq!(book.booked_at(12.0), 300.0);
        assert_eq!(book.booked_at(17.0), 600.0);
        assert_eq!(book.booked_at(20.0), 0.0); // end-exclusive
        assert_eq!(book.peak_booked(0.0, 30.0), 600.0);
    }

    #[test]
    fn conflicting_profile_is_rejected_atomically() {
        let mut book = AdvanceBook::new(1000.0);
        book.book_profile(1, 0.0, &[(10.0, 700.0)]);
        // Fits at first, conflicts in the middle.
        let out = book.book_profile(2, 5.0, &[(2.0, 200.0), (4.0, 400.0)]);
        assert!(matches!(out, BookingOutcome::Conflict { .. }));
        // Nothing of VCI 2 leaked into the ledger.
        assert_eq!(book.cancel(2), 0);
        // A profile that dodges the overlap fits.
        assert_eq!(
            book.book_profile(2, 10.0, &[(2.0, 200.0), (4.0, 400.0)]),
            BookingOutcome::Booked
        );
    }

    #[test]
    fn conflict_reports_a_sensible_time() {
        let mut book = AdvanceBook::new(1000.0);
        book.book_profile(1, 20.0, &[(10.0, 900.0)]);
        match book.book_profile(2, 0.0, &[(40.0, 200.0)]) {
            BookingOutcome::Conflict { at } => {
                assert!((at - 20.0).abs() < 1e-9, "conflict at {at}");
            }
            other => panic!("expected conflict, got {other:?}"),
        }
    }

    #[test]
    fn zero_rate_segments_need_no_capacity() {
        let mut book = AdvanceBook::new(100.0);
        book.book_profile(1, 0.0, &[(10.0, 100.0)]);
        // A silent profile coexists with a full link.
        assert_eq!(
            book.book_profile(2, 0.0, &[(10.0, 0.0)]),
            BookingOutcome::Booked
        );
        assert_eq!(book.len(), 1, "zero-rate intervals are not stored");
    }

    #[test]
    fn cancel_and_expire() {
        let mut book = AdvanceBook::new(1000.0);
        book.book_profile(1, 0.0, &[(10.0, 100.0), (10.0, 200.0)]);
        book.book_profile(2, 5.0, &[(10.0, 300.0)]);
        assert_eq!(book.len(), 3);
        assert_eq!(book.cancel(1), 2);
        assert_eq!(book.booked_at(6.0), 300.0);
        book.expire(20.0);
        assert!(book.is_empty());
    }

    #[test]
    fn whole_rcbr_schedules_can_be_booked_back_to_back() {
        // Two stored-video sources book full piecewise profiles whose
        // peaks interleave; a third whose peak collides is refused.
        let mut book = AdvanceBook::new(1000.0);
        let a = profile_from_segments(&[(0, 300.0), (50, 800.0)], 100, 1.0);
        let b = profile_from_segments(&[(0, 600.0), (50, 100.0)], 100, 1.0);
        assert_eq!(book.book_profile(1, 0.0, &a), BookingOutcome::Booked);
        assert_eq!(book.book_profile(2, 0.0, &b), BookingOutcome::Booked);
        // Peak total: max(300+600, 800+100) = 900 <= 1000. A third 200 b/s
        // constant stream pushes the second half to 1100.
        let c = vec![(100.0, 200.0)];
        assert!(matches!(
            book.book_profile(3, 0.0, &c),
            BookingOutcome::Conflict { .. }
        ));
        // But it fits once source 1 is cancelled.
        book.cancel(1);
        assert_eq!(book.book_profile(3, 0.0, &c), BookingOutcome::Booked);
    }

    #[test]
    fn profile_conversion_matches_segment_semantics() {
        let p = profile_from_segments(&[(0, 10.0), (4, 20.0), (6, 5.0)], 10, 0.5);
        assert_eq!(p, vec![(2.0, 10.0), (1.0, 20.0), (2.0, 5.0)]);
    }
}
