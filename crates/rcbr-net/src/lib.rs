#![warn(missing_docs)]

//! # rcbr-net — the ATM-style network substrate (Section III)
//!
//! RCBR's whole point is that it needs almost nothing from switches:
//! traffic entering the network is CBR, so "internal buffers can be small
//! and packet scheduling need only be FIFO", and renegotiation signaling is
//! two table lookups per hop. This crate models exactly that machinery:
//!
//! * [`cell`] — ATM cell arithmetic (53-byte cells, 48-byte payloads) and
//!   the small cell-scale FIFO buffering CBR multiplexing needs.
//! * [`rm`] — resource-management cells reused for lightweight
//!   renegotiation signaling (Section III-B): the ER field carries the
//!   *difference* between old and new rates so the fast path needs no
//!   per-VCI state, with periodic absolute-rate resync cells repairing the
//!   parameter drift that delta-encoding suffers when RM cells are lost.
//!   Cells have a real wire encoding (exercised by the `bytes` crate).
//! * [`port`] — an output port: capacity, aggregate reservation, the
//!   two-lookup admission check (`utilization + delta <= capacity`), and
//!   slow-path per-VCI accounting for resync.
//! * [`switch`] — a switch: VCI table plus ports; processes RM cells by
//!   port lookup + reservation check, denying by clearing the ER field.
//! * [`path`] — multi-hop renegotiation: every hop is a possible point of
//!   failure (Section III-C); a denial at hop `k` rolls back reservations
//!   made at hops `1..k`. Per-hop latency accumulates into the
//!   request/confirm round-trip time.
//! * [`signaling`] — bounded per-switch signaling queues: a per-superstep
//!   service budget for renegotiation cells with deterministic,
//!   priority-monotone shedding by the pure `(class, seq, salt)` order,
//!   plus the overload-pressure window piggybacked on RM responses.
//! * [`fault`] — the deterministic fault plane: seeded, stateless
//!   per-traversal decisions (drop / delay / duplicate / bit-corrupt),
//!   scheduled switch crashes that wipe soft reservation state, and
//!   bounded shard stalls — all replayable, so drift and its repair by
//!   resync can be asserted bit-exactly.

pub mod advance;
pub mod cell;
pub mod cellmux;
pub mod fault;
pub mod path;
pub mod port;
pub mod rm;
pub mod rsvp;
pub mod salt;
pub mod signaling;
pub mod switch;
pub mod topology;

pub use advance::{profile_from_segments, AdvanceBook, BookingOutcome};
pub use cell::{cells_for_bits, CELL_BITS, CELL_PAYLOAD_BITS};
pub use cellmux::{simulate_cbr_mux, CellMuxReport};
pub use fault::{
    CrashSpec, FaultAction, FaultConfig, FaultPlane, KillSpec, LinkDownSpec, StallSpec,
    FAULT_BP_SCALE,
};
pub use path::{Path, RenegotiationOutcome};
pub use port::OutputPort;
pub use rm::{RateField, RmCell, RM_CELL_BYTES};
pub use rsvp::{FlowSpec, LeaseTable, ResvOutcome, RsvpRouter};
pub use salt::{SALT_GHOST, SALT_PRIMARY, SALT_TEARDOWN_BASE};
pub use signaling::{select_shed, PriorityClass, ShedKey, SignalingQueue};
pub use switch::{Switch, SwitchError};
pub use topology::{Link, Topology};
