//! Multi-hop renegotiation.
//!
//! Section III-C: "As the mean number of hops in the network increases,
//! the probability of renegotiation failure is likely to increase since
//! each hop is a possible point of failure." A [`Path`] carries a
//! renegotiation request through a sequence of switches; a denial at hop
//! `k` rolls back the reservations already made at hops `0..k` so no
//! bandwidth leaks, and per-hop latency accumulates into the round-trip
//! time an offline source must anticipate (Section III-C's scaling
//! discussion).

use serde::{Deserialize, Serialize};

use crate::rm::RmCell;
use crate::switch::{Switch, SwitchError};

/// The result of pushing a renegotiation along a path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RenegotiationOutcome {
    /// Whether every hop granted the request.
    pub granted: bool,
    /// Index of the first hop that denied (if any).
    pub denied_at: Option<usize>,
    /// One-way request latency plus the confirmation on the way back,
    /// seconds.
    pub round_trip: f64,
    /// Some hop stamped the overload-pressure flag onto the response (its
    /// signaling queue shed cells recently): the source should widen its
    /// renegotiation cadence until a response comes back clean.
    pub pressured: bool,
}

/// A source's route: hop indices into a switch population plus per-hop
/// one-way latency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Path {
    hops: Vec<usize>,
    hop_latency: f64,
}

impl Path {
    /// Create a path through `hops` (indices into the caller's switch
    /// slice) with a one-way per-hop latency in seconds.
    ///
    /// # Panics
    /// Panics if the path is empty or the latency is negative.
    pub fn new(hops: Vec<usize>, hop_latency: f64) -> Self {
        assert!(!hops.is_empty(), "path must have at least one hop");
        assert!(
            hop_latency >= 0.0 && hop_latency.is_finite(),
            "invalid hop latency"
        );
        Self { hops, hop_latency }
    }

    /// Hop indices.
    pub fn hops(&self) -> &[usize] {
        &self.hops
    }

    /// Number of hops.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Always `false` (construction rejects empty paths).
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// One-way path latency, seconds.
    pub fn one_way_latency(&self) -> f64 {
        self.hop_latency * self.hops.len() as f64
    }

    /// Set up the connection on every hop at `rate`; on a hop that cannot
    /// fit it, tears down the hops already set up and reports the blocking
    /// hop.
    pub fn setup(
        &self,
        switches: &mut [Switch],
        vci: u32,
        port: usize,
        rate: f64,
    ) -> Result<Result<(), usize>, SwitchError> {
        for (k, &h) in self.hops.iter().enumerate() {
            let ok = switches[h].setup(vci, port, rate)?;
            if !ok {
                for &hh in &self.hops[..k] {
                    switches[hh].teardown(vci)?;
                }
                // Undo the failed hop's table entry too (setup without
                // reservation leaves no entry, so nothing to undo there).
                return Ok(Err(k));
            }
        }
        Ok(Ok(()))
    }

    /// Tear the connection down on every hop.
    pub fn teardown(&self, switches: &mut [Switch], vci: u32) -> Result<(), SwitchError> {
        for &h in &self.hops {
            switches[h].teardown(vci)?;
        }
        Ok(())
    }

    /// Push a renegotiation delta through every hop, with all-or-nothing
    /// semantics: the first denial rolls back the hops already granted.
    pub fn renegotiate(
        &self,
        switches: &mut [Switch],
        vci: u32,
        delta: f64,
    ) -> Result<RenegotiationOutcome, SwitchError> {
        let mut cell = RmCell::delta(vci, delta);
        let mut granted_hops = 0usize;
        let mut denied_at = None;
        let mut pressured = false;
        for (k, &h) in self.hops.iter().enumerate() {
            cell = switches[h].process_rm(cell)?;
            pressured |= cell.pressure;
            if cell.denied {
                denied_at = Some(k);
                break;
            }
            granted_hops = k + 1;
        }
        if cell.denied {
            for &h in &self.hops[..granted_hops] {
                switches[h].rollback_delta(vci, delta)?;
            }
        }
        Ok(RenegotiationOutcome {
            granted: !cell.denied,
            denied_at,
            // Request travels to the denial point (or the end) and the
            // verdict returns to the source.
            round_trip: self.hop_latency
                * match denied_at {
                    Some(k) => 2.0 * (k + 1) as f64,
                    None => 2.0 * self.hops.len() as f64,
                },
            pressured,
        })
    }

    /// Push an absolute-rate resync through every hop (no rollback: a
    /// resync that fails at some hop leaves earlier hops already
    /// synchronized, which is still closer to the truth than before).
    /// Returns whether every hop accepted.
    pub fn resync(
        &self,
        switches: &mut [Switch],
        vci: u32,
        rate: f64,
    ) -> Result<bool, SwitchError> {
        let mut cell = RmCell::resync(vci, rate);
        for &h in &self.hops {
            cell = switches[h].process_rm(cell)?;
            if cell.denied {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_switches(caps: [f64; 3]) -> Vec<Switch> {
        caps.iter().map(|&c| Switch::new(&[c])).collect()
    }

    #[test]
    fn end_to_end_grant() {
        let mut sw = three_switches([1000.0, 1000.0, 1000.0]);
        let path = Path::new(vec![0, 1, 2], 0.001);
        assert_eq!(path.setup(&mut sw, 1, 0, 300.0).unwrap(), Ok(()));
        let out = path.renegotiate(&mut sw, 1, 200.0).unwrap();
        assert!(out.granted);
        assert_eq!(out.denied_at, None);
        assert!((out.round_trip - 0.006).abs() < 1e-12);
        for s in &sw {
            assert_eq!(s.vci_rate(1), Some(500.0));
        }
    }

    #[test]
    fn bottleneck_denial_rolls_back() {
        let mut sw = three_switches([1000.0, 400.0, 1000.0]);
        let path = Path::new(vec![0, 1, 2], 0.001);
        assert_eq!(path.setup(&mut sw, 1, 0, 300.0).unwrap(), Ok(()));
        let out = path.renegotiate(&mut sw, 1, 200.0).unwrap();
        assert!(!out.granted);
        assert_eq!(out.denied_at, Some(1));
        // Round trip: to hop 1 and back.
        assert!((out.round_trip - 0.004).abs() < 1e-12);
        // Every hop still holds exactly the old rate.
        for s in &sw {
            assert_eq!(s.vci_rate(1), Some(300.0));
        }
    }

    #[test]
    fn setup_blocking_reports_hop_and_leaks_nothing() {
        let mut sw = three_switches([1000.0, 100.0, 1000.0]);
        let path = Path::new(vec![0, 1, 2], 0.0);
        assert_eq!(path.setup(&mut sw, 1, 0, 300.0).unwrap(), Err(1));
        for s in &sw {
            assert_eq!(s.vci_rate(1), None);
            assert_eq!(s.port(0).unwrap().reserved(), 0.0);
        }
    }

    #[test]
    fn teardown_releases_all_hops() {
        let mut sw = three_switches([1000.0; 3]);
        let path = Path::new(vec![0, 1, 2], 0.0);
        path.setup(&mut sw, 1, 0, 250.0).unwrap().unwrap();
        path.teardown(&mut sw, 1).unwrap();
        for s in &sw {
            assert_eq!(s.port(0).unwrap().reserved(), 0.0);
        }
    }

    #[test]
    fn more_hops_more_failure_opportunities() {
        // Two flows; flow 2 congests the last hop only. A short path avoids
        // it, the long path gets denied there.
        let mut sw = three_switches([1000.0, 1000.0, 500.0]);
        let long = Path::new(vec![0, 1, 2], 0.0);
        let short = Path::new(vec![0, 1], 0.0);
        long.setup(&mut sw, 1, 0, 300.0).unwrap().unwrap();
        short.setup(&mut sw, 2, 0, 300.0).unwrap().unwrap();
        // Congest hop 2.
        sw[2].setup(3, 0, 190.0).unwrap();
        let up_long = long.renegotiate(&mut sw, 1, 100.0).unwrap();
        let up_short = short.renegotiate(&mut sw, 2, 100.0).unwrap();
        assert!(!up_long.granted);
        assert!(up_short.granted);
    }

    #[test]
    fn resync_repairs_after_drift() {
        let mut sw = three_switches([1000.0; 3]);
        let path = Path::new(vec![0, 1, 2], 0.0);
        path.setup(&mut sw, 1, 0, 300.0).unwrap().unwrap();
        // Simulate drift: hop 1 missed a +100 delta.
        sw[0].process_rm(RmCell::delta(1, 100.0)).unwrap();
        sw[2].process_rm(RmCell::delta(1, 100.0)).unwrap();
        assert_eq!(sw[1].vci_rate(1), Some(300.0));
        assert!(path.resync(&mut sw, 1, 400.0).unwrap());
        for s in &sw {
            assert_eq!(s.vci_rate(1), Some(400.0));
        }
    }
}
