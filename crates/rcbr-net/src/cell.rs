//! ATM cell arithmetic.
//!
//! ATM carries everything in 53-byte cells with 48-byte payloads. RCBR's
//! data path never needs more than "some cell level buffering" (Fig. 3(c)),
//! because every stream entering the network is CBR; these helpers quantify
//! that.

/// Bits in one ATM cell (53 bytes).
pub const CELL_BITS: f64 = 53.0 * 8.0;

/// Payload bits in one ATM cell (48 bytes).
pub const CELL_PAYLOAD_BITS: f64 = 48.0 * 8.0;

/// Number of whole cells needed to carry `bits` of payload.
pub fn cells_for_bits(bits: f64) -> u64 {
    assert!(bits >= 0.0, "bit volume must be nonnegative");
    (bits / CELL_PAYLOAD_BITS).ceil() as u64
}

/// Line rate (bits/s of cells on the wire) needed to carry a payload rate
/// of `payload_bps` — the 53/48 cell tax.
pub fn line_rate_for_payload(payload_bps: f64) -> f64 {
    assert!(payload_bps >= 0.0, "rate must be nonnegative");
    payload_bps * CELL_BITS / CELL_PAYLOAD_BITS
}

/// Worst-case cell-scale buffering for `n` CBR streams multiplexed FIFO
/// onto one link: each stream can contribute at most one cell of
/// simultaneous arrival, so `n` cells bounds the FIFO depth (the classical
/// CBR multiplexing bound; cf. the paper's claim that CBR "requires minimal
/// buffering ... in switches").
pub fn cbr_mux_buffer_bits(n_streams: usize) -> f64 {
    n_streams as f64 * CELL_BITS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_sizes() {
        assert_eq!(CELL_BITS, 424.0);
        assert_eq!(CELL_PAYLOAD_BITS, 384.0);
    }

    #[test]
    fn cells_round_up() {
        assert_eq!(cells_for_bits(0.0), 0);
        assert_eq!(cells_for_bits(1.0), 1);
        assert_eq!(cells_for_bits(384.0), 1);
        assert_eq!(cells_for_bits(385.0), 2);
    }

    #[test]
    fn line_rate_includes_header_tax() {
        let lr = line_rate_for_payload(384_000.0);
        assert!((lr - 424_000.0).abs() < 1e-9);
    }

    #[test]
    fn mux_buffer_is_linear_in_streams() {
        assert_eq!(cbr_mux_buffer_bits(0), 0.0);
        assert_eq!(cbr_mux_buffer_bits(100), 42_400.0);
    }
}
