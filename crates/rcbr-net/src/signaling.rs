//! Bounded per-switch signaling queues with deterministic priority
//! shedding — the control plane's overload protection.
//!
//! RCBR's signaling is cheap *because renegotiation is rare*; a flash
//! crowd briefly breaks that assumption and piles RM cells onto a hop.
//! The [`SignalingQueue`] bounds how many renegotiation cells a switch's
//! signaling processor serves per superstep. The overflow is not dropped
//! by arrival order — arrival order is an artifact of how switches are
//! partitioned into shards — but by the pure total order
//! `(priority_class, seq, salt)` over the *whole set* of cells meeting at
//! the switch in that superstep. Since that set is partition-invariant
//! (see the engine's superstep model), so is the shed decision, and the
//! counters stay bit-identical at every shard count.
//!
//! Serving a prefix of the `(class, seq, salt)`-sorted set makes shedding
//! priority-monotone within a superstep by construction: every served key
//! orders at or before every shed key, so a Gold cell can only be shed
//! once no Silver or BestEffort cell is being served at that hop.
//!
//! An overloaded queue also raises a *pressure* signal for a configured
//! hold window; the engine piggybacks it on RM-cell responses (the wire
//! flags byte) so sources — BestEffort ones especially — can stop
//! renegotiating until the storm passes.

/// The service class a VC's signaling cells carry. Assigned statically by
/// the load generator (a pure function of the VCI and the configured
/// class mix), never by arrival order, so every shard agrees on it.
///
/// The derived `Ord` is the shed order: `Gold` sorts first and is served
/// first, `BestEffort` sorts last and is shed first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PriorityClass {
    /// Served first; shed only after every lower class at the hop.
    Gold,
    /// Intermediate class.
    Silver,
    /// Shed first; the brownout degradation tier applies to this class.
    BestEffort,
}

impl PriorityClass {
    /// Numeric rank: 0 = Gold, 1 = Silver, 2 = BestEffort.
    pub fn rank(self) -> u8 {
        match self {
            PriorityClass::Gold => 0,
            PriorityClass::Silver => 1,
            PriorityClass::BestEffort => 2,
        }
    }

    /// Static class assignment from a percentage mix: VCIs with
    /// `vci % 100 < gold_pct` are Gold, the next `silver_pct` percent
    /// Silver, the rest BestEffort. Pure in `(vci, mix)` — no RNG stream
    /// is consumed, so adding classes perturbs no existing draw.
    pub fn from_mix(vci: u32, gold_pct: u32, silver_pct: u32) -> Self {
        debug_assert!(gold_pct + silver_pct <= 100, "class mix exceeds 100%");
        let bucket = vci % 100;
        if bucket < gold_pct {
            PriorityClass::Gold
        } else if bucket < gold_pct + silver_pct {
            PriorityClass::Silver
        } else {
            PriorityClass::BestEffort
        }
    }
}

/// The identity of one shed-eligible cell meeting a switch in one
/// superstep. The derived `Ord` — class first, then `(seq, salt)` — is
/// the one true shed order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ShedKey {
    /// The owning VC's service class.
    pub class: PriorityClass,
    /// The cell's global sequence number.
    pub seq: u64,
    /// The cell's fault-plane salt (tiebreak for same-seq ghosts).
    pub salt: u8,
}

/// Pure shed selection: given the full meeting set of shed-eligible cells
/// at one switch in one superstep, return the keys to shed, sorted by
/// `(seq, salt)`. A `budget` of 0 means unbounded (the legacy behavior):
/// nothing is ever shed.
///
/// The input order of `keys` is irrelevant — the set is sorted by the
/// `(class, seq, salt)` total order and the first `budget` keys are
/// served — which is exactly what makes the decision independent of how
/// the engine happened to enumerate the cells.
pub fn select_shed(budget: u64, mut keys: Vec<ShedKey>) -> Vec<ShedKey> {
    if budget == 0 || keys.len() as u64 <= budget {
        return Vec::new();
    }
    keys.sort_unstable();
    let mut shed = keys.split_off(budget as usize);
    shed.sort_unstable_by_key(|k| (k.seq, k.salt));
    shed
}

/// Per-switch signaling-queue state: the per-superstep service budget and
/// the pressure window the last overload opened. Lives beside the switch
/// it guards (one per switch, owned by that switch's shard), and evolves
/// as a pure function of the partition-invariant meeting sets — so every
/// shard count reproduces the same pressure history.
#[derive(Debug, Clone)]
pub struct SignalingQueue {
    /// Shed-eligible cells served per superstep; 0 = unbounded.
    budget: u64,
    /// First superstep at which the last overload's pressure has cleared.
    pressure_clear_at: u64,
}

impl SignalingQueue {
    /// A queue serving at most `budget` renegotiation cells per superstep
    /// (0 = unbounded), starting with no pressure advertised.
    pub fn new(budget: u64) -> Self {
        Self {
            budget,
            pressure_clear_at: 0,
        }
    }

    /// The per-superstep service budget (0 = unbounded).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Rank this superstep's meeting set, shed the overflow, and — if
    /// anything was shed — advertise pressure for the next
    /// `pressure_hold_supersteps` supersteps. Returns the shed keys,
    /// sorted by `(seq, salt)`.
    pub fn admit_superstep(
        &mut self,
        keys: Vec<ShedKey>,
        superstep: u64,
        pressure_hold_supersteps: u64,
    ) -> Vec<ShedKey> {
        let shed = select_shed(self.budget, keys);
        if !shed.is_empty() {
            self.pressure_clear_at = self
                .pressure_clear_at
                .max(superstep + pressure_hold_supersteps);
        }
        shed
    }

    /// Whether the switch is advertising overload pressure at `superstep`.
    pub fn under_pressure(&self, superstep: u64) -> bool {
        superstep < self.pressure_clear_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_budget_is_unbounded() {
        let keys: Vec<ShedKey> = (0..1000)
            .map(|i| ShedKey {
                class: PriorityClass::BestEffort,
                seq: i,
                salt: 0,
            })
            .collect();
        assert!(select_shed(0, keys).is_empty());
    }

    #[test]
    fn class_mix_covers_the_vci_space() {
        // 25/25/50 mix: buckets 0..25 Gold, 25..50 Silver, 50..100 BE.
        assert_eq!(PriorityClass::from_mix(0, 25, 25), PriorityClass::Gold);
        assert_eq!(PriorityClass::from_mix(24, 25, 25), PriorityClass::Gold);
        assert_eq!(PriorityClass::from_mix(25, 25, 25), PriorityClass::Silver);
        assert_eq!(PriorityClass::from_mix(49, 25, 25), PriorityClass::Silver);
        assert_eq!(
            PriorityClass::from_mix(50, 25, 25),
            PriorityClass::BestEffort
        );
        assert_eq!(
            PriorityClass::from_mix(199, 25, 25),
            PriorityClass::BestEffort
        );
        // Degenerate mixes.
        assert_eq!(PriorityClass::from_mix(99, 100, 0), PriorityClass::Gold);
        assert_eq!(PriorityClass::from_mix(0, 0, 0), PriorityClass::BestEffort);
    }

    #[test]
    fn pressure_holds_then_clears() {
        let mut q = SignalingQueue::new(1);
        let keys = vec![
            ShedKey {
                class: PriorityClass::Gold,
                seq: 1,
                salt: 0,
            },
            ShedKey {
                class: PriorityClass::Silver,
                seq: 2,
                salt: 0,
            },
        ];
        assert!(!q.under_pressure(10));
        let shed = q.admit_superstep(keys, 10, 4);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].class, PriorityClass::Silver);
        assert!(q.under_pressure(10));
        assert!(q.under_pressure(13));
        assert!(!q.under_pressure(14));
        // A non-overloaded superstep does not extend the window.
        let none = q.admit_superstep(Vec::new(), 12, 4);
        assert!(none.is_empty());
        assert!(!q.under_pressure(14));
    }

    /// A deterministic meeting set: unique `(seq, salt)` pairs with
    /// classes spread across all three tiers.
    fn meeting_set(n: usize, class_stride: u64) -> Vec<ShedKey> {
        (0..n as u64)
            .map(|i| ShedKey {
                class: match (i / class_stride.max(1)) % 3 {
                    0 => PriorityClass::Gold,
                    1 => PriorityClass::Silver,
                    _ => PriorityClass::BestEffort,
                },
                seq: i * 7 + 3,
                salt: (i % 2) as u8,
            })
            .collect()
    }

    proptest! {
        /// Shedding is a pure function of the key *set*: any enumeration
        /// order of the meeting set (here: reversed and rotated) sheds
        /// exactly the same cells.
        #[test]
        fn selection_is_iteration_order_independent(
            n in 0usize..64,
            stride in 1u64..8,
            budget in 0u64..70,
            rot in 0usize..64,
        ) {
            let keys = meeting_set(n, stride);
            let baseline = select_shed(budget, keys.clone());

            let mut reversed = keys.clone();
            reversed.reverse();
            prop_assert_eq!(&select_shed(budget, reversed), &baseline);

            let mut rotated = keys;
            if !rotated.is_empty() {
                let r = rot % rotated.len();
                rotated.rotate_left(r);
            }
            prop_assert_eq!(&select_shed(budget, rotated), &baseline);
        }

        /// Priority monotonicity: no cell is shed while a cell of a
        /// *lower* class is served at the same hop in the same superstep
        /// — and the shed count is exactly the overflow.
        #[test]
        fn selection_is_priority_monotone(
            n in 0usize..64,
            stride in 1u64..8,
            budget in 1u64..70,
        ) {
            let keys = meeting_set(n, stride);
            let shed = select_shed(budget, keys.clone());
            let expected = (keys.len() as u64).saturating_sub(budget);
            prop_assert_eq!(shed.len() as u64, expected);

            let is_shed = |k: &ShedKey| shed.contains(k);
            for served in keys.iter().filter(|k| !is_shed(k)) {
                for dropped in &shed {
                    prop_assert!(
                        dropped.class.rank() >= served.class.rank(),
                        "shed {dropped:?} outranks served {served:?}"
                    );
                }
            }
        }
    }
}
