//! Cell-level FIFO multiplexing of CBR streams.
//!
//! The paper's case for CBR inside the network: "because traffic entering
//! the network is smooth, internal buffers can be small and packet
//! scheduling need only be first-in first-out". This module checks that
//! claim at cell granularity: `N` CBR streams emit back-to-back 53-byte
//! cells at their reserved rates with arbitrary phases into one FIFO
//! output port; the port needs at most ~`N` cells of buffer, independent
//! of the streams' rates — the classical CBR-multiplexing bound that
//! [`crate::cell::cbr_mux_buffer_bits`] quotes.

use crate::cell::CELL_BITS;

/// Result of a cell-level multiplexing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMuxReport {
    /// Largest FIFO depth observed, cells.
    pub max_queue_cells: usize,
    /// Total cells forwarded.
    pub cells_forwarded: u64,
    /// Largest per-cell queueing delay observed, seconds.
    pub max_delay: f64,
}

/// Simulate `duration` seconds of `N` phase-shifted CBR streams (given as
/// bits/second each) multiplexed FIFO onto a link of `link_rate`
/// bits/second. Each stream emits one cell every `CELL_BITS/rate` seconds
/// starting at its phase offset.
///
/// # Panics
/// Panics if the total input rate exceeds the link rate (an unstable FIFO
/// has no meaningful bound), or on nonpositive parameters.
pub fn simulate_cbr_mux(
    stream_rates: &[f64],
    phases: &[f64],
    link_rate: f64,
    duration: f64,
) -> CellMuxReport {
    assert_eq!(stream_rates.len(), phases.len(), "one phase per stream");
    assert!(!stream_rates.is_empty(), "need at least one stream");
    assert!(
        link_rate > 0.0 && duration > 0.0,
        "invalid link or duration"
    );
    assert!(
        stream_rates.iter().all(|&r| r > 0.0),
        "stream rates must be positive"
    );
    let total: f64 = stream_rates.iter().sum();
    assert!(
        total <= link_rate * (1.0 + 1e-9),
        "offered load {total} exceeds link rate {link_rate}"
    );

    // Gather all cell arrival instants.
    let mut arrivals: Vec<f64> = Vec::new();
    for (&rate, &phase) in stream_rates.iter().zip(phases) {
        let period = CELL_BITS / rate;
        let mut t = phase % period;
        while t < duration {
            arrivals.push(t);
            t += period;
        }
    }
    arrivals.sort_by(|a, b| a.total_cmp(b));

    // FIFO with deterministic service: one cell takes CELL_BITS/link_rate.
    let service_time = CELL_BITS / link_rate;
    let mut departures: Vec<f64> = Vec::with_capacity(arrivals.len());
    let mut max_queue = 0usize;
    let mut max_delay: f64 = 0.0;
    let mut next_free = 0.0f64;
    for (i, &t) in arrivals.iter().enumerate() {
        let start = next_free.max(t);
        let done = start + service_time;
        next_free = done;
        departures.push(done);
        max_delay = max_delay.max(done - t);
        // Queue depth at this arrival: cells that arrived but have not yet
        // departed (including this one). Departures are sorted because the
        // queue is FIFO with a single server.
        let served_before = departures.partition_point(|&d| d <= t);
        max_queue = max_queue.max(i + 1 - served_before);
    }
    CellMuxReport {
        max_queue_cells: max_queue,
        cells_forwarded: arrivals.len() as u64,
        max_delay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcbr_sim::SimRng;

    #[test]
    fn single_stream_needs_one_cell() {
        let r = simulate_cbr_mux(&[1_000_000.0], &[0.0], 10_000_000.0, 1.0);
        assert_eq!(r.max_queue_cells, 1);
        assert!(r.cells_forwarded > 2000);
    }

    #[test]
    fn n_streams_need_at_most_n_cells() {
        // The classical bound: N simultaneous arrivals is the worst case.
        let n = 20;
        let rates = vec![500_000.0; n];
        let phases = vec![0.0; n]; // adversarial: all aligned
        let link = 1.2 * 500_000.0 * n as f64;
        let r = simulate_cbr_mux(&rates, &phases, link, 2.0);
        assert!(
            r.max_queue_cells <= n,
            "queue {} exceeds the N-cell bound",
            r.max_queue_cells
        );
        assert!(r.max_queue_cells >= n / 2, "aligned phases should pile up");
    }

    #[test]
    fn random_phases_respect_the_bound_too() {
        let mut rng = SimRng::from_seed(13);
        let n = 32;
        let rates: Vec<f64> = (0..n)
            .map(|_| rng.uniform_in(100_000.0, 2_000_000.0))
            .collect();
        let total: f64 = rates.iter().sum();
        let phases: Vec<f64> = (0..n).map(|_| rng.uniform_in(0.0, 0.01)).collect();
        let r = simulate_cbr_mux(&rates, &phases, 1.05 * total, 1.0);
        assert!(
            r.max_queue_cells <= n + 1,
            "queue {} exceeds the bound for N = {n}",
            r.max_queue_cells
        );
        // Minimal buffering == tiny delay: under ~N cell times.
        let cell_time = crate::cell::CELL_BITS / (1.05 * total);
        assert!(r.max_delay <= (n + 1) as f64 * cell_time * 1.01);
    }

    #[test]
    fn delay_scales_with_cell_time_not_with_rate_granularity() {
        // Doubling the link rate halves the worst-case delay.
        let rates = vec![400_000.0; 10];
        let phases = vec![0.0; 10];
        let slow = simulate_cbr_mux(&rates, &phases, 8_000_000.0, 1.0);
        let fast = simulate_cbr_mux(&rates, &phases, 16_000_000.0, 1.0);
        assert!(fast.max_delay < 0.6 * slow.max_delay);
    }

    #[test]
    #[should_panic(expected = "exceeds link rate")]
    fn overload_rejected() {
        simulate_cbr_mux(&[600_000.0, 600_000.0], &[0.0, 0.0], 1_000_000.0, 1.0);
    }
}
