//! RSVP-style soft-state reservations — the Integrated Services Internet
//! side of Section III-B.
//!
//! "Sources and receivers periodically refresh their network reservation
//! state using the RSVP signaling protocol. A source periodically emits a
//! PATH message describing its characteristics, and each receiver
//! periodically emits a RESV message requesting a reservation. To
//! renegotiate its service rate, a source should change its traffic
//! description (flowspec) in the PATH message, and the receivers should
//! correspondingly change their reservation in the RESV message."
//!
//! This module models exactly that: per-session soft state at a router
//! that *expires unless refreshed*, refreshes that carry the current
//! flowspec (so renegotiation rides the refresh for free), and the
//! paper's observation that RSVP refreshes were "viewed primarily as a
//! mechanism for state management, rather than for rate adaptation" — a
//! session that never changes its flowspec just re-asserts its old rate.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A session's traffic description: for RCBR, just a rate (the paper's
/// point is that the descriptor can be trivially simple).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Requested reservation, bits/second.
    pub rate: f64,
}

/// Outcome of processing a RESV (refresh or renegotiation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResvOutcome {
    /// Reservation installed or updated to the requested rate.
    Installed,
    /// The update did not fit; the previous reservation (if any) remains.
    Rejected,
}

#[derive(Debug, Clone)]
struct SoftState {
    rate: f64,
    expires_at: f64,
}

/// Per-router RSVP soft state with a capacity-checked reservation table.
///
/// State not refreshed within `timeout` seconds is garbage-collected by
/// [`RsvpRouter::expire`], releasing its bandwidth — the soft-state
/// property that distinguishes this from the ATM hard state in
/// [`crate::switch`].
#[derive(Debug, Clone)]
pub struct RsvpRouter {
    capacity: f64,
    timeout: f64,
    sessions: BTreeMap<u64, SoftState>,
    reserved: f64,
}

impl RsvpRouter {
    /// Create a router with the given link capacity (bits/second) and
    /// soft-state timeout (seconds).
    ///
    /// # Panics
    /// Panics unless both are positive and finite.
    pub fn new(capacity: f64, timeout: f64) -> Self {
        assert!(
            capacity > 0.0 && capacity.is_finite(),
            "capacity must be positive"
        );
        assert!(
            timeout > 0.0 && timeout.is_finite(),
            "timeout must be positive"
        );
        Self {
            capacity,
            timeout,
            sessions: BTreeMap::new(),
            reserved: 0.0,
        }
    }

    /// Link capacity, bits/second.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Currently reserved bandwidth, bits/second.
    pub fn reserved(&self) -> f64 {
        self.reserved
    }

    /// Number of live sessions.
    pub fn sessions(&self) -> usize {
        self.sessions.len()
    }

    /// The rate currently reserved for a session, if any.
    pub fn session_rate(&self, session: u64) -> Option<f64> {
        self.sessions.get(&session).map(|s| s.rate)
    }

    /// Process a RESV message at time `now`: install, refresh, or
    /// renegotiate the session's reservation to `spec.rate`.
    ///
    /// A pure refresh (same rate) always succeeds and only extends the
    /// lifetime. A change is admission-checked: if the *delta* does not
    /// fit, the old reservation stays installed and keeps its (extended)
    /// lifetime — the RCBR semantics that a failed renegotiation does not
    /// evict the source.
    pub fn resv(&mut self, now: f64, session: u64, spec: FlowSpec) -> ResvOutcome {
        assert!(
            spec.rate >= 0.0 && spec.rate.is_finite(),
            "rate must be nonnegative"
        );
        let expires_at = now + self.timeout;
        match self.sessions.get_mut(&session) {
            Some(state) => {
                // Refresh always extends the lifetime, even if a rate
                // change is rejected.
                state.expires_at = expires_at;
                let old = state.rate;
                if spec.rate == old {
                    return ResvOutcome::Installed;
                }
                if self.reserved - old + spec.rate > self.capacity + 1e-9 {
                    return ResvOutcome::Rejected;
                }
                state.rate = spec.rate;
                self.reserved += spec.rate - old;
                ResvOutcome::Installed
            }
            None => {
                if self.reserved + spec.rate > self.capacity + 1e-9 {
                    return ResvOutcome::Rejected;
                }
                self.sessions.insert(
                    session,
                    SoftState {
                        rate: spec.rate,
                        expires_at,
                    },
                );
                self.reserved += spec.rate;
                ResvOutcome::Installed
            }
        }
    }

    /// Explicit teardown (RSVP `ResvTear`). Returns the released rate.
    pub fn teardown(&mut self, session: u64) -> f64 {
        match self.sessions.remove(&session) {
            Some(state) => {
                self.reserved = (self.reserved - state.rate).max(0.0);
                state.rate
            }
            None => 0.0,
        }
    }

    /// Garbage-collect state whose lifetime has lapsed at `now`; returns
    /// the number of sessions expired.
    pub fn expire(&mut self, now: f64) -> usize {
        let before = self.sessions.len();
        let mut released = 0.0;
        self.sessions.retain(|_, s| {
            if s.expires_at <= now {
                released += s.rate;
                false
            } else {
                true
            }
        });
        self.reserved = (self.reserved - released).max(0.0);
        before - self.sessions.len()
    }
}

/// Soft-state lease bookkeeping on the signaling plane's *logical* clock.
///
/// [`RsvpRouter`] above keeps wall-clock soft state for the RSVP model;
/// the sharded runtime needs the same use-it-or-lose-it discipline but
/// measured in supersteps, so that expiry is a pure function of
/// `(superstep, refresh history)` — identical at every shard count. A
/// [`LeaseTable`] records, per VCI, the superstep of the last RM cell
/// that touched it; [`LeaseTable::expired`] lists the VCIs whose lease
/// has lapsed, in ascending VCI order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LeaseTable {
    last_refresh: BTreeMap<u32, u64>,
}

impl LeaseTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that an RM cell for `vci` was processed at `now`.
    pub fn touch(&mut self, vci: u32, now: u64) {
        self.last_refresh.insert(vci, now);
    }

    /// The superstep `vci` was last refreshed at (`0` if never touched —
    /// setup time, by the runtime's convention).
    pub fn last_refresh(&self, vci: u32) -> u64 {
        self.last_refresh.get(&vci).copied().unwrap_or(0)
    }

    /// Drop `vci`'s record (teardown).
    pub fn forget(&mut self, vci: u32) {
        self.last_refresh.remove(&vci);
    }

    /// The VCIs among `routed` whose lease has lapsed at `now`: no refresh
    /// for strictly more than `lease_supersteps` supersteps. Ascending VCI
    /// order (deterministic for audits and counters).
    pub fn expired(&self, routed: &[u32], now: u64, lease_supersteps: u64) -> Vec<u32> {
        routed
            .iter()
            .copied()
            .filter(|&vci| now.saturating_sub(self.last_refresh(vci)) > lease_supersteps)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_table_expires_only_stale_vcis() {
        let mut t = LeaseTable::new();
        t.touch(1, 10);
        t.touch(2, 40);
        // VCI 3 was never touched: last refresh is setup time 0.
        let routed = [1, 2, 3];
        assert_eq!(t.expired(&routed, 45, 30), vec![1, 3]);
        assert_eq!(t.expired(&routed, 45, 50), Vec::<u32>::new());
        // A refresh rescues a lease.
        t.touch(1, 44);
        assert_eq!(t.expired(&routed, 45, 30), vec![3]);
        // Forgetting reverts to the setup-time convention.
        t.forget(2);
        assert_eq!(t.last_refresh(2), 0);
    }

    #[test]
    fn install_refresh_renegotiate() {
        let mut r = RsvpRouter::new(1_000_000.0, 30.0);
        assert_eq!(
            r.resv(0.0, 1, FlowSpec { rate: 300_000.0 }),
            ResvOutcome::Installed
        );
        assert_eq!(r.session_rate(1), Some(300_000.0));
        // Pure refresh: same rate, later time.
        assert_eq!(
            r.resv(10.0, 1, FlowSpec { rate: 300_000.0 }),
            ResvOutcome::Installed
        );
        // Renegotiation rides the refresh.
        assert_eq!(
            r.resv(20.0, 1, FlowSpec { rate: 500_000.0 }),
            ResvOutcome::Installed
        );
        assert_eq!(r.reserved(), 500_000.0);
    }

    #[test]
    fn rejected_change_keeps_old_state_alive() {
        let mut r = RsvpRouter::new(1_000_000.0, 30.0);
        r.resv(0.0, 1, FlowSpec { rate: 600_000.0 });
        r.resv(0.0, 2, FlowSpec { rate: 300_000.0 });
        // Session 2 asks for more than fits.
        assert_eq!(
            r.resv(5.0, 2, FlowSpec { rate: 500_000.0 }),
            ResvOutcome::Rejected
        );
        assert_eq!(r.session_rate(2), Some(300_000.0));
        // But the rejection still refreshed the lifetime: expiry at 35,
        // not 30.
        assert_eq!(r.expire(31.0), 1, "only session 1 (refreshed at 0) expires");
        assert_eq!(r.session_rate(2), Some(300_000.0));
    }

    #[test]
    fn soft_state_expires_and_frees_bandwidth() {
        let mut r = RsvpRouter::new(1_000_000.0, 30.0);
        r.resv(0.0, 1, FlowSpec { rate: 900_000.0 });
        // A newcomer is blocked while the state lives...
        assert_eq!(
            r.resv(10.0, 2, FlowSpec { rate: 400_000.0 }),
            ResvOutcome::Rejected
        );
        // ...the holder dies silently (no teardown), state expires...
        assert_eq!(r.expire(30.0), 1);
        assert_eq!(r.reserved(), 0.0);
        // ...and the newcomer fits.
        assert_eq!(
            r.resv(31.0, 2, FlowSpec { rate: 400_000.0 }),
            ResvOutcome::Installed
        );
    }

    #[test]
    fn refresh_keeps_state_alive_indefinitely() {
        let mut r = RsvpRouter::new(1_000_000.0, 30.0);
        r.resv(0.0, 1, FlowSpec { rate: 100_000.0 });
        for i in 1..20 {
            let now = i as f64 * 25.0; // refresh inside every timeout window
            assert_eq!(r.expire(now), 0);
            assert_eq!(
                r.resv(now, 1, FlowSpec { rate: 100_000.0 }),
                ResvOutcome::Installed
            );
        }
        assert_eq!(r.sessions(), 1);
    }

    #[test]
    fn explicit_teardown() {
        let mut r = RsvpRouter::new(1_000_000.0, 30.0);
        r.resv(0.0, 1, FlowSpec { rate: 250_000.0 });
        assert_eq!(r.teardown(1), 250_000.0);
        assert_eq!(r.teardown(1), 0.0);
        assert_eq!(r.reserved(), 0.0);
    }

    #[test]
    fn renegotiation_cadence_vs_refresh_cadence() {
        // The paper's RCBR-over-RSVP sizing argument: renegotiations every
        // ~10 s piggyback on refreshes for free. Simulate 2 minutes of a
        // source refreshing every 5 s and changing its flowspec every
        // other refresh; the router sees no extra messages.
        let mut r = RsvpRouter::new(10_000_000.0, 30.0);
        let mut messages = 0;
        let mut rate = 300_000.0;
        for i in 0..24 {
            let now = i as f64 * 5.0;
            if i % 2 == 1 {
                rate = if rate == 300_000.0 {
                    500_000.0
                } else {
                    300_000.0
                };
            }
            assert_eq!(r.resv(now, 7, FlowSpec { rate }), ResvOutcome::Installed);
            messages += 1;
            r.expire(now);
        }
        assert_eq!(messages, 24); // one per refresh period, renegotiation included
        assert_eq!(r.sessions(), 1);
    }
}
