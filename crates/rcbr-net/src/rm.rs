//! Resource-management (RM) cells reused for renegotiation signaling.
//!
//! Section III-B: "An RCBR source sets the explicit rate (ER) field in the
//! RM cell to the *difference* between its old and new rates" — so the
//! switch fast path needs only the port's utilization and capacity, not
//! per-VCI state. Delta encoding drifts if an RM cell is lost, so the
//! source "periodically sends an RM cell with the true explicit rate,
//! instead of a difference" to resynchronize.
//!
//! The wire format here is a compact 16-byte encoding (VCI, kind, flags,
//! checksum, rate field) — deliberately simpler than the real I.371 RM
//! payload, but a genuine byte-level codec so that loss, truncation, and
//! corruption are representable. Real ATM RM cells carry a CRC-10; ours
//! carry a CRC-16 (CCITT-FALSE) over the other 14 bytes, which detects
//! all 1- and 2-bit errors on a 128-bit cell, so a bit-corrupted cell is
//! rejected at decode instead of silently applying a garbled rate.

use serde::{Deserialize, Serialize};

/// Size of an encoded [`RmCell`] on the wire.
pub const RM_CELL_BYTES: usize = 16;

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection, no xorout).
/// For a 14-byte message this detects every 1- and 2-bit error.
fn crc16(bytes: impl IntoIterator<Item = u8>) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for b in bytes {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// The cell checksum: CRC-16 over everything except the checksum field
/// itself (bytes 0..6 and 8..16).
fn cell_crc(buf: &[u8; RM_CELL_BYTES]) -> u16 {
    crc16(buf[0..6].iter().chain(&buf[8..16]).copied())
}

/// What the rate field of an [`RmCell`] means.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RateField {
    /// Fast path: signed change to the current reservation, bits/second.
    Delta(f64),
    /// Slow path: the absolute reservation, bits/second (resync).
    Absolute(f64),
}

/// A renegotiation RM cell.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RmCell {
    /// Virtual channel identifier.
    pub vci: u32,
    /// The rate request.
    pub rate: RateField,
    /// Set by a switch to deny the request (the "modify the ER field"
    /// denial of Section III-B).
    pub denied: bool,
    /// Set by an overloaded hop: the switch's signaling queue shed cells
    /// this window, and sources should widen their renegotiation cadence
    /// (BestEffort VCs brown out). Piggybacked on the response path —
    /// bit 1 of the wire flags byte, covered by the CRC.
    pub pressure: bool,
}

impl RmCell {
    /// A fast-path delta request.
    pub fn delta(vci: u32, delta_bps: f64) -> Self {
        Self {
            vci,
            rate: RateField::Delta(delta_bps),
            denied: false,
            pressure: false,
        }
    }

    /// A slow-path absolute resync.
    pub fn resync(vci: u32, rate_bps: f64) -> Self {
        assert!(rate_bps >= 0.0, "absolute rate must be nonnegative");
        Self {
            vci,
            rate: RateField::Absolute(rate_bps),
            denied: false,
            pressure: false,
        }
    }

    /// Encode to the 16-byte big-endian wire format.
    pub fn encode(&self) -> [u8; RM_CELL_BYTES] {
        let mut buf = [0u8; RM_CELL_BYTES];
        buf[0..4].copy_from_slice(&self.vci.to_be_bytes());
        buf[4] = match self.rate {
            RateField::Delta(_) => 0,
            RateField::Absolute(_) => 1,
        };
        buf[5] = u8::from(self.denied) | (u8::from(self.pressure) << 1);
        let v = match self.rate {
            RateField::Delta(d) | RateField::Absolute(d) => d,
        };
        buf[8..16].copy_from_slice(&v.to_be_bytes());
        let crc = cell_crc(&buf);
        buf[6..8].copy_from_slice(&crc.to_be_bytes());
        buf
    }

    /// Decode from the wire format.
    ///
    /// Returns `None` for short buffers, checksum mismatches, unknown
    /// kinds, or rate fields that are not finite (a corrupted cell must
    /// not crash the switch — it is counted and discarded).
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < RM_CELL_BYTES {
            return None;
        }
        let cell: [u8; RM_CELL_BYTES] = buf[0..RM_CELL_BYTES].try_into().expect("length checked");
        let stored = u16::from_be_bytes([cell[6], cell[7]]);
        if stored != cell_crc(&cell) {
            return None;
        }
        let vci = u32::from_be_bytes(cell[0..4].try_into().expect("length checked"));
        let kind = cell[4];
        let flags = cell[5];
        if flags > 0b11 {
            // Undeclared flag bits: reject rather than silently drop
            // semantics a newer sender may have meant.
            return None;
        }
        let denied = flags & 0b01 != 0;
        let pressure = flags & 0b10 != 0;
        let v = f64::from_be_bytes(cell[8..16].try_into().expect("length checked"));
        if !v.is_finite() {
            return None;
        }
        let rate = match kind {
            0 => RateField::Delta(v),
            1 => {
                if v < 0.0 {
                    return None;
                }
                RateField::Absolute(v)
            }
            _ => return None,
        };
        Some(Self {
            vci,
            rate,
            denied,
            pressure,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_delta() {
        let cell = RmCell::delta(42, -64_000.0);
        let back = RmCell::decode(&cell.encode()).unwrap();
        assert_eq!(cell, back);
    }

    #[test]
    fn roundtrip_resync_and_denial() {
        let mut cell = RmCell::resync(7, 374_000.0);
        cell.denied = true;
        let back = RmCell::decode(&cell.encode()).unwrap();
        assert_eq!(cell, back);
        assert!(back.denied);
    }

    #[test]
    fn roundtrip_pressure_flag() {
        let mut cell = RmCell::delta(9, 25_000.0);
        cell.pressure = true;
        let back = RmCell::decode(&cell.encode()).unwrap();
        assert_eq!(cell, back);
        assert!(back.pressure);
        assert!(!back.denied);
        // Both flags together survive too.
        cell.denied = true;
        let back = RmCell::decode(&cell.encode()).unwrap();
        assert!(back.pressure && back.denied);
    }

    #[test]
    fn undeclared_flag_bits_rejected() {
        for flags in 4u8..=255 {
            let mut raw = RmCell::delta(1, 1.0).encode();
            raw[5] = flags;
            restamp(&mut raw);
            assert!(
                RmCell::decode(&raw).is_none(),
                "flags byte {flags:#010b} must be rejected"
            );
        }
    }

    #[test]
    fn short_buffer_rejected() {
        let cell = RmCell::delta(1, 1.0);
        let bytes = cell.encode();
        assert!(RmCell::decode(&bytes[0..10]).is_none());
    }

    /// Recompute the checksum after deliberate tampering, so the tests
    /// below exercise the semantic checks rather than the CRC.
    fn restamp(raw: &mut [u8; RM_CELL_BYTES]) {
        let crc = cell_crc(raw);
        raw[6..8].copy_from_slice(&crc.to_be_bytes());
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut raw = RmCell::delta(1, 1.0).encode();
        raw[4] = 99;
        restamp(&mut raw);
        assert!(RmCell::decode(&raw).is_none());
    }

    #[test]
    fn non_finite_rate_rejected() {
        let mut raw = RmCell::delta(1, 1.0).encode();
        raw[8..16].copy_from_slice(&f64::NAN.to_be_bytes());
        restamp(&mut raw);
        assert!(RmCell::decode(&raw).is_none());
    }

    #[test]
    fn negative_absolute_rejected() {
        let mut raw = RmCell::resync(1, 5.0).encode();
        raw[8..16].copy_from_slice(&(-5.0f64).to_be_bytes());
        restamp(&mut raw);
        assert!(RmCell::decode(&raw).is_none());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let raw = RmCell::delta(77, -123_456.0).encode();
        assert!(RmCell::decode(&raw).is_some());
        for bit in 0..(RM_CELL_BYTES * 8) {
            let mut bad = raw;
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                RmCell::decode(&bad).is_none(),
                "flip of bit {bit} went undetected"
            );
        }
    }

    proptest! {
        #[test]
        fn roundtrip_any_cell(
            vci in any::<u32>(),
            v in -1e12..1e12f64,
            absolute in any::<bool>(),
            denied in any::<bool>(),
            pressure in any::<bool>(),
        ) {
            let rate = if absolute { RateField::Absolute(v.abs()) } else { RateField::Delta(v) };
            let cell = RmCell { vci, rate, denied, pressure };
            prop_assert_eq!(RmCell::decode(&cell.encode()), Some(cell));
        }

        /// Decoding arbitrary bytes never panics.
        #[test]
        fn decode_is_total(raw in proptest::collection::vec(any::<u8>(), 0..64)) {
            let _ = RmCell::decode(&raw);
        }
    }
}
