//! The fault-plane salt registry.
//!
//! A job's `salt` is part of its fault-plane identity: the plane decides
//! every cell's fate as a stateless hash of `(seed, seq, hop, salt,
//! lane)`, and the engine breaks same-`seq` ties by sorting on `(seq,
//! salt)`. Two different cells that ever share a `(seq, salt)` pair
//! therefore share fault coin flips *and* processing order — which is
//! exactly how a past regression broke shard bit-identity: teardown
//! walks briefly reused the salt space of slot traffic, so a teardown
//! cell and a data cell could collide on the same fault key and the
//! collision resolved differently per shard count.
//!
//! Every salt in the system is declared here, in one module, so the
//! disjointness argument is auditable at a glance (and mechanized by
//! rcbr-lint's `salt-registry` rule: a bare integer literal assigned to
//! a salt anywhere else is a lint error).
//!
//! The concrete values are wire-visible state: they feed the fault hash,
//! so renumbering them reshuffles every committed baseline. Treat them
//! as frozen.

/// The salt of an original cell: the first (and usually only) traversal
/// of a signaling attempt, and the salt slot traffic is emitted with.
/// Only `SALT_PRIMARY` cells are eligible for fault-plane duplication,
/// and only they deliver verdicts back to the source — ghosts are
/// network artifacts, invisible to the load generator.
pub const SALT_PRIMARY: u8 = 0;

/// The salt a duplicate ghost re-traverses with. Distinct from
/// [`SALT_PRIMARY`] so the ghost draws fresh fault coin flips at every
/// hop (and cannot itself duplicate, which would be unbounded).
pub const SALT_GHOST: u8 = 1;

/// First teardown-walk salt; the `i`-th teardown walk a VC emits in one
/// round uses `SALT_TEARDOWN_BASE + i`. Starts at 3, leaving salt 2 as
/// a historical gap: the values are frozen (see the module docs), and
/// teardown salts must stay disjoint from [`SALT_PRIMARY`] and
/// [`SALT_GHOST`] so reliable teardown control traffic never shares a
/// fault key or a processing-order tie with the slot traffic it cleans
/// up after.
pub const SALT_TEARDOWN_BASE: u8 = 3;
