//! Satellite property tests for the survivability primitives:
//!
//! 1. Reroute selection is deterministic: the same (topology, failure
//!    set) produces byte-identical candidate route lists no matter what
//!    order the VCs are enumerated in — route choice is a pure function,
//!    never a race.
//! 2. One lease-expiry pass after arbitrary RM-cell loss leaves every
//!    port's reserved sum equal to the sum of the rates still granted:
//!    refreshed VCs keep exactly their rate, lapsed VCs drop to exactly
//!    zero, and the aggregate never drifts from the per-VCI ledger.

use proptest::prelude::*;
use rcbr_net::{Switch, Topology};

/// Build a ring of `n` switches plus deterministic chords drawn from
/// `chord_seed`, mirroring the runtime's `RuntimeConfig::topology` shape.
fn ring_with_chords(n: usize, chord_seed: u64) -> Topology {
    let mut topo = Topology::new(n, 1e-3);
    for i in 0..n {
        topo.add_duplex(i, (i + 1) % n, 0);
    }
    let mut s = chord_seed;
    let mut added: Vec<(usize, usize)> = Vec::new();
    for _ in 0..3 {
        // splitmix64-ish stepping; plenty for picking chord endpoints.
        s = s
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(0x6c62_272e_07bb_0142);
        let a = (s >> 8) as usize % n;
        let b = (s >> 32) as usize % n;
        let fresh = !added.contains(&(a, b)) && !added.contains(&(b, a));
        if a != b && (a + 1) % n != b && (b + 1) % n != a && fresh {
            topo.add_duplex(a, b, 0);
            added.push((a, b));
        }
    }
    topo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same (seed, topology, failure set) => byte-identical candidate
    /// lists for every endpoint pair, regardless of enumeration order.
    #[test]
    fn reroute_selection_is_iteration_order_independent(
        chord_seed in 0u64..1024,
        killed in 0usize..8,
        down_a in 0usize..8,
    ) {
        let n = 8usize;
        let topo = ring_with_chords(n, chord_seed);
        let down_b = (down_a + 1) % n;
        let alive_switch = |s: usize| s != killed;
        let alive_link =
            |a: usize, b: usize| !((a, b) == (down_a, down_b) || (b, a) == (down_a, down_b));

        // Every endpoint pair, enumerated forward...
        let pairs: Vec<(usize, usize)> =
            (0..n).flat_map(|s| (0..n).map(move |d| (s, d))).collect();
        let forward: Vec<Vec<Vec<usize>>> = pairs
            .iter()
            .map(|&(s, d)| topo.alive_routes(s, d, 4, 16, &alive_switch, &alive_link))
            .collect();
        // ...and backward, interleaved with unrelated queries in between
        // (a racy implementation with hidden state would diverge).
        let backward: Vec<Vec<Vec<usize>>> = pairs
            .iter()
            .rev()
            .map(|&(s, d)| {
                let _ = topo.alive_routes(d, s, 2, 16, &alive_switch, &alive_link);
                topo.alive_routes(s, d, 4, 16, &alive_switch, &alive_link)
            })
            .collect();
        for (i, (f, b)) in forward.iter().zip(backward.iter().rev()).enumerate() {
            prop_assert_eq!(f, b, "pair {:?} diverged", pairs[i]);
        }

        // The (length, lexicographic) order contract the deterministic
        // rotation in the runtime depends on.
        for routes in &forward {
            for w in routes.windows(2) {
                prop_assert!(
                    w[0].len() < w[1].len() || (w[0].len() == w[1].len() && w[0] <= w[1]),
                    "candidates out of (len, lex) order: {:?}",
                    routes
                );
            }
            for r in routes {
                prop_assert!(r.iter().all(|&h| alive_switch(h)));
                prop_assert!(r.windows(2).all(|w| alive_link(w[0], w[1])));
            }
        }
    }

    /// Install a population of VCs, refresh an arbitrary subset (the RM
    /// cells that survived), expire once: reserved == granted everywhere.
    #[test]
    fn lease_expiry_pass_leaves_reserved_equal_to_granted(
        refresh_mask in 0u32..(1 << 12),
        lease in 1u64..32,
    ) {
        let num_vcs = 12u32;
        let rate = 10_000.0;
        let mut sw = Switch::new(&[num_vcs as f64 * rate * 2.0]);
        for vci in 0..num_vcs {
            let admitted = sw.setup(vci, 0, rate).expect("fresh VCI");
            prop_assert!(admitted);
        }
        // RM cells arrive at `now` for the masked subset only.
        let now = 100u64;
        for vci in 0..num_vcs {
            if refresh_mask & (1 << vci) != 0 {
                sw.touch_lease(vci, now);
            }
        }
        // One sweep past the unrefreshed VCs' deadline (their last
        // refresh is the epoch) but inside the refreshed ones'.
        let sweep_at = now + lease;
        let reclaimed = sw.expire_leases(sweep_at, lease);
        let lapsed = (0..num_vcs)
            .filter(|v| refresh_mask & (1 << v) == 0)
            .count() as u64;
        prop_assert_eq!(reclaimed, lapsed);

        let mut granted_sum = 0.0;
        for vci in 0..num_vcs {
            let held = sw.vci_rate(vci).expect("entries survive expiry");
            if refresh_mask & (1 << vci) != 0 {
                prop_assert_eq!(held, rate, "refreshed VC {} lost bandwidth", vci);
            } else {
                prop_assert_eq!(held, 0.0, "lapsed VC {} kept bandwidth", vci);
            }
            granted_sum += held;
        }
        let port = sw.port(0).expect("one port");
        prop_assert!(
            (port.reserved() - granted_sum).abs() < 1e-9,
            "reserved sum {} != granted sum {}",
            port.reserved(),
            granted_sum
        );
        prop_assert!(port.is_consistent());
    }
}
