//! Satellite property tests: the RM-cell wire codec round-trips, and
//! delta-encoded reservations — after arbitrary cell loss — are restored
//! to the absolute ground truth by a single resync cell (Section III-B's
//! drift-repair argument).

use proptest::prelude::*;
use rcbr_net::{RateField, RmCell, Switch, RM_CELL_BYTES};

/// The sharded runtime moves switches and ports across threads; these
/// bounds are load-bearing, so break the build if they regress.
#[test]
fn switch_state_is_send() {
    fn assert_send_sync<T: Send + Sync + 'static>() {}
    assert_send_sync::<Switch>();
    assert_send_sync::<rcbr_net::OutputPort>();
    assert_send_sync::<RmCell>();
}

proptest! {
    /// Every representable cell survives encode → decode bit-exactly, even
    /// with trailing garbage after the 16 wire bytes.
    #[test]
    fn wire_roundtrip(
        vci in any::<u32>(),
        magnitude in 0.0..1e12f64,
        negative in any::<bool>(),
        absolute in any::<bool>(),
        denied in any::<bool>(),
        pressure in any::<bool>(),
        trailing in proptest::collection::vec(any::<u8>(), 0..16),
    ) {
        let rate = if absolute {
            RateField::Absolute(magnitude)
        } else {
            RateField::Delta(if negative { -magnitude } else { magnitude })
        };
        let cell = RmCell { vci, rate, denied, pressure };
        let mut wire = cell.encode().to_vec();
        prop_assert_eq!(wire.len(), RM_CELL_BYTES);
        wire.extend(trailing);
        prop_assert_eq!(RmCell::decode(&wire), Some(cell));
    }

    /// The checksum catches corruption: flipping any 1–2 distinct bits of
    /// an encoded cell makes it undecodable (CRC-16 detects all 1- and
    /// 2-bit errors at this block length), and the fault plane's
    /// corruptor only ever flips 1–2 bits.
    #[test]
    fn random_bit_flips_are_detected(
        vci in any::<u32>(),
        magnitude in 0.0..1e12f64,
        absolute in any::<bool>(),
        first in 0usize..(RM_CELL_BYTES * 8),
        second_offset in 0usize..(RM_CELL_BYTES * 8 - 1),
        double in any::<bool>(),
    ) {
        let cell = if absolute {
            RmCell::resync(vci, magnitude)
        } else {
            RmCell::delta(vci, magnitude)
        };
        let mut wire = cell.encode();
        prop_assert_eq!(RmCell::decode(&wire), Some(cell));
        wire[first / 8] ^= 1 << (first % 8);
        if double {
            let second = (first + 1 + second_offset) % (RM_CELL_BYTES * 8);
            wire[second / 8] ^= 1 << (second % 8);
        }
        prop_assert!(
            RmCell::decode(&wire).is_none(),
            "corrupted cell decoded as {:?}",
            RmCell::decode(&wire)
        );
    }

    /// Drift repair: play an arbitrary sequence of delta renegotiations
    /// over a multi-hop path where each cell may be dropped mid-path (the
    /// hops before the drop apply the delta, the rest never see it), then
    /// send one absolute resync cell. Every hop must end bit-equal to the
    /// source's believed rate — the absolute ground truth — regardless of
    /// what was lost.
    #[test]
    fn one_resync_repairs_arbitrary_loss(
        hops in 1usize..5,
        initial in 1e3..1e6f64,
        ops in proptest::collection::vec((-5e4..5e4f64, any::<u8>()), 0..40),
    ) {
        let vci = 9;
        let mut switches: Vec<Switch> =
            (0..hops).map(|_| Switch::new(&[1e15])).collect();
        for sw in &mut switches {
            prop_assert!(sw.setup(vci, 0, initial).unwrap());
        }

        // The source applies each delta to its own belief unconditionally:
        // with ample capacity nothing is denied, so only loss causes the
        // network to disagree.
        let mut believed = initial;
        for &(raw_delta, loss) in &ops {
            // Keep every reservation legal: hops that missed a positive
            // delta sit below the source's belief, so clamp against the
            // lowest rate anywhere (and the belief itself), flipping the
            // delta upward when it would drive either negative.
            let floor = switches
                .iter()
                .map(|s| s.vci_rate(vci).unwrap())
                .fold(believed, f64::min);
            let delta = if floor + raw_delta < 0.0 { raw_delta.abs() } else { raw_delta };
            believed += delta;
            // loss selects the hop the cell dies at; >= hops means it
            // survives the whole path.
            let lost_at = (loss as usize) % (hops + 1);
            let mut cell = RmCell::delta(vci, delta);
            for sw in switches.iter_mut().take(lost_at.min(hops)) {
                // Cross each hop through the wire codec, as a real cell would.
                cell = RmCell::decode(&cell.encode()).expect("codec total on own output");
                cell = sw.process_rm(cell).unwrap();
                prop_assert!(!cell.denied, "ample capacity must never deny");
            }
        }

        // One absolute resync cell traverses the full path...
        let mut cell = RmCell::resync(vci, believed);
        for sw in &mut switches {
            cell = RmCell::decode(&cell.encode()).expect("codec total on own output");
            cell = sw.process_rm(cell).unwrap();
            prop_assert!(!cell.denied);
        }
        // ...and every hop now agrees with the ground truth bit-exactly,
        // with no residue from the delta sums it accumulated before.
        for (k, sw) in switches.iter().enumerate() {
            let got = sw.vci_rate(vci).unwrap();
            prop_assert!(
                got.to_bits() == believed.to_bits(),
                "hop {k}: {got} != ground truth {believed}"
            );
        }
    }
}
