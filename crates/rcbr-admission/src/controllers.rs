//! The four admission controllers of Section VI.

use rcbr_ldt::chernoff::{
    chernoff_failure_probability, max_admissible_calls, min_capacity_per_source,
};
use rcbr_sim::stats::DiscreteDistribution;

use crate::descriptor::distribution_from_observations;
use crate::policy::{AdmissionController, AdmissionSnapshot};

/// The reference controller: perfect a-priori knowledge of the call's
/// marginal bandwidth distribution, applying eq. (12) exactly.
///
/// "The utilization under the scheme with perfect knowledge ... matches
/// the target QoS precisely"; Fig. 8 normalizes by it.
#[derive(Debug, Clone)]
pub struct PerfectKnowledge {
    dist: DiscreteDistribution,
    target: f64,
    cached: Option<(f64, usize)>,
}

impl PerfectKnowledge {
    /// Create the controller from the true marginal and the failure-
    /// probability target.
    ///
    /// # Panics
    /// Panics unless `0 < target < 1`.
    pub fn new(dist: DiscreteDistribution, target: f64) -> Self {
        assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
        Self {
            dist,
            target,
            cached: None,
        }
    }

    /// The maximum call count for the given capacity (cached).
    pub fn max_calls(&mut self, capacity: f64) -> usize {
        match self.cached {
            Some((cap, n)) if cap == capacity => n,
            _ => {
                let n = max_admissible_calls(&self.dist, capacity, self.target);
                self.cached = Some((capacity, n));
                n
            }
        }
    }
}

impl AdmissionController for PerfectKnowledge {
    fn admit(&mut self, s: &AdmissionSnapshot<'_>) -> bool {
        let n_max = self.max_calls(s.capacity);
        s.num_calls() < n_max
    }

    fn name(&self) -> &'static str {
        "perfect-knowledge"
    }
}

/// The memoryless certainty-equivalent MBAC: estimate the marginal from
/// the *snapshot* of currently reserved levels and plug it into the
/// Chernoff test for `n + 1` calls.
///
/// With no calls in the system there is no measurement at all; the scheme
/// admits (the paper's controller must bootstrap somehow, and an empty
/// system is trivially safe for one call under peak-rate reasoning — the
/// risk it takes is exactly the non-robustness Section VI demonstrates).
#[derive(Debug, Clone)]
pub struct Memoryless {
    target: f64,
}

impl Memoryless {
    /// Create the controller.
    ///
    /// # Panics
    /// Panics unless `0 < target < 1`.
    pub fn new(target: f64) -> Self {
        assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
        Self { target }
    }

    /// The renegotiation-failure probability target.
    pub fn target(&self) -> f64 {
        self.target
    }

    /// The online, windowed form of the memoryless test, for callers that
    /// measure continuously instead of snapshotting per decision: from a
    /// weighted marginal estimate `levels` (`(rate b/s, weight)` pairs,
    /// weights need not be normalized) and the number of `calls` sharing
    /// the port, the aggregate capacity those calls need so that the
    /// Chernoff overflow estimate meets the target —
    /// `n · C_min(estimate, n, target)` via
    /// [`min_capacity_per_source`]. Returns `None` with nothing measured
    /// (`levels` empty or `calls == 0`): the caller must bootstrap, just
    /// as [`AdmissionController::admit`] admits on an empty system.
    pub fn needed_capacity(&self, levels: &[(f64, f64)], calls: usize) -> Option<f64> {
        if levels.is_empty() || calls == 0 {
            return None;
        }
        let est = DiscreteDistribution::from_weights(levels);
        Some(calls as f64 * min_capacity_per_source(&est, calls, self.target))
    }
}

impl AdmissionController for Memoryless {
    fn admit(&mut self, s: &AdmissionSnapshot<'_>) -> bool {
        match distribution_from_observations(s.reservations) {
            Some(est) => {
                let n_new = s.num_calls() + 1;
                chernoff_failure_probability(&est, n_new, s.capacity) <= self.target
            }
            None => true,
        }
    }

    fn name(&self) -> &'static str {
        "memoryless"
    }
}

/// The memory-based MBAC: accumulate a time-weighted histogram of every
/// bandwidth level reserved by any call over the whole past, and use that
/// historical marginal in the Chernoff test.
///
/// "We propose a scheme that relies on more memory about the system's past
/// bandwidth reservations to come up with a more accurate estimate of the
/// marginal distribution ... we accumulate information about the entire
/// history of each call present in the system."
#[derive(Debug, Clone)]
pub struct WithMemory {
    target: f64,
    /// `(rate, accumulated call·seconds at that rate)`.
    history: Vec<(f64, f64)>,
    last_time: Option<f64>,
    /// Minimum accumulated call·seconds before the history is trusted;
    /// below it the controller behaves like [`Memoryless`].
    min_history: f64,
}

impl WithMemory {
    /// Create the controller; `min_history` is in call·seconds.
    ///
    /// # Panics
    /// Panics unless `0 < target < 1` and `min_history >= 0`.
    pub fn new(target: f64, min_history: f64) -> Self {
        assert!(target > 0.0 && target < 1.0, "target must be in (0, 1)");
        assert!(min_history >= 0.0, "min history must be nonnegative");
        Self {
            target,
            history: Vec::new(),
            last_time: None,
            min_history,
        }
    }

    /// Total accumulated call·seconds of history.
    pub fn history_weight(&self) -> f64 {
        self.history.iter().map(|&(_, w)| w).sum()
    }

    fn historical_distribution(&self) -> Option<DiscreteDistribution> {
        if self.history_weight() < self.min_history.max(f64::MIN_POSITIVE) {
            return None;
        }
        Some(DiscreteDistribution::from_weights(&self.history))
    }
}

impl AdmissionController for WithMemory {
    fn admit(&mut self, s: &AdmissionSnapshot<'_>) -> bool {
        let est = self
            .historical_distribution()
            .or_else(|| distribution_from_observations(s.reservations));
        match est {
            Some(est) => {
                let n_new = s.num_calls() + 1;
                chernoff_failure_probability(&est, n_new, s.capacity) <= self.target
            }
            None => true,
        }
    }

    fn observe(&mut self, s: &AdmissionSnapshot<'_>) {
        if let Some(last) = self.last_time {
            let dt = s.time - last;
            if dt > 0.0 {
                for &r in s.reservations {
                    match self.history.iter_mut().find(|(rate, _)| *rate == r) {
                        Some((_, w)) => *w += dt,
                        None => self.history.push((r, dt)),
                    }
                }
            }
        }
        self.last_time = Some(s.time);
    }

    fn name(&self) -> &'static str {
        "with-memory"
    }
}

/// Deterministic peak-rate allocation: the zero-failure baseline.
#[derive(Debug, Clone)]
pub struct PeakRate {
    peak: f64,
}

impl PeakRate {
    /// Create from the (declared) per-call peak rate, bits/second.
    ///
    /// # Panics
    /// Panics unless `peak > 0`.
    pub fn new(peak: f64) -> Self {
        assert!(peak > 0.0 && peak.is_finite(), "peak rate must be positive");
        Self { peak }
    }
}

impl AdmissionController for PeakRate {
    fn admit(&mut self, s: &AdmissionSnapshot<'_>) -> bool {
        (s.num_calls() + 1) as f64 * self.peak <= s.capacity + 1e-9
    }

    fn name(&self) -> &'static str {
        "peak-rate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist() -> DiscreteDistribution {
        DiscreteDistribution::from_weights(&[(100_000.0, 0.7), (500_000.0, 0.3)])
    }

    fn snapshot(reservations: &[f64], capacity: f64) -> AdmissionSnapshot<'_> {
        AdmissionSnapshot {
            capacity,
            time: 0.0,
            reservations,
        }
    }

    #[test]
    fn perfect_admits_up_to_chernoff_count() {
        let mut c = PerfectKnowledge::new(dist(), 1e-3);
        let cap = 10_000_000.0;
        let n_max = c.max_calls(cap);
        assert!(n_max > 0);
        let r = vec![100_000.0; n_max - 1];
        assert!(c.admit(&snapshot(&r, cap)));
        let r = vec![100_000.0; n_max];
        assert!(!c.admit(&snapshot(&r, cap)));
    }

    #[test]
    fn perfect_caches_per_capacity() {
        let mut c = PerfectKnowledge::new(dist(), 1e-3);
        let a = c.max_calls(1e7);
        let b = c.max_calls(1e7);
        assert_eq!(a, b);
        let other = c.max_calls(2e7);
        assert!(other > a);
    }

    #[test]
    fn memoryless_admits_empty_system() {
        let mut c = Memoryless::new(1e-3);
        assert!(c.admit(&snapshot(&[], 1e6)));
    }

    #[test]
    fn memoryless_is_fooled_by_a_quiet_snapshot() {
        // Every current call sits at its low level: the snapshot estimate
        // says calls are cheap, so the controller over-admits relative to
        // the true marginal. This is exactly the Section VI failure mode.
        let mut ml = Memoryless::new(1e-3);
        let mut pk = PerfectKnowledge::new(dist(), 1e-3);
        let cap = 4_000_000.0;
        let n_max_true = pk.max_calls(cap);
        // n_max_true calls all at the low level right now.
        let quiet = vec![100_000.0; n_max_true];
        assert!(!pk.admit(&snapshot(&quiet, cap)));
        assert!(
            ml.admit(&snapshot(&quiet, cap)),
            "memoryless should over-admit on a quiet snapshot"
        );
    }

    #[test]
    fn memoryless_needed_capacity_online_form() {
        let ml = Memoryless::new(1e-3);
        assert_eq!(ml.target(), 1e-3);
        assert!(ml.needed_capacity(&[], 5).is_none());
        assert!(ml.needed_capacity(&[(100_000.0, 1.0)], 0).is_none());
        // A constant-rate marginal needs exactly n calls at that rate.
        let flat = ml.needed_capacity(&[(100_000.0, 3.0)], 10).unwrap();
        assert!((flat - 1_000_000.0).abs() < 1.0, "flat {flat}");
        // A bursty marginal needs more than the aggregate mean but never
        // more than the aggregate peak.
        let bursty = ml
            .needed_capacity(&[(0.0, 0.7), (1_000_000.0, 0.3)], 50)
            .unwrap();
        assert!(
            bursty > 50.0 * 300_000.0 && bursty <= 50.0 * 1_000_000.0 + 1e-6,
            "bursty {bursty}"
        );
    }

    #[test]
    fn memoryless_rejects_busy_snapshot() {
        let mut ml = Memoryless::new(1e-3);
        // System nearly full of peak-level calls.
        let busy = vec![500_000.0; 7];
        assert!(!ml.admit(&snapshot(&busy, 4_000_000.0)));
    }

    #[test]
    fn with_memory_converges_to_perfect_decision() {
        let mut wm = WithMemory::new(1e-3, 10.0);
        let mut pk = PerfectKnowledge::new(dist(), 1e-3);
        let cap = 4_000_000.0;
        // Feed history matching the true marginal: 70% of call-time low,
        // 30% high.
        let low = vec![100_000.0; 10];
        let high = vec![500_000.0; 10];
        let mut t = 0.0;
        wm.observe(&AdmissionSnapshot {
            capacity: cap,
            time: t,
            reservations: &low,
        });
        for _ in 0..100 {
            t += 0.7;
            wm.observe(&AdmissionSnapshot {
                capacity: cap,
                time: t,
                reservations: &high,
            });
            t += 0.3;
            wm.observe(&AdmissionSnapshot {
                capacity: cap,
                time: t,
                reservations: &low,
            });
        }
        // Now the quiet-snapshot trick no longer fools it.
        let n_max_true = pk.max_calls(cap);
        let quiet = vec![100_000.0; n_max_true];
        assert!(
            !wm.admit(&snapshot(&quiet, cap)),
            "memory-based controller should resist the quiet snapshot"
        );
        assert!(wm.history_weight() > 10.0);
    }

    #[test]
    fn with_memory_falls_back_when_cold() {
        let mut wm = WithMemory::new(1e-3, 1e9); // absurd history requirement
        assert!(wm.admit(&snapshot(&[], 1e6)));
        // With a snapshot available it behaves like memoryless.
        let busy = vec![500_000.0; 7];
        assert!(!wm.admit(&snapshot(&busy, 4_000_000.0)));
    }

    #[test]
    fn peak_rate_is_deterministic() {
        let mut c = PeakRate::new(500_000.0);
        let cap = 2_000_000.0;
        assert!(c.admit(&snapshot(&[500_000.0; 3], cap)));
        assert!(!c.admit(&snapshot(&[500_000.0; 4], cap)));
    }
}
