//! The admission-controller interface.
//!
//! Controllers are driven by the call-level simulator: they see a snapshot
//! of the link at each arrival (capacity plus the bandwidth currently
//! reserved by every call in the system) and may additionally observe the
//! passage of time to accumulate measurement history.

/// What a controller can see when deciding (and between decisions).
///
/// `reservations[i]` is the bandwidth currently reserved by the `i`-th call
/// in the system, bits/second. This is exactly the information a
/// measurement-based controller has: "the network attempts to learn the
/// statistics of existing calls by making online measurements".
#[derive(Debug, Clone, Copy)]
pub struct AdmissionSnapshot<'a> {
    /// Link capacity, bits/second.
    pub capacity: f64,
    /// Current simulated time, seconds.
    pub time: f64,
    /// Currently reserved rate of each call in the system.
    pub reservations: &'a [f64],
}

impl AdmissionSnapshot<'_> {
    /// Number of calls currently in the system.
    pub fn num_calls(&self) -> usize {
        self.reservations.len()
    }

    /// Total reserved bandwidth, bits/second.
    pub fn total_reserved(&self) -> f64 {
        self.reservations.iter().sum()
    }
}

/// An admission controller.
pub trait AdmissionController {
    /// Decide whether to admit a new call arriving now.
    fn admit(&mut self, snapshot: &AdmissionSnapshot<'_>) -> bool;

    /// Observe that the reservation state `snapshot` has been in effect
    /// since the previous observation (called at every state change:
    /// arrivals, departures, renegotiations). Measurement-based schemes
    /// accumulate history here; stateless schemes ignore it.
    fn observe(&mut self, _snapshot: &AdmissionSnapshot<'_>) {}

    /// Short human-readable name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AdmitAll;
    impl AdmissionController for AdmitAll {
        fn admit(&mut self, _s: &AdmissionSnapshot<'_>) -> bool {
            true
        }
        fn name(&self) -> &'static str {
            "admit-all"
        }
    }

    #[test]
    fn snapshot_accessors() {
        let r = [100.0, 200.0, 300.0];
        let s = AdmissionSnapshot {
            capacity: 1000.0,
            time: 5.0,
            reservations: &r,
        };
        assert_eq!(s.num_calls(), 3);
        assert_eq!(s.total_reserved(), 600.0);
        let mut c = AdmitAll;
        assert!(c.admit(&s));
        c.observe(&s); // default no-op must not panic
        assert_eq!(c.name(), "admit-all");
    }
}
