#![warn(missing_docs)]

//! # rcbr-admission — admission control for RCBR (Section VI)
//!
//! RCBR is a statistical service: the QoS promise is a bound on the
//! *renegotiation failure probability*, enforced at call admission. This
//! crate implements the paper's controllers and the dynamic call-level
//! simulation used to evaluate them:
//!
//! * [`PerfectKnowledge`] — the reference controller: it knows the true
//!   marginal bandwidth distribution of a call and admits up to the
//!   Chernoff-derived maximum (eq. (12)). Its utilization "matches the
//!   target QoS precisely" and normalizes Fig. 8's y-axis.
//! * [`Memoryless`] — the certainty-equivalent MBAC: it estimates the
//!   marginal from a *snapshot* of the bandwidth levels currently reserved
//!   and plugs the estimate into the same test. Section VI shows this is
//!   not robust — failure probabilities 3–4 orders of magnitude above
//!   target at small link capacities (Fig. 7).
//! * [`WithMemory`] — the paper's remedy: accumulate the *history* of
//!   reserved bandwidth levels of calls in the system (a time-weighted
//!   histogram), yielding a far more accurate marginal estimate.
//! * [`PeakRate`] — the deterministic baseline: admit only while the sum of
//!   peak rates fits, giving zero failures and the lowest utilization.
//!
//! [`callsim`] implements the experiment: Poisson call arrivals, each call
//! a randomly-shifted copy of an RCBR renegotiation schedule (simulating
//! only the renegotiation events, per the paper's footnote 4), measuring
//! steady-state renegotiation failure probability and utilization with the
//! paper's confidence-interval stopping rules.

pub mod callsim;
pub mod controllers;
pub mod descriptor;
pub mod margin;
pub mod policy;

pub use callsim::{CallSim, CallSimConfig, CallSimReport};
pub use controllers::{Memoryless, PeakRate, PerfectKnowledge, WithMemory};
pub use descriptor::quantize_to_grid;
pub use margin::SafetyMargin;
pub use policy::{AdmissionController, AdmissionSnapshot};
