//! The blocking-vs-failure tradeoff knob.
//!
//! Section III-A1: "during admission control, a switch controller might
//! reject an incoming call even if there is available capacity, if the
//! resources used by the new call will make future renegotiations more
//! likely to fail. This allows the network operator to tradeoff call
//! blocking probability and renegotiation failure probability."
//!
//! [`SafetyMargin`] implements that knob generically: it wraps any
//! controller and presents it with a link scaled down by a factor
//! `gamma ∈ (0, 1]`. Smaller `gamma` admits fewer calls — more blocking,
//! fewer renegotiation failures — and `gamma = 1` is the wrapped
//! controller unchanged.

use crate::policy::{AdmissionController, AdmissionSnapshot};

/// A controller wrapper that under-reports the link capacity by a factor.
#[derive(Debug)]
pub struct SafetyMargin<C> {
    inner: C,
    gamma: f64,
}

impl<C: AdmissionController> SafetyMargin<C> {
    /// Wrap `inner`, showing it `gamma * capacity`.
    ///
    /// # Panics
    /// Panics unless `0 < gamma <= 1`.
    pub fn new(inner: C, gamma: f64) -> Self {
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        Self { inner, gamma }
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The capacity scale factor.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl<C: AdmissionController> AdmissionController for SafetyMargin<C> {
    fn admit(&mut self, s: &AdmissionSnapshot<'_>) -> bool {
        let scaled = AdmissionSnapshot {
            capacity: self.gamma * s.capacity,
            time: s.time,
            reservations: s.reservations,
        };
        self.inner.admit(&scaled)
    }

    fn observe(&mut self, s: &AdmissionSnapshot<'_>) {
        let scaled = AdmissionSnapshot {
            capacity: self.gamma * s.capacity,
            time: s.time,
            reservations: s.reservations,
        };
        self.inner.observe(&scaled);
    }

    fn name(&self) -> &'static str {
        "safety-margin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callsim::{CallSim, CallSimConfig};
    use crate::controllers::Memoryless;
    use rcbr_schedule::Schedule;

    fn base_schedule() -> Schedule {
        let mut rates = vec![150_000.0; 50];
        rates.extend(vec![450_000.0; 25]);
        rates.extend(vec![150_000.0; 10]);
        rates.extend(vec![900_000.0; 5]);
        Schedule::from_rates(1.0, &rates)
    }

    #[test]
    fn gamma_one_is_transparent() {
        let schedule = base_schedule();
        let dist = schedule.empirical_distribution();
        let capacity = 15.0 * dist.mean();
        let arrival = 1.5 * capacity / dist.mean() / schedule.duration();
        let cfg = CallSimConfig::new(capacity, arrival, 1e-3, 8).with_max_windows(20);
        let mut plain = Memoryless::new(1e-3);
        let r_plain = CallSim::new(&schedule, cfg.clone()).run(&mut plain);
        let mut wrapped = SafetyMargin::new(Memoryless::new(1e-3), 1.0);
        let r_wrapped = CallSim::new(&schedule, cfg).run(&mut wrapped);
        assert_eq!(r_plain.failure_probability, r_wrapped.failure_probability);
        assert_eq!(r_plain.blocking_probability, r_wrapped.blocking_probability);
    }

    #[test]
    fn tighter_margin_trades_blocking_for_failures() {
        let schedule = base_schedule();
        let dist = schedule.empirical_distribution();
        let capacity = 15.0 * dist.mean();
        let arrival = 1.5 * capacity / dist.mean() / schedule.duration();
        let mut failures = Vec::new();
        let mut blocking = Vec::new();
        for gamma in [1.0, 0.8, 0.6] {
            let cfg = CallSimConfig::new(capacity, arrival, 1e-3, 9).with_max_windows(30);
            let mut ctl = SafetyMargin::new(Memoryless::new(1e-3), gamma);
            let r = CallSim::new(&schedule, cfg).run(&mut ctl);
            failures.push(r.failure_probability);
            blocking.push(r.blocking_probability);
        }
        // The knob moves both dials in the promised directions.
        assert!(
            failures[2] < failures[0],
            "gamma 0.6 must cut failures: {failures:?}"
        );
        assert!(
            blocking[2] > blocking[0],
            "gamma 0.6 must raise blocking: {blocking:?}"
        );
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn invalid_gamma_rejected() {
        SafetyMargin::new(Memoryless::new(1e-3), 0.0);
    }
}
